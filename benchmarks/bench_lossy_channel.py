"""The Section 3.1 asymmetry under packet loss.

Every attestation request the prover *receives* costs it a full
measurement (hundreds of ms of CPU, Section 3.1) -- whether or not the
response ever reaches the verifier.  On a lossy channel the verifier
therefore pays nothing for a lost round while the prover may have paid
everything, and retries multiply that bill.  This harness quantifies the
effect: attestation success rate, retries, and prover energy burned as
the loss rate climbs, under a fixed retry budget
(:class:`repro.core.resilience.RetryPolicy`).

With no fault model installed (the 0% row) the numbers must match a
plain session exactly -- the robustness layer is pay-as-you-go.
"""


from repro.core import build_session, render_table
from repro.core.resilience import RetryPolicy
from repro.crypto.rng import DeterministicRng
from repro.mcu import DeviceConfig
from repro.net.faults import BernoulliLoss

from _report import run_once, write_report

ROUNDS = 10
RETRY = RetryPolicy(attempt_timeout_seconds=3.0, max_retries=4,
                    base_backoff_seconds=0.5, backoff_factor=2.0,
                    jitter_fraction=0.1)


def lossy_config() -> DeviceConfig:
    return DeviceConfig(ram_size=8 * 1024, flash_size=16 * 1024,
                        app_size=2 * 1024)


def run_lossy_campaign(loss_rate: float, *, seed: str):
    """``ROUNDS`` resilient attestations over a ``loss_rate`` channel."""
    adversary = (BernoulliLoss(loss_rate, seed=f"{seed}-loss")
                 if loss_rate > 0 else None)
    session = build_session(device_config=lossy_config(),
                            adversary=adversary, seed=seed)
    session.learn_reference_state()
    jitter_rng = DeterministicRng(f"{seed}-jitter")
    ok = retries = timeouts = 0
    for _ in range(ROUNDS):
        outcome = session.attest_resilient(RETRY, rng=jitter_rng)
        ok += 1 if outcome.trusted else 0
        retries += outcome.retries
        timeouts += outcome.timeouts
        session.sim.run(until=session.sim.now + 30.0)
    session.device.sync_energy()
    return {
        "ok": ok,
        "retries": retries,
        "timeouts": timeouts,
        "energy_mj": session.device.battery.consumed_mj,
        "measurements": session.anchor.stats.accepted,
    }


def test_report_lossy_success_energy(benchmark):
    run_once(benchmark, lambda: None)
    rows = [["loss rate (%)", "ok / rounds", "retries", "timeouts",
             "prover measurements", "prover energy (mJ)",
             "mJ / verified attestation"]]
    for loss in (0.0, 0.1, 0.2, 0.4):
        stats = run_lossy_campaign(loss, seed=f"bench-lossy-{loss:.2f}")
        per_ok = (stats["energy_mj"] / stats["ok"]
                  if stats["ok"] else float("inf"))
        rows.append([f"{100 * loss:.0f}",
                     f"{stats['ok']}/{ROUNDS}",
                     str(stats["retries"]), str(stats["timeouts"]),
                     str(stats["measurements"]),
                     f"{stats['energy_mj']:.3f}",
                     f"{per_ok:.3f}"])
    table = render_table(rows, title="Attestation under packet loss "
                                     "(8 KB prover, 5-attempt retry budget)")
    table += ("\n\nThe asymmetry of Section 3.1 under loss: the prover "
              "measures (and pays) for every request that reaches it, "
              "including rounds whose response the channel then ate -- so "
              "the energy bill per *verified* attestation grows faster "
              "than the loss rate, while the verifier's cost per retry "
              "stays a single cheap request.")
    write_report("lossy_channel_success_energy", table)


def test_report_determinism(benchmark):
    """Two identically-seeded lossy campaigns agree exactly."""
    run_once(benchmark, lambda: None)
    first = run_lossy_campaign(0.2, seed="bench-lossy-repro")
    second = run_lossy_campaign(0.2, seed="bench-lossy-repro")
    assert first == second
    table = ("identical campaigns (20% loss, same seed): "
             f"{first['ok']}/{ROUNDS} ok, {first['retries']} retries, "
             f"{first['energy_mj']:.6f} mJ -- byte-identical on replay.")
    write_report("lossy_channel_determinism", table)


def test_bench_lossy_round(benchmark):
    session = build_session(device_config=lossy_config(),
                            adversary=BernoulliLoss(0.2, seed="bench-wc"),
                            seed="bench-lossy-wc")
    session.learn_reference_state()

    def round_():
        return session.attest_resilient(RETRY)

    outcome = benchmark.pedantic(round_, rounds=1, iterations=1)
    assert outcome.attempts >= 1
