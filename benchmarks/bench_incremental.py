"""Incremental attestation: dirty-region sweeps vs full walks.

The PR 5 fleet engine removed redundant *identical-history* walks; this
harness measures the case it cannot touch -- a fleet-wide OTA update
that leaves every member byte-identical but with a unique write history.
``repro.perf.incremental`` drives paired full-walk/incremental fleets
through update+sweep rounds and gates on three things:

* byte-identical sweep reports and simulated accounting between paths
  (checked inside every measured point *and* by the three-scenario
  equivalence block);
* the headline wall-clock gate: >= 3x sweep speedup at a >=256-member
  fleet with <= 10% of attested memory dirtied per round;
* a planted compromise is detected identically through a hot content
  cache.

Wall-clock figures land in ``BENCH_incremental.json`` (schema-checked,
host-varying); the rendered ``results/`` table carries only
deterministic fields, exactly like the fleet-engine benchmark.
"""


from repro.core.analysis import render_table
from repro.obs.schema import validate_incremental_report
from repro.perf import incremental

from _report import run_once, write_json_artifact, write_report


def test_report_incremental_throughput(benchmark):
    """Writes ``BENCH_incremental.json`` and gates the acceptance
    criteria: >= 3x sweep wall-clock at fleet 256 with <= 10% dirty,
    equivalence block clean."""
    run_once(benchmark, lambda: None)
    report = incremental.build_report()
    errors = validate_incremental_report(report)
    assert not errors, (
        f"BENCH_incremental.json fails INCREMENTAL_SCHEMA: {errors}")
    write_json_artifact("incremental", report)

    assert report["fleet_size"] >= 256
    assert report["equivalence"]["identical"], (
        f"incremental/full divergence: {report['equivalence']}")
    gate = report["gate"]
    assert gate["dirty_fraction"] <= 0.10
    assert gate["passed"] and gate["speedup"] >= 3.0, (
        f"incremental sweep speedup {gate['speedup']:.2f}x below the 3x "
        f"gate at {gate['dirty_fraction']:.0%} dirty, fleet size "
        f"{report['fleet_size']}")

    # Deterministic summary: digest-tree work arithmetic is exact, so
    # the results/ table never carries host wall-clock numbers.  At
    # dirty fraction f the incremental fleet re-hashes 1 full member
    # image (the one content miss) plus per-member tree refreshes of
    # ceil(f * leaves) leaf chunks; the full-walk fleet re-hashes all N
    # member images.
    point = next(p for p in report["points"]
                 if p["dirty_fraction"] == gate["dirty_fraction"])
    rows = [["quantity", "value"],
            ["fleet size", str(report["fleet_size"])],
            ["writable KB / member", str(report["writable_kb"])],
            ["chunk size (B) / arity",
             f"{report['chunk_size']} / {report['arity']}"],
            ["gate dirty fraction", f"{gate['dirty_fraction']:.0%}"],
            ["dirty KB / member / round", str(point["dirty_kb"])],
            ["equivalence clean", str(report["equivalence"]["identical"])],
            ["compromise detected",
             str(report["equivalence"]["scenarios"]["compromised"]
                 ["detected"])],
            ["tree full builds (member 0)",
             str(point["tree"]["full_builds"])],
            ["tree leaf hashes (member 0)",
             str(point["tree"]["leaf_hashes"])]]
    table = render_table(rows, title="Incremental engine: dirty-region "
                                     "sweeps vs full walks")
    table += ("\n\nEvery update round leaves the fleet byte-identical "
              "via member-unique write orders, so the history-keyed "
              "cache misses for all members; the digest-tree content "
              "key recognises the shared state after one full "
              "measurement.  Wall-clock figures (the >=3x gate) live in "
              "BENCH_incremental.json, which varies by host.")
    write_report("incremental_engine", table)


def test_bench_incremental_point(benchmark):
    """One small paired point under pytest-benchmark accounting."""
    point = benchmark.pedantic(
        lambda: incremental.measure_point(4, 64, 0.25, sweeps=1),
        rounds=1, iterations=1)
    assert point["speedup"] > 0
