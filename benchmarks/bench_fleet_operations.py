"""Future-work item 1 quantified: fleet-scale attestation operations.

Section 7 proposes trial-deploying the mechanisms "in the context of
connected devices, such as Internet of Things (IoT)".  This harness
measures what an operator cares about at fleet scale:

* per-sweep wall time and fleet energy as the fleet grows (the verifier
  is never the bottleneck -- the Section 3.1 asymmetry at scale);
* the cost of the monitoring *policy* (interval + retries) on each
  prover's duty cycle;
* detection latency: how many sweep intervals pass before a compromised
  node is flagged.
"""


from repro.core.analysis import render_table
from repro.core.resilience import RetryPolicy
from repro.mcu import DeviceConfig
from repro.obs.schema import validate_fleet_report
from repro.perf import fleet
from repro.services.monitor import AttestationMonitor, MonitorPolicy
from repro.services.swarm import Swarm

from _report import run_once, write_json_artifact, write_report


def fleet_config() -> DeviceConfig:
    return DeviceConfig(ram_size=8 * 1024, flash_size=16 * 1024,
                        app_size=2 * 1024)


def test_report_sweep_scaling(benchmark):
    run_once(benchmark, lambda: None)
    rows = [["fleet size", "attested", "fleet energy (mJ)",
             "energy / device (mJ)"]]
    for size in (1, 4, 8):
        fleet = Swarm(size, device_config=fleet_config(),
                      seed=f"bench-fleet-{size}")
        report = fleet.sweep()
        rows.append([str(size), f"{report.trusted}/{report.attempted}",
                     f"{report.fleet_energy_mj:.3f}",
                     f"{report.fleet_energy_mj / size:.3f}"])
    table = render_table(rows, title="Attestation sweep vs fleet size")
    table += ("\n\nPer-device cost is constant: fleet attestation "
              "parallelises trivially on the verifier side, while each "
              "prover pays the same Section 3.1 price -- the asymmetry "
              "that makes verifier-side flooding cheap is the same one "
              "that makes fleet sweeps scale.")
    write_report("fleet_sweep_scaling", table)


def test_report_monitoring_cost(benchmark):
    """Prover duty-cycle share of honest monitoring at several cadences."""
    run_once(benchmark, lambda: None)
    from repro.core import build_session

    rows = [["interval (s)", "rounds", "prover duty share (%)"]]
    for interval in (60.0, 300.0, 1800.0):
        session = build_session(device_config=fleet_config(),
                                seed=f"bench-mon-{interval}")
        session.learn_reference_state()
        monitor = AttestationMonitor(
            session, policy=MonitorPolicy(
                interval_seconds=interval,
                retry=RetryPolicy(attempt_timeout_seconds=5.0)))
        monitor.run(rounds=3)
        rows.append([f"{interval:.0f}", str(monitor.rounds_run),
                     f"{100 * monitor.duty_cost_fraction:.4f}"])
    table = render_table(rows, title="Monitoring cadence vs prover duty "
                                     "share (24 KB prover)")
    table += ("\n\nEven minute-cadence monitoring stays well under 0.1% "
              "of the prover's time -- honest attestation is affordable; "
              "only *unauthenticated* invocation is the threat.")
    write_report("fleet_monitoring_cost", table)


def test_report_detection_latency(benchmark):
    """Sweeps until a mid-deployment compromise is flagged."""
    run_once(benchmark, lambda: None)
    fleet = Swarm(3, device_config=fleet_config(), seed="bench-detect")
    healthy_sweeps = 2
    for _ in range(healthy_sweeps):
        assert fleet.sweep().healthy
    # Compromise one node between sweeps.
    fleet.members[1].session.device.flash.load(200, b"\xEB\xFE\x90")
    report = fleet.sweep()
    table = (f"sweeps before compromise: {healthy_sweeps} (all healthy)\n"
             f"first sweep after compromise: untrusted="
             f"{report.untrusted}\n"
             f"detection latency: exactly one sweep interval -- state "
             f"attestation flags the modified image immediately, because "
             f"the digest covers all attested memory.")
    write_report("fleet_detection_latency", table)
    assert report.untrusted == ["device-001"]


def test_report_fleet_throughput(benchmark):
    """Sharded parallel sweep throughput vs the sequential seed path.

    Writes ``BENCH_fleet.json`` (host wall-clock figures, schema-checked
    against FLEET_SCHEMA) and gates on the acceptance criteria: the
    parallel engine must sweep a >=256-member fleet at least 2x faster
    than the sequential seed path *while producing byte-identical
    reports*, and the fault-injected equivalence block must be clean.
    The rendered ``results/`` table carries only deterministic fields
    (sizes, verdicts, cache-hit arithmetic), never wall-clock numbers.
    """
    run_once(benchmark, lambda: None)
    report = fleet.build_report()
    errors = validate_fleet_report(report)
    assert not errors, f"BENCH_fleet.json fails FLEET_SCHEMA: {errors}"
    write_json_artifact("fleet", report)

    assert report["fleet_size"] >= 256
    assert report["reports_identical"] is True
    assert report["equivalence"]["identical"], (
        f"parallel/sequential divergence: "
        f"{report['equivalence']['mismatched_fields']}")
    assert report["speedup"] >= 2.0, (
        f"parallel sweep speedup {report['speedup']:.2f}x below the 2x "
        f"gate at fleet size {report['fleet_size']}")

    # Deterministic summary table: cache-hit arithmetic is exact (one
    # miss per shard at spin-up, one hit per member per round after),
    # wall-clock numbers stay out of results/.
    size, workers = report["fleet_size"], report["workers"]
    sweeps = report["sweeps"]
    cache = report["cache"]
    expected_hits = (size - workers) + sweeps * size
    rows = [["quantity", "value"],
            ["fleet size", str(size)],
            ["shard workers", str(workers)],
            ["sweeps timed", str(sweeps)],
            ["sweep reports byte-identical", str(report["reports_identical"])],
            ["fault-injected equivalence clean",
             str(report["equivalence"]["identical"])],
            ["digest-cache misses (one per shard)", str(cache["misses"])],
            ["digest-cache hits", f"{cache['hits']} (expected "
                                  f"{expected_hits})"]]
    assert cache["misses"] == workers
    assert cache["hits"] == expected_hits
    table = render_table(rows, title="Fleet engine: sharded sweeps vs "
                                     "sequential seed path")
    table += ("\n\nSpin-up measures each unique configuration once per "
              "shard and serves every other member from the shared "
              "digest cache; steady-state sweeps hit the cache for all "
              "members.  Wall-clock figures (the >=2x sweep gate) live "
              "in BENCH_fleet.json, which varies by host.")
    write_report("fleet_engine_throughput", table)


def test_bench_fleet_sweep(benchmark):
    fleet = Swarm(4, device_config=fleet_config(), seed="bench-sweep-wc")
    result = benchmark.pedantic(fleet.sweep, rounds=1, iterations=1)
    assert result.attempted == 4
