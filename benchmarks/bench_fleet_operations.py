"""Future-work item 1 quantified: fleet-scale attestation operations.

Section 7 proposes trial-deploying the mechanisms "in the context of
connected devices, such as Internet of Things (IoT)".  This harness
measures what an operator cares about at fleet scale:

* per-sweep wall time and fleet energy as the fleet grows (the verifier
  is never the bottleneck -- the Section 3.1 asymmetry at scale);
* the cost of the monitoring *policy* (interval + retries) on each
  prover's duty cycle;
* detection latency: how many sweep intervals pass before a compromised
  node is flagged.
"""


from repro.core.analysis import render_table
from repro.core.resilience import RetryPolicy
from repro.mcu import DeviceConfig
from repro.services.monitor import AttestationMonitor, MonitorPolicy
from repro.services.swarm import Swarm

from _report import run_once, write_report


def fleet_config() -> DeviceConfig:
    return DeviceConfig(ram_size=8 * 1024, flash_size=16 * 1024,
                        app_size=2 * 1024)


def test_report_sweep_scaling(benchmark):
    run_once(benchmark, lambda: None)
    rows = [["fleet size", "attested", "fleet energy (mJ)",
             "energy / device (mJ)"]]
    for size in (1, 4, 8):
        fleet = Swarm(size, device_config=fleet_config(),
                      seed=f"bench-fleet-{size}")
        report = fleet.sweep()
        rows.append([str(size), f"{report.trusted}/{report.attempted}",
                     f"{report.fleet_energy_mj:.3f}",
                     f"{report.fleet_energy_mj / size:.3f}"])
    table = render_table(rows, title="Attestation sweep vs fleet size")
    table += ("\n\nPer-device cost is constant: fleet attestation "
              "parallelises trivially on the verifier side, while each "
              "prover pays the same Section 3.1 price -- the asymmetry "
              "that makes verifier-side flooding cheap is the same one "
              "that makes fleet sweeps scale.")
    write_report("fleet_sweep_scaling", table)


def test_report_monitoring_cost(benchmark):
    """Prover duty-cycle share of honest monitoring at several cadences."""
    run_once(benchmark, lambda: None)
    from repro.core import build_session

    rows = [["interval (s)", "rounds", "prover duty share (%)"]]
    for interval in (60.0, 300.0, 1800.0):
        session = build_session(device_config=fleet_config(),
                                seed=f"bench-mon-{interval}")
        session.learn_reference_state()
        monitor = AttestationMonitor(
            session, policy=MonitorPolicy(
                interval_seconds=interval,
                retry=RetryPolicy(attempt_timeout_seconds=5.0)))
        monitor.run(rounds=3)
        rows.append([f"{interval:.0f}", str(monitor.rounds_run),
                     f"{100 * monitor.duty_cost_fraction:.4f}"])
    table = render_table(rows, title="Monitoring cadence vs prover duty "
                                     "share (24 KB prover)")
    table += ("\n\nEven minute-cadence monitoring stays well under 0.1% "
              "of the prover's time -- honest attestation is affordable; "
              "only *unauthenticated* invocation is the threat.")
    write_report("fleet_monitoring_cost", table)


def test_report_detection_latency(benchmark):
    """Sweeps until a mid-deployment compromise is flagged."""
    run_once(benchmark, lambda: None)
    fleet = Swarm(3, device_config=fleet_config(), seed="bench-detect")
    healthy_sweeps = 2
    for _ in range(healthy_sweeps):
        assert fleet.sweep().healthy
    # Compromise one node between sweeps.
    fleet.members[1].session.device.flash.load(200, b"\xEB\xFE\x90")
    report = fleet.sweep()
    table = (f"sweeps before compromise: {healthy_sweeps} (all healthy)\n"
             f"first sweep after compromise: untrusted="
             f"{report.untrusted}\n"
             f"detection latency: exactly one sweep interval -- state "
             f"attestation flags the modified image immediately, because "
             f"the digest covers all attested memory.")
    write_report("fleet_detection_latency", table)
    assert report.untrusted == ["device-001"]


def test_bench_fleet_sweep(benchmark):
    fleet = Swarm(4, device_config=fleet_config(), seed="bench-sweep-wc")
    result = benchmark.pedantic(fleet.sweep, rounds=1, iterations=1)
    assert result.attempted == 4
