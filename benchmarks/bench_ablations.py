"""Ablations over the design choices DESIGN.md calls out.

1. Freshness mechanism state cost: nonce history growth vs the single
   counter word (Section 4.2's objection, measured).
2. Paper timestamps vs the monotonic extension: the within-window replay
   that the inter-spacing assumption leaves open, closed by one stored
   word.
3. Interruptible vs uninterruptible attestation: primary-task deadlines
   missed during measurement (Section 3.1's real-time concern).
4. Request-auth primitive choice under honest load: per-round prover
   cost including validation.
"""

import pytest

from repro.attacks.external import ReplayAttacker
from repro.core import build_session
from repro.core.analysis import render_table
from repro.core.freshness import (CounterPolicy, NonceHistoryPolicy,
                                  InMemoryStateView)
from repro.crypto import CryptoCostModel
from repro.mcu import DeviceConfig, DutyCycleTask

from _report import run_once, write_report


def small_config(**overrides):
    defaults = dict(ram_size=16 * 1024, flash_size=32 * 1024,
                    app_size=4 * 1024)
    defaults.update(overrides)
    return DeviceConfig(**defaults)


# ---------------------------------------------------------------------------
# 1. Freshness state cost
# ---------------------------------------------------------------------------

def test_report_freshness_state_cost(benchmark):
    run_once(benchmark, lambda: None)
    nonce_policy = NonceHistoryPolicy(nonce_size=16)
    view = InMemoryStateView()
    rows = [["requests seen", "nonce history (bytes)", "counter (bytes)"]]
    for count in (10, 100, 1_000, 10_000):
        while len(view.nonces) < count:
            index = len(view.nonces)
            view.remember_nonce(index.to_bytes(16, "big"))
        rows.append([f"{count:,}",
                     f"{nonce_policy.prover_state_bytes(view):,}", "8"])
    report = render_table(rows, title="Ablation: prover non-volatile state "
                                      "per freshness feature")
    report += ("\n\nSection 4.2: 'keeping a complete nonce history requires "
               "a lot of non-volatile memory on the prover' -- after 10k "
               "requests the history exceeds the flash of many low-end "
               "MCUs, while the counter stays one word.")
    write_report("ablation_freshness_state", report)
    assert nonce_policy.prover_state_bytes(view) == 160_000
    assert CounterPolicy().prover_state_bytes(view) == 8


# ---------------------------------------------------------------------------
# 2. Paper timestamps vs monotonic extension
# ---------------------------------------------------------------------------

def _within_window_replay(monotonic: bool) -> bool:
    """Replay a genuine request *inside* the acceptance window; returns
    whether the prover accepted the copy."""
    session = build_session(policy_name="timestamp",
                            device_config=small_config(),
                            timestamp_window_seconds=5.0,
                            seed=f"ablate-mono-{monotonic}")
    if monotonic:
        session.policy.monotonic = True
    session.attest_once(settle_seconds=2.0)
    accepted_before = session.anchor.stats.accepted
    attacker = ReplayAttacker(session.channel, session.sim)
    attacker.replay_latest(delay=0.5)   # well inside the 5 s window
    session.sim.run(until=session.sim.now + 3.0)
    return session.anchor.stats.accepted > accepted_before


def test_report_timestamp_monotonic_ablation(benchmark):
    run_once(benchmark, lambda: None)
    paper_accepts = _within_window_replay(monotonic=False)
    hardened_accepts = _within_window_replay(monotonic=True)
    rows = [["variant", "within-window replay accepted", "prover state"],
            ["paper (pure window check)",
             "yes" if paper_accepts else "no", "0 bytes"],
            ["monotonic extension",
             "yes" if hardened_accepts else "no", "8 bytes"]]
    report = render_table(rows, title="Ablation: timestamp freshness, paper "
                                      "scheme vs monotonic extension")
    report += ("\n\nThe paper's scheme relies on 'sufficiently inter-spaced "
               "genuine attestation requests'; inside the window a replay "
               "passes.  Storing the last accepted timestamp in the same "
               "protected word the counter scheme uses closes the gap for "
               "8 bytes of state.")
    write_report("ablation_timestamp_monotonic", report)
    assert paper_accepts and not hardened_accepts


# ---------------------------------------------------------------------------
# 3. Real-time interference
# ---------------------------------------------------------------------------

def test_report_realtime_interference(benchmark):
    """Deadlines missed by a 10 Hz control task while attestation runs.

    Two accounts that must agree in shape: the analytic gap bound
    (DutyCycleTask) and an execution-accurate run of the cooperative
    executive (CooperativeScheduler) under the same blocking."""
    run_once(benchmark, lambda: None)
    from repro.mcu import CooperativeScheduler, PeriodicTask

    rows = [["memory", "attestation (ms)", "missed (analytic)",
             "skipped (executive)", "max lateness catch-up (ms)"]]
    model = CryptoCostModel()
    for kb in (64, 256, 512):
        attest_s = model.attestation_ms(kb * 1024) / 1000.0
        busy = [(1.0, 1.0 + attest_s)]

        analytic = DutyCycleTask("control", period_seconds=0.1,
                                 job_cycles=240_000)
        analytic.record_blocked(*busy[0])
        missed = analytic.missed_deadlines(horizon_seconds=10.0)

        skip_report = CooperativeScheduler([
            PeriodicTask("control", 0.1, 0.01)]).run(10.0, busy)
        late_report = CooperativeScheduler([
            PeriodicTask("control", 0.1, 0.01, policy="catch-up")
        ]).run(10.0, busy)

        rows.append([f"{kb} KB", f"{attest_s * 1000:.1f}", str(missed),
                     str(skip_report.skipped),
                     f"{late_report.max_lateness_seconds * 1000:.0f}"])
        assert skip_report.skipped == missed
    report = render_table(rows, title="Ablation: control-task deadlines "
                                      "missed during one (uninterruptible) "
                                      "attestation")
    report += ("\n\nSection 3.1: attestation on low-end devices runs "
               "without interruption, so a 512 KB measurement blanks ~7 "
               "consecutive 100 ms control periods -- exactly why bogus "
               "invocations are an attack on the device's primary "
               "function.  The analytic bound and the execution-accurate "
               "cooperative executive agree; a catch-up task instead "
               "accumulates the full measurement time as lateness.")
    write_report("ablation_realtime", report)


# ---------------------------------------------------------------------------
# 3b. SMART atomicity vs the Figure 1b SW-clock
# ---------------------------------------------------------------------------

def test_report_rate_limit_alternative(benchmark):
    """The naive alternative to authentication -- prover-side rate
    limiting -- attacked: one forgery just before each genuine request
    claims the rate slot."""
    run_once(benchmark, lambda: None)
    from repro.attacks.scenarios import run_rate_limit_lockout

    rows = [["defence", "genuine served", "forged measured",
             "genuine rate-limited"]]
    outcomes = {}
    for scheme, label in (("none", "rate limit only"),
                          ("speck-64/128-cbc-mac",
                           "rate limit + speck MAC")):
        result = run_rate_limit_lockout(auth_scheme=scheme,
                                        seed="bench-lockout")
        outcomes[scheme] = result
        rows.append([label,
                     f"{result.genuine_accepted}/{result.genuine_sent}",
                     str(result.forged_measured),
                     str(result.rejected_rate_limited)])
    report = render_table(rows, title="Ablation: rate limiting as a "
                                      "DoS defence")
    report += ("\n\nWithout authentication, rate limiting inverts the "
               "attack: the adversary spends one forged packet per "
               "window to lock every genuine request out, while the "
               "prover still burns a full measurement per forgery.  "
               "Authentication (0.015 ms/request) makes the limiter "
               "irrelevant -- exactly the paper's position that request "
               "authentication, not throttling, is the defence.")
    write_report("ablation_rate_limiting", report)
    assert outcomes["none"].genuine_accepted == 0
    assert outcomes["speck-64/128-cbc-mac"].genuine_accepted == \
        outcomes["speck-64/128-cbc-mac"].genuine_sent


def test_report_monotonic_vs_hardware_budget(benchmark):
    """The monotonic extension as a hardware-budget trade: with it, the
    clock-reset attack dies at the (already required) counter_R rule, so
    the Section 6.3 clock-protection rules buy availability only, not
    invocation-DoS resistance."""
    run_once(benchmark, lambda: None)
    from repro.attacks.scenarios import run_roaming_attack
    from repro.mcu import BASELINE, EXT_HARDENED, ROAM_HARDENED

    rows = [["profile (rules)", "paper timestamps", "monotonic extension"]]
    cases = [(BASELINE, "baseline (2)"), (EXT_HARDENED, "ext-hardened (3)"),
             (ROAM_HARDENED, "roam-hardened (4)")]
    for profile, label in cases:
        outcomes = []
        for mono in (False, True):
            record = run_roaming_attack(
                strategy="clock-reset", policy="timestamp",
                profile=profile, monotonic_timestamps=mono,
                seed=f"bench-mono-{profile.name}-{mono}")
            outcomes.append("DoS succeeds" if record.dos_succeeded
                            else "blocked")
        rows.append([label] + outcomes)
    report = render_table(rows, title="Ablation: clock-reset replay vs "
                                      "timestamp variant and rule budget")
    report += ("\n\nWith monotonic timestamps, protecting counter_R "
               "(1 rule, already required for counter freshness) blocks "
               "the clock-reset replay -- the 1-3 extra clock-protection "
               "rules of Section 6.3 then defend the clock's "
               "*availability* (an adversary can still stop or skew an "
               "unprotected clock to make the prover reject genuine "
               "requests) rather than being the last line against "
               "unauthorised invocation.")
    write_report("ablation_monotonic_hw_budget", report)


def test_report_smart_vs_trustlite_clock(benchmark):
    """SMART's uninterruptible attestation silently loses SW-clock wraps
    (one pending bit per IRQ line), so the clock falls behind by almost
    the whole measurement time; TrustLite-style interruptible trusted
    code keeps it exact.  A design interaction the paper's prototype
    avoids by building on TrustLite."""
    run_once(benchmark, lambda: None)
    from repro.mcu import Device, ROAM_HARDENED

    rows = [["trusted-code style", "clock", "measurement (ms)",
             "clock lag after one attestation (ms)", "wraps absorbed"]]
    for clock_kind in ("sw", "hw64"):
        for atomic in (False, True):
            config = small_config(clock_kind=clock_kind,
                                  uninterruptible_attest=atomic)
            device = Device(config)
            device.provision(b"K" * 16)
            device.boot(ROAM_HARDENED)
            attest = device.context("Code_Attest")
            device.idle_seconds(0.01)
            start = device.cpu.cycle_count
            device.digest_writable_memory(attest)
            measurement_ms = (device.cpu.cycle_count - start) / 24_000
            device.cpu.consume_cycles(1)
            lag = device.cpu.cycle_count - device.read_clock_ticks(attest)
            rows.append([
                "SMART (atomic)" if atomic else "TrustLite (interruptible)",
                clock_kind, f"{measurement_ms:.1f}",
                f"{lag / 24_000:.2f}",
                str(len(device.interrupts.coalesced_log))])
    report = render_table(rows, title="Ablation: trusted-code "
                                      "interruptibility vs clock design")
    report += ("\n\nSMART-style atomic measurement on a SW-clock device "
               "loses nearly the full measurement duration of clock time "
               "per attestation (every LSB wrap beyond the first is "
               "absorbed by the single pending bit) -- repeated "
               "attestations would accumulate unbounded clock error, "
               "breaking the timestamp defence from the inside.  "
               "Interruptible trusted code (TrustLite, as the paper's "
               "prototype uses) or a dedicated hardware clock avoids it.")
    write_report("ablation_smart_vs_trustlite", report)


# ---------------------------------------------------------------------------
# 4. Request-auth primitive under honest load
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scheme", ["speck-64/128-cbc-mac", "hmac-sha1"])
def test_bench_honest_round(benchmark, scheme):
    session = build_session(auth_scheme=scheme,
                            device_config=small_config(),
                            seed=f"bench-honest-{scheme}")

    def one_round():
        return session.attest_once(settle_seconds=5.0)

    result = benchmark.pedantic(one_round, rounds=1, iterations=1)
    assert result.authentic


def test_report_honest_overhead(benchmark):
    run_once(benchmark, lambda: None)
    model = CryptoCostModel()
    attest_ms = model.attestation_ms(512 * 1024)
    rows = [["scheme", "validation (ms)", "% of one 512 KB attestation"]]
    for scheme in ("speck-64/128-cbc-mac", "aes-128-cbc-mac", "hmac-sha1",
                   "ecdsa-secp160r1"):
        v = model.request_validation_ms(scheme)
        rows.append([scheme, f"{v:.3f}", f"{100 * v / attest_ms:.3f}"])
    report = render_table(rows, title="Ablation: honest-case overhead of "
                                      "request authentication")
    report += ("\n\nFor symmetric schemes the defence is ~free (<0.06 % "
               "of the measurement it protects); only ECDSA is "
               "significant (22.7 %).")
    write_report("ablation_honest_overhead", report)
