"""Table 1: performance of cryptographic primitives at 24 MHz.

Two layers:

* the *simulated* Table 1 -- the calibrated cycle-cost model queried for
  each primitive operation, which must round-trip the published
  milliseconds exactly (this is what every other experiment builds on);
* *real* wall-clock timings of the from-scratch pure-Python primitives
  via pytest-benchmark -- not comparable to Siskiyou Peak in absolute
  terms, but their *ordering* (Speck block < AES block < SHA-1 block <<
  ECDSA) must match the paper's shape, which the report checks.
"""

import pytest

from repro.core.analysis import render_table
from repro.crypto import (AES128, CryptoCostModel, DeterministicRng, SHA1,
                          SECP160R1, Speck64_128, ecdsa_sign, ecdsa_verify,
                          generate_keypair, hmac_sha1)

from _report import run_once, write_report

MODEL = CryptoCostModel()

#: Table 1 as printed (ms at 24 MHz).
PAPER_TABLE1 = {
    "hmac fix": 0.340, "hmac per-block": 0.092,
    "aes key-exp": 0.074, "aes enc/block": 0.288, "aes dec/block": 0.570,
    "speck key-exp": 0.016, "speck enc/block": 0.017,
    "speck dec/block": 0.015,
    "ecc sign": 183.464, "ecc verify": 170.907,
}


def simulated_table1() -> dict[str, float]:
    m = MODEL
    return {
        "hmac fix": m.cycles_to_ms(m.hmac_cycles(0, "table")),
        "hmac per-block": m.cycles_to_ms(m.hmac_cycles(128, "table")
                                         - m.hmac_cycles(64, "table")),
        "aes key-exp": m.cycles_to_ms(m.aes_key_expansion_cycles()),
        "aes enc/block": m.cycles_to_ms(m.aes_encrypt_cycles(1)),
        "aes dec/block": m.cycles_to_ms(m.aes_decrypt_cycles(1)),
        "speck key-exp": m.cycles_to_ms(m.speck_key_expansion_cycles()),
        "speck enc/block": m.cycles_to_ms(m.speck_encrypt_cycles(1)),
        "speck dec/block": m.cycles_to_ms(m.speck_decrypt_cycles(1)),
        "ecc sign": m.cycles_to_ms(m.ecdsa_sign_cycles()),
        "ecc verify": m.cycles_to_ms(m.ecdsa_verify_cycles()),
    }


def test_report_table1(benchmark):
    run_once(benchmark, lambda: None)
    simulated = simulated_table1()
    rows = [["Primitive op", "paper (ms)", "model (ms)", "match"]]
    all_match = True
    for name, paper_ms in PAPER_TABLE1.items():
        model_ms = simulated[name]
        match = abs(model_ms - paper_ms) < 5e-3
        all_match &= match
        rows.append([name, f"{paper_ms:.3f}", f"{model_ms:.3f}",
                     "yes" if match else "NO"])
    write_report("table1_crypto",
                 render_table(rows, title="Table 1 (Siskiyou Peak @ 24 MHz)"))
    assert all_match


# ---------------------------------------------------------------------------
# Real wall-clock benchmarks of the pure-Python implementations
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(SECP160R1, DeterministicRng(b"bench"))


def test_bench_sha1_block(benchmark):
    data = b"\xA5" * 64
    benchmark(lambda: SHA1(data).digest())


def test_bench_hmac_1kb(benchmark):
    data = b"\xA5" * 1024
    benchmark(lambda: hmac_sha1(b"k" * 16, data))


def test_bench_aes_encrypt_block(benchmark):
    cipher = AES128(b"k" * 16)
    block = b"\x3C" * 16
    benchmark(lambda: cipher.encrypt_block(block))


def test_bench_aes_decrypt_block(benchmark):
    cipher = AES128(b"k" * 16)
    block = b"\x3C" * 16
    benchmark(lambda: cipher.decrypt_block(block))


def test_bench_speck_encrypt_block(benchmark):
    cipher = Speck64_128(b"k" * 16)
    block = b"\x3C" * 8
    benchmark(lambda: cipher.encrypt_block(block))


def test_bench_ecdsa_sign(benchmark, keypair):
    benchmark(lambda: ecdsa_sign(keypair, b"message"))


def test_bench_ecdsa_verify(benchmark, keypair):
    signature = ecdsa_sign(keypair, b"message")
    benchmark(lambda: ecdsa_verify(SECP160R1, keypair.public, b"message",
                                   signature))


def test_real_ordering_matches_paper_shape(benchmark, keypair):
    """Per-byte and per-op ordering of the real implementations must
    reproduce the paper's qualitative shape."""
    run_once(benchmark, lambda: None)
    import time

    def clock(fn, repeat=20):
        start = time.perf_counter()
        for _ in range(repeat):
            fn()
        return (time.perf_counter() - start) / repeat

    speck = Speck64_128(b"k" * 16)
    aes = AES128(b"k" * 16)
    signature = ecdsa_sign(keypair, b"m")

    speck_block = clock(lambda: speck.encrypt_block(b"x" * 8))
    aes_block = clock(lambda: aes.encrypt_block(b"x" * 16))
    ecdsa_time = clock(lambda: ecdsa_verify(SECP160R1, keypair.public,
                                            b"m", signature), repeat=3)
    rows = [["op", "seconds"],
            ["speck block (8 B)", f"{speck_block:.2e}"],
            ["aes block (16 B)", f"{aes_block:.2e}"],
            ["ecdsa verify", f"{ecdsa_time:.2e}"]]
    write_report("table1_real_wallclock",
                 render_table(rows, title="Pure-Python wall-clock sanity"))
    assert speck_block < aes_block < ecdsa_time
