"""Section 2 baseline: software-based attestation over a network.

The paper dismisses SWATT/Pioneer-style timing attestation for networked
provers: the schemes "only work if the verifier communicates directly to
the prover, with no intermediate hops".  This harness quantifies the
claim: detection accuracy of a SWATT verifier against a read-redirecting
cheater, as channel jitter grows from a direct link towards multi-hop
conditions -- and contrasts it with the hardware-anchored protocol, whose
verdicts do not depend on timing at all.
"""

import pytest

from repro.baselines.swatt import (CHEAT_OVERHEAD_CYCLES, SwattVerifier,
                                   evaluate_over_network)
from repro.core import build_session
from repro.core.analysis import render_table
from repro.mcu import BASELINE, Device, DeviceConfig

from _report import run_once, write_report

ITERATIONS = 8_000
JITTERS = [0.0, 0.0005, 0.002, 0.005, 0.010]


def factory():
    device = Device(DeviceConfig(ram_size=8 * 1024, flash_size=16 * 1024,
                                 app_size=4 * 1024))
    device.provision(b"K" * 16)
    device.boot(BASELINE)
    return device


@pytest.fixture(scope="module")
def sweep():
    return evaluate_over_network(device_factory=factory, jitters=JITTERS,
                                 trials=12, iterations=ITERATIONS,
                                 seed="bench-swatt")


def test_report_swatt_collapse(benchmark, sweep):
    run_once(benchmark, lambda: None)
    overhead_ms = ITERATIONS * CHEAT_OVERHEAD_CYCLES / 24_000
    rows = [["channel jitter (ms)", "false accepts", "false rejects",
             "accuracy"]]
    for point in sweep:
        rows.append([f"{point.jitter_seconds * 1000:.1f}",
                     f"{point.false_accepts}/{point.trials}",
                     f"{point.false_rejects}/{point.trials}",
                     f"{point.accuracy:.2f}"])
    report = render_table(
        rows, title="SWATT-style timing attestation vs channel jitter "
                    f"(cheat overhead: {overhead_ms:.2f} ms)")
    report += ("\n\nShape: perfect on a direct link, collapsing towards "
               "coin-flip once jitter dwarfs the cheat overhead -- the "
               "paper's Section 2 argument that software-based "
               "attestation 'is not viable ... over a network'.  The "
               "hardware-anchored protocol's verdicts are timing-free "
               "and unaffected (next report).")
    write_report("section2_swatt_collapse", report)
    assert sweep[0].accuracy == 1.0
    assert sweep[-1].accuracy < 0.8
    assert sweep[-1].accuracy < sweep[0].accuracy


def test_report_hardware_protocol_jitter_free(benchmark):
    """The Section 6 protocol under the same worst jitter: verdicts are
    unaffected because nothing is timed."""
    run_once(benchmark, lambda: None)
    session = build_session(
        device_config=DeviceConfig(ram_size=8 * 1024,
                                   flash_size=16 * 1024,
                                   app_size=4 * 1024),
        latency_seconds=0.010, seed="bench-hw-jitter")
    session.learn_reference_state()
    verdicts = [session.attest_once().trusted for _ in range(5)]
    report = (f"hardware-anchored attestation across a 10 ms-latency "
              f"channel: {sum(verdicts)}/5 rounds trusted\n"
              f"(verdicts depend on MACs and freshness state, not on "
              f"response timing)")
    write_report("section2_hw_protocol_jitter", report)
    assert all(verdicts)


def test_report_swatt_by_topology(benchmark):
    """The same collapse expressed in deployment terms: direct link,
    campus network, WAN -- the paper's 'no intermediate hops' condition."""
    from repro.baselines.swatt import evaluate_over_paths
    from repro.net.path import DIRECT_LINK, campus_path, wan_path

    paths = {"direct link": DIRECT_LINK, "campus (3 hops)": campus_path(),
             "WAN (5 hops)": wan_path()}
    results = run_once(benchmark, lambda: evaluate_over_paths(
        device_factory=factory, paths=paths, trials=10,
        iterations=ITERATIONS, seed="bench-swatt-topo"))
    rows = [["topology", "jitter span (ms)", "accuracy"]]
    for name, path in paths.items():
        point = results[name]
        rows.append([name, f"{path.jitter_span_seconds * 1000:.2f}",
                     f"{point.accuracy:.2f}"])
    report = render_table(rows, title="SWATT detection accuracy by "
                                      "deployment topology")
    report += ("\n\nOnly the direct link (the computer-peripheral setting "
               "SWATT was designed for) retains full accuracy; every hop "
               "added widens the timing uncertainty the verifier must "
               "absorb.")
    write_report("section2_swatt_topology", report)
    assert results["direct link"].accuracy == 1.0
    assert results["WAN (5 hops)"].accuracy < \
        results["direct link"].accuracy


def test_bench_swatt_response(benchmark):
    from repro.baselines.swatt import SwattProver
    prover = SwattProver(factory())
    verifier = SwattVerifier(iterations=ITERATIONS)
    benchmark.pedantic(lambda: prover.respond(verifier.challenge()),
                       rounds=3, iterations=1)
