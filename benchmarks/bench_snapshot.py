"""Delta checkpoints: chained dirty-chunk captures vs full snapshots.

The PR 7 incremental engine made *sweeps* O(dirty); checkpointing a
fleet under an OTA campaign still re-serialized every member's whole
writable memory per save.  ``repro.perf.snapshot`` drives a sharded
:class:`~repro.perf.fleet.FleetEngine` through update+sweep+checkpoint
rounds, capturing each round twice -- a full snapshot and a delta
against the previous checkpoint -- and gates on three things:

* every measured delta chain folds back byte-identical to the full
  snapshot of the same instant (checked inside every point *and* by
  the restore-and-continue equivalence block);
* the headline gate: >= 3x capture wall-clock and >= 10x bytes written
  at a >= 256-member fleet with <= 10% of attested memory dirtied per
  round of fleet-shared content;
* an honest worst case: the member-unique-content point, where
  content-addressing dedups nothing across the fleet, is reported
  un-gated rather than hidden.

Wall-clock figures land in ``BENCH_snapshot.json`` (schema-checked,
host-varying); the rendered ``results/`` table carries only
deterministic fields, exactly like the incremental benchmark.
"""


from repro.core.analysis import render_table
from repro.obs.schema import validate_snapshot_report
from repro.perf import snapshot as perf_snapshot

from _report import run_once, write_json_artifact, write_report


def test_report_snapshot_throughput(benchmark):
    """Writes ``BENCH_snapshot.json`` and gates the acceptance
    criteria: >= 3x capture wall-clock and >= 10x bytes written at
    fleet 256 with <= 10% dirty, every chain byte-identical,
    equivalence block clean."""
    run_once(benchmark, lambda: None)
    report = perf_snapshot.build_report()
    errors = validate_snapshot_report(report)
    assert not errors, (
        f"BENCH_snapshot.json fails SNAPSHOT_BENCH_SCHEMA: {errors}")
    write_json_artifact("snapshot", report)

    assert report["fleet_size"] >= 256
    assert all(point["chain_identical"] for point in report["points"])
    assert report["equivalence"]["identical"], (
        f"delta-chain restore divergence: {report['equivalence']}")
    gate = report["gate"]
    assert gate["dirty_fraction"] <= 0.10
    assert gate["passed"], (
        f"delta capture {gate['speedup']:.2f}x / "
        f"{gate['bytes_reduction']:.1f}x bytes below the "
        f"{gate['speedup_threshold']:.1f}x / "
        f"{gate['bytes_threshold']:.1f}x gates at "
        f"{gate['dirty_fraction']:.0%} dirty, fleet size "
        f"{report['fleet_size']}")

    # Deterministic summary: chain identity and the point grid are
    # exact; wall-clock and byte ratios vary by host and live only in
    # BENCH_snapshot.json.
    rows = [["quantity", "value"],
            ["fleet size", str(report["fleet_size"])],
            ["RAM KB / member", str(report["ram_kb"])],
            ["shard workers", str(report["workers"])],
            ["chunk size (B)", str(report["chunk_size"])],
            ["timed rounds / point", str(report["rounds"])],
            ["gate dirty fraction", f"{gate['dirty_fraction']:.0%}"],
            ["points measured", str(len(report["points"]))],
            ["chains byte-identical",
             str(all(p["chain_identical"] for p in report["points"]))],
            ["restore equivalence clean",
             str(report["equivalence"]["identical"])]]
    table = render_table(rows, title="Delta checkpoints: dirty-chunk "
                                     "chains vs full snapshots")
    table += ("\n\nEach point captures the fleet twice per round -- a "
              "full snapshot and a delta against the previous "
              "checkpoint -- and refuses to report unless folding the "
              "delta chain reproduces the full document byte for "
              "byte.  The member-unique-content point is the honest "
              "floor: no cross-member dedup, only dirty-chunk "
              "selection.  Wall-clock figures (the >=3x / >=10x "
              "gates) live in BENCH_snapshot.json, which varies by "
              "host.")
    write_report("snapshot_engine", table)


def test_bench_snapshot_point(benchmark):
    """One small paired point under pytest-benchmark accounting."""
    point = benchmark.pedantic(
        lambda: perf_snapshot.measure_point(4, 16, 0.25, rounds=1,
                                            workers=2),
        rounds=1, iterations=1)
    assert point["chain_identical"]
    assert point["speedup"] > 0
