"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and writes
the rendered result to ``benchmarks/results/<name>.txt`` (also echoed to
stdout, visible with ``pytest -s``).  EXPERIMENTS.md records the
paper-vs-measured comparison these files feed.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_report(name: str, text: str) -> pathlib.Path:
    """Persist a rendered experiment report and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
    return path


def run_once(benchmark, fn):
    """Execute one experiment under pytest-benchmark accounting.

    Report-generating tests use this so they run (and are timed) in
    ``--benchmark-only`` mode: regenerating a paper table *is* the
    experiment.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
