"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures and writes
the rendered result to ``benchmarks/results/<name>.txt`` (also echoed to
stdout, visible with ``pytest -s``).  EXPERIMENTS.md records the
paper-vs-measured comparison these files feed.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repository root -- machine-readable artefacts (``BENCH_*.json``) land
#: here rather than in ``results/`` so tooling finds them at a fixed path.
REPO_ROOT = pathlib.Path(__file__).parent.parent


def write_report(name: str, text: str) -> pathlib.Path:
    """Persist a rendered experiment report and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
    return path


def write_json_artifact(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable ``BENCH_<name>.json`` at the repo root.

    Unlike the rendered ``results/*.txt`` tables (simulated-time numbers,
    stable across hosts), JSON artefacts may carry host wall-clock
    figures that vary run to run -- hence the separate location and the
    schema in :mod:`repro.obs.schema` instead of a golden file.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n=== BENCH_{name}.json -> {path} ===\n")
    return path


def run_once(benchmark, fn):
    """Execute one experiment under pytest-benchmark accounting.

    Report-generating tests use this so they run (and are timed) in
    ``--benchmark-only`` mode: regenerating a paper table *is* the
    experiment.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
