"""Table 3: hardware cost per component.

Prints the component table verbatim from the model (registers / LUTs /
EA-MPU rules, with the per-rule scaling of the EA-MPU), plus the rule-
count scaling sweep that the "116 registers, 182 LUTs per rule" figures
imply.
"""


from repro.core.analysis import render_table
from repro.hwcost import (HardwareCostModel, SISKIYOU_PEAK,
                          TABLE3_COMPONENTS)

from _report import run_once, write_report


def test_report_table3_components(benchmark):
    run_once(benchmark, lambda: None)
    rows = [["Component", "EA-MPU rules", "Registers", "LUTs"]]
    for component in TABLE3_COMPONENTS:
        if component.registers_per_rule:
            registers = (f"{component.registers} + "
                         f"{component.registers_per_rule}*#r")
            luts = f"{component.luts} + {component.luts_per_rule}*#r"
        else:
            registers = str(component.registers)
            luts = str(component.luts)
        rows.append([component.name, str(component.mpu_rules), registers,
                     luts])
    report = render_table(rows, title="Table 3: hardware cost per component")
    report += ("\n\nNote: Table 3 prints SW-clock at 2 rules and hardware "
               "clocks at 0; the Section 6.3 overhead arithmetic charges "
               "3 and 1 respectively -- the paper's own inconsistency, "
               "documented in EXPERIMENTS.md.  bench_overhead.py follows "
               "Section 6.3 (whose totals are self-consistent).")
    write_report("table3_components", report)
    assert SISKIYOU_PEAK.cost() == (5528, 14361)


def test_report_rule_scaling(benchmark):
    run_once(benchmark, lambda: None)
    model = HardwareCostModel()
    rows = [["#rules", "EA-MPU registers", "EA-MPU LUTs",
             "total registers", "total LUTs"]]
    for rules, mpu_reg, mpu_lut in model.rule_scaling(8):
        total = model.system_cost("x", rules=rules)
        rows.append([str(rules), str(mpu_reg), str(mpu_lut),
                     str(total.registers), str(total.luts)])
    write_report("table3_rule_scaling",
                 render_table(rows, title="EA-MPU cost vs configured rule "
                                          "count (#r)"))
    scaling = model.rule_scaling(8)
    assert scaling[1][1] - scaling[0][1] == 116
    assert scaling[1][2] - scaling[0][2] == 182


def test_bench_cost_model_evaluation(benchmark):
    model = HardwareCostModel()
    benchmark(lambda: [model.variant_overhead(kind)
                       for kind in ("hw64", "hw32div", "sw")])
