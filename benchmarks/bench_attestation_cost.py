"""Section 3.1 derived costs: the asymmetry that enables the DoS.

Regenerates:

* the memory-size sweep of attestation cost, anchored at the paper's
  headline "hashing 512 KB of RAM takes 754.032 ms";
* the request-validation costs per authentication scheme (Section 4.1:
  HMAC ~0.430 ms, Speck 0.015 ms, ECDSA 170.907 ms -- the public-key
  paradox);
* the end-to-end measurement on a simulated 512 KB prover device, which
  must agree with the analytic model.
"""

import pytest

from repro.core import build_session
from repro.core.analysis import render_table
from repro.crypto import CryptoCostModel
from repro.mcu import DeviceConfig
from repro.obs import Telemetry

from _report import run_once, write_report

MODEL = CryptoCostModel()

MEMORY_SWEEP_KB = [1, 4, 16, 64, 128, 256, 512]
SCHEMES = ["none", "speck-64/128-cbc-mac", "aes-128-cbc-mac", "hmac-sha1",
           "ecdsa-secp160r1"]


def test_report_memory_sweep(benchmark):
    run_once(benchmark, lambda: None)
    rows = [["memory", "attestation (ms)", "validations it equals (speck)"]]
    speck_ms = MODEL.request_validation_ms("speck-64/128-cbc-mac")
    for kb in MEMORY_SWEEP_KB:
        ms = MODEL.attestation_ms(kb * 1024, mode="exact")
        rows.append([f"{kb} KB", f"{ms:.3f}", f"{ms / speck_ms:,.0f}x"])
    report = render_table(rows, title="Attestation cost vs memory size "
                                      "(Section 3.1)")
    headline = MODEL.attestation_ms(512 * 1024, mode="exact")
    report += (f"\n\npaper headline: 754.032 ms for 512 KB; "
               f"model: {headline:.3f} ms")
    write_report("section31_attestation_cost", report)
    assert headline == pytest.approx(754.032, abs=1e-3)


def test_report_validation_costs(benchmark):
    run_once(benchmark, lambda: None)
    rows = [["auth scheme", "prover validation (ms)",
             "vs 512 KB attestation"]]
    attest_ms = MODEL.attestation_ms(512 * 1024)
    for scheme in SCHEMES:
        ms = MODEL.request_validation_ms(scheme)
        ratio = f"1:{attest_ms / ms:,.0f}" if ms else "free"
        rows.append([scheme, f"{ms:.3f}", ratio])
    report = render_table(rows, title="Request validation cost per scheme "
                                      "(Section 4.1)")
    ecdsa_vs_hmac = (MODEL.request_validation_ms("ecdsa-secp160r1")
                     / MODEL.request_validation_ms("hmac-sha1"))
    report += ("\n\nECDSA validation costs the prover "
               f"{ecdsa_vs_hmac:.0f}x "
               "an HMAC validation: authenticating requests with public-key "
               "crypto is itself a DoS vector (the Section 4.1 paradox).")
    write_report("section41_validation_costs", report)
    assert MODEL.request_validation_ms("speck-64/128-cbc-mac") < \
        MODEL.request_validation_ms("aes-128-cbc-mac") < \
        MODEL.request_validation_ms("hmac-sha1") < \
        MODEL.request_validation_ms("ecdsa-secp160r1")


@pytest.fixture(scope="module")
def paper_scale_session():
    """Paper-scale session observed through the telemetry subsystem:
    the Section 3.1 numbers below are read from the metrics registry,
    not from the anchor's private counters."""
    config = DeviceConfig(ram_size=512 * 1024, flash_size=16 * 1024,
                          app_size=2 * 1024)
    return build_session(device_config=config, telemetry=Telemetry(),
                         seed="bench-512k")


def test_bench_full_attestation_512kb(benchmark, paper_scale_session):
    """One full attestation round on the paper-scale device (simulated
    754 ms; the benchmark records the *simulator's* wall-clock)."""
    session = paper_scale_session

    def round_trip():
        return session.attest_once(settle_seconds=10.0)

    result = benchmark.pedantic(round_trip, rounds=1, iterations=1)
    assert result.authentic


def test_simulated_device_matches_analytic_model(benchmark, paper_scale_session):
    run_once(benchmark, lambda: None)
    session = paper_scale_session
    registry = session.telemetry.registry
    accepted = registry.value("prover.requests.accepted")
    attestation_cycles = registry.value("prover.attestation_cycles")
    assert accepted >= 1
    measured_ms = attestation_cycles / accepted / 24_000
    analytic_ms = MODEL.attestation_ms(session.device.writable_memory_bytes)
    report = (f"device-measured attestation: {measured_ms:.3f} ms "
              f"(from the metrics registry)\n"
              f"analytic model:              {analytic_ms:.3f} ms\n"
              f"(512 KB RAM + 16 KB flash prover; paper quotes 754.032 ms "
              f"for 512 KB alone)")
    write_report("section31_device_vs_model", report)
    assert measured_ms == pytest.approx(analytic_ms, rel=0.02)
    # The registry must reproduce the legacy per-anchor counters exactly.
    stats = session.anchor.stats
    assert accepted == stats.accepted
    assert attestation_cycles == stats.attestation_cycles
    assert registry.value("prover.validation_cycles") == \
        stats.validation_cycles


def test_trace_records_the_measurement(benchmark, paper_scale_session):
    """Every accepted round leaves a measurement-start/end event pair
    whose cycle delta matches the Table 1 headline cost."""
    run_once(benchmark, lambda: None)
    session = paper_scale_session
    if session.anchor.stats.accepted == 0:
        session.attest_once(settle_seconds=10.0)
    trace = session.telemetry.trace
    starts = trace.of_kind("measurement-start")
    ends = trace.of_kind("measurement-end")
    assert len(starts) == len(ends) == session.anchor.stats.accepted
    headline_ms = MODEL.attestation_ms(512 * 1024, mode="exact")
    for end in ends:
        assert end.fields["cycles"] / 24_000 >= headline_ms * 0.95
