"""Table 2: DoS attack mitigation features, derived by simulation.

Each cell is produced by actually running the attack (replay / reorder /
delay) against a live prover configured with the feature (nonce history /
counter / timestamp) and observing whether the prover performed
unauthorised attestation work.  The derived matrix is then compared
against Table 2 as printed.
"""

import pytest

from repro.attacks.scenarios import (TABLE2_EXPECTED, run_table2_matrix,
                                     _replay_cell)
from repro.core.analysis import render_table

from _report import run_once, write_report


@pytest.fixture(scope="module")
def matrix():
    return run_table2_matrix(seed="bench-table2")


def test_report_table2(benchmark, matrix):
    run_once(benchmark, lambda: None)
    rows = matrix.as_rows()
    report = render_table(rows, title="Table 2: attack vs freshness feature "
                                      "(yes = mitigated), derived by "
                                      "simulation")
    report += "\n\npaper Table 2 expectations: "
    report += "; ".join(f"{feature} stops {sorted(attacks)}"
                        for feature, attacks in TABLE2_EXPECTED.items())
    agreement = matrix.matches(TABLE2_EXPECTED)
    report += f"\nagreement with paper: {'EXACT' if agreement else 'MISMATCH'}"
    write_report("table2_mitigation_matrix", report)
    assert agreement


def test_report_table2_model_checked(benchmark):
    """Table 2 again, but justified by exhaustive schedule enumeration
    (every interleaving of deliveries, replays and drops of 3 genuine
    requests) instead of single scripted attacks."""
    from repro.core.modelcheck import table2_from_model_checking

    paper = run_once(benchmark,
                     lambda: table2_from_model_checking(
                         paper_assumptions=True))
    strict = table2_from_model_checking(paper_assumptions=False)
    rows = [["feature", "paper-assumption adversary",
             "unrestricted adversary"]]
    for feature in ("nonce", "counter", "timestamp"):
        rows.append([feature,
                     ", ".join(sorted(paper[feature])) or "-",
                     ", ".join(sorted(strict[feature])) or "-"])
    report = render_table(rows, title="Table 2 via exhaustive model "
                                      "checking (mitigated attacks)")
    report += ("\n\nUnder the paper's implicit assumption that replays "
               "arrive after the acceptance window, the model-checked "
               "matrix equals Table 2 exactly.  Against an unrestricted "
               "Dolev-Yao adversary the stateless timestamp scheme "
               "admits immediate-replay double acceptance; the 8-byte "
               "monotonic extension (ablation) closes it.")
    write_report("table2_model_checked", report)
    assert paper == TABLE2_EXPECTED
    assert "replay" not in strict["timestamp"]


def test_bench_one_cell(benchmark):
    """Wall-clock of deriving a single matrix cell (one full scenario)."""
    result = benchmark.pedantic(
        lambda: _replay_cell("counter", "hmac-sha1", seed="bench-cell"),
        rounds=1, iterations=1)
    assert result.mitigated


def test_every_cell_has_detail(benchmark, matrix):
    run_once(benchmark, lambda: None)
    for outcome in matrix.outcomes.values():
        assert outcome.detail
