"""Section 3.1 quantified: energy and CPU time stolen by request floods.

The paper's DoS argument in numbers: an attacker floods the prover with
forged attestation requests; we measure, per authentication scheme, the
prover's active CPU time, energy drain, and the share of its duty cycle
lost -- demonstrating that

* unauthenticated provers burn a full measurement per forged request;
* MAC-authenticated provers shrug the flood off at microjoule cost;
* ECDSA-authenticated provers are DoS-ed by their own defence
  (Section 4.1's paradox).
"""

import pytest

from repro.attacks.scenarios import run_dos_flood
from repro.core.analysis import render_table
from repro.mcu import DeviceConfig
from repro.obs import Telemetry

from _report import run_once, write_report

SCHEMES = ["none", "speck-64/128-cbc-mac", "hmac-sha1", "ecdsa-secp160r1"]
RATE = 0.5          # forged requests per second
DURATION = 60.0     # simulated seconds


def flood_device() -> DeviceConfig:
    return DeviceConfig(ram_size=16 * 1024, flash_size=32 * 1024,
                        app_size=4 * 1024)


@pytest.fixture(scope="module")
def flood_runs():
    """Per-scheme flood runs observed through a telemetry sink; the
    request counts below come out of the metrics registry."""
    runs = {}
    for scheme in SCHEMES:
        telemetry = Telemetry()
        result = run_dos_flood(auth_scheme=scheme, rate_per_second=RATE,
                               duration_seconds=DURATION,
                               device_config=flood_device(),
                               telemetry=telemetry, seed="bench-flood")
        runs[scheme] = (result, telemetry)
    return runs


@pytest.fixture(scope="module")
def results(flood_runs):
    return {scheme: result for scheme, (result, _) in flood_runs.items()}


def test_report_flood_impact(benchmark, results, flood_runs):
    run_once(benchmark, lambda: None)
    rows = [["auth scheme", "forged reqs", "accepted", "rejected",
             "CPU busy (s)", "duty %", "energy (mJ)"]]
    for scheme in SCHEMES:
        r = results[scheme]
        registry = flood_runs[scheme][1].registry
        accepted = registry.value("prover.requests.accepted")
        rejected = registry.total("prover.requests.rejected")
        # The registry is the source of the table and must agree with
        # the scenario's own bookkeeping.
        assert accepted == r.accepted
        assert rejected == r.rejected
        assert registry.value("prover.requests.received") >= r.requests_sent
        rows.append([scheme, str(r.requests_sent), str(accepted),
                     str(rejected), f"{r.active_seconds:.3f}",
                     f"{100 * r.duty_fraction:.3f}",
                     f"{r.energy_mj:.4f}"])
    report = render_table(
        rows, title=f"Forged-request flood ({RATE}/s for {DURATION:.0f} s "
                    f"simulated) vs request authentication")
    none, speck = results["none"], results["speck-64/128-cbc-mac"]
    ecdsa = results["ecdsa-secp160r1"]
    report += (
        f"\n\nshape checks:\n"
        f"  unauthenticated prover: every forgery measured "
        f"({none.accepted}/{none.requests_sent} accepted)\n"
        f"  speck-MAC prover: flood rejected at "
        f"{speck.active_seconds / speck.requests_sent * 1000:.3f} ms/req\n"
        f"  ecdsa prover: rejecting the same flood cost "
        f"{ecdsa.active_seconds / speck.active_seconds:.0f}x the speck "
        f"prover's CPU time -- the Section 4.1 paradox")
    write_report("section31_dos_flood", report)
    assert none.accepted == none.requests_sent
    assert speck.accepted == 0 and ecdsa.accepted == 0
    assert none.active_seconds > 10 * speck.active_seconds
    assert ecdsa.active_seconds > 100 * speck.active_seconds


def test_report_rate_sweep(benchmark):
    """Duty fraction vs flood rate for the unauthenticated prover."""
    run_once(benchmark, lambda: None)
    rows = [["rate (req/s)", "duty %", "energy (mJ)"]]
    for rate in (0.1, 0.25, 0.5, 1.0):
        r = run_dos_flood(auth_scheme="none", rate_per_second=rate,
                          duration_seconds=40.0,
                          device_config=flood_device(),
                          seed=f"bench-sweep-{rate}")
        rows.append([f"{rate}", f"{100 * r.duty_fraction:.2f}",
                     f"{r.energy_mj:.4f}"])
    write_report("section31_rate_sweep",
                 render_table(rows, title="Unauthenticated prover: duty "
                                          "cycle stolen vs flood rate"))


def test_battery_depletion_estimate(benchmark, results):
    """Project flood energy onto a coin-cell lifetime."""
    run_once(benchmark, lambda: None)
    none = results["none"]
    speck = results["speck-64/128-cbc-mac"]
    capacity_mj = 620 * 3 * 3.6 * 1000   # CR2450-ish
    per_day_none = none.energy_mj * (86_400 / none.duration_seconds)
    per_day_speck = speck.energy_mj * (86_400 / speck.duration_seconds)
    report = (
        f"battery: {capacity_mj / 1000:.0f} J\n"
        f"flood at {RATE}/s sustained for a day drains:\n"
        f"  unauthenticated prover: {per_day_none / 1000:.1f} J/day "
        f"(battery dead in {capacity_mj / per_day_none:.0f} days)\n"
        f"  speck-MAC prover:       {per_day_speck / 1000:.2f} J/day "
        f"(battery lasts {capacity_mj / per_day_speck:.0f} days)")
    write_report("section31_battery_depletion", report)
    assert per_day_none > 5 * per_day_speck


def test_report_flood_deadline_impact(benchmark):
    """Section 3.1's second cost: control deadlines missed under the
    flood, measured by running the prover's actual attestation busy
    intervals through the cooperative executive (10 Hz task, 10 ms job,
    on a 128 KB prover whose measurement spans periods)."""
    run_once(benchmark, lambda: None)
    from repro.attacks.scenarios import run_flood_task_impact

    big = DeviceConfig(ram_size=64 * 1024, flash_size=64 * 1024,
                       app_size=8 * 1024)
    rows = [["auth scheme", "jobs released", "met", "skipped", "miss %"]]
    impacts = {}
    for scheme in ("none", "speck-64/128-cbc-mac"):
        impact = run_flood_task_impact(
            auth_scheme=scheme, rate_per_second=RATE,
            duration_seconds=30.0,
            device_config=DeviceConfig(ram_size=big.ram_size,
                                       flash_size=big.flash_size,
                                       app_size=big.app_size),
            seed="bench-flood-task")
        impacts[scheme] = impact
        rows.append([scheme, str(impact.released), str(impact.met),
                     str(impact.skipped),
                     f"{100 * impact.miss_ratio:.2f}"])
    report = render_table(
        rows, title=f"Control-task deadlines under a {RATE}/s forged "
                    f"flood (128 KB prover, 10 Hz task)")
    report += ("\n\nEvery accepted forgery blanks consecutive control "
               "periods; request authentication restores a clean "
               "schedule.  This is the 'takes Prv away from performing "
               "its primary tasks' half of Section 3.1, measured by "
               "execution.")
    write_report("section31_flood_deadlines", report)
    assert impacts["none"].skipped > 0
    assert impacts["speck-64/128-cbc-mac"].skipped == 0


def test_bench_flood_simulation(benchmark):
    result = benchmark.pedantic(
        lambda: run_dos_flood(auth_scheme="speck-64/128-cbc-mac",
                              rate_per_second=1.0, duration_seconds=10.0,
                              device_config=flood_device(),
                              seed="bench-flood-wallclock"),
        rounds=1, iterations=1)
    assert result.requests_sent > 0
