"""Host wall-clock trajectory of the measurement engine.

Unlike every other benchmark in this directory, the numbers here are
*host* seconds, not simulated milliseconds: the paper's 754 ms for a
512 KB measurement (Table 1 / Section 3.1) comes from the cycle-cost
model and is asserted elsewhere.  This file tracks how fast the *host*
re-executes that measurement -- the quantity that bounds experiment
turnaround -- and proves the fast engines buy that speed without
touching a single simulated number.

Artefacts:

* ``BENCH_wallclock.json`` at the repository root (schema
  ``repro.perf.wallclock/v1``, validated by ``scripts/perf_smoke.py``);
* ``benchmarks/results/wallclock_trajectory.txt``, the human-readable
  rendering.

Acceptance gates asserted here:

* >= 3x host speedup of the default engine over the naive reference on
  the 512 KB measurement;
* the paired fast/naive equivalence block is clean (identical digests,
  response MACs, consumed cycles, stats, telemetry).
"""

from repro import fastpath
from repro.core.analysis import render_table
from repro.obs.schema import validate_wallclock_report
from repro.perf.wallclock import build_report

from _report import run_once, write_json_artifact, write_report

#: The paper's headline measurement size (512 KB RAM, Section 3.1).
HEADLINE_KB = 512


def test_report_wallclock_trajectory(benchmark):
    run_once(benchmark, lambda: None)
    report = build_report(naive_kb=HEADLINE_KB)

    assert not validate_wallclock_report(report)

    rows = [["ram (KB)", "engine", "seconds", "MB/s"]]
    for entry in report["sweep"]:
        rows.append([str(entry["ram_kb"]), entry["engine"],
                     f"{entry['seconds']:.4f}", f"{entry['mb_per_s']:.1f}"])
    naive = report["naive_baseline"]
    rows.append([str(naive["ram_kb"]), naive["engine"],
                 f"{naive['seconds']:.4f}", f"{naive['mb_per_s']:.1f}"])
    speedup = report["speedup"]
    cache = report["hmac_cache"]
    equivalence = report["equivalence"]
    rows.append(["", "", "", ""])
    rows.append([f"speedup @{speedup['ram_kb']}KB",
                 f"{report['engine_default']} vs naive",
                 f"{speedup['factor']:.1f}x", ""])
    rows.append(["hmac midstate cache", "warm vs cold",
                 f"{cache['speedup']:.2f}x", ""])
    rows.append(["fast/naive equivalence", "",
                 "clean" if equivalence["identical"] else "BROKEN", ""])
    write_report("wallclock_trajectory",
                 render_table(rows, title="Host wall-clock trajectory "
                                          "(NOT simulated time)"))
    write_json_artifact("wallclock", report)

    assert report["engine_default"] == fastpath.engine()
    assert equivalence["identical"], (
        "fast engines changed observable outputs: "
        f"{equivalence['engines']}")
    assert speedup["factor"] >= 3.0, (
        f"host speedup regressed below 3x at {HEADLINE_KB} KB: "
        f"{speedup['factor']:.2f}x")
