"""Section 6.3: overhead of the Adv_roam countermeasures.

Regenerates every number in the overhead paragraphs:

* baseline system: 6038 registers / 15142 LUTs;
* 64-bit clock: +180 registers (2.98 %), +246 LUTs (1.62 %);
* 32-bit clock + divider: +148 (2.45 %), +214 (1.41 %);
* SW-clock: +348 (5.76 %), +546 (3.61 %);
* clock wrap-around analysis: 64-bit -> 24 372.6 years; bare 32-bit ->
  ~3 minutes; 32-bit / 2^20 -> ~6 years at ~44 ms resolution.
"""

import pytest

from repro.core.analysis import render_table
from repro.hwcost import HardwareCostModel, wraparound_seconds

from _report import run_once, write_report

PAPER_OVERHEADS = {
    "hw64": (180, 2.98, 246, 1.62),
    "hw32div": (148, 2.45, 214, 1.41),
    "sw": (348, 5.76, 546, 3.61),
}


@pytest.fixture(scope="module")
def model():
    return HardwareCostModel()


def test_report_overheads(benchmark, model):
    run_once(benchmark, lambda: None)
    base = model.baseline()
    rows = [["variant", "+registers", "reg %", "+LUTs", "LUT %",
             "paper (+reg/%/+lut/%)"]]
    agree = True
    for kind, paper in PAPER_OVERHEADS.items():
        o = model.variant_overhead(kind)
        p_reg, p_reg_pct, p_lut, p_lut_pct = paper
        agree &= (o.extra_registers == p_reg and o.extra_luts == p_lut
                  and abs(o.register_overhead_percent - p_reg_pct) < 0.01
                  and abs(o.lut_overhead_percent - p_lut_pct) < 0.01)
        rows.append([kind, str(o.extra_registers),
                     f"{o.register_overhead_percent:.2f}",
                     str(o.extra_luts), f"{o.lut_overhead_percent:.2f}",
                     f"{p_reg}/{p_reg_pct}/{p_lut}/{p_lut_pct}"])
    report = render_table(
        rows, title=f"Section 6.3 overheads over the baseline "
                    f"({base.registers} reg / {base.luts} LUTs)")
    report += f"\nagreement with paper: {'EXACT' if agree else 'MISMATCH'}"
    write_report("section63_overheads", report)
    assert agree
    assert base.registers == 6038 and base.luts == 15142


def test_report_clock_tradeoffs(benchmark, model):
    run_once(benchmark, lambda: None)
    rows = [["clock", "resolution", "wrap-around", "registers"]]
    configs = [("64-bit / 1", 64, 1), ("32-bit / 1", 32, 1),
               ("32-bit / 2^20", 32, 1 << 20), ("48-bit / 2^10", 48, 1 << 10)]
    for name, width, divider in configs:
        t = model.clock_tradeoff(width, divider)
        resolution = t["resolution_seconds"]
        res_text = (f"{resolution * 1e9:.0f} ns" if resolution < 1e-6
                    else f"{resolution * 1e3:.1f} ms"
                    if resolution < 1 else f"{resolution:.1f} s")
        wrap = t["wraparound_seconds"]
        wrap_text = (f"{wrap:.0f} s" if wrap < 3600
                     else f"{t['wraparound_years']:.1f} years")
        rows.append([name, res_text, wrap_text, str(t["registers"])])
    report = render_table(rows, title="Clock width/divider trade-off "
                                      "(Section 6.3)")
    report += ("\n\npaper: 64-bit wraps after 24,372.6 years; bare 32-bit "
               "after ~3 minutes; /2^20 divider stretches 32-bit to ~6 "
               "years at 42-44 ms resolution")
    write_report("section63_clock_tradeoffs", report)
    assert model.clock_tradeoff(64)["wraparound_years"] == \
        pytest.approx(24372.6, rel=1e-3)
    assert 170 < wraparound_seconds(32) < 190
    assert 5.5 < model.clock_tradeoff(32, 1 << 20)["wraparound_years"] < 6.5


def test_report_clock_recommendations(benchmark, model):
    """The Section 6.3 trade-off automated: cheapest protected clock
    meeting a (lifetime, resolution) requirement."""
    run_once(benchmark, lambda: None)
    rows = [["requirement", "width", "divider", "wrap-around",
             "+registers", "overhead %"]]
    specs = [("1 y @ 100 ms", 1.0, 0.1),
             ("5 y @ 50 ms", 5.0, 0.05),
             ("6 y @ 50 ms", 6.0, 0.05),
             ("20 y @ 1 ms", 20.0, 0.001),
             ("25000 y @ 1 us", 25_000.0, 1e-6)]
    for label, years, resolution in specs:
        choice = model.recommend_clock(lifetime_years=years,
                                       resolution_seconds=resolution)
        rows.append([label, str(choice["width_bits"]),
                     f"2^{choice['divider'].bit_length() - 1}"
                     if choice["divider"] > 1 else "1",
                     f"{choice['wraparound_years']:.1f} y",
                     str(choice["extra_registers"]),
                     f"{choice['register_overhead_percent']:.2f}"])
    report = render_table(rows, title="Protected-clock design-space "
                                      "search (cheapest register meeting "
                                      "the spec)")
    report += ("\n\nNote the 5 y -> 6 y cliff: the paper's 32-bit / 2^20 "
               "configuration wraps at 5.95 years, so one more year of "
               "deployment life forces a wider register -- the kind of "
               "boundary Table 3's per-rule economics make visible.")
    write_report("section63_clock_recommendations", report)
    five = model.recommend_clock(lifetime_years=5, resolution_seconds=0.05)
    six = model.recommend_clock(lifetime_years=6, resolution_seconds=0.05)
    assert five["width_bits"] == 32 and six["width_bits"] > 32


def test_bench_overhead_model(benchmark, model):
    benchmark(model.all_overheads)
