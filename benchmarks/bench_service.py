"""Verifier-service load benchmark (ROADMAP service tier).

Section 3.1's asymmetry at operational scale: one verifier host
multiplexes a whole fleet of simulated 24 MHz provers through
``repro.services.attestd``, so the interesting numbers are host-side --
how many sessions per second the service sustains, where the p99
request latency sits as offered load grows, and how many requests the
per-tenant duty-cycle budget turns away before any prover pays for
them.

Writes ``BENCH_service.json`` (schema-checked against SERVICE_SCHEMA)
and gates on the acceptance criteria: a load point with >= 1000
sessions concurrently in flight, and the serviced path byte-identical
to the sequential library path at ``workers=1``.  The rendered
``results/`` table carries only deterministic fields (admission
arithmetic, verdict counts), never wall-clock numbers.
"""

from repro.core.analysis import render_table
from repro.obs.schema import validate_service_report
from repro.perf import service as perf_service

from _report import run_once, write_json_artifact, write_report


def test_report_service_load(benchmark):
    run_once(benchmark, lambda: None)
    report = perf_service.build_report()
    errors = validate_service_report(report)
    assert not errors, f"BENCH_service.json fails SERVICE_SCHEMA: {errors}"
    write_json_artifact("service", report)

    assert report["gate"]["passed"], (
        f"peak in-flight {report['gate']['max_peak_in_flight']} below "
        f"the {report['gate']['required_in_flight']}-session gate")
    assert report["equivalence"]["identical"], (
        f"serviced/sequential divergence: "
        f"{report['equivalence']['mismatched_fields']}")

    # Deterministic summary: admission arithmetic replays exactly from
    # the seeds; wall-clock figures stay in the JSON artefact.
    rows = [["load point", "offered", "admitted", "rejected",
             "peak in flight"]]
    for label, point in zip(("paced", "overload", "burst"),
                            report["points"]):
        rows.append([label, str(point["offered"]), str(point["admitted"]),
                     str(point["rejected"]), str(point["peak_in_flight"])])
    table = render_table(rows, title="Admission control vs offered load "
                                     f"({report['size']} devices, "
                                     f"{report['tenants']} tenants)")
    table += ("\n\nThe duty-cycle budget is enforced before any prover "
              "cycle is spent: every rejected request above cost the "
              "verifier a token-bucket subtraction and the fleet "
              "nothing -- Section 3.1's defence, moved to the front "
              "door.")
    write_report("service_admission", table)
    overload = report["points"][1]
    assert overload["rejected"] > 0, (
        "overload point admitted everything; duty budget not binding")
