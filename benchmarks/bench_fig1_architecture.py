"""Figure 1: the two prototype architectures, validated by execution.

Figure 1 is a block diagram, not a data plot, so its reproduction is a
checklist of the access-control invariants it depicts, each exercised on
the live simulator:

Figure 1a (base version, wide hardware clock):
  a1. K_Attest readable by Code_Attest, by nobody else;
  a2. counter_R writable by Code_Attest, by nobody else;
  a3. the clock register is readable by all, writable by none;
  a4. the EA-MPU configuration is locked by its own rule (irreversibly).

Figure 1b (advanced version, SW-clock):
  b1. Clock_LSB wrap-around raises the interrupt (1);
  b2. the immutable interrupt engine routes it to Code_Clock (2);
  b3. Code_Clock maintains Clock_MSB so MSB+LSB track real time (3);
  b4. the IDT is read-only to all software;
  b5. Clock_MSB is writable only by Code_Clock;
  b6. the interrupt mask register cannot be used to silence the wrap IRQ.
"""

import pytest

from repro.core.analysis import render_table
from repro.errors import MemoryAccessViolation
from repro.mcu import Device, DeviceConfig, MMIO_BASE, ROAM_HARDENED

from _report import run_once, write_report


def build(clock_kind):
    device = Device(DeviceConfig(ram_size=8 * 1024, flash_size=16 * 1024,
                                 app_size=2 * 1024, clock_kind=clock_kind))
    device.provision(b"K" * 16)
    device.boot(ROAM_HARDENED)
    return device


def denied(fn) -> bool:
    try:
        fn()
        return False
    except MemoryAccessViolation:
        return True


@pytest.fixture(scope="module")
def checklist():
    results = []

    # ---------------- Figure 1a ----------------
    dev = build("hw64")
    attest = dev.context("Code_Attest")
    malware = dev.make_malware_context()

    results.append(("1a", "K_Attest readable only by Code_Attest",
                    dev.read_key(attest) == b"K" * 16
                    and denied(lambda: dev.read_key(malware))))
    dev.write_counter(attest, 3)
    results.append(("1a", "counter_R writable only by Code_Attest",
                    dev.read_counter(attest) == 3
                    and denied(lambda: dev.write_counter(malware, 0))))
    dev.idle_seconds(0.01)
    base = dev.clock_register_span[0]
    results.append(("1a", "clock readable by all, writable by none",
                    dev.read_clock_ticks(malware) > 0
                    and denied(lambda: dev.bus.write(malware, base, b"\x00"))
                    and denied(lambda: dev.bus.write(attest, base, b"\x00"))))
    results.append(("1a", "EA-MPU locked down irreversibly",
                    denied(lambda: dev.bus.write(malware, MMIO_BASE, b"\x00"))
                    and denied(lambda: dev.bus.write(attest, MMIO_BASE,
                                                     b"\x00"))))
    from repro.errors import EntryPointViolation

    def jump_into_attest():
        try:
            with dev.cpu.running(attest, entry=attest.code_start + 0x40):
                pass
            return False
        except EntryPointViolation:
            return True

    results.append(("1a", "Code_Attest enterable only at its entry point",
                    jump_into_attest()))

    # ---------------- Figure 1b ----------------
    dev = build("sw")
    attest = dev.context("Code_Attest")
    malware = dev.make_malware_context()

    wraps_before = dev.clock.wraps_serviced
    dev.idle_seconds(0.01)   # 240k cycles; 16-bit LSB wraps ~3 times
    results.append(("1b", "(1) Clock_LSB wrap raises the interrupt",
                    dev.clock.wraps_signalled > 0))
    results.append(("1b", "(2) interrupt engine dispatches to Code_Clock",
                    dev.clock.wraps_serviced > wraps_before
                    and any(entry[2] == "Code_Clock"
                            for entry in dev.interrupts.dispatch_log)))
    expected = dev.cpu.cycle_count
    results.append(("1b", "(3) Clock_MSB+Clock_LSB track real time",
                    abs(dev.read_clock_ticks(attest) - expected) <= 1 << 16))
    results.append(("1b", "IDT read-only to all software",
                    denied(lambda: dev.bus.write_u32(malware, dev.idt_base,
                                                     0xDEAD))))
    results.append(("1b", "Clock_MSB writable only by Code_Clock",
                    denied(lambda: dev.bus.write_u64(
                        malware, dev.clock_msb_address, 0))))
    results.append(("1b", "wrap IRQ cannot be masked",
                    denied(lambda: dev.bus.write(malware,
                                                 MMIO_BASE + 0x1100,
                                                 b"\x00"))))
    return results


def test_report_figure1(benchmark, checklist):
    run_once(benchmark, lambda: None)
    rows = [["fig", "invariant", "holds"]]
    for figure, invariant, holds in checklist:
        rows.append([figure, invariant, "yes" if holds else "NO"])
    write_report("figure1_architecture",
                 render_table(rows, title="Figure 1 architecture invariants "
                                          "(executed on the simulator)"))
    assert all(holds for _, _, holds in checklist)


def test_bench_boot_hardened(benchmark):
    """Wall-clock cost of building + secure-booting a hardened device."""
    benchmark.pedantic(lambda: build("sw"), rounds=3, iterations=1)
