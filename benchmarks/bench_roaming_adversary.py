"""Section 5: the roaming adversary against the protection ladder.

Regenerates the paper's security results as a grid: for each protection
profile (baseline / ext-hardened / roam-hardened), each Adv_roam strategy
(counter rollback, clock reset) and each clock design (Figure 1a wide
hardware register, Figure 1b SW-clock), run the full three-phase attack
and report DoS success and after-the-fact detectability.

Expected shape (all derived, then asserted):

* baseline falls to both strategies; the counter rollback is
  *undetectable*, the clock reset leaves the clock behind (Section 5's
  "two subtle differences");
* ext-hardened (protected counter) stops the rollback but not the clock
  reset;
* roam-hardened stops everything on every clock design (Section 6).
"""

import pytest

from repro.attacks.scenarios import run_roaming_attack, run_roaming_suite
from repro.core.analysis import render_table
from repro.mcu import BASELINE

from _report import run_once, write_report


@pytest.fixture(scope="module")
def records():
    return run_roaming_suite(clock_kinds=("hw64", "sw"),
                             seed="bench-roaming")


def test_report_roaming_grid(benchmark, records):
    run_once(benchmark, lambda: None)
    rows = [["strategy", "freshness", "profile", "clock", "DoS",
             "detectable", "denied operations"]]
    for r in records:
        rows.append([
            r.strategy, r.policy, r.profile, r.clock_kind,
            "SUCCEEDS" if r.dos_succeeded else "blocked",
            {True: "yes", False: "no"}[r.detectable],
            ",".join(r.outcome.compromise.denied) or "-",
        ])
    report = render_table(rows, title="Section 5/6: roaming adversary vs "
                                      "protection profiles (derived)")
    report += ("\n\npaper claims reproduced:\n"
               "  - counter rollback on unprotected state: DoS succeeds, "
               "undetectable after the fact\n"
               "  - clock reset on unprotected clock: DoS succeeds, but "
               "the prover's clock remains behind (evidence)\n"
               "  - EA-MPU protection of counter_R / clock (either "
               "design): both attacks blocked")
    write_report("section5_roaming_adversary", report)

    by_profile = {}
    for r in records:
        by_profile.setdefault(r.profile, []).append(r)
    assert all(r.dos_succeeded for r in by_profile["baseline"])
    assert all(not r.dos_succeeded for r in by_profile["roam-hardened"])
    ext = {r.strategy: r.dos_succeeded for r in by_profile["ext-hardened"]}
    assert not ext["counter-rollback"] and ext["clock-reset"]
    for r in records:
        if r.dos_succeeded:
            assert r.detectable == (r.strategy == "clock-reset")


def test_report_wasted_work(benchmark, records):
    run_once(benchmark, lambda: None)
    successes = [r for r in records if r.dos_succeeded]
    rows = [["attack", "prover cycles wasted", "ms at 24 MHz"]]
    for r in successes:
        cycles = r.outcome.prover_wasted_cycles
        rows.append([f"{r.strategy} ({r.profile}/{r.clock_kind})",
                     f"{cycles:,}", f"{cycles / 24_000:.1f}"])
    write_report("section5_wasted_work",
                 render_table(rows, title="Prover work stolen per "
                                          "successful replay"))
    assert all(r.outcome.prover_wasted_cycles > 0 for r in successes)


def test_report_key_forgery_ladder(benchmark):
    """Section 5's key-protection requirement as its own ladder: with a
    stolen key the adversary forges fresh requests, so freshness state
    protection alone is worthless; and EA-MPU key rules themselves
    depend on entry-point enforcement (Section 6.2)."""
    run_once(benchmark, lambda: None)
    from repro.attacks.roaming import RoamingAdversary
    from repro.core import build_session
    from repro.mcu import DeviceConfig, ROAM_HARDENED, UNPROTECTED

    def attack(profile, enforce):
        config = DeviceConfig(ram_size=16 * 1024, flash_size=32 * 1024,
                              app_size=4 * 1024,
                              enforce_entry_points=enforce)
        session = build_session(profile=profile, policy_name="counter",
                                device_config=config,
                                seed=f"bench-forge-{profile.name}-{enforce}")
        session.sim.run(until=60.0)
        session.attest_once()
        lag = session.sim.now - session.device.cpu.elapsed_seconds
        if lag > 0:
            session.device.idle_seconds(lag)
        return RoamingAdversary(session).execute("key-forgery")

    rows = [["configuration", "key stolen via", "forged attreq accepted"]]
    cases = [("no protection", UNPROTECTED, True),
             ("EA-MPU rules, single-entry core", ROAM_HARDENED, True),
             ("EA-MPU rules, no entry enforcement", ROAM_HARDENED, False)]
    outcomes = {}
    for label, profile, enforce in cases:
        outcome = attack(profile, enforce)
        outcomes[label] = outcome
        if outcome.compromise.key_extracted:
            via = "direct read"
        elif outcome.compromise.key_extracted_via_code_reuse:
            via = "code-reuse jump"
        else:
            via = "-- (blocked)"
        rows.append([label, via,
                     "YES" if outcome.dos_succeeded else "no"])
    report = render_table(rows, title="Key-forgery ladder (Section 5 / "
                                      "Section 6.2)")
    report += ("\n\nWith K_Attest in hand the adversary mints authentic "
               "requests with arbitrary freshness fields -- no rollback, "
               "no clock tampering, no trace.  The EA-MPU read rule is "
               "only as strong as the guarantee that Code_Attest cannot "
               "be entered past its validation prologue: 'limiting code "
               "entry points' (Section 6.2) is load-bearing, not an "
               "aside.")
    write_report("section5_key_forgery", report)
    assert outcomes["no protection"].dos_succeeded
    assert not outcomes["EA-MPU rules, single-entry core"].dos_succeeded
    assert outcomes["EA-MPU rules, no entry enforcement"].dos_succeeded


def test_bench_one_roaming_attack(benchmark):
    record = benchmark.pedantic(
        lambda: run_roaming_attack(strategy="counter-rollback",
                                   policy="counter", profile=BASELINE,
                                   seed="bench-roam-one"),
        rounds=1, iterations=1)
    assert record.dos_succeeded
