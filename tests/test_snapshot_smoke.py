"""Tier-1 wiring for ``scripts/snapshot_smoke.py``.

Runs the smoke script exactly as CI would (a subprocess with only
``PYTHONPATH=src``) so a broken checkpoint path -- a restore that
drifts from the uninterrupted run, a replay that loses prefix
exactness, or a snapshot that stops deduplicating -- fails the suite,
not just a manual run.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "scripts" / "snapshot_smoke.py"
ENV = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}


def run_smoke(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, env=ENV)


class TestSnapshotSmokeScript:
    def test_default_gates_pass(self):
        proc = run_smoke()
        assert proc.returncode == 0, proc.stderr
        assert "snapshot-smoke: OK" in proc.stderr
        assert "restore == uninterrupted" in proc.stderr
