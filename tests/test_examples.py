"""Smoke tests keeping the example scripts green.

Each example is imported and its ``main()`` run in-process with stdout
captured; the assertions pin the headline facts each demo exists to show.
The two slowest demos (DoS flood, full roaming narrative) are exercised
by the benchmark harness instead.
"""

import importlib.util
import pathlib
import sys


EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestQuickstart:
    def test_runs_and_attests(self, capsys):
        out = run_example("quickstart", capsys)
        assert "trusted=True" in out
        assert "golden state digest" in out
        assert "EA-MPU rules" in out


class TestFreshnessModelChecking:
    def test_reproduces_table2_and_gap(self, capsys):
        out = run_example("freshness_model_checking", capsys)
        assert "delay, reorder, replay" in out          # paper matrix
        assert "timestamp+monotonic" in out
        assert "accepted 2 times" in out                # the witness


class TestClockDesignExplorer:
    def test_costs_and_functional_checks(self, capsys):
        out = run_example("clock_design_explorer", capsys)
        assert "6038" in out                 # baseline registers
        assert "5.76" in out                 # SW-clock overhead %
        assert "write denied by EA-MPU" in out
        assert "WRITABLE (!!)" not in out


class TestSoftwareAttestationPitfall:
    def test_direct_works_network_fails(self, capsys):
        out = run_example("software_attestation_pitfall", capsys)
        assert "REJECT (timing!)" in out
        assert "hardware anchor" in out


class TestIncidentResponse:
    def test_full_incident_lifecycle(self, capsys):
        out = run_example("incident_response", capsys)
        assert "alarm" in out
        assert "state-digest: attested memory differs" in out
        assert "clock within tolerance" in out   # healthy clock not flagged
        assert "changed" in out                  # implant localised
        assert "recovered" in out
        assert "incident closed" in out
