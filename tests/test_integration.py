"""Cross-module integration: full paper narratives end-to-end."""

import pytest

from repro.attacks.roaming import RoamingAdversary
from repro.core import build_session
from repro.mcu import BASELINE, DeviceConfig, ROAM_HARDENED, UNPROTECTED
from repro.services.codeupdate import UpdateAuthority, UpdateManager
from repro.services.erasure import ErasureManager, ErasureVerifier
from repro.mcu.firmware import FirmwareModule
from tests.conftest import tiny_config


class TestFullPaperNarrative:
    """Section 5's story, start to finish, on one deployment."""

    def test_counter_rollback_story(self):
        # 1. Deploy a baseline (trusted-verifier-only) prover.
        session = build_session(profile=BASELINE, policy_name="counter",
                                device_config=tiny_config(),
                                seed="narrative-1")
        golden = session.learn_reference_state()
        session.sim.run(until=60.0)

        # 2. A genuine attestation round succeeds.
        assert session.attest_once().trusted
        accepted_after_genuine = session.anchor.stats.accepted

        # 3. Adv_roam records it, compromises, rolls the counter back,
        #    erases itself, and replays.
        lag = session.sim.now - session.device.cpu.elapsed_seconds
        if lag > 0:
            session.device.idle_seconds(lag)
        adversary = RoamingAdversary(session)
        outcome = adversary.execute("counter-rollback",
                                    golden_digest=golden)

        # 4. The DoS succeeded and left no trace.
        assert outcome.dos_succeeded
        assert session.anchor.stats.accepted == accepted_after_genuine + 1
        assert not outcome.detectable_after_fact

        # 5. Even post-attack, the verifier still trusts the prover --
        #    the attack is invisible to attestation itself.
        assert session.attest_once().trusted

    def test_hardened_deployment_resists(self):
        session = build_session(profile=ROAM_HARDENED,
                                policy_name="counter",
                                device_config=tiny_config(),
                                seed="narrative-2")
        golden = session.learn_reference_state()
        session.sim.run(until=60.0)
        session.attest_once()
        lag = session.sim.now - session.device.cpu.elapsed_seconds
        if lag > 0:
            session.device.idle_seconds(lag)
        outcome = RoamingAdversary(session).execute(
            "counter-rollback", golden_digest=golden)
        assert not outcome.dos_succeeded
        assert session.attest_once().trusted


class TestServicesOnOneDevice:
    """Attestation, update, and erasure sharing one trust anchor."""

    def test_update_then_attest(self):
        session = build_session(device_config=tiny_config(),
                                seed="integration-svc")
        session.learn_reference_state()
        assert session.attest_once().state_known_good

        authority = UpdateAuthority(session.key)
        manager = UpdateManager(session.device)
        module = FirmwareModule("app", 2048, version=2)
        receipt = manager.apply(authority.package(module))

        # Old reference no longer matches ...
        result = session.attest_once()
        assert result.authentic
        assert result.state_known_good is False

        # ... until the verifier learns the post-update state.
        attest_ctx = session.device.context("Code_Attest")
        session.verifier.learn_reference(
            session.device.digest_writable_memory(attest_ctx))
        assert session.attest_once().state_known_good

    def test_erase_then_attest_reflects_wipe(self):
        session = build_session(device_config=tiny_config(),
                                seed="integration-erase")
        device = session.device
        device.ram.load(device.data_base - device.ram.start, b"\xAB" * 256)
        session.learn_reference_state()
        assert session.attest_once().state_known_good

        verifier = ErasureVerifier(session.key)
        manager = ErasureManager(device)
        request = verifier.order(device.data_base, 256)
        proof = manager.handle(request)
        assert verifier.check_proof(request, proof)

        result = session.attest_once()
        assert result.authentic
        assert result.state_known_good is False  # state changed, as it must


class TestScaleAndVariants:
    @pytest.mark.parametrize("clock_kind", ["hw64", "hw32div", "sw"])
    def test_roaming_resistance_across_clock_designs(self, clock_kind):
        session = build_session(
            profile=ROAM_HARDENED, policy_name="timestamp",
            device_config=tiny_config(clock_kind=clock_kind),
            timestamp_window_seconds=1.0,
            seed=f"integration-{clock_kind}")
        session.sim.run(until=60.0)
        session.attest_once()
        lag = session.sim.now - session.device.cpu.elapsed_seconds
        if lag > 0:
            session.device.idle_seconds(lag)
        outcome = RoamingAdversary(session).execute("clock-reset")
        assert not outcome.dos_succeeded

    def test_unprotected_device_fully_owned(self):
        session = build_session(profile=UNPROTECTED, policy_name="counter",
                                device_config=tiny_config(),
                                seed="integration-unprot")
        session.sim.run(until=60.0)
        session.attest_once()
        lag = session.sim.now - session.device.cpu.elapsed_seconds
        if lag > 0:
            session.device.idle_seconds(lag)
        outcome = RoamingAdversary(session).execute("counter-rollback")
        assert outcome.dos_succeeded
        assert outcome.compromise.key_extracted

    def test_paper_scale_device_cost(self):
        """One attestation on the paper's 512 KB prover takes ~754 ms of
        simulated time (Section 3.1)."""
        config = DeviceConfig(ram_size=512 * 1024, flash_size=16 * 1024,
                              app_size=2 * 1024)
        session = build_session(device_config=config, seed="paper-scale")
        before = session.device.cpu.cycle_count
        session.attest_once(settle_seconds=10.0)
        elapsed_ms = session.anchor.stats.attestation_cycles / 24_000
        # 512 KB RAM + 16 KB flash: a little over the 754 ms headline.
        assert 750 < elapsed_ms < 800
