"""The SWATT software-attestation baseline and its network collapse."""

import pytest

from repro.baselines.swatt import (ACCESS_CYCLES, CHEAT_OVERHEAD_CYCLES,
                                   CheatingSwattProver, NetworkTimingModel,
                                   SwattProver, SwattVerifier,
                                   checksum_walk, evaluate_over_network)
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.mcu import BASELINE, Device
from tests.conftest import tiny_config


def factory():
    device = Device(tiny_config(app_size=4 * 1024))
    device.provision(b"K" * 16)
    device.boot(BASELINE)
    return device


ITERATIONS = 4_000


@pytest.fixture(scope="module")
def verifier():
    return SwattVerifier(iterations=ITERATIONS, seed="t-swatt")


@pytest.fixture(scope="module")
def golden():
    return SwattProver(factory())._memory_image()


class TestChecksumWalk:
    def test_deterministic(self):
        image = bytes(range(256)) * 4
        assert checksum_walk(b"seed", 100, image) == \
            checksum_walk(b"seed", 100, image)

    def test_seed_sensitivity(self):
        image = bytes(range(256)) * 4
        assert checksum_walk(b"a", 100, image) != \
            checksum_walk(b"b", 100, image)

    def test_image_sensitivity(self):
        image = bytearray(bytes(range(256)) * 4)
        before = checksum_walk(b"seed", 3000, bytes(image))
        image[512] ^= 0xFF
        assert checksum_walk(b"seed", 3000, bytes(image)) != before

    def test_empty_image_rejected(self):
        with pytest.raises(ConfigurationError):
            checksum_walk(b"s", 10, b"")


class TestDirectLink:
    def test_honest_prover_accepted(self, verifier, golden):
        prover = SwattProver(factory())
        challenge = verifier.challenge()
        response = prover.respond(challenge)
        assert verifier.accept(challenge, response, golden)

    def test_cheater_produces_correct_checksum(self, verifier, golden):
        """The redirection attack hides the malware from the *checksum* --
        only timing can catch it."""
        prover = CheatingSwattProver(factory())
        challenge = verifier.challenge()
        response = prover.respond(challenge)
        assert response.checksum == verifier.expected_checksum(challenge,
                                                               golden)

    def test_cheater_rejected_on_timing(self, verifier, golden):
        prover = CheatingSwattProver(factory())
        challenge = verifier.challenge()
        response = prover.respond(challenge)
        assert not verifier.accept(challenge, response, golden)

    def test_naive_cheater_fails_checksum(self, verifier, golden):
        """Malware that does not redirect reads is caught by the checksum.

        The infection must be large enough that the bounded random walk
        hits it with overwhelming probability (SWATT's O(n ln n)
        coverage argument): 1 KB out of 24 KB over 4000 accesses gives a
        miss probability below 1e-70.
        """
        device = factory()
        device.flash.load(100, b"\xEB" * 1024)
        prover = SwattProver(device)
        challenge = verifier.challenge()
        response = prover.respond(challenge)
        assert not verifier.accept(challenge, response, golden)

    def test_timing_gap(self, verifier):
        honest = SwattProver(factory())
        cheater = CheatingSwattProver(factory())
        challenge = verifier.challenge()
        gap = (cheater.respond(challenge).latency_seconds
               - honest.respond(challenge).latency_seconds)
        expected = ITERATIONS * CHEAT_OVERHEAD_CYCLES / 24_000_000
        assert gap == pytest.approx(expected, rel=0.01)


class TestVerifier:
    def test_threshold_between_populations(self, verifier):
        assert verifier.honest_seconds < verifier.threshold_seconds < \
            verifier.cheating_seconds

    def test_expected_times(self, verifier):
        assert verifier.honest_seconds == pytest.approx(
            ITERATIONS * ACCESS_CYCLES / 24_000_000)

    def test_jitter_allowance_widens_threshold(self):
        tight = SwattVerifier(iterations=ITERATIONS)
        loose = SwattVerifier(iterations=ITERATIONS,
                              jitter_allowance_seconds=0.01)
        assert loose.threshold_seconds == pytest.approx(
            tight.threshold_seconds + 0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SwattVerifier(margin=0.0)
        with pytest.raises(ConfigurationError):
            SwattVerifier(iterations=0)


class TestNetworkCollapse:
    def test_direct_link_perfect(self):
        points = evaluate_over_network(device_factory=factory,
                                       jitters=[0.0], trials=5,
                                       iterations=ITERATIONS)
        assert points[0].accuracy == 1.0

    def test_jitter_collapses_accuracy(self):
        """The paper's Section 2 claim: time-based attestation is not
        viable over a network.  The cheat overhead at these parameters is
        ~0.33 ms; jitter an order of magnitude above it must push
        accuracy towards 0.5."""
        points = evaluate_over_network(device_factory=factory,
                                       jitters=[0.0, 0.004], trials=12,
                                       iterations=ITERATIONS,
                                       seed="t-collapse")
        direct, hops = points
        assert direct.accuracy == 1.0
        assert hops.accuracy < 0.85
        assert hops.false_accepts + hops.false_rejects > 0

    def test_network_model_sampling(self):
        model = NetworkTimingModel(base_latency_seconds=0.005,
                                   jitter_seconds=0.01)
        rng = DeterministicRng(b"net")
        samples = [model.sample(rng) for _ in range(100)]
        assert all(0.005 <= s <= 0.015 for s in samples)
        assert max(samples) - min(samples) > 0.005


class TestToctou:
    """Footnote 1: TOCTOU defeats software attestation outright."""

    def test_toctou_passes_both_checks(self, verifier, golden):
        from repro.baselines.swatt import ToctouSwattProver
        prover = ToctouSwattProver(factory())
        challenge = verifier.challenge()
        response = prover.respond(challenge)
        # Correct checksum AND honest timing: accepted.
        assert verifier.accept(challenge, response, golden)

    def test_malware_present_before_and_after(self, verifier):
        from repro.baselines.swatt import ToctouSwattProver
        prover = ToctouSwattProver(factory())
        assert prover.installed
        prover.respond(verifier.challenge())
        assert prover.installed
        assert prover.reinstalls == 1

    def test_memory_clean_only_during_measurement(self, verifier, golden):
        """The checksum genuinely ran over clean memory -- there is no
        artefact for any snapshot scheme to find."""
        from repro.baselines.swatt import SwattProver, ToctouSwattProver
        prover = ToctouSwattProver(factory())
        challenge = verifier.challenge()
        response = prover.respond(challenge)
        honest = SwattProver(factory()).respond(challenge)
        assert response.checksum == honest.checksum
        assert response.latency_seconds == pytest.approx(
            honest.latency_seconds)

    def test_repeated_challenges_never_detect(self, verifier, golden):
        from repro.baselines.swatt import ToctouSwattProver
        prover = ToctouSwattProver(factory())
        for _ in range(5):
            challenge = verifier.challenge()
            assert verifier.accept(challenge, prover.respond(challenge),
                                   golden)
        assert prover.reinstalls == 5


class TestCheaterConstruction:
    def test_infection_visible_in_raw_memory(self):
        prover = CheatingSwattProver(factory())
        app_start, app_end = prover.device.firmware.span("app")
        region = prover.device.flash
        tail = region.raw_read(app_end - 16 - region.start, 16)
        assert tail == b"\xEB" * 16

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CheatingSwattProver(factory(), malware_size=0)
        with pytest.raises(ConfigurationError):
            CheatingSwattProver(factory(), malware_size=10 ** 6)
