"""Clock design-space search."""

import pytest

from repro.errors import ConfigurationError
from repro.hwcost import HardwareCostModel


@pytest.fixture
def model():
    return HardwareCostModel()


class TestRecommendClock:
    def test_meets_both_requirements(self, model):
        choice = model.recommend_clock(lifetime_years=6,
                                       resolution_seconds=0.05)
        assert choice["wraparound_years"] >= 6
        assert choice["resolution_seconds"] <= 0.05

    def test_paper_32bit_divided_config_found_when_sufficient(self, model):
        """For a 5-year deployment at 50 ms the paper's 32-bit / 2^20
        configuration is exactly what the search returns."""
        choice = model.recommend_clock(lifetime_years=5,
                                       resolution_seconds=0.05)
        assert choice["width_bits"] == 32
        assert choice["divider"] == 1 << 20

    def test_paper_boundary_needs_wider_register(self, model):
        """At 6 years the 32-bit / 2^20 clock falls just short (5.95 y);
        the next divider is too coarse, so the search widens the
        register -- the cliff Section 6.3's numbers sit next to."""
        choice = model.recommend_clock(lifetime_years=6,
                                       resolution_seconds=0.05)
        assert choice["width_bits"] > 32

    def test_minimises_register_cost(self, model):
        """A lax spec is met with the narrowest workable register."""
        choice = model.recommend_clock(lifetime_years=0.001,
                                       resolution_seconds=1.0)
        assert choice["width_bits"] == 16

    def test_extreme_lifetime_needs_64_bits(self, model):
        choice = model.recommend_clock(lifetime_years=25_000,
                                       resolution_seconds=1e-6)
        assert choice["width_bits"] == 64

    def test_overhead_fields(self, model):
        choice = model.recommend_clock(lifetime_years=5,
                                       resolution_seconds=0.05)
        assert choice["extra_registers"] == choice["registers"] + 116
        assert choice["extra_luts"] == choice["luts"] + 182
        assert 0 < choice["register_overhead_percent"] < 10

    def test_infeasible_returns_none(self, model):
        assert model.recommend_clock(lifetime_years=1e9,
                                     resolution_seconds=1e-9) is None

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.recommend_clock(lifetime_years=0,
                                  resolution_seconds=0.05)
        with pytest.raises(ConfigurationError):
            model.recommend_clock(lifetime_years=1,
                                  resolution_seconds=0)
