"""Table 3 component data."""

from repro.hwcost.components import (ATTEST_KEY, CLOCK_32, CLOCK_64, COUNTER,
                                     EA_MPU, SISKIYOU_PEAK, SW_CLOCK,
                                     TABLE3_COMPONENTS)


class TestTable3Verbatim:
    def test_siskiyou_peak(self):
        assert SISKIYOU_PEAK.cost() == (5528, 14361)
        assert SISKIYOU_PEAK.mpu_rules == 0

    def test_ea_mpu_scaling(self):
        assert EA_MPU.cost(0) == (278, 417)
        assert EA_MPU.cost(1) == (278 + 116, 417 + 182)
        assert EA_MPU.cost(8) == (278 + 116 * 8, 417 + 182 * 8)
        assert EA_MPU.mpu_rules == 1

    def test_key_and_counter_rule_only(self):
        for component in (ATTEST_KEY, COUNTER):
            assert component.cost() == (0, 0)
            assert component.mpu_rules == 1

    def test_clock_registers(self):
        assert CLOCK_64.cost() == (64, 64)
        assert CLOCK_32.cost() == (32, 32)
        assert CLOCK_64.mpu_rules == 0

    def test_sw_clock_rules_only(self):
        assert SW_CLOCK.cost() == (0, 0)
        assert SW_CLOCK.mpu_rules == 2   # as printed in Table 3

    def test_table_complete(self):
        assert len(TABLE3_COMPONENTS) == 7
        names = [c.name for c in TABLE3_COMPONENTS]
        assert "Siskiyou Peak" in names
        assert "SW-clock" in names
