"""Section 6.3 cost arithmetic: baseline, overheads, wrap-around."""

import pytest

from repro.errors import ConfigurationError
from repro.hwcost.model import (HardwareCostModel, resolution_seconds,
                                wraparound_seconds, wraparound_years)


@pytest.fixture
def model():
    return HardwareCostModel()


class TestBaseline:
    def test_paper_totals(self, model):
        base = model.baseline()
        assert base.registers == 6038
        assert base.luts == 15142
        assert base.rules == 2


class TestVariantOverheads:
    """Every figure in the Section 6.3 overhead paragraphs."""

    def test_hw64(self, model):
        o = model.variant_overhead("hw64")
        assert o.extra_registers == 180
        assert o.extra_luts == 246
        assert o.register_overhead_percent == pytest.approx(2.98, abs=0.01)
        assert o.lut_overhead_percent == pytest.approx(1.62, abs=0.01)

    def test_hw32div(self, model):
        o = model.variant_overhead("hw32div")
        assert o.extra_registers == 148
        assert o.extra_luts == 214
        assert o.register_overhead_percent == pytest.approx(2.45, abs=0.01)
        assert o.lut_overhead_percent == pytest.approx(1.41, abs=0.01)

    def test_sw(self, model):
        o = model.variant_overhead("sw")
        assert o.extra_registers == 348
        assert o.extra_luts == 546
        assert o.register_overhead_percent == pytest.approx(5.76, abs=0.01)
        assert o.lut_overhead_percent == pytest.approx(3.61, abs=0.01)

    def test_ordering(self, model):
        overheads = model.all_overheads()
        assert overheads["hw32div"].extra_registers < \
            overheads["hw64"].extra_registers < \
            overheads["sw"].extra_registers

    def test_unknown_variant(self, model):
        with pytest.raises(ConfigurationError):
            model.variant("analog")


class TestWraparound:
    def test_64bit_lifetime(self):
        assert wraparound_years(64) == pytest.approx(24372.6, rel=1e-3)

    def test_32bit_three_minutes(self):
        assert wraparound_seconds(32) == pytest.approx(178.96, rel=1e-3)

    def test_32bit_divided_six_years(self):
        assert wraparound_years(32, 1 << 20) == pytest.approx(5.97,
                                                              rel=1e-2)

    def test_divided_resolution(self):
        assert resolution_seconds(1 << 20) == pytest.approx(0.0437,
                                                            rel=1e-2)

    def test_frequency_dependence(self):
        slow = wraparound_seconds(32, frequency_hz=12_000_000)
        fast = wraparound_seconds(32, frequency_hz=24_000_000)
        assert slow == pytest.approx(2 * fast)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wraparound_seconds(0)
        with pytest.raises(ConfigurationError):
            resolution_seconds(0)


class TestGenericAssembly:
    def test_system_cost_formula(self, model):
        system = model.system_cost("x", rules=5, clock_registers=10,
                                   clock_luts=20)
        assert system.registers == 5528 + 278 + 116 * 5 + 10
        assert system.luts == 14361 + 417 + 182 * 5 + 20

    def test_negative_rules(self, model):
        with pytest.raises(ConfigurationError):
            model.system_cost("x", rules=-1)

    def test_rule_scaling(self, model):
        scaling = model.rule_scaling(4)
        assert len(scaling) == 4
        assert scaling[0] == (1, 278 + 116, 417 + 182)
        # Each extra rule costs exactly 116 registers / 182 LUTs.
        for (r1, reg1, lut1), (r2, reg2, lut2) in zip(scaling, scaling[1:]):
            assert reg2 - reg1 == 116
            assert lut2 - lut1 == 182

    def test_clock_tradeoff(self, model):
        tradeoff = model.clock_tradeoff(32, 1 << 20)
        assert tradeoff["registers"] == 32
        assert tradeoff["wraparound_years"] == pytest.approx(5.97, rel=1e-2)
