"""The verifier service tier: admission, sharding, crash recovery.

Three properties anchor this suite (they are the smoke-script gates,
restated over generated shapes):

* admission control is a pure function of the request schedule -- the
  same spec and schedule always yield the same records, rejections
  included;
* consistent-hash placement decides only *where* a session runs --
  changing the backend count (or worker count) never changes a
  verdict, a freshness counter, or a telemetry line;
* a service killed mid-load and restored from its snapshot continues
  byte-identically to one that was never interrupted.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SnapshotError
from repro.services.attestd import (AttestationService, HashRing,
                                    ServiceRequest, TokenBucket,
                                    build_schedule,
                                    build_service_from_spec, service_spec)


def view(service):
    """Everything observable about a service, placement-free."""
    return {
        "freshness": service.freshness_fingerprint(),
        "registry": json.dumps(service.merged_registry().dump(),
                               sort_keys=True),
        "admitted": service.admitted,
        "rejected": service.rejected,
        "virtual_now": service.virtual_now,
    }


def tight_service(size, *, backends=3, seed="attestd-test"):
    """A service whose duty budget binds within a few waves."""
    return AttestationService(size, tenants=min(3, size),
                              backends=backends, duty_fraction=0.001,
                              burst_seconds=30.0, observe=True, seed=seed)


class TestTokenBucket:
    def test_starts_full_and_charges(self):
        bucket = TokenBucket(rate=1.0, burst=10.0)
        assert bucket.tokens == 10.0
        assert bucket.try_take(0.0, 4.0)
        assert bucket.tokens == pytest.approx(6.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=2.0, burst=5.0, tokens=1.0)
        bucket.refill(100.0)
        assert bucket.tokens == 5.0

    def test_rejects_when_empty_then_recovers(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_take(0.0, 2.0)
        assert not bucket.try_take(0.0, 0.5)
        assert bucket.try_take(1.0, 0.5)

    def test_time_cannot_go_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        bucket.refill(5.0)
        with pytest.raises(ConfigurationError):
            bucket.refill(4.0)

    def test_validates_shape(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=-1.0)


class TestHashRing:
    def test_placement_is_deterministic(self):
        one = HashRing(["a", "b", "c"])
        two = HashRing(["a", "b", "c"])
        for index in range(64):
            device = f"device-{index:03d}"
            assert one.backend_for(device) == two.backend_for(device)

    def test_removal_only_moves_vacated_arcs(self):
        full = HashRing(["a", "b", "c"])
        without_c = HashRing(["a", "b"])
        for index in range(128):
            device = f"device-{index:03d}"
            before = full.backend_for(device)
            if before != "c":
                assert without_c.backend_for(device) == before

    def test_all_backends_get_work(self):
        ring = HashRing(["a", "b", "c", "d"])
        owners = {ring.backend_for(f"device-{i:03d}") for i in range(256)}
        assert owners == {"a", "b", "c", "d"}

    def test_validates_shape(self):
        with pytest.raises(ConfigurationError):
            HashRing([])
        with pytest.raises(ConfigurationError):
            HashRing(["a"], vnodes=0)


class TestSchedule:
    def test_replays_exactly_from_seed(self):
        one = build_schedule(8, waves=3, seed="sched")
        two = build_schedule(8, waves=3, seed="sched")
        assert one == two
        assert one != build_schedule(8, waves=3, seed="other")

    def test_waves_share_an_arrival_instant(self):
        schedule = build_schedule(6, waves=2, spacing_seconds=45.0)
        arrivals = {r.arrival_seconds for r in schedule}
        assert arrivals == {0.0, 45.0}
        assert [r.request_id for r in schedule] == list(range(12))

    def test_validates_shape(self):
        with pytest.raises(ConfigurationError):
            build_schedule(0, waves=1)
        with pytest.raises(ConfigurationError):
            build_schedule(4, waves=1, wave_devices=5)
        with pytest.raises(ConfigurationError):
            build_schedule(4, waves=1, start_seconds=-1.0)


class TestAdmission:
    def test_unknown_device_index_raises(self):
        service = tight_service(4)
        with pytest.raises(ConfigurationError):
            service.admit(ServiceRequest(0.0, 99, 0))

    def test_schedule_must_be_non_decreasing(self):
        service = tight_service(4)
        service.admit(ServiceRequest(10.0, 0, 0))
        with pytest.raises(ConfigurationError):
            service.admit(ServiceRequest(5.0, 1, 1))

    def test_rejection_charges_nothing(self):
        """Reject-before-measure: a turned-away request leaves session
        state untouched (the Section 3.1 defence)."""
        service = tight_service(6)
        schedule = build_schedule(6, waves=6, spacing_seconds=1.0)
        before_counters = None
        records = service.process(schedule)
        rejected = [r for r in records if not r.admitted]
        assert rejected, "duty budget never bound; test proves nothing"
        assert all(r.verdict == "rejected-admission" and
                   r.detail == "duty-budget-exhausted" for r in rejected)
        fresh = service.freshness_fingerprint()
        admitted_per_device = {}
        for r in records:
            if r.admitted:
                admitted_per_device[r.device_id] = (
                    admitted_per_device.get(r.device_id, 0) + 1)
        for device_id, state in fresh.items():
            assert state["received"] == admitted_per_device.get(device_id, 0)

    @given(size=st.integers(min_value=2, max_value=10),
           waves=st.integers(min_value=1, max_value=4),
           salt=st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_admission_is_deterministic(self, size, waves, salt):
        schedule = build_schedule(size, waves=waves, spacing_seconds=20.0,
                                  seed=f"adm-{salt}")
        seed = f"adm-svc-{salt}"
        one = tight_service(size, seed=seed)
        two = tight_service(size, seed=seed)
        records_one = [r.fingerprint()
                       for r in one.serve_schedule(schedule)]
        records_two = [r.fingerprint()
                       for r in two.serve_schedule(schedule)]
        assert records_one == records_two
        assert view(one) == view(two)


class TestShardEquivalence:
    @given(size=st.integers(min_value=2, max_value=8),
           backends=st.integers(min_value=1, max_value=6),
           workers=st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_placement_never_changes_answers(self, size, backends,
                                             workers):
        schedule = build_schedule(size, waves=3, spacing_seconds=20.0,
                                  seed=f"shard-{size}")
        reference = tight_service(size, backends=3)
        sharded = tight_service(size, backends=backends)
        expected = [r.fingerprint() for r in reference.process(schedule)]
        got = [r.fingerprint()
               for r in sharded.serve_schedule(schedule, workers=workers)]
        assert got == expected
        assert view(sharded) == view(reference)

    def test_serve_matches_process_with_rejections(self):
        size = 12
        schedule = build_schedule(size, waves=5, spacing_seconds=10.0)
        serviced = tight_service(size)
        sequential = tight_service(size)
        served = serviced.serve_schedule(schedule)
        processed = sequential.process(schedule)
        assert [r.fingerprint() for r in served] == \
               [r.fingerprint() for r in processed]
        assert serviced.rejected > 0
        assert view(serviced) == view(sequential)

    def test_peak_in_flight_counts_a_full_wave(self):
        service = AttestationService(16, tenants=2, backends=4,
                                     observe=False, seed="peak")
        schedule = build_schedule(16, waves=1)
        service.serve_schedule(schedule)
        assert service.peak_in_flight == 16


class TestRestoreContinue:
    @given(size=st.integers(min_value=2, max_value=8),
           waves=st.integers(min_value=2, max_value=4),
           split=st.integers(min_value=1, max_value=3))
    @settings(max_examples=12, deadline=None)
    def test_kill_restore_equals_uninterrupted(self, size, waves, split):
        split = min(split, waves - 1)
        spacing = 25.0
        schedule = build_schedule(size, waves=waves,
                                  spacing_seconds=spacing,
                                  seed=f"kill-{size}-{waves}")
        head = [r for r in schedule if r.arrival_seconds < split * spacing]
        tail = [r for r in schedule if r.arrival_seconds >= split * spacing]

        uninterrupted = tight_service(size)
        expected = [r.fingerprint()
                    for r in uninterrupted.serve_schedule(schedule)]

        interrupted = tight_service(size)
        interrupted.serve_schedule(head)
        document = json.loads(json.dumps(interrupted.snapshot()))
        resumed = tight_service(size)
        resumed.restore(document)
        continued = [r.fingerprint()
                     for r in resumed.serve_schedule(tail)]
        assert continued == expected[len(head):]
        assert view(resumed) == view(uninterrupted)

    def test_restore_refuses_wrong_shape(self):
        donor = tight_service(4)
        donor.serve_schedule(build_schedule(4, waves=1))
        document = donor.snapshot()
        with pytest.raises(SnapshotError):
            tight_service(5).restore(document)

    def test_restore_is_placement_free(self):
        """A snapshot taken on 3 backends restores onto 7: placement is
        topology, not state."""
        schedule = build_schedule(6, waves=2, spacing_seconds=30.0)
        donor = tight_service(6, backends=3)
        donor.serve_schedule(schedule)
        resumed = tight_service(6, backends=7)
        resumed.restore(donor.snapshot())
        assert view(resumed)["freshness"] == view(donor)["freshness"]

    def test_spec_round_trip(self):
        spec = service_spec(size=5, tenants=2, backends=3, seed="spec")
        assert spec == json.loads(json.dumps(spec))
        service = build_service_from_spec(spec)
        assert len(service) == 5
        assert set(service.buckets) == {"tenant-00", "tenant-01"}
