"""Secure code update: authenticity, anti-rollback, installation."""

import pytest

from repro.errors import ProtocolError
from repro.mcu import Device, ROAM_HARDENED
from repro.mcu.firmware import FirmwareModule
from repro.services.codeupdate import (UpdateAuthority, UpdateManager,
                                       UpdatePackage)
from tests.conftest import tiny_config

KEY = b"K" * 16


@pytest.fixture
def device():
    dev = Device(tiny_config())
    dev.provision(KEY)
    dev.boot(ROAM_HARDENED)
    return dev


@pytest.fixture
def authority():
    return UpdateAuthority(KEY)


class TestHappyPath:
    def test_install(self, device, authority):
        manager = UpdateManager(device)
        receipt = manager.apply(
            authority.package(FirmwareModule("app", 2048, version=2)))
        assert receipt.version == 2
        assert manager.installed_version == 2
        assert manager.updates_applied == 1

    def test_installed_code_lands_in_flash(self, device, authority):
        manager = UpdateManager(device)
        module = FirmwareModule("app", 2048, version=2)
        manager.apply(authority.package(module))
        app_start, _ = device.firmware.span("app")
        installed = device.flash.raw_read(app_start - device.flash.start,
                                          2048)
        assert installed == module.code_bytes()

    def test_update_changes_measurement(self, device, authority):
        manager = UpdateManager(device)
        attest = device.context("Code_Attest")
        before = device.digest_writable_memory(attest)
        manager.apply(authority.package(FirmwareModule("app", 2048,
                                                       version=2)))
        assert device.digest_writable_memory(attest) != before

    def test_receipt_reference_matches_install(self, device, authority):
        manager = UpdateManager(device)
        module = FirmwareModule("app", 2048, version=2)
        receipt = manager.apply(authority.package(module))
        assert receipt.new_reference == module.measurement()

    def test_install_cost_charged(self, device, authority):
        manager = UpdateManager(device)
        receipt = manager.apply(
            authority.package(FirmwareModule("app", 2048, version=2)))
        assert receipt.install_cycles > 0

    def test_sequential_updates(self, device, authority):
        manager = UpdateManager(device)
        manager.apply(authority.package(FirmwareModule("app", 2048,
                                                       version=2)))
        manager.apply(authority.package(FirmwareModule("app", 1024,
                                                       version=3)))
        assert manager.installed_version == 3


class TestRejections:
    def test_rollback_blocked(self, device, authority):
        manager = UpdateManager(device)
        manager.apply(authority.package(FirmwareModule("app", 2048,
                                                       version=5)))
        with pytest.raises(ProtocolError, match="rollback"):
            manager.apply(authority.package(FirmwareModule("app", 2048,
                                                           version=4)))
        assert manager.installed_version == 5
        assert manager.updates_rejected == 1

    def test_same_version_blocked(self, device, authority):
        manager = UpdateManager(device)
        with pytest.raises(ProtocolError, match="rollback"):
            manager.apply(authority.package(FirmwareModule("app", 2048,
                                                           version=1)))

    def test_tampered_package_rejected(self, device, authority):
        manager = UpdateManager(device)
        package = authority.package(FirmwareModule("app", 2048, version=2))
        tampered = UpdatePackage(
            module_name=package.module_name, version=package.version,
            plaintext_length=package.plaintext_length, iv=package.iv,
            ciphertext=b"\x00" * len(package.ciphertext), tag=package.tag)
        with pytest.raises(ProtocolError, match="authentication"):
            manager.apply(tampered)
        assert manager.installed_version == 1

    def test_wrong_key_authority_rejected(self, device):
        rogue = UpdateAuthority(b"R" * 16)
        manager = UpdateManager(device)
        with pytest.raises(ProtocolError, match="authentication"):
            manager.apply(rogue.package(FirmwareModule("app", 2048,
                                                       version=2)))

    def test_non_app_target_rejected(self, device, authority):
        manager = UpdateManager(device)
        with pytest.raises(ProtocolError, match="field-updatable"):
            manager.apply(authority.package(
                FirmwareModule("Code_Attest", 1024, version=2)))

    def test_oversized_image_rejected(self, device, authority):
        manager = UpdateManager(device)
        too_big = device.firmware.span("app")
        capacity = too_big[1] - too_big[0]
        with pytest.raises(ProtocolError, match="exceeds"):
            manager.apply(authority.package(
                FirmwareModule("app", capacity + 1, version=2)))

    def test_flash_untouched_after_rejection(self, device, authority):
        manager = UpdateManager(device)
        before = device.flash.snapshot()
        rogue = UpdateAuthority(b"R" * 16)
        with pytest.raises(ProtocolError):
            manager.apply(rogue.package(FirmwareModule("app", 2048,
                                                       version=2)))
        assert device.flash.snapshot() == before
