"""Robustness integration: monitors and fleets over faulty channels."""

import pytest

from repro.core import build_session
from repro.core.messages import AttestationRequest
from repro.core.resilience import RetryPolicy
from repro.net.channel import Verdict
from repro.net.faults import BernoulliLoss, FaultPipeline, LatencyJitter
from repro.services.monitor import AttestationMonitor, MonitorPolicy
from repro.services.swarm import Swarm, SweepReport
from tests.conftest import tiny_config


class DropAllRequests:
    def on_message(self, message, sender, receiver, time):
        if isinstance(message, AttestationRequest):
            return Verdict("drop")
        return Verdict("forward")


class RefuseViaBadTag:
    """Corrupts request tags so the prover rejects every request."""

    def on_message(self, message, sender, receiver, time):
        if isinstance(message, AttestationRequest) and message.auth_tag:
            flipped = bytes([message.auth_tag[0] ^ 0x80]) \
                + message.auth_tag[1:]
            object.__setattr__(message, "auth_tag", flipped)
        return Verdict("forward")


def lossy_session(loss, seed):
    session = build_session(
        device_config=tiny_config(),
        adversary=BernoulliLoss(loss, seed=f"{seed}-loss"),
        seed=seed)
    session.learn_reference_state()
    return session


class TestMonitorOverLossyChannel:
    def test_twenty_percent_loss_reaches_ok_within_budget(self):
        """The ISSUE acceptance scenario: a monitor over a 20%-loss
        channel converges to ``ok`` within its retry budget."""
        session = lossy_session(0.20, seed="mon-lossy")
        monitor = AttestationMonitor(
            session,
            policy=MonitorPolicy(
                interval_seconds=30.0,
                retry=RetryPolicy(attempt_timeout_seconds=2.0,
                                  max_retries=6,
                                  base_backoff_seconds=0.5)))
        events = monitor.run(rounds=4)
        kinds = [event.kind for event in events]
        assert kinds.count("ok") == 4
        assert "failure" not in kinds
        assert not monitor.alarmed

    def test_composed_faults_still_converge(self):
        session = build_session(
            device_config=tiny_config(),
            adversary=FaultPipeline(
                BernoulliLoss(0.15, seed="combo-loss"),
                LatencyJitter(0.05, seed="combo-jitter")),
            seed="mon-combo")
        session.learn_reference_state()
        monitor = AttestationMonitor(
            session,
            policy=MonitorPolicy(
                interval_seconds=20.0,
                retry=RetryPolicy(attempt_timeout_seconds=2.0,
                                  max_retries=5)))
        events = monitor.run(rounds=3)
        assert [e.kind for e in events].count("ok") == 3

    def test_retry_delay_clamped_to_round_duration(self):
        """Regression for the fixed-cadence bug: with a retry delay far
        below the round trip, the monitor used to burn every attempt on
        a request whose response was still in flight.  After one
        measured round the deadline is clamped, so later rounds succeed
        on their first attempt."""
        session = build_session(device_config=tiny_config(),
                                seed="mon-clamp")
        session.learn_reference_state()
        monitor = AttestationMonitor(
            session,
            policy=MonitorPolicy(interval_seconds=10.0,
                                 retry_delay_seconds=0.001,
                                 max_retries=1, failure_threshold=99))
        monitor.run(rounds=3)
        kinds = [e.kind for e in monitor.events]
        # Round 1 has no measured round trip yet and fails its tight
        # deadline; the in-flight response lands during the interval and
        # teaches the monitor the true duration, so rounds 2+ are clean.
        assert kinds[-2:] == ["ok", "ok"]
        assert session.verifier_node.last_round_seconds is not None

    def test_legacy_policy_fields_still_work(self):
        policy = MonitorPolicy(retry_delay_seconds=3.0, max_retries=4)
        retry = policy.effective_retry()
        assert retry.attempt_timeout_seconds == 3.0
        assert retry.max_retries == 4
        assert retry.base_backoff_seconds == 0.0

    def test_explicit_retry_policy_wins(self):
        custom = RetryPolicy(attempt_timeout_seconds=9.0, max_retries=1)
        policy = MonitorPolicy(retry=custom)
        assert policy.effective_retry() is custom


class TestSweepReportSplit:
    def test_channel_loss_lands_in_no_response(self):
        fleet = Swarm(2, device_config=tiny_config(), seed="split-1")
        fleet.members[1].session.channel.adversary = DropAllRequests()
        report = fleet.sweep()
        assert report.no_response == ["device-001"]
        assert report.refused == []
        assert not report.healthy

    def test_prover_rejection_lands_in_refused(self):
        fleet = Swarm(2, device_config=tiny_config(), seed="split-2")
        fleet.members[1].session.channel.adversary = RefuseViaBadTag()
        report = fleet.sweep()
        assert report.refused == ["device-001"]
        assert report.no_response == []
        assert not report.healthy

    def test_compromised_state_still_untrusted(self):
        fleet = Swarm(2, device_config=tiny_config(), seed="split-3")
        fleet.members[1].session.device.flash.load(64, b"\xEB\xFE")
        report = fleet.sweep()
        assert report.untrusted == ["device-001"]
        assert report.no_response == report.refused == []

    def test_deprecated_unresponsive_alias(self):
        report = SweepReport(no_response=["a"], refused=["b"])
        assert report.unresponsive == ["a", "b"]
        assert not report.healthy

    def test_healthy_requires_all_categories_clean(self):
        assert SweepReport(attempted=1, trusted=1).healthy
        assert not SweepReport(skipped_quarantined=["a"]).healthy


class TestFleetDegradation:
    def make_degrading_fleet(self, **kwargs):
        fleet = Swarm(3, device_config=tiny_config(),
                      quarantine_after=2, probe_every_sweeps=3,
                      seed="degrade", **kwargs)
        fleet.members[2].session.channel.adversary = DropAllRequests()
        return fleet

    def test_breaker_walks_the_ladder(self):
        fleet = self.make_degrading_fleet()
        fleet.sweep()
        assert fleet.device_states()["device-002"] == "degraded"
        fleet.sweep()
        assert fleet.device_states()["device-002"] == "quarantined"

    def test_quarantined_member_skipped_then_probed(self):
        fleet = self.make_degrading_fleet()
        fleet.sweep()
        fleet.sweep()   # quarantined now
        third = fleet.sweep()
        fourth = fleet.sweep()
        assert third.skipped_quarantined == ["device-002"]
        assert fourth.skipped_quarantined == ["device-002"]
        probe = fleet.sweep()   # third opportunity: probe fires
        assert probe.skipped_quarantined == []
        assert probe.attempted == 3

    def test_skipped_members_burn_no_energy(self):
        fleet = self.make_degrading_fleet()
        fleet.sweep()
        fleet.sweep()
        victim = fleet.members[2].session
        victim.device.sync_energy()
        before = victim.device.battery.consumed_mj
        fleet.sweep()   # skipped
        victim.device.sync_energy()
        assert victim.device.battery.consumed_mj == pytest.approx(before)

    def test_recovery_heals_the_breaker(self):
        fleet = self.make_degrading_fleet()
        fleet.sweep()
        fleet.sweep()
        # Restore a benign channel and wait for the probe sweep.
        from repro.net.channel import PassthroughAdversary
        fleet.members[2].session.channel.adversary = PassthroughAdversary()
        fleet.sweep()
        fleet.sweep()
        report = fleet.sweep()   # probe succeeds
        assert report.trusted == 3
        assert fleet.device_states()["device-002"] == "healthy"

    def test_sweep_level_retry_policy(self):
        fleet = Swarm(2, device_config=tiny_config(),
                      retry=RetryPolicy(attempt_timeout_seconds=2.0,
                                        max_retries=4),
                      seed="sweep-retry")
        fleet.members[1].session.channel.adversary = BernoulliLoss(
            0.4, seed="srl-3")
        report = fleet.sweep()
        assert report.trusted == 2
        assert report.retries >= 1

    def test_breaker_transition_telemetry(self):
        from repro.obs.telemetry import Telemetry
        telemetry = Telemetry()
        fleet = Swarm(1, device_config=tiny_config(), quarantine_after=2,
                      seed="breaker-telemetry")
        # Rebuild member 0's session with a telemetry sink attached.
        session = build_session(device_config=tiny_config(),
                                adversary=DropAllRequests(),
                                telemetry=telemetry,
                                seed="breaker-telemetry:0")
        session.learn_reference_state()
        fleet.members[0].session = session
        fleet.sweep()
        fleet.sweep()
        assert telemetry.trace.count("breaker-state") == 2
        states = [e.fields["state"]
                  for e in telemetry.trace.of_kind("breaker-state")]
        assert states == ["degraded", "quarantined"]
