"""Monitor accounting regressions: rounds vs attempts, budgets, DEP001.

Three bugs are pinned here:

* ``rounds_run`` used to advance once *per attempt*, so a lossy channel
  inflated it and skewed every per-round average derived from it.  It
  now counts logical rounds; ``attempts_run`` carries attempts.
* ``MonitorPolicy.__post_init__`` used to validate the deprecated
  fixed-cadence knobs even when an explicit ``retry=`` policy was
  given, rejecting configurations over fields that cannot take effect.
  It now skips that validation and emits a ``DeprecationWarning``
  (DEP001) when the ignored knobs carry non-default values.
* A round's final attempt used to wait its full per-attempt deadline
  even when the total time budget had almost run out, overshooting
  ``total_budget_seconds``.  The attempt deadline is now clamped to
  the remaining budget.
"""

import warnings

import pytest

from repro.core import build_session
from repro.core.messages import AttestationRequest
from repro.core.resilience import RetryPolicy
from repro.errors import ConfigurationError
from repro.net.channel import Verdict
from repro.services.monitor import AttestationMonitor, MonitorPolicy
from tests.conftest import tiny_config


def monitored_session(adversary=None, seed="accounting"):
    session = build_session(device_config=tiny_config(),
                            adversary=adversary, seed=seed)
    session.learn_reference_state()
    return session


class DropFirstN:
    def __init__(self, count):
        self.remaining = count

    def on_message(self, message, sender, receiver, time):
        if isinstance(message, AttestationRequest) and self.remaining > 0:
            self.remaining -= 1
            return Verdict("drop")
        return Verdict("forward")


class DropAllRequests:
    def on_message(self, message, sender, receiver, time):
        if isinstance(message, AttestationRequest):
            return Verdict("drop")
        return Verdict("forward")


class TestRoundsVsAttempts:
    def test_lossy_round_counts_once(self):
        """One logical round over a channel that eats the first two
        requests: three attempts, ONE round."""
        monitor = AttestationMonitor(
            monitored_session(adversary=DropFirstN(2)),
            policy=MonitorPolicy(interval_seconds=5.0,
                                 retry=RetryPolicy(max_retries=2)))
        assert monitor.run_round()
        assert monitor.rounds_run == 1
        assert monitor.attempts_run == 3

    def test_clean_rounds_match_attempts(self):
        monitor = AttestationMonitor(
            monitored_session(),
            policy=MonitorPolicy(interval_seconds=5.0,
                                 retry=RetryPolicy(max_retries=2)))
        monitor.run(rounds=4)
        assert monitor.rounds_run == 4
        assert monitor.attempts_run == 4

    def test_run_counts_logical_rounds_under_loss(self):
        """The old bug: rounds_run tracked attempts, so per-round
        averages divided by the wrong denominator on lossy links."""
        monitor = AttestationMonitor(
            monitored_session(adversary=DropFirstN(3)),
            policy=MonitorPolicy(interval_seconds=5.0,
                                 retry=RetryPolicy(max_retries=1)))
        monitor.run(rounds=3)
        assert monitor.rounds_run == 3
        assert monitor.attempts_run > monitor.rounds_run

    def test_failed_round_still_counts_once(self):
        monitor = AttestationMonitor(
            monitored_session(adversary=DropAllRequests()),
            policy=MonitorPolicy(interval_seconds=5.0,
                                 retry=RetryPolicy(max_retries=2)))
        assert not monitor.run_round()
        assert monitor.rounds_run == 1
        assert monitor.attempts_run == 3


class TestDeprecatedKnobsWithExplicitRetry:
    def test_ignored_knobs_no_longer_validated(self):
        """retry_delay_seconds=0 with an explicit retry= used to raise
        ConfigurationError, even though the knob is never read."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(DeprecationWarning, match="DEP001"):
                MonitorPolicy(retry_delay_seconds=0.0,
                              retry=RetryPolicy())

    def test_deprecation_signal_carries_dep001(self):
        with pytest.warns(DeprecationWarning, match="ignored when "
                                                    "retry= is given"):
            policy = MonitorPolicy(max_retries=9, retry=RetryPolicy())
        assert policy.effective_retry().max_retries == RetryPolicy().max_retries

    def test_default_knobs_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            MonitorPolicy(retry=RetryPolicy(max_retries=5))

    def test_live_knobs_still_validated_without_retry(self):
        with pytest.raises(ConfigurationError):
            MonitorPolicy(retry_delay_seconds=0.0)
        with pytest.raises(ConfigurationError):
            MonitorPolicy(max_retries=-1)


class TestRoundBudgetClamp:
    def test_round_respects_total_budget(self):
        """A silent device with a 12 s budget and 10 s deadlines: the
        second attempt must be clamped to the ~2 s remaining, not wait
        its full deadline and spend ~20 s."""
        session = monitored_session(adversary=DropAllRequests())
        monitor = AttestationMonitor(
            session,
            policy=MonitorPolicy(
                interval_seconds=60.0,
                retry=RetryPolicy(attempt_timeout_seconds=10.0,
                                  max_retries=5,
                                  total_budget_seconds=12.0)))
        start = session.sim.now
        assert not monitor.run_round()
        elapsed = session.sim.now - start
        assert elapsed <= 12.0 + 1e-9
        assert monitor.rounds_run == 1
