"""Clock synchronisation: drift, protocol, attack resistance."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.mcu import Device, ROAM_HARDENED
from repro.services.timesync import (ClockSynchronizer, DriftingClock,
                                     SyncResponse, SyncVerifier)
from tests.conftest import tiny_config

KEY = b"K" * 16


@pytest.fixture
def device():
    dev = Device(tiny_config())
    dev.provision(KEY)
    dev.boot(ROAM_HARDENED)
    return dev


def true_ticks(device):
    return device.clock.ticks_for_seconds(device.cpu.elapsed_seconds)


def make_pair(device, drift_ppm=100.0):
    sync = ClockSynchronizer(device, KEY,
                             drifting_clock=DriftingClock(device, drift_ppm))
    verifier = SyncVerifier(KEY, clock_ticks=lambda: true_ticks(device))
    return sync, verifier


class TestDriftingClock:
    def test_positive_drift_runs_fast(self, device):
        clock = DriftingClock(device, drift_ppm=1000.0)
        device.idle_seconds(10.0)
        raw = device.read_clock_ticks(device.context("Code_Attest"))
        assert clock.read_ticks(device.context("Code_Attest")) > raw

    def test_zero_drift_identity(self, device):
        clock = DriftingClock(device, drift_ppm=0.0)
        device.idle_seconds(1.0)
        assert clock.read_ticks(device.context("Code_Attest")) == \
            device.read_clock_ticks(device.context("Code_Attest"))

    def test_requires_clock(self):
        dev = Device(tiny_config(clock_kind="none"))
        dev.provision(KEY)
        dev.boot(ROAM_HARDENED)
        with pytest.raises(ConfigurationError):
            DriftingClock(dev, 1.0)

    def test_large_tick_counts_stay_exact(self, device):
        # Once raw * ppm exceeds 2**53 a float skew computation starts
        # rounding, so drifted time would depend on magnitude instead of
        # the tick count.  The integer path must match exact floor
        # division at any size.
        clock = DriftingClock(device, drift_ppm=1000.0)
        device.idle_seconds(500_000.0)          # days of uptime at 24 MHz
        context = device.context("Code_Attest")
        raw = device.read_clock_ticks(context)
        assert raw * clock.drift_ppm > 2**53    # in float-rounding territory
        assert clock.read_ticks(context) == raw + raw * 1000 // 1_000_000

    def test_drift_is_deterministic_across_reads(self, device):
        clock = DriftingClock(device, drift_ppm=250.0)
        device.idle_seconds(123_456.0)
        context = device.context("Code_Attest")
        assert clock.read_ticks(context) == clock.read_ticks(context)


class TestProtocol:
    def test_sync_reduces_error(self, device):
        sync, verifier = make_pair(device, drift_ppm=100.0)
        device.idle_seconds(1000.0)
        error_before = abs(sync.error_ticks(true_ticks(device)))
        response = verifier.respond(sync.begin_sync())
        sync.complete_sync(response)
        error_after = abs(sync.error_ticks(true_ticks(device)))
        assert error_after < error_before / 10
        assert sync.syncs_completed == 1

    def test_repeated_syncs_bound_error(self, device):
        sync, verifier = make_pair(device, drift_ppm=200.0)
        for _ in range(5):
            device.idle_seconds(100.0)
            sync.complete_sync(verifier.respond(sync.begin_sync()))
        # Max drift accumulated between syncs: 100 s * 200 ppm = 20 ms.
        error_seconds = abs(sync.error_ticks(true_ticks(device))) * \
            sync.clock.resolution_seconds
        assert error_seconds < 0.03

    def test_forged_response_rejected(self, device):
        sync, verifier = make_pair(device)
        request = sync.begin_sync()
        forged = SyncResponse(nonce=request.nonce, verifier_ticks=0,
                              tag=b"f" * 20)
        with pytest.raises(ProtocolError):
            sync.complete_sync(forged)
        assert sync.syncs_rejected == 1
        assert sync.offset_ticks == 0

    def test_replayed_response_rejected(self, device):
        """An old sync response cannot rewind the clock (the roaming
        adversary's Phase III applied to time-sync)."""
        sync, verifier = make_pair(device)
        old_response = verifier.respond(sync.begin_sync())
        sync.complete_sync(old_response)
        device.idle_seconds(500.0)
        sync.begin_sync()   # fresh nonce outstanding
        with pytest.raises(ProtocolError):
            sync.complete_sync(old_response)

    def test_unsolicited_response_rejected(self, device):
        sync, verifier = make_pair(device)
        response = SyncResponse(nonce=b"n" * 16, verifier_ticks=0,
                                tag=b"t" * 20)
        with pytest.raises(ProtocolError):
            sync.complete_sync(response)

    def test_sync_charges_cycles(self, device):
        sync, verifier = make_pair(device)
        request = sync.begin_sync()
        response = verifier.respond(request)
        before = device.cpu.cycle_count
        sync.complete_sync(response)
        assert device.cpu.cycle_count > before

    def test_requires_clock(self):
        dev = Device(tiny_config(clock_kind="none"))
        dev.provision(KEY)
        dev.boot(ROAM_HARDENED)
        with pytest.raises(ConfigurationError):
            ClockSynchronizer(dev, KEY)
