"""Composing services behind one RequestGuard: the unified command plane."""

import pytest

from repro.errors import RequestRejected
from repro.mcu import Device, EXT_HARDENED
from repro.mcu.firmware import FirmwareModule
from repro.services.codeupdate import UpdateAuthority, UpdateManager
from repro.services.erasure import ErasureManager, ErasureVerifier
from repro.services.guard import CommandIssuer, RequestGuard
from tests.conftest import tiny_config

KEY = b"K" * 16


@pytest.fixture
def platform():
    """A device whose update and erase services both sit behind one
    guard -- the Section 7 item-3 architecture."""
    device = Device(tiny_config())
    device.provision(KEY)
    device.boot(EXT_HARDENED)
    guard = RequestGuard(device)
    update_manager = UpdateManager(device)
    erasure_manager = ErasureManager(device)
    authority = UpdateAuthority(KEY)
    erasure_verifier = ErasureVerifier(KEY)

    applied = []

    def handle_update(body: bytes):
        version = int.from_bytes(body[:4], "big")
        package = authority.package(
            FirmwareModule("app", 2048, version=version))
        receipt = update_manager.apply(package)
        applied.append(receipt.version)
        return receipt

    def handle_erase(body: bytes):
        start = int.from_bytes(body[:4], "big")
        length = int.from_bytes(body[4:8], "big")
        order = erasure_verifier.order(start, length)
        return erasure_manager.handle(order)

    guard.register("update", handle_update)
    guard.register("erase", handle_erase)
    return device, guard, CommandIssuer(KEY), applied


def update_body(version: int) -> bytes:
    return version.to_bytes(4, "big")


def erase_body(start: int, length: int) -> bytes:
    return start.to_bytes(4, "big") + length.to_bytes(4, "big")


class TestUnifiedCommandPlane:
    def test_guarded_update(self, platform):
        device, guard, issuer, applied = platform
        receipt = guard.handle(issuer.issue("update", update_body(2)))
        assert receipt.version == 2
        assert applied == [2]

    def test_guarded_erase(self, platform):
        device, guard, issuer, applied = platform
        proof = guard.handle(issuer.issue(
            "erase", erase_body(device.data_base, 128)))
        assert proof.digest is not None
        wiped = device.ram.raw_read(device.data_base - device.ram.start, 128)
        assert wiped == bytes(128)

    def test_interleaved_services_share_freshness(self, platform):
        device, guard, issuer, applied = platform
        c_update = issuer.issue("update", update_body(2))    # counter 1
        c_erase = issuer.issue("erase",
                               erase_body(device.data_base, 64))  # counter 2
        guard.handle(c_erase)
        # The earlier-issued update is now stale: cross-service reorder
        # protection from the single counter word.
        with pytest.raises(RequestRejected) as excinfo:
            guard.handle(c_update)
        assert excinfo.value.reason == "stale-counter"
        assert applied == []

    def test_replayed_update_command_rejected(self, platform):
        device, guard, issuer, applied = platform
        command = issuer.issue("update", update_body(2))
        guard.handle(command)
        with pytest.raises(RequestRejected):
            guard.handle(command)
        assert applied == [2]

    def test_stats_aggregate_across_services(self, platform):
        device, guard, issuer, applied = platform
        guard.handle(issuer.issue("update", update_body(2)))
        guard.handle(issuer.issue("erase",
                                  erase_body(device.data_base, 32)))
        try:
            guard.handle(issuer.issue("reboot"))
        except RequestRejected:
            pass
        assert guard.stats.received == 3
        assert guard.stats.executed == 2
        assert guard.stats.rejected_unknown == 1


class TestGuardedAttestation:
    def test_attestation_as_guarded_service(self):
        """Even attestation itself composes behind the guard: the guard
        supplies authentication + freshness, the handler just measures."""
        device = Device(tiny_config())
        device.provision(KEY)
        device.boot(EXT_HARDENED)
        guard = RequestGuard(device)
        attest = device.context("Code_Attest")
        guard.register(
            "attest", lambda body: device.digest_writable_memory(attest))
        issuer = CommandIssuer(KEY)

        command = issuer.issue("attest")
        digest = guard.handle(command)
        tag = guard.authenticate_reply(command, digest)
        assert RequestGuard.check_reply(KEY, command, digest, tag)
        with pytest.raises(RequestRejected):
            guard.handle(command)   # replayed attestation request
