"""IoT swarm: fleet assembly, sweeps, health reporting."""

import pytest

from repro.errors import ConfigurationError
from repro.services.swarm import Swarm
from tests.conftest import tiny_config


@pytest.fixture(scope="module")
def swarm():
    return Swarm(3, device_config=tiny_config(), seed="test-swarm")


class TestAssembly:
    def test_size(self, swarm):
        assert len(swarm) == 3

    def test_members_have_distinct_keys(self, swarm):
        keys = {member.session.key for member in swarm.members}
        assert len(keys) == 3

    def test_member_lookup(self, swarm):
        assert swarm.member("device-001").device_id == "device-001"
        with pytest.raises(KeyError):
            swarm.member("device-999")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Swarm(0)

    def test_per_member_config_override(self):
        mixed = Swarm(2, device_config=tiny_config(),
                      member_configs={1: tiny_config(clock_kind="sw")},
                      seed="test-swarm-mixed")
        assert mixed.members[0].session.device.clock.kind == "hardware"
        assert mixed.members[1].session.device.clock.kind == "software"


class TestSweep:
    def test_healthy_sweep(self, swarm):
        report = swarm.sweep()
        assert report.attempted == 3
        assert report.trusted == 3
        assert report.healthy
        assert report.fleet_energy_mj > 0

    def test_compromised_member_flagged(self):
        fleet = Swarm(2, device_config=tiny_config(), seed="test-swarm-2")
        fleet.members[1].session.device.flash.load(64, b"\xEB\xFE")
        report = fleet.sweep()
        assert report.trusted == 1
        assert report.untrusted == ["device-001"]
        assert not report.healthy

    def test_total_attestations_accumulate(self):
        fleet = Swarm(2, device_config=tiny_config(), seed="test-swarm-3")
        fleet.sweep()
        fleet.sweep()
        assert fleet.total_attestations() == 4
        assert fleet.sweeps_run == 2

    def test_battery_report(self, swarm):
        report = swarm.fleet_battery_report()
        assert set(report) == {"device-000", "device-001", "device-002"}
        assert all(0.0 < fraction <= 1.0 for fraction in report.values())

    def test_staggered_sweep(self):
        fleet = Swarm(2, device_config=tiny_config(), seed="test-swarm-4")
        fleet.sweep(stagger_seconds=1.0)
        t0 = fleet.members[0].session.sim.now
        t1 = fleet.members[1].session.sim.now
        assert t1 > t0
