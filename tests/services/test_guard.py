"""The generalised request guard: any service, same DoS posture."""

import pytest

from repro.errors import ConfigurationError, RequestRejected
from repro.mcu import BASELINE, Device, EXT_HARDENED
from repro.services.guard import (CommandIssuer, GuardedCommand,
                                  RequestGuard)
from tests.conftest import tiny_config

KEY = b"K" * 16


@pytest.fixture
def guarded():
    device = Device(tiny_config())
    device.provision(KEY)
    device.boot(EXT_HARDENED)
    guard = RequestGuard(device)
    log = []
    guard.register("actuate", lambda body: log.append(("actuate", body)))
    guard.register("config-set", lambda body: log.append(("config", body)))
    return device, guard, CommandIssuer(KEY), log


class TestDispatch:
    def test_valid_command_executes(self, guarded):
        device, guard, issuer, log = guarded
        guard.handle(issuer.issue("actuate", b"valve=open"))
        assert log == [("actuate", b"valve=open")]
        assert guard.stats.executed == 1

    def test_commands_route_by_label(self, guarded):
        device, guard, issuer, log = guarded
        guard.handle(issuer.issue("config-set", b"rate=10"))
        guard.handle(issuer.issue("actuate", b"x"))
        assert [entry[0] for entry in log] == ["config", "actuate"]

    def test_unknown_label_rejected_without_burning_counter(self, guarded):
        device, guard, issuer, log = guarded
        command = issuer.issue("reboot", b"")
        with pytest.raises(RequestRejected) as excinfo:
            guard.handle(command)
        assert excinfo.value.reason == "unknown-command"
        # The counter was not committed: the next valid command (with a
        # higher counter) still works, and so would a re-issued one.
        guard.handle(issuer.issue("actuate", b"y"))
        assert guard.stats.executed == 1

    def test_duplicate_registration_rejected(self, guarded):
        device, guard, issuer, log = guarded
        with pytest.raises(ConfigurationError):
            guard.register("actuate", lambda body: None)

    def test_handler_result_returned(self, guarded):
        device, guard, issuer, log = guarded
        guard.register("query", lambda body: b"reading=42")
        assert guard.handle(issuer.issue("query")) == b"reading=42"


class TestSecurity:
    def test_forged_command_rejected(self, guarded):
        device, guard, issuer, log = guarded
        forged = GuardedCommand("actuate", counter=99, body=b"evil",
                                tag=b"f" * 20)
        with pytest.raises(RequestRejected) as excinfo:
            guard.handle(forged)
        assert excinfo.value.reason == "bad-auth"
        assert log == []

    def test_replay_rejected(self, guarded):
        device, guard, issuer, log = guarded
        command = issuer.issue("actuate", b"once")
        guard.handle(command)
        with pytest.raises(RequestRejected) as excinfo:
            guard.handle(command)
        assert excinfo.value.reason == "stale-counter"
        assert len(log) == 1

    def test_cross_label_replay_impossible(self, guarded):
        """A recorded 'actuate' cannot be replayed as 'config-set': the
        label is folded into the MAC."""
        device, guard, issuer, log = guarded
        command = issuer.issue("actuate", b"p")
        relabelled = GuardedCommand("config-set", command.counter,
                                    command.body, command.tag)
        with pytest.raises(RequestRejected) as excinfo:
            guard.handle(relabelled)
        assert excinfo.value.reason == "bad-auth"

    def test_tampered_body_rejected(self, guarded):
        device, guard, issuer, log = guarded
        command = issuer.issue("actuate", b"valve=open")
        tampered = GuardedCommand(command.label, command.counter,
                                  b"valve=EVIL", command.tag)
        with pytest.raises(RequestRejected):
            guard.handle(tampered)

    def test_freshness_state_is_the_protected_word(self, guarded):
        """The guard's counter is counter_R, so EA-MPU hardening covers
        every guarded service at once."""
        device, guard, issuer, log = guarded
        guard.handle(issuer.issue("actuate"))
        attest = device.context("Code_Attest")
        assert device.read_counter(attest) == 1

    def test_shared_counter_across_services(self, guarded):
        device, guard, issuer, log = guarded
        first = issuer.issue("actuate")       # counter 1
        second = issuer.issue("config-set")   # counter 2
        guard.handle(second)
        with pytest.raises(RequestRejected) as excinfo:
            guard.handle(first)               # now stale (reorder defence)
        assert excinfo.value.reason == "stale-counter"


class TestReplies:
    def test_reply_roundtrip(self, guarded):
        device, guard, issuer, log = guarded
        command = issuer.issue("actuate", b"v")
        guard.handle(command)
        tag = guard.authenticate_reply(command, b"done")
        assert RequestGuard.check_reply(KEY, command, b"done", tag)

    def test_reply_binds_command(self, guarded):
        device, guard, issuer, log = guarded
        c1 = issuer.issue("actuate", b"a")
        c2 = issuer.issue("actuate", b"b")
        guard.handle(c1)
        tag = guard.authenticate_reply(c1, b"done")
        assert not RequestGuard.check_reply(KEY, c2, b"done", tag)

    def test_reply_binds_body(self, guarded):
        device, guard, issuer, log = guarded
        command = issuer.issue("actuate", b"a")
        guard.handle(command)
        tag = guard.authenticate_reply(command, b"done")
        assert not RequestGuard.check_reply(KEY, command, b"fail", tag)


class TestCosts:
    def test_rejection_is_cheap(self, guarded):
        device, guard, issuer, log = guarded
        forged = GuardedCommand("actuate", counter=5, body=b"x",
                                tag=b"f" * 20)
        before = device.cpu.cycle_count
        with pytest.raises(RequestRejected):
            guard.handle(forged)
        cost_ms = (device.cpu.cycle_count - before) / 24_000
        assert cost_ms < 1.0   # one short HMAC validation

    def test_counter_rollback_blocked_on_hardened_device(self):
        device = Device(tiny_config())
        device.provision(KEY)
        device.boot(EXT_HARDENED)
        guard = RequestGuard(device)
        guard.register("actuate", lambda body: None)
        issuer = CommandIssuer(KEY)
        guard.handle(issuer.issue("actuate"))
        from repro.errors import MemoryAccessViolation
        with pytest.raises(MemoryAccessViolation):
            device.write_counter(device.make_malware_context(), 0)

    def test_counter_rollback_possible_on_baseline(self):
        """Without counter protection the roaming adversary owns every
        guarded service at once -- the flip side of sharing the word."""
        device = Device(tiny_config())
        device.provision(KEY)
        device.boot(BASELINE)
        guard = RequestGuard(device)
        executed = []
        guard.register("actuate", executed.append)
        issuer = CommandIssuer(KEY)
        command = issuer.issue("actuate", b"open")
        guard.handle(command)
        device.write_counter(device.make_malware_context(),
                             command.counter - 1)
        guard.handle(command)   # replay accepted after rollback
        assert len(executed) == 2
