"""Parallel fleet sweeps are byte-identical to the sequential seed path.

The property at the heart of ``repro.perf.fleet``: for ANY fleet size,
shard count, fault pipeline and retry policy, sharding the fleet across
worker processes (with per-shard digest caches) and merging in shard
order must reproduce the sequential ``Swarm`` transcript exactly --
``SweepReport`` fields, circuit-breaker states, merged telemetry
counters and merged event traces.

The hypothesis suite drives the in-process shard primitive
(``member_indices`` + ``fold_outcomes``) so randomized cases stay fast;
the process-pool path itself is covered by the
:class:`~repro.perf.fleet.FleetEngine` tests below and by
``scripts/fleet_smoke.py``.
"""

import json
from itertools import zip_longest

from hypothesis import given, settings, strategies as st

from repro.core.resilience import RetryPolicy
from repro.mcu.device import DeviceConfig
from repro.mcu.statecache import StateDigestCache
from repro.perf.fleet import (FleetEngine, FleetSpec, default_equivalence_spec,
                              equivalence_check, lossy_link, partition,
                              resolve_workers)
from repro.services.swarm import (MemberSweepOutcome, Swarm, fold_outcomes)
from tests.conftest import tiny_config


def small_config() -> DeviceConfig:
    return tiny_config()


PLAIN_RETRY = RetryPolicy(attempt_timeout_seconds=5.0, max_retries=1)
JITTERED_RETRY = RetryPolicy(attempt_timeout_seconds=5.0, max_retries=2,
                             base_backoff_seconds=1.0, jitter_fraction=0.5)


def build_fleet(size, *, indices=None, retry=None, faults=False,
                cached=False, seed="fleet-prop"):
    return Swarm(size if indices is None else len(indices),
                 device_config=small_config(),
                 member_indices=indices, retry=retry,
                 adversary_factory=lossy_link if faults else None,
                 observe=True,
                 state_cache=StateDigestCache() if cached else None,
                 seed=seed)


def sharded_sweep(size, shards, *, retry, faults, sweeps, stagger):
    """Sweep a fleet split into cached shards; return merged views."""
    blocks = partition(size, shards)
    swarms = [build_fleet(size, indices=tuple(block), retry=retry,
                          faults=faults, cached=True)
              for block in blocks]
    reports = []
    for _ in range(sweeps):
        outcomes = []
        for swarm in swarms:
            outcomes.extend(swarm.sweep_outcomes(stagger_seconds=stagger))
        reports.append(fold_outcomes(outcomes))
    states = {}
    for swarm in swarms:
        states.update(swarm.device_states())
    # Shard pre-merge: each shard folds its own members and ships one
    # dump, exactly like _shard_merged_registry_dump does in-process.
    from repro.obs.registry import MetricsRegistry
    registry = MetricsRegistry()
    for swarm in swarms:
        registry.merge(MetricsRegistry.from_dump(
            swarm.merged_registry().dump()))
    # Shards ship sweep-major segments; the host interleaves them sweep
    # by sweep, exactly like FleetEngine.merged_trace_records.
    records = []
    for row in zip_longest(*[swarm.trace_segments() for swarm in swarms],
                           fillvalue=[]):
        for segment in row:
            for record in segment:
                record["seq"] = len(records)
                records.append(record)
    total = sum(swarm.total_attestations() for swarm in swarms)
    return reports, states, registry.dump(), records, total


@settings(max_examples=12, deadline=None)
@given(size=st.integers(min_value=2, max_value=7),
       shards=st.integers(min_value=2, max_value=4),
       retry=st.sampled_from([None, PLAIN_RETRY, JITTERED_RETRY]),
       faults=st.booleans(),
       sweeps=st.integers(min_value=1, max_value=3),
       stagger=st.sampled_from([0.0, 0.5]))
def test_sharded_equals_sequential(size, shards, retry, faults, sweeps,
                                   stagger):
    sequential = build_fleet(size, retry=retry, faults=faults)
    seq_reports = [sequential.sweep(stagger_seconds=stagger)
                   for _ in range(sweeps)]
    (par_reports, par_states, par_registry,
     par_records, par_total) = sharded_sweep(
        size, shards, retry=retry, faults=faults, sweeps=sweeps,
        stagger=stagger)

    assert par_reports == seq_reports
    assert par_states == sequential.device_states()
    assert par_total == sequential.total_attestations()
    assert (json.dumps(par_registry, sort_keys=True)
            == json.dumps(sequential.merged_registry().dump(),
                          sort_keys=True))
    assert par_records == sequential.merged_trace_records()


class TestShardPrimitives:
    def test_partition_contiguous_and_balanced(self):
        blocks = partition(10, 3)
        assert [list(b) for b in blocks] == [[0, 1, 2, 3], [4, 5, 6],
                                             [7, 8, 9]]
        assert partition(2, 8) == [range(0, 1), range(1, 2)]

    def test_member_indices_name_global_identity(self):
        shard = Swarm(2, device_config=small_config(),
                      member_indices=(5, 9), seed="ids")
        assert [m.device_id for m in shard.members] == ["device-005",
                                                        "device-009"]
        assert [m.index for m in shard.members] == [5, 9]

    def test_member_indices_length_must_match(self):
        import pytest
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            Swarm(3, device_config=small_config(), member_indices=(0, 1))

    def test_member_lookup_uses_index(self):
        fleet = Swarm(4, device_config=small_config(), seed="idx")
        assert fleet.member("device-002") is fleet.members[2]
        assert fleet._members_by_id["device-002"] is fleet.members[2]
        import pytest
        with pytest.raises(KeyError):
            fleet.member("device-999")

    def test_fold_outcomes_matches_sweep_buckets(self):
        outcomes = [
            MemberSweepOutcome("device-000", "trusted", retries=1,
                               energy_delta_mj=0.5, duration_seconds=2.0),
            MemberSweepOutcome("device-001", "untrusted",
                               energy_delta_mj=0.25, duration_seconds=5.0),
            MemberSweepOutcome("device-002", "no_response",
                               duration_seconds=1.0),
            MemberSweepOutcome("device-003", "refused", retries=2),
            MemberSweepOutcome("device-004", "skipped"),
        ]
        report = fold_outcomes(outcomes)
        assert report.attempted == 4
        assert report.trusted == 1
        assert report.untrusted == ["device-001"]
        assert report.no_response == ["device-002"]
        assert report.refused == ["device-003"]
        assert report.skipped_quarantined == ["device-004"]
        assert report.retries == 3
        assert report.fleet_energy_mj == 0.75
        assert report.sweep_seconds == 5.0

    def test_fold_outcomes_rejects_unknown_category(self):
        import pytest
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            fold_outcomes([MemberSweepOutcome("device-000", "banana")])


class TestFleetEngine:
    def test_workers_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_WORKERS", raising=False)
        assert resolve_workers(3) == 3
        assert resolve_workers(8, size=4) == 4
        monkeypatch.setenv("REPRO_FLEET_WORKERS", "5")
        assert resolve_workers() == 5
        assert resolve_workers(2) == 2   # explicit arg wins over env
        monkeypatch.setenv("REPRO_FLEET_WORKERS", "nope")
        import pytest
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            resolve_workers()

    def test_workers_one_is_the_seed_path(self):
        spec = FleetSpec(size=3, device_config=small_config(),
                         seed="seed-path")
        with FleetEngine(spec, workers=1) as engine:
            report = engine.sweep()
            assert engine._swarm is not None
            assert engine._executors is None
            assert engine.cache_stats() == {"hits": 0, "misses": 0,
                                            "evictions": 0, "entries": 0}
        plain = spec.build()
        assert plain.sweep() == report

    def test_process_pool_equivalence(self):
        result = equivalence_check(default_equivalence_spec(4),
                                   workers=2, sweeps=2)
        assert result["identical"], result["mismatched_fields"]

    def test_breaker_state_survives_across_parallel_sweeps(self):
        """Shard swarms are resident: a member that keeps failing must
        degrade and then be quarantined across sweeps, exactly as in the
        sequential fleet."""
        spec = FleetSpec(size=4, device_config=small_config(),
                         adversary_factory=_always_lossy,
                         quarantine_after=2, seed="breaker-fleet")
        sequential = spec.build()
        with FleetEngine(spec, workers=2) as engine:
            for _ in range(3):
                seq_report = sequential.sweep()
                par_report = engine.sweep()
                assert par_report == seq_report
            assert engine.device_states() == sequential.device_states()
            assert set(engine.device_states().values()) == {"quarantined"}


def _always_lossy(index, device_id):
    from repro.net.faults import BernoulliLoss
    return BernoulliLoss(1.0, seed=f"always-lossy:{device_id}")
