"""Secure erasure: proofs, replay protection, EA-MPU interaction."""

import pytest

from repro.errors import MemoryAccessViolation, ProtocolError
from repro.mcu import Device, MMIO_BASE, ROAM_HARDENED
from repro.services.erasure import (EraseProof, EraseRequest,
                                    ErasureManager, ErasureVerifier)
from tests.conftest import tiny_config

KEY = b"K" * 16


@pytest.fixture
def device():
    dev = Device(tiny_config())
    dev.provision(KEY)
    dev.boot(ROAM_HARDENED)
    return dev


class TestHappyPath:
    def test_erase_zeroes_memory(self, device):
        verifier = ErasureVerifier(KEY)
        manager = ErasureManager(device)
        device.ram.load(device.data_base - device.ram.start, b"secret!!")
        request = verifier.order(device.data_base, 64)
        manager.handle(request)
        wiped = device.ram.raw_read(device.data_base - device.ram.start, 64)
        assert wiped == bytes(64)

    def test_proof_validates(self, device):
        verifier = ErasureVerifier(KEY)
        manager = ErasureManager(device)
        request = verifier.order(device.data_base, 128)
        proof = manager.handle(request)
        assert verifier.check_proof(request, proof)
        assert manager.erases_done == 1

    def test_erase_charges_cycles(self, device):
        verifier = ErasureVerifier(KEY)
        manager = ErasureManager(device)
        before = device.cpu.cycle_count
        manager.handle(verifier.order(device.data_base, 1024))
        assert device.cpu.cycle_count > before


class TestRejections:
    def test_forged_request_rejected(self, device):
        manager = ErasureManager(device)
        forged = EraseRequest(start=device.data_base, length=64,
                              nonce=b"n" * 16, tag=b"f" * 20)
        with pytest.raises(ProtocolError, match="authentication"):
            manager.handle(forged)
        assert manager.erases_rejected == 1

    def test_wrong_key_rejected(self, device):
        rogue = ErasureVerifier(b"R" * 16)
        manager = ErasureManager(device)
        with pytest.raises(ProtocolError, match="authentication"):
            manager.handle(rogue.order(device.data_base, 64))

    def test_replay_rejected(self, device):
        verifier = ErasureVerifier(KEY)
        manager = ErasureManager(device)
        request = verifier.order(device.data_base, 64)
        manager.handle(request)
        with pytest.raises(ProtocolError, match="replayed"):
            manager.handle(request)

    def test_protected_range_untouchable(self, device):
        """Even authenticated erase orders cannot wipe the locked MPU
        configuration registers."""
        verifier = ErasureVerifier(KEY)
        manager = ErasureManager(device)
        with pytest.raises(MemoryAccessViolation):
            manager.handle(verifier.order(MMIO_BASE, 16))
        assert manager.erases_rejected == 1


class TestProofSemantics:
    def test_wrong_nonce_proof_fails(self, device):
        verifier = ErasureVerifier(KEY)
        manager = ErasureManager(device)
        request = verifier.order(device.data_base, 64)
        proof = manager.handle(request)
        other = verifier.order(device.data_base + 64, 64)
        assert not verifier.check_proof(other, proof)

    def test_forged_proof_fails(self, device):
        verifier = ErasureVerifier(KEY)
        request = verifier.order(device.data_base, 64)
        from repro.crypto.sha1 import SHA1
        forged = EraseProof(nonce=request.nonce,
                            digest=SHA1(bytes(64)).digest(),
                            tag=b"f" * 20)
        assert not verifier.check_proof(request, forged)

    def test_proof_binds_length(self, device):
        """A proof over the wrong length reports a non-zero digest."""
        verifier = ErasureVerifier(KEY)
        manager = ErasureManager(device)
        request = verifier.order(device.data_base, 64)
        proof = manager.handle(request)
        longer = EraseRequest(start=device.data_base, length=128,
                              nonce=request.nonce, tag=request.tag)
        assert not verifier.check_proof(longer, proof)
