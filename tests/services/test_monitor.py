"""Attestation monitoring policy: retries, alarms, recovery."""

import pytest

from repro.core import build_session
from repro.core.messages import AttestationRequest
from repro.errors import ConfigurationError
from repro.net.channel import Verdict
from repro.services.monitor import (AttestationMonitor, MonitorEvent,
                                    MonitorPolicy)
from tests.conftest import tiny_config


def monitored_session(adversary=None, seed="monitor"):
    session = build_session(device_config=tiny_config(),
                            adversary=adversary, seed=seed)
    session.learn_reference_state()
    return session


def quick_policy(**overrides):
    defaults = dict(interval_seconds=5.0, retry_delay_seconds=3.0,
                    max_retries=1, failure_threshold=2)
    defaults.update(overrides)
    return MonitorPolicy(**defaults)


class DropAllRequests:
    def on_message(self, message, sender, receiver, time):
        if isinstance(message, AttestationRequest):
            return Verdict("drop")
        return Verdict("forward")


class DropFirstN:
    def __init__(self, count):
        self.remaining = count

    def on_message(self, message, sender, receiver, time):
        if isinstance(message, AttestationRequest) and self.remaining > 0:
            self.remaining -= 1
            return Verdict("drop")
        return Verdict("forward")


class TestHealthyOperation:
    def test_all_rounds_ok(self):
        monitor = AttestationMonitor(monitored_session(),
                                     policy=quick_policy())
        events = monitor.run(rounds=3)
        assert [event.kind for event in events] == ["ok"] * 3
        assert not monitor.alarmed

    def test_duty_cost_tracked(self):
        monitor = AttestationMonitor(monitored_session(),
                                     policy=quick_policy())
        monitor.run(rounds=3)
        assert 0.0 < monitor.duty_cost_fraction < 0.1

    def test_interval_spacing(self):
        session = monitored_session()
        monitor = AttestationMonitor(session,
                                     policy=quick_policy(interval_seconds=30.0))
        monitor.run(rounds=2)
        ok_events = [e for e in monitor.events if e.kind == "ok"]
        assert ok_events[1].time - ok_events[0].time >= 30.0


class TestFailureHandling:
    def test_transient_loss_recovered_by_retry(self):
        monitor = AttestationMonitor(
            monitored_session(adversary=DropFirstN(1), seed="mon-retry"),
            policy=quick_policy())
        monitor.run(rounds=1)
        kinds = [event.kind for event in monitor.events]
        assert kinds == ["retry", "ok"]
        assert monitor.consecutive_failures == 0

    def test_persistent_loss_alarms(self):
        monitor = AttestationMonitor(
            monitored_session(adversary=DropAllRequests(), seed="mon-dead"),
            policy=quick_policy())
        monitor.run(rounds=2)
        kinds = [event.kind for event in monitor.events]
        assert kinds.count("failure") == 2
        assert "alarm" in kinds
        assert monitor.alarmed

    def test_alarm_fires_once(self):
        monitor = AttestationMonitor(
            monitored_session(adversary=DropAllRequests(), seed="mon-once"),
            policy=quick_policy())
        monitor.run(rounds=4)
        kinds = [event.kind for event in monitor.events]
        assert kinds.count("alarm") == 1

    def test_recovery_clears_alarm(self):
        # Drop enough requests to cover 2 rounds x (1 try + 1 retry).
        monitor = AttestationMonitor(
            monitored_session(adversary=DropFirstN(4), seed="mon-recover"),
            policy=quick_policy())
        monitor.run(rounds=3)
        kinds = [event.kind for event in monitor.events]
        assert "alarm" in kinds
        assert "recovered" in kinds
        assert kinds[-1] == "ok"
        assert not monitor.alarmed

    def test_compromised_state_alarms(self):
        session = monitored_session(seed="mon-compromise")
        session.device.flash.load(80, b"\xEB\xFE")
        monitor = AttestationMonitor(session, policy=quick_policy())
        monitor.run(rounds=2)
        assert monitor.alarmed
        failures = [e for e in monitor.events if e.kind == "failure"]
        assert "NOT in reference set" in failures[0].detail


class TestValidation:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            MonitorPolicy(interval_seconds=0)
        with pytest.raises(ConfigurationError):
            MonitorPolicy(failure_threshold=0)

    def test_rounds_validation(self):
        monitor = AttestationMonitor(monitored_session(seed="mon-val"),
                                     policy=quick_policy())
        with pytest.raises(ConfigurationError):
            monitor.run(rounds=0)

    def test_event_is_frozen(self):
        event = MonitorEvent(0.0, "ok", "detail")
        with pytest.raises(AttributeError):
            event.kind = "changed"
