"""Energy model, battery, and the duty-cycle task."""

import pytest

from repro.errors import ConfigurationError
from repro.mcu.power import Battery, DutyCycleTask, EnergyModel


class TestEnergyModel:
    def test_active_power(self):
        model = EnergyModel(frequency_hz=24_000_000, active_mw_per_mhz=0.3)
        assert model.active_power_mw == pytest.approx(7.2)

    def test_active_energy_linear(self):
        model = EnergyModel()
        one = model.active_energy_mj(24_000_000)   # one second active
        assert one == pytest.approx(7.2)
        assert model.active_energy_mj(48_000_000) == pytest.approx(2 * one)

    def test_sleep_energy(self):
        model = EnergyModel(sleep_uw=2.0)
        assert model.sleep_energy_mj(1000.0) == pytest.approx(2.0)

    def test_sleep_far_cheaper_than_active(self):
        model = EnergyModel()
        assert model.active_energy_mj(24_000_000) > \
            1000 * model.sleep_energy_mj(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(frequency_hz=0)
        with pytest.raises(ConfigurationError):
            EnergyModel(active_mw_per_mhz=0)


class TestBattery:
    def test_drain_and_remaining(self):
        battery = Battery(capacity_mj=100.0)
        battery.drain_active(24_000_000)   # 7.2 mJ
        assert battery.consumed_mj == pytest.approx(7.2)
        assert battery.remaining_mj == pytest.approx(92.8)
        assert not battery.depleted

    def test_depletion(self):
        battery = Battery(capacity_mj=7.0)
        battery.drain_active(24_000_000)
        assert battery.depleted
        assert battery.remaining_mj == 0.0

    def test_fraction(self):
        battery = Battery(capacity_mj=10.0)
        battery.drain_sleep(2_500)   # 2500 s * 2 uW = 5 mJ
        assert battery.fraction_remaining == pytest.approx(0.5)

    def test_sleep_lifetime(self):
        battery = Battery(capacity_mj=1000.0)
        # 1000 mJ at 2 uW (= 0.002 mW) lasts 500 000 s.
        assert battery.lifetime_at_sleep_seconds() == pytest.approx(500_000)

    def test_counters(self):
        battery = Battery()
        battery.drain_active(100)
        battery.drain_sleep(3.0)
        assert battery.active_cycles == 100
        assert battery.sleep_seconds == 3.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            Battery(capacity_mj=0)


class TestDutyCycleTask:
    def test_no_blocking_no_misses(self):
        task = DutyCycleTask("sense", period_seconds=1.0, job_cycles=24_000)
        assert task.missed_deadlines(10.0) == 0
        assert task.deadlines_in(10.0) == 10

    def test_blocked_period_missed(self):
        task = DutyCycleTask("sense", period_seconds=1.0,
                             job_cycles=2_400_000)   # 0.1 s job
        task.record_blocked(2.0, 3.0)   # swallows release at t=2 entirely
        assert task.missed_deadlines(10.0) == 1

    def test_partial_block_with_room_left(self):
        task = DutyCycleTask("sense", period_seconds=1.0,
                             job_cycles=2_400_000)
        task.record_blocked(2.0, 2.5)   # half the window free: job fits
        assert task.missed_deadlines(10.0) == 0

    def test_partial_block_too_tight(self):
        task = DutyCycleTask("sense", period_seconds=1.0,
                             job_cycles=23_000_000)  # ~0.96 s job
        task.record_blocked(2.0, 2.1)
        assert task.missed_deadlines(10.0) == 1

    def test_long_block_spans_periods(self):
        task = DutyCycleTask("sense", period_seconds=1.0,
                             job_cycles=12_000_000)  # 0.5 s job
        task.record_blocked(1.0, 4.2)
        assert task.missed_deadlines(10.0) == 3

    def test_blocked_total(self):
        task = DutyCycleTask("t", 1.0, 1000)
        task.record_blocked(0.0, 0.5)
        task.record_blocked(2.0, 2.25)
        assert task.blocked_total_seconds == pytest.approx(0.75)

    def test_ignores_empty_interval(self):
        task = DutyCycleTask("t", 1.0, 1000)
        task.record_blocked(1.0, 1.0)
        assert task.blocked_total_seconds == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DutyCycleTask("t", 0, 100)
        with pytest.raises(ConfigurationError):
            DutyCycleTask("t", 1.0, 0)
