"""Differential testing of the EA-MPU against a per-byte reference model.

The production check uses interval algebra for speed; the reference model
below evaluates the TrustLite semantics byte by byte.  Hypothesis drives
random rule tables, contexts and accesses through both; any divergence is
a bug in the fast path.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import MemoryAccessViolation
from repro.mcu.cpu import ExecutionContext
from repro.mcu.mpu import ExecutionAwareMPU

ADDRESS_SPACE = 256  # small space so random rules collide often


def reference_allows(rules, ctx_start, ctx_end, access, start, end) -> bool:
    """Byte-by-byte TrustLite semantics."""
    for address in range(start, end):
        covering = [rule for rule in rules if rule.covers(address)]
        if not covering:
            continue
        granted = any(
            (rule.allow_read if access == "read" else rule.allow_write)
            and rule.code_matches(ctx_start, ctx_end)
            for rule in covering)
        if not granted:
            return False
    return True


span = st.tuples(st.integers(0, ADDRESS_SPACE - 1),
                 st.integers(0, ADDRESS_SPACE - 1)).map(
    lambda t: (min(t), max(t) + 1))

rule_spec = st.fixed_dictionaries({
    "code": span,
    "data": span,
    "read": st.booleans(),
    "write": st.booleans(),
})


@given(rule_specs=st.lists(rule_spec, max_size=6),
       ctx=span,
       access_span=span,
       access=st.sampled_from(["read", "write"]))
@settings(max_examples=300, deadline=None)
def test_interval_check_matches_per_byte_reference(rule_specs, ctx,
                                                   access_span, access):
    mpu = ExecutionAwareMPU(max_rules=max(1, len(rule_specs)))
    for index, spec in enumerate(rule_specs):
        mpu.program_rule(index, code=spec["code"], data=spec["data"],
                         read=spec["read"], write=spec["write"])
    mpu.set_enabled(True)

    context = ExecutionContext("ctx", *ctx)
    start, end = access_span
    expected = reference_allows(mpu.rules(), ctx[0], ctx[1], access,
                                start, end)
    try:
        mpu.check_access(context, access, start, end - start)
        actual = True
    except MemoryAccessViolation:
        actual = False
    assert actual == expected, (
        f"divergence: rules={mpu.rules()}, ctx={ctx}, "
        f"access={access} span={access_span}")


@given(rule_specs=st.lists(rule_spec, min_size=1, max_size=4),
       data=st.data())
@settings(max_examples=100, deadline=None)
def test_register_file_roundtrip_random_rules(rule_specs, data):
    """Random rules encode and decode identically through the register
    file bytes."""
    mpu = ExecutionAwareMPU(max_rules=len(rule_specs))
    programmed = []
    for index, spec in enumerate(rule_specs):
        programmed.append(mpu.program_rule(
            index, code=spec["code"], data=spec["data"],
            read=spec["read"], write=spec["write"]))
    decoded = mpu.rules()
    assert decoded == programmed
    # Byte-level readback reconstructs each field.
    from repro.mcu.mpu import RULE_BASE_OFFSET, RULE_STRIDE
    index = data.draw(st.integers(0, len(rule_specs) - 1))
    base = RULE_BASE_OFFSET + RULE_STRIDE * index
    code_start = int.from_bytes(
        bytes(mpu.mmio_read(base + i, None) for i in range(4)), "little")
    assert code_start == rule_specs[index]["code"][0]
