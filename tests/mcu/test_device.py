"""Device assembly: secure boot, profile enforcement, measurement."""

import pytest

from repro.errors import (ConfigurationError, MemoryAccessViolation,
                          SecureBootError)
from repro.mcu import (BASELINE, Device, DeviceConfig, EXT_HARDENED,
                       MMIO_BASE, ROAM_HARDENED, UNPROTECTED)
from tests.conftest import tiny_config

KEY = b"K" * 16


def booted(profile, **overrides):
    device = Device(tiny_config(**overrides))
    device.provision(KEY)
    device.boot(profile)
    return device


class TestConstruction:
    def test_memory_map_regions(self):
        device = Device(tiny_config())
        names = {region.name for region in device.memory}
        assert {"rom", "flash", "ram", "mpu-config",
                "irq-mask", "clock-register"} <= names

    def test_rejects_unknown_clock(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(clock_kind="sundial")

    def test_rejects_oversized_app(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(flash_size=4096, app_size=8192)

    def test_no_clock_variant(self):
        device = Device(tiny_config(clock_kind="none"))
        assert device.clock is None

    def test_writable_memory_bytes(self):
        device = Device(tiny_config())
        assert device.writable_memory_bytes == 8 * 1024 + 16 * 1024


class TestProvisionAndBoot:
    def test_provision_requires_16_byte_key(self):
        device = Device(tiny_config())
        with pytest.raises(ConfigurationError):
            device.provision(b"short")

    def test_boot_verifies_application(self):
        device = booted(BASELINE)
        assert device.booted
        assert device.boot_profile is BASELINE

    def test_boot_rejects_tampered_application(self):
        device = Device(tiny_config())
        device.provision(KEY)
        # Corrupt one byte of the installed app before boot.
        device.flash.load(10, b"\xFF")
        with pytest.raises(SecureBootError):
            device.boot(BASELINE)
        assert not device.booted

    def test_double_boot_rejected(self):
        device = booted(BASELINE)
        with pytest.raises(ConfigurationError):
            device.boot(BASELINE)

    def test_rule_budget_per_profile(self):
        assert booted(UNPROTECTED).mpu.active_rule_count == 0
        assert booted(BASELINE).mpu.active_rule_count == 2
        assert booted(EXT_HARDENED).mpu.active_rule_count == 3
        assert booted(ROAM_HARDENED).mpu.active_rule_count == 4
        assert booted(ROAM_HARDENED,
                      clock_kind="sw").mpu.active_rule_count == 7


class TestKeyProtection:
    def test_attest_reads_key(self):
        device = booted(ROAM_HARDENED)
        assert device.read_key(device.context("Code_Attest")) == KEY

    def test_app_cannot_read_key(self):
        device = booted(ROAM_HARDENED)
        with pytest.raises(MemoryAccessViolation):
            device.read_key(device.context("app"))

    def test_malware_cannot_read_key(self):
        device = booted(BASELINE)
        with pytest.raises(MemoryAccessViolation):
            device.read_key(device.make_malware_context())

    def test_unprotected_leaks_key(self):
        device = booted(UNPROTECTED)
        assert device.read_key(device.make_malware_context()) == KEY

    def test_key_in_flash_variant(self):
        device = booted(ROAM_HARDENED, key_in_rom=False)
        assert device.read_key(device.context("Code_Attest")) == KEY
        with pytest.raises(MemoryAccessViolation):
            device.read_key(device.context("app"))

    def test_key_in_flash_write_protected_by_rule(self):
        device = booted(ROAM_HARDENED, key_in_rom=False)
        malware = device.make_malware_context()
        with pytest.raises(MemoryAccessViolation):
            with device.cpu.running(malware):
                device.bus.write(malware, device.key_address, b"\x00" * 16)

    def test_key_in_rom_hardware_write_protected(self):
        device = booted(UNPROTECTED)
        malware = device.make_malware_context()
        with pytest.raises(MemoryAccessViolation):
            with device.cpu.running(malware):
                device.bus.write(malware, device.key_address, b"\x00" * 16)


class TestCounterProtection:
    def test_attest_owns_counter(self):
        device = booted(EXT_HARDENED)
        attest = device.context("Code_Attest")
        device.write_counter(attest, 99)
        assert device.read_counter(attest) == 99

    def test_malware_rollback_blocked_when_hardened(self):
        device = booted(EXT_HARDENED)
        with pytest.raises(MemoryAccessViolation):
            device.write_counter(device.make_malware_context(), 1)

    def test_malware_rollback_works_on_baseline(self):
        device = booted(BASELINE)
        malware = device.make_malware_context()
        device.write_counter(malware, 7)
        assert device.read_counter(device.context("Code_Attest")) == 7


class TestClockProtection:
    @pytest.mark.parametrize("kind", ["hw64", "hw32div"])
    def test_hw_clock_write_blocked_when_hardened(self, kind):
        device = booted(ROAM_HARDENED, clock_kind=kind)
        malware = device.make_malware_context()
        with pytest.raises(MemoryAccessViolation):
            with device.cpu.running(malware):
                device.bus.write(malware, device.clock_register_span[0],
                                 b"\x00")

    def test_hw_clock_write_possible_on_baseline(self):
        device = booted(BASELINE)
        malware = device.make_malware_context()
        device.idle_seconds(0.01)
        before = device.read_clock_ticks(malware)
        with device.cpu.running(malware):
            device.bus.write(malware, device.clock_register_span[0],
                             bytes(8))
        assert device.read_clock_ticks(malware) < before

    def test_clock_readable_by_everyone(self):
        device = booted(ROAM_HARDENED)
        device.idle_seconds(0.01)
        assert device.read_clock_ticks(device.context("app")) > 0

    def test_sw_clock_protections(self):
        device = booted(ROAM_HARDENED, clock_kind="sw")
        malware = device.make_malware_context()
        for address, data in [(device.clock_msb_address, bytes(8)),
                              (device.idt_base, bytes(4)),
                              (MMIO_BASE + 0x1100, b"\x00")]:
            with pytest.raises(MemoryAccessViolation):
                with device.cpu.running(malware):
                    device.bus.write(malware, address, data)

    def test_no_clock_read_raises(self):
        device = booted(BASELINE, clock_kind="none")
        with pytest.raises(ConfigurationError):
            device.read_clock_ticks(device.context("app"))


class TestLockdown:
    def test_mpu_config_immutable_after_boot(self):
        device = booted(BASELINE)
        malware = device.make_malware_context()
        with pytest.raises(MemoryAccessViolation):
            with device.cpu.running(malware):
                device.bus.write(malware, MMIO_BASE, b"\x00")

    def test_even_trusted_code_cannot_reconfigure(self):
        device = booted(ROAM_HARDENED)
        attest = device.context("Code_Attest")
        with pytest.raises(MemoryAccessViolation):
            with device.cpu.running(attest):
                device.bus.write(attest, MMIO_BASE, b"\x00")

    def test_config_still_readable(self):
        device = booted(ROAM_HARDENED)
        app = device.context("app")
        with device.cpu.running(app):
            assert device.bus.read(app, MMIO_BASE, 1)


class TestMeasurement:
    def test_measurement_deterministic(self):
        device = booted(ROAM_HARDENED)
        attest = device.context("Code_Attest")
        a = device.digest_writable_memory(attest)
        b = device.digest_writable_memory(attest)
        assert a == b

    def test_measurement_sees_app_changes(self):
        device = booted(ROAM_HARDENED)
        attest = device.context("Code_Attest")
        before = device.digest_writable_memory(attest)
        device.flash.load(100, b"\xEB\xFE")   # post-boot infection
        assert device.digest_writable_memory(attest) != before

    def test_measurement_excludes_reserved_words(self):
        device = booted(EXT_HARDENED)
        attest = device.context("Code_Attest")
        before = device.digest_writable_memory(attest)
        device.write_counter(attest, 12345)
        assert device.digest_writable_memory(attest) == before

    def test_measurement_charges_cycles(self):
        device = booted(ROAM_HARDENED)
        attest = device.context("Code_Attest")
        start = device.cpu.cycle_count
        device.digest_writable_memory(attest)
        elapsed_ms = (device.cpu.cycle_count - start) / 24_000
        # 24 KB at ~0.092 ms per 64-byte block ~= 35 ms.
        assert 25 < elapsed_ms < 50

    def test_keyed_measurement(self):
        device = booted(ROAM_HARDENED)
        attest = device.context("Code_Attest")
        mac = device.measure_writable_memory(attest, KEY, b"challenge")
        assert len(mac) == 20
        assert mac != device.measure_writable_memory(attest, KEY, b"other")


class TestEnergyAccounting:
    def test_active_cycles_drain_battery(self):
        device = booted(BASELINE)
        device.sync_energy()
        before = device.battery.consumed_mj
        device.cpu.consume_cycles(24_000_000)
        device.sync_energy()
        assert device.battery.consumed_mj - before == pytest.approx(7.2,
                                                                    rel=0.01)

    def test_idle_is_cheap(self):
        device = booted(BASELINE)
        device.sync_energy()
        before = device.battery.consumed_mj
        device.idle_seconds(10.0)
        active_equivalent = device.energy.active_energy_mj(240_000_000)
        assert device.battery.consumed_mj - before < active_equivalent / 100

    def test_idle_advances_clock(self):
        device = booted(BASELINE)
        device.idle_seconds(1.0)
        assert device.cpu.elapsed_seconds >= 1.0
