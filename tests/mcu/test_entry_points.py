"""Code entry-point enforcement (Section 6.2's runtime-attack defence)."""

import pytest

from repro.errors import ConfigurationError, EntryPointViolation
from repro.mcu import Device, ROAM_HARDENED
from repro.mcu.cpu import CPU, ExecutionContext
from tests.conftest import tiny_config


class TestCpuEnforcement:
    def test_canonical_entry_allowed(self):
        cpu = CPU()
        ctx = ExecutionContext("t", 0x100, 0x200, entry_points=(0x100,))
        with cpu.running(ctx, entry=0x100):
            assert cpu.current_context is ctx

    def test_default_entry_always_allowed(self):
        cpu = CPU()
        ctx = ExecutionContext("t", 0x100, 0x200, entry_points=(0x100,))
        with cpu.running(ctx):
            assert cpu.current_context is ctx

    def test_mid_body_entry_trapped(self):
        cpu = CPU()
        ctx = ExecutionContext("t", 0x100, 0x200, entry_points=(0x100,))
        with pytest.raises(EntryPointViolation):
            cpu.push_context(ctx, entry=0x140)
        assert cpu.current_context is None

    def test_multiple_entry_points(self):
        cpu = CPU()
        ctx = ExecutionContext("t", 0x100, 0x200,
                               entry_points=(0x100, 0x180))
        with cpu.running(ctx, entry=0x180):
            pass

    def test_unconstrained_context_enters_anywhere(self):
        cpu = CPU()
        ctx = ExecutionContext("app", 0x100, 0x200)
        with cpu.running(ctx, entry=0x1F3):
            pass

    def test_enforcement_can_be_absent(self):
        cpu = CPU(enforce_entry_points=False)
        ctx = ExecutionContext("t", 0x100, 0x200, entry_points=(0x100,))
        with cpu.running(ctx, entry=0x140):   # no trap on this core
            pass

    def test_entry_point_must_lie_in_code(self):
        with pytest.raises(ConfigurationError):
            ExecutionContext("t", 0x100, 0x200, entry_points=(0x300,))


class TestDeviceIntegration:
    def test_trusted_modules_single_entry(self):
        device = Device(tiny_config())
        attest = device.context("Code_Attest")
        assert attest.entry_points == (attest.code_start,)
        clock = device.context("Code_Clock")
        assert clock.entry_points == (clock.code_start,)

    def test_app_and_malware_unconstrained(self):
        device = Device(tiny_config())
        device.provision(b"K" * 16)
        device.boot(ROAM_HARDENED)
        assert device.context("app").entry_points is None
        assert device.make_malware_context().entry_points is None

    def test_code_reuse_key_read_trapped(self):
        device = Device(tiny_config())
        device.provision(b"K" * 16)
        device.boot(ROAM_HARDENED)
        attest = device.context("Code_Attest")
        with pytest.raises(EntryPointViolation):
            with device.cpu.running(attest, entry=attest.code_start + 0x40):
                device.bus.read(attest, device.key_address, 16)

    def test_weak_core_leaks_key_to_code_reuse(self):
        device = Device(tiny_config(enforce_entry_points=False))
        device.provision(b"K" * 16)
        device.boot(ROAM_HARDENED)
        attest = device.context("Code_Attest")
        with device.cpu.running(attest, entry=attest.code_start + 0x40):
            stolen = device.bus.read(attest, device.key_address, 16)
        assert stolen == b"K" * 16


class TestRoamingIntegration:
    def test_roaming_code_reuse_blocked_on_hardened_core(self):
        from repro.attacks.scenarios import run_roaming_attack
        from repro.mcu import ROAM_HARDENED as PROFILE
        record = run_roaming_attack(strategy="counter-rollback",
                                    policy="counter", profile=PROFILE,
                                    seed="t-entry-1")
        compromise = record.outcome.compromise
        assert not compromise.key_extracted
        assert not compromise.key_extracted_via_code_reuse
        assert "jump-into-code-attest" in compromise.denied

    def test_roaming_code_reuse_succeeds_on_weak_core(self):
        """EA-MPU rules alone are insufficient on a core without entry
        enforcement: the jump inherits Code_Attest's read privilege --
        exactly why Section 6.2 lists entry limiting / CFI as required
        complements."""
        from repro.attacks.roaming import RoamingAdversary
        from repro.core import build_session
        session = build_session(
            profile=ROAM_HARDENED, policy_name="counter",
            device_config=tiny_config(enforce_entry_points=False),
            seed="t-entry-2")
        session.attest_once()
        lag = session.sim.now - session.device.cpu.elapsed_seconds
        if lag > 0:
            session.device.idle_seconds(lag)
        adversary = RoamingAdversary(session)
        adversary.phase1_eavesdrop()
        report = adversary.phase2_compromise("counter-rollback")
        assert report.key_extracted_via_code_reuse
        assert report.stolen_key == session.key
