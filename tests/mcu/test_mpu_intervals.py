"""Edge cases of the MPU's interval primitives.

``span_unruled`` gates the zero-copy bulk read path and
``data_overlap`` feeds both ``check_access`` and the static verifier,
so their half-open boundary behaviour -- adjacent spans, zero-length
spans, the rule over the MPU's own register file -- must be pinned
exactly.
"""

from repro.mcu.device import MMIO_BASE
from repro.mcu.mpu import (ALL_CODE, ExecutionAwareMPU, MPURule,
                           intersect_intervals, merge_intervals,
                           subtract_intervals)


def make_mpu(*rule_specs) -> ExecutionAwareMPU:
    mpu = ExecutionAwareMPU(max_rules=8)
    for index, (data, read, write) in enumerate(rule_specs):
        mpu.program_rule(index, code=ALL_CODE, data=data, read=read,
                         write=write)
    mpu.set_enabled(True)
    return mpu


class TestDataOverlap:
    def test_adjacent_ranges_do_not_overlap(self):
        rule = MPURule(index=0, code_start=0, code_end=0xFFFFFFFF,
                       data_start=0x1000, data_end=0x2000,
                       allow_read=True, allow_write=False, hardwired=False)
        # Touching at the boundary: [0x1000, 0x2000) vs [0x2000, 0x3000).
        assert rule.data_overlap(0x2000, 0x3000) is None
        assert rule.data_overlap(0x0000, 0x1000) is None

    def test_one_byte_overlap_at_each_edge(self):
        rule = MPURule(index=0, code_start=0, code_end=0xFFFFFFFF,
                       data_start=0x1000, data_end=0x2000,
                       allow_read=True, allow_write=False, hardwired=False)
        assert rule.data_overlap(0x1FFF, 0x3000) == (0x1FFF, 0x2000)
        assert rule.data_overlap(0x0000, 0x1001) == (0x1000, 0x1001)

    def test_zero_length_query_never_overlaps(self):
        rule = MPURule(index=0, code_start=0, code_end=0xFFFFFFFF,
                       data_start=0x1000, data_end=0x2000,
                       allow_read=True, allow_write=False, hardwired=False)
        assert rule.data_overlap(0x1800, 0x1800) is None

    def test_contained_and_containing_spans(self):
        rule = MPURule(index=0, code_start=0, code_end=0xFFFFFFFF,
                       data_start=0x1000, data_end=0x2000,
                       allow_read=True, allow_write=False, hardwired=False)
        assert rule.data_overlap(0x1400, 0x1800) == (0x1400, 0x1800)
        assert rule.data_overlap(0x0000, 0xF000) == (0x1000, 0x2000)

    def test_covers_is_half_open(self):
        rule = MPURule(index=0, code_start=0, code_end=0xFFFFFFFF,
                       data_start=0x1000, data_end=0x2000,
                       allow_read=True, allow_write=False, hardwired=False)
        assert rule.covers(0x1000)
        assert rule.covers(0x1FFF)
        assert not rule.covers(0x2000)
        assert not rule.covers(0x0FFF)


class TestSpanUnruled:
    def test_disabled_mpu_everything_unruled(self):
        mpu = ExecutionAwareMPU()
        assert mpu.span_unruled(0, 1 << 32)

    def test_span_adjacent_to_rule_is_unruled(self):
        mpu = make_mpu(((0x1000, 0x2000), True, False))
        assert mpu.span_unruled(0x2000, 0x3000)
        assert mpu.span_unruled(0x0800, 0x1000)

    def test_one_byte_into_rule_is_ruled(self):
        mpu = make_mpu(((0x1000, 0x2000), True, False))
        assert not mpu.span_unruled(0x1FFF, 0x2000)
        assert not mpu.span_unruled(0x0FFF, 0x1001)

    def test_zero_length_span_is_unruled(self):
        mpu = make_mpu(((0x1000, 0x2000), True, False))
        assert mpu.span_unruled(0x1800, 0x1800)

    def test_full_register_file_rule(self):
        # The lockdown idiom: one rule covering the MPU's entire
        # register file.  Every sub-span of the file is ruled; the byte
        # past the end is not.
        mpu = ExecutionAwareMPU(max_rules=8)
        span = (MMIO_BASE, MMIO_BASE + mpu.register_file_size)
        mpu.program_rule(0, code=ALL_CODE, data=span, read=True,
                         write=False)
        mpu.set_enabled(True)
        assert not mpu.span_unruled(*span)
        assert not mpu.span_unruled(span[0], span[0] + 1)
        assert not mpu.span_unruled(span[1] - 1, span[1])
        assert mpu.span_unruled(span[1], span[1] + 4)


class TestIntervalHelpers:
    def test_merge_adjacent_intervals_coalesce(self):
        assert merge_intervals([(0, 4), (4, 8)]) == [(0, 8)]

    def test_merge_drops_empty_intervals(self):
        assert merge_intervals([(4, 4), (1, 2)]) == [(1, 2)]

    def test_subtract_splits_interval(self):
        assert subtract_intervals([(0, 10)], [(4, 6)]) == [(0, 4), (6, 10)]

    def test_subtract_touching_edge_removes_nothing(self):
        assert subtract_intervals([(0, 4)], [(4, 8)]) == [(0, 4)]

    def test_intersect_touching_is_empty(self):
        assert intersect_intervals([(0, 4)], [(4, 8)]) == []

    def test_intersect_merges_result(self):
        assert intersect_intervals([(0, 10)], [(2, 4), (4, 6)]) == [(2, 6)]

    def test_private_aliases_still_importable(self):
        # tests/test_properties.py and downstream users import the old
        # underscore names; keep them aliased to the public functions.
        from repro.mcu.mpu import _merge_intervals, _subtract_intervals
        assert _merge_intervals is merge_intervals
        assert _subtract_intervals is subtract_intervals
