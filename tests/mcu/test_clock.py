"""Clock designs: wide hardware register and the Figure 1b SW-clock."""

import pytest

from repro.errors import ConfigurationError
from repro.mcu.clock import SoftwareClock, WideHardwareClock
from repro.mcu.cpu import CPU, ExecutionContext
from repro.mcu.interrupts import InterruptController
from repro.mcu.memory import MemoryBus, MemoryMap, MemoryRegion, MemoryType


class TestWideHardwareClock:
    def test_tracks_time(self):
        cpu = CPU(24_000_000)
        clock = WideHardwareClock(cpu, width_bits=64)
        cpu.consume_cycles(24_000_000)
        assert clock.read_ticks() == 24_000_000
        assert clock.read_seconds() == pytest.approx(1.0)

    def test_divided_resolution(self):
        cpu = CPU(24_000_000)
        clock = WideHardwareClock(cpu, width_bits=32, divider=1 << 20)
        assert clock.resolution_seconds == pytest.approx((1 << 20) / 24e6)
        cpu.consume_cycles(3 * (1 << 20))
        assert clock.read_ticks() == 3

    def test_ticks_for_seconds(self):
        clock = WideHardwareClock(CPU(24_000_000), width_bits=64)
        assert clock.ticks_for_seconds(1.0) == 24_000_000

    def test_kind(self):
        assert WideHardwareClock(CPU(), width_bits=64).kind == "hardware"


def make_sw_clock(lsb_bits=8, divider=1):
    cpu = CPU(24_000_000)
    mm = MemoryMap()
    mm.add(MemoryRegion("rom", 0x0000, 0x1000, MemoryType.ROM,
                        executable=True))
    mm.add(MemoryRegion("ram", 0x2000, 0x1000, MemoryType.RAM))
    bus = MemoryBus(mm)
    ic = InterruptController(cpu, bus, idt_base=0x2000, num_irqs=2)
    clock_ctx = ExecutionContext("Code_Clock", 0x0100, 0x0200)
    clock = SoftwareClock(cpu, bus, ic, msb_address=0x2100,
                          code_clock_context=clock_ctx,
                          handler_address=0x0100, irq=0,
                          lsb_width_bits=lsb_bits, divider=divider)
    return cpu, bus, ic, clock


class TestSoftwareClock:
    def test_composed_value(self):
        cpu, bus, ic, clock = make_sw_clock(lsb_bits=8)
        cpu.consume_cycles(1000)
        # Interrupt dispatch itself consumes cycles, so the clock may lag
        # the cycle counter by up to one un-serviced wrap; the next tick
        # catches it up.
        cpu.consume_cycles(1)
        assert clock.wraps_serviced >= 3
        assert cpu.cycle_count - 256 <= clock.read_ticks() <= cpu.cycle_count

    def test_msb_word_in_ram(self):
        cpu, bus, ic, clock = make_sw_clock(lsb_bits=8)
        cpu.consume_cycles(520)
        assert bus.read_u64(None, 0x2100) == 2

    def test_masked_interrupt_stops_clock(self):
        cpu, bus, ic, clock = make_sw_clock(lsb_bits=8)
        cpu.consume_cycles(300)
        ic.mask.disable(0)
        cpu.consume_cycles(1000)
        # MSB frozen; only the LSB contributes.
        assert clock.read_ticks() < 1300
        assert clock.stopped()

    def test_idt_redirect_stops_clock(self):
        cpu, bus, ic, clock = make_sw_clock(lsb_bits=8)
        bus.write_u32(None, 0x2000, 0x0F00)   # dead vector
        cpu.consume_cycles(600)
        assert clock.read_ticks() < 600
        assert clock.stopped()

    def test_divided_lsb(self):
        cpu, bus, ic, clock = make_sw_clock(lsb_bits=8, divider=4)
        cpu.consume_cycles(4 * 256)
        assert clock.wraps_serviced == 1
        expected = cpu.cycle_count // 4
        assert expected - 256 <= clock.read_ticks() <= expected

    def test_handler_cost_charged(self):
        cpu, bus, ic, clock = make_sw_clock(lsb_bits=8)
        cpu.consume_cycles(256)
        # wrap dispatch + handler cost got added on top
        assert cpu.cycle_count > 256

    def test_resolution_and_wrap_interval(self):
        cpu, bus, ic, clock = make_sw_clock(lsb_bits=8, divider=2)
        assert clock.resolution_seconds == pytest.approx(2 / 24e6)
        assert clock.lsb_wrap_interval_seconds == pytest.approx(512 / 24e6)

    def test_read_seconds(self):
        cpu, bus, ic, clock = make_sw_clock(lsb_bits=8)
        cpu.consume_cycles(24_000)
        assert clock.read_seconds() == pytest.approx(0.001, rel=0.05)

    def test_rejects_wide_lsb(self):
        cpu = CPU()
        mm = MemoryMap()
        mm.add(MemoryRegion("ram", 0, 0x1000, MemoryType.RAM))
        bus = MemoryBus(mm)
        ic = InterruptController(cpu, bus, idt_base=0, num_irqs=1)
        ctx = ExecutionContext("c", 0x100, 0x200)
        with pytest.raises(ConfigurationError):
            SoftwareClock(cpu, bus, ic, msb_address=0x100,
                          code_clock_context=ctx, handler_address=0x100,
                          lsb_width_bits=64)

    def test_kind(self):
        cpu, bus, ic, clock = make_sw_clock()
        assert clock.kind == "software"
