"""Memory regions, the address map, and the bus access path."""

import pytest

from repro.errors import ConfigurationError, MemoryAccessViolation
from repro.mcu.memory import (MemoryBus, MemoryMap, MemoryRegion, MemoryType)


def make_map():
    mm = MemoryMap()
    mm.add(MemoryRegion("rom", 0x0000, 0x1000, MemoryType.ROM,
                        executable=True))
    mm.add(MemoryRegion("ram", 0x2000, 0x1000, MemoryType.RAM))
    mm.add(MemoryRegion("flash", 0x4000, 0x1000, MemoryType.FLASH))
    return mm


class TestRegion:
    def test_bounds(self):
        region = MemoryRegion("r", 0x100, 0x50, MemoryType.RAM)
        assert region.end == 0x150
        assert region.contains(0x100)
        assert region.contains(0x14F)
        assert not region.contains(0x150)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            MemoryRegion("r", 0, 0, MemoryType.RAM)

    def test_rejects_negative_base(self):
        with pytest.raises(ConfigurationError):
            MemoryRegion("r", -1, 4, MemoryType.RAM)

    def test_mmio_requires_peripheral(self):
        with pytest.raises(ConfigurationError):
            MemoryRegion("r", 0, 4, MemoryType.MMIO)

    def test_non_mmio_rejects_peripheral(self):
        class Dummy:
            def mmio_read(self, o, c): return 0
            def mmio_write(self, o, v, c): return None
        with pytest.raises(ConfigurationError):
            MemoryRegion("r", 0, 4, MemoryType.RAM, peripheral=Dummy())

    def test_load_and_raw_read(self):
        region = MemoryRegion("r", 0, 16, MemoryType.RAM)
        region.load(4, b"abcd")
        assert region.raw_read(4, 4) == b"abcd"
        assert region.raw_read(0, 4) == bytes(4)

    def test_load_out_of_bounds(self):
        region = MemoryRegion("r", 0, 8, MemoryType.RAM)
        with pytest.raises(ConfigurationError):
            region.load(6, b"abcd")

    def test_snapshot(self):
        region = MemoryRegion("r", 0, 8, MemoryType.RAM)
        region.load(0, b"12345678")
        snap = region.snapshot()
        region.load(0, bytes(8))
        assert snap == b"12345678"

    def test_rom_not_hardware_writable(self):
        assert not MemoryRegion("r", 0, 4, MemoryType.ROM).is_writable_hardware
        assert MemoryRegion("r", 0, 4, MemoryType.RAM).is_writable_hardware
        assert MemoryRegion("r", 0, 4, MemoryType.FLASH).is_writable_hardware


class TestMemoryMap:
    def test_find(self):
        mm = make_map()
        assert mm.find(0x2100).name == "ram"
        assert mm.find(0x1500) is None

    def test_lookup_by_name(self):
        mm = make_map()
        assert mm.region("flash").start == 0x4000
        assert "rom" in mm
        assert "nope" not in mm

    def test_rejects_overlap(self):
        mm = make_map()
        with pytest.raises(ConfigurationError):
            mm.add(MemoryRegion("x", 0x0800, 0x1000, MemoryType.RAM))

    def test_rejects_duplicate_name(self):
        mm = make_map()
        with pytest.raises(ConfigurationError):
            mm.add(MemoryRegion("ram", 0x8000, 0x10, MemoryType.RAM))

    def test_iteration_sorted_by_base(self):
        mm = make_map()
        assert [r.name for r in mm] == ["rom", "ram", "flash"]
        assert len(mm) == 3

    def test_writable_regions(self):
        mm = make_map()
        assert {r.name for r in mm.writable_regions()} == {"ram", "flash"}


class FakeContext:
    name = "fake"
    code_start = 0
    code_end = 0x1000


class TestBus:
    def test_read_write_roundtrip(self):
        bus = MemoryBus(make_map())
        bus.write(None, 0x2000, b"hello")
        assert bus.read(None, 0x2000, 5) == b"hello"

    def test_word_helpers(self):
        bus = MemoryBus(make_map())
        bus.write_u32(None, 0x2000, 0xDEADBEEF)
        assert bus.read_u32(None, 0x2000) == 0xDEADBEEF
        bus.write_u64(None, 0x2008, 2 ** 60 + 5)
        assert bus.read_u64(None, 0x2008) == 2 ** 60 + 5

    def test_unmapped_read(self):
        bus = MemoryBus(make_map())
        with pytest.raises(MemoryAccessViolation) as excinfo:
            bus.read(None, 0x9000, 1)
        assert excinfo.value.address == 0x9000

    def test_straddling_region_end(self):
        bus = MemoryBus(make_map())
        with pytest.raises(MemoryAccessViolation):
            bus.read(None, 0x2FFE, 4)

    def test_rom_write_denied_by_hardware(self):
        bus = MemoryBus(make_map())
        with pytest.raises(MemoryAccessViolation) as excinfo:
            bus.write(None, 0x0000, b"\x00")
        assert excinfo.value.access == "write"

    def test_flash_writable(self):
        bus = MemoryBus(make_map())
        bus.write(None, 0x4000, b"fw")
        assert bus.read(None, 0x4000, 2) == b"fw"

    def test_tracer_sees_accesses(self):
        bus = MemoryBus(make_map())
        seen = []
        bus.add_tracer(lambda ctx, acc, addr, n: seen.append((acc, addr, n)))
        bus.write(None, 0x2000, b"ab")
        bus.read(None, 0x2000, 2)
        assert seen == [("write", 0x2000, 2), ("read", 0x2000, 2)]

    def test_mpu_consulted(self):
        bus = MemoryBus(make_map())

        class DenyAll:
            def check_access(self, context, access, address, length):
                if context is not None:
                    raise MemoryAccessViolation("denied", address=address,
                                                access=access,
                                                context=context.name)

        bus.attach_mpu(DenyAll())
        # Hardware accesses (context None) bypass.
        bus.write(None, 0x2000, b"x")
        with pytest.raises(MemoryAccessViolation):
            bus.read(FakeContext(), 0x2000, 1)
