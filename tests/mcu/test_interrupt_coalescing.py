"""Pending-bit coalescing and the SMART-vs-TrustLite clock interaction."""

from repro.mcu import Device, ROAM_HARDENED
from repro.mcu.cpu import CPU, ExecutionContext
from repro.mcu.interrupts import InterruptController
from repro.mcu.memory import MemoryBus, MemoryMap, MemoryRegion, MemoryType
from tests.conftest import tiny_config


def make_controller(coalesce=True):
    cpu = CPU()
    mm = MemoryMap()
    mm.add(MemoryRegion("ram", 0x2000, 0x1000, MemoryType.RAM))
    bus = MemoryBus(mm)
    ic = InterruptController(cpu, bus, 0x2000, num_irqs=2,
                             coalesce_pending=coalesce)
    ctx = ExecutionContext("handler", 0x2100, 0x2200)
    fired = []
    ic.register_entry_point(0x2100, ctx, fired.append)
    ic.set_vector_raw(0, 0x2100)
    ic.set_vector_raw(1, 0x2100)
    return cpu, ic, fired


class TestCoalescing:
    def test_repeated_irq_collapses_to_one_pending_bit(self):
        cpu, ic, fired = make_controller(coalesce=True)
        atomic = ExecutionContext("rom", 0, 0x100, uninterruptible=True)
        with cpu.running(atomic):
            ic.raise_irq(0)
            ic.raise_irq(0)
            ic.raise_irq(0)
            assert ic.pending == [0]
        ic.run_pending()
        assert fired == [0]
        assert len(ic.coalesced_log) == 2

    def test_distinct_lines_both_pend(self):
        cpu, ic, fired = make_controller(coalesce=True)
        atomic = ExecutionContext("rom", 0, 0x100, uninterruptible=True)
        with cpu.running(atomic):
            ic.raise_irq(0)
            ic.raise_irq(1)
        ic.run_pending()
        assert fired == [0, 1]

    def test_idealised_controller_queues_everything(self):
        cpu, ic, fired = make_controller(coalesce=False)
        atomic = ExecutionContext("rom", 0, 0x100, uninterruptible=True)
        with cpu.running(atomic):
            ic.raise_irq(0)
            ic.raise_irq(0)
        ic.run_pending()
        assert fired == [0, 0]

    def test_no_coalescing_when_not_deferred(self):
        cpu, ic, fired = make_controller(coalesce=True)
        ic.raise_irq(0)
        ic.raise_irq(0)
        assert fired == [0, 0]
        assert not ic.coalesced_log


def sw_device(atomic: bool) -> Device:
    device = Device(tiny_config(
        ram_size=32 * 1024, flash_size=32 * 1024, app_size=4 * 1024,
        clock_kind="sw", uninterruptible_attest=atomic))
    device.provision(b"K" * 16)
    device.boot(ROAM_HARDENED)
    return device


class TestSmartVsTrustliteClockInteraction:
    """Section 2 background, made quantitative: SMART's atomic ROM code
    cannot be interrupted, so on a Figure 1b SW-clock device every LSB
    wrap during a measurement beyond the first is silently absorbed and
    the clock falls behind.  TrustLite-style interruptible trusted code
    keeps the clock exact."""

    def _clock_lag_ticks(self, device: Device) -> int:
        attest = device.context("Code_Attest")
        device.idle_seconds(0.01)
        device.digest_writable_memory(attest)
        device.cpu.consume_cycles(1)   # let post-deferral wraps land
        return device.cpu.cycle_count - device.read_clock_ticks(attest)

    def test_interruptible_attest_keeps_clock_exact(self):
        lag = self._clock_lag_ticks(sw_device(atomic=False))
        assert lag == 0

    def test_atomic_attest_loses_wraps(self):
        device = sw_device(atomic=True)
        lag = self._clock_lag_ticks(device)
        # ~95 ms measurement / 2.73 ms per 16-bit wrap ~= 35 wraps; all
        # but one absorbed.
        assert lag > 30 * (1 << 16)
        assert len(device.interrupts.coalesced_log) >= 30

    def test_lost_time_scales_with_measurement_length(self):
        small = sw_device(atomic=True)
        small_lag = self._clock_lag_ticks(small)
        big = Device(tiny_config(
            ram_size=64 * 1024, flash_size=64 * 1024, app_size=4 * 1024,
            clock_kind="sw", uninterruptible_attest=True))
        big.provision(b"K" * 16)
        big.boot(ROAM_HARDENED)
        big_lag = self._clock_lag_ticks(big)
        assert big_lag > 1.5 * small_lag

    def test_hardware_clock_immune(self):
        device = Device(tiny_config(
            ram_size=32 * 1024, flash_size=32 * 1024, app_size=4 * 1024,
            clock_kind="hw64", uninterruptible_attest=True))
        device.provision(b"K" * 16)
        device.boot(ROAM_HARDENED)
        attest = device.context("Code_Attest")
        device.idle_seconds(0.01)
        device.digest_writable_memory(attest)
        assert device.read_clock_ticks(attest) == device.cpu.cycle_count
