"""Hardware counters: derivation from cycles, dividers, wraps, writes."""

import pytest

from repro.errors import ConfigurationError, MemoryAccessViolation
from repro.mcu.cpu import CPU
from repro.mcu.timer import HardwareCounter


class TestCounting:
    def test_follows_cycles(self):
        cpu = CPU()
        counter = HardwareCounter(cpu, width_bits=32)
        cpu.consume_cycles(1234)
        assert counter.value == 1234

    def test_divider(self):
        cpu = CPU()
        counter = HardwareCounter(cpu, width_bits=32, divider=100)
        cpu.consume_cycles(250)
        assert counter.value == 2
        cpu.consume_cycles(50)
        assert counter.value == 3

    def test_wraps_at_width(self):
        cpu = CPU()
        counter = HardwareCounter(cpu, width_bits=8)
        cpu.consume_cycles(300)
        assert counter.value == 300 - 256

    def test_unsupported_width(self):
        with pytest.raises(ConfigurationError):
            HardwareCounter(CPU(), width_bits=12)

    def test_bad_divider(self):
        with pytest.raises(ConfigurationError):
            HardwareCounter(CPU(), width_bits=16, divider=0)


class TestWrapCallback:
    def test_single_wrap(self):
        cpu = CPU()
        wraps = []
        HardwareCounter(cpu, width_bits=8, on_wrap=wraps.append)
        cpu.consume_cycles(256)
        assert wraps == [1]

    def test_multiple_wraps_in_one_step(self):
        cpu = CPU()
        wraps = []
        HardwareCounter(cpu, width_bits=8, on_wrap=wraps.append)
        cpu.consume_cycles(3 * 256 + 10)
        assert wraps == [3]

    def test_no_spurious_wrap(self):
        cpu = CPU()
        wraps = []
        HardwareCounter(cpu, width_bits=8, on_wrap=wraps.append)
        cpu.consume_cycles(255)
        assert wraps == []
        cpu.consume_cycles(1)
        assert wraps == [1]

    def test_wrap_respects_divider(self):
        cpu = CPU()
        wraps = []
        HardwareCounter(cpu, width_bits=8, divider=10, on_wrap=wraps.append)
        cpu.consume_cycles(2559)
        assert wraps == []
        cpu.consume_cycles(1)
        assert wraps == [1]


class TestMmio:
    def test_read_bytes_little_endian(self):
        cpu = CPU()
        counter = HardwareCounter(cpu, width_bits=16)
        cpu.consume_cycles(0x1234)
        assert counter.mmio_read(0, None) == 0x34
        assert counter.mmio_read(1, None) == 0x12

    def test_read_out_of_range(self):
        counter = HardwareCounter(CPU(), width_bits=16)
        with pytest.raises(MemoryAccessViolation):
            counter.mmio_read(2, None)

    def test_readonly_counter_rejects_writes(self):
        counter = HardwareCounter(CPU(), width_bits=16)
        with pytest.raises(MemoryAccessViolation):
            counter.mmio_write(0, 0xFF, "malware")

    def test_writable_counter_accepts_writes(self):
        cpu = CPU()
        counter = HardwareCounter(cpu, width_bits=16,
                                  software_writable=True)
        cpu.consume_cycles(1000)
        counter.mmio_write(0, 0x00, "malware")
        counter.mmio_write(1, 0x00, "malware")
        assert counter.value == 0
        cpu.consume_cycles(5)
        assert counter.value == 5   # keeps counting from the new value

    def test_set_value_rewind(self):
        """The roaming adversary's clock-reset primitive."""
        cpu = CPU()
        counter = HardwareCounter(cpu, width_bits=32,
                                  software_writable=True)
        cpu.consume_cycles(10_000)
        counter.set_value(2_000)
        assert counter.value == 2_000
        cpu.consume_cycles(500)
        assert counter.value == 2_500


class TestAnalysis:
    def test_resolution(self):
        counter = HardwareCounter(CPU(24_000_000), width_bits=32,
                                  divider=1 << 20)
        assert counter.resolution_seconds == pytest.approx(0.0436907, rel=1e-3)

    def test_wraparound_64bit_matches_paper(self):
        counter = HardwareCounter(CPU(24_000_000), width_bits=64)
        assert counter.wraparound_years == pytest.approx(24372.6, rel=1e-3)

    def test_wraparound_32bit_three_minutes(self):
        counter = HardwareCounter(CPU(24_000_000), width_bits=32)
        assert counter.wraparound_seconds == pytest.approx(179.0, rel=1e-2)

    def test_wraparound_32bit_divided_six_years(self):
        counter = HardwareCounter(CPU(24_000_000), width_bits=32,
                                  divider=1 << 20)
        assert counter.wraparound_years == pytest.approx(5.97, rel=1e-2)
