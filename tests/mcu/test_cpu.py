"""CPU: contexts, cycle accounting, listeners."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mcu.cpu import CPU, ExecutionContext


class TestContexts:
    def test_stack_nesting(self):
        cpu = CPU()
        a = ExecutionContext("a", 0, 0x100)
        b = ExecutionContext("b", 0x100, 0x200)
        with cpu.running(a):
            assert cpu.current_context is a
            with cpu.running(b):
                assert cpu.current_context is b
            assert cpu.current_context is a
        assert cpu.current_context is None

    def test_pop_empty_stack(self):
        with pytest.raises(SimulationError):
            CPU().pop_context()

    def test_corrupted_stack_detected(self):
        cpu = CPU()
        a = ExecutionContext("a", 0, 1)
        with pytest.raises(SimulationError):
            with cpu.running(a):
                cpu.pop_context()
                cpu.push_context(ExecutionContext("b", 0, 1))

    def test_inverted_code_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutionContext("bad", 10, 5)

    def test_uninterruptible_flag(self):
        cpu = CPU()
        atomic = ExecutionContext("rom", 0, 1, uninterruptible=True)
        assert not cpu.interrupts_deferred
        with cpu.running(atomic):
            assert cpu.interrupts_deferred

    def test_code_range_property(self):
        ctx = ExecutionContext("x", 0x10, 0x20)
        assert ctx.code_range == (0x10, 0x20)


class TestCycles:
    def test_consume_and_elapsed(self):
        cpu = CPU(frequency_hz=24_000_000)
        cpu.consume_cycles(24_000_000)
        assert cpu.elapsed_seconds == pytest.approx(1.0)
        assert cpu.elapsed_ms == pytest.approx(1000.0)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            CPU().consume_cycles(-1)

    def test_zero_is_noop(self):
        cpu = CPU()
        fired = []
        cpu.add_cycle_listener(lambda now, n: fired.append(n))
        cpu.consume_cycles(0)
        assert not fired

    def test_listener_invoked(self):
        cpu = CPU()
        seen = []
        cpu.add_cycle_listener(lambda now, n: seen.append((now, n)))
        cpu.consume_cycles(10)
        cpu.consume_cycles(5)
        assert seen == [(10, 10), (15, 5)]

    def test_nested_consumption_no_listener_recursion(self):
        cpu = CPU()
        calls = []

        def listener(now, n):
            calls.append(now)
            if len(calls) == 1:
                cpu.consume_cycles(3)   # nested; must not recurse

        cpu.add_cycle_listener(listener)
        cpu.consume_cycles(10)
        assert cpu.cycle_count == 13
        assert calls == [10]

    def test_idle_until(self):
        cpu = CPU()
        cpu.consume_cycles(100)
        cpu.idle_until(250)
        assert cpu.cycle_count == 250
        cpu.idle_until(200)   # past: no-op
        assert cpu.cycle_count == 250

    def test_unit_conversions(self):
        cpu = CPU(frequency_hz=24_000_000)
        assert cpu.ms_to_cycles(1.0) == 24_000
        assert cpu.seconds_to_cycles(2.0) == 48_000_000

    def test_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            CPU(frequency_hz=-1)
