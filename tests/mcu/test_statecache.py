"""State-digest cache: equivalence contract and content addressing.

A cache hit must be observationally identical to a recompute -- same
digest, same consumed cycles, same energy -- and any mutation of
attested memory (a planted compromise included) must miss the cache and
produce the post-mutation digest.
"""

import pytest

from repro import fastpath
from repro.errors import ConfigurationError
from repro.mcu.device import Device, DeviceConfig, _DATA_OFF
from repro.mcu.statecache import StateDigestCache
from tests.conftest import tiny_config


def booted_device(cache=None, config=None):
    device = Device(config if config is not None else tiny_config())
    device.install_app()
    device.provision(b"statecache-key16")
    device.boot()
    if cache is not None:
        device.attach_state_cache(cache)
    return device


class TestCacheStructure:
    def test_needs_room_for_one_entry(self):
        with pytest.raises(ConfigurationError):
            StateDigestCache(max_entries=0)

    def test_hit_miss_counting_and_eviction(self):
        cache = StateDigestCache(max_entries=2)
        assert cache.lookup(("a",)) is None
        cache.store(("a",), b"A")
        cache.store(("b",), b"B")
        assert cache.lookup(("a",)) == b"A"
        cache.store(("c",), b"C")          # evicts oldest: ("a",)
        assert cache.lookup(("a",)) is None
        assert cache.lookup(("c",)) == b"C"
        assert cache.stats() == {"hits": 2, "misses": 2, "entries": 2,
                                 "max_entries": 2}
        cache.clear()
        assert len(cache) == 0

    def test_clear_starts_a_fresh_measurement_epoch(self):
        cache = StateDigestCache(max_entries=2)
        cache.store(("a",), b"A")
        cache.lookup(("a",))
        cache.lookup(("missing",))
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0,
                                 "max_entries": 2}

    def test_reset_stats_keeps_entries(self):
        cache = StateDigestCache(max_entries=2)
        cache.store(("a",), b"A")
        cache.lookup(("a",))
        cache.reset_stats()
        assert cache.stats()["hits"] == 0
        assert cache.lookup(("a",)) == b"A"

    def test_restore_of_existing_key_keeps_fifo_position(self):
        # Re-storing a resident key must neither evict anything nor
        # refresh the key's age: this is FIFO, not LRU.
        cache = StateDigestCache(max_entries=2)
        cache.store(("a",), b"A")
        cache.store(("b",), b"B")
        cache.store(("a",), b"A2")          # update in place, no eviction
        assert cache.lookup(("b",)) == b"B"
        assert cache.lookup(("a",)) == b"A2"
        cache.store(("c",), b"C")           # ("a",) is still the oldest
        assert cache.lookup(("a",)) is None
        assert cache.lookup(("b",)) == b"B"


class TestDigestEquivalence:
    def test_hit_returns_same_digest_cycles_and_energy(self):
        plain = booted_device()
        cached = booted_device(StateDigestCache())
        context = "Code_Attest"

        digests_plain, digests_cached = [], []
        for _ in range(3):
            digests_plain.append(
                plain.digest_writable_memory(plain.context(context)))
            digests_cached.append(
                cached.digest_writable_memory(cached.context(context)))
        assert digests_plain == digests_cached
        assert plain.cpu.cycle_count == cached.cpu.cycle_count
        plain.sync_energy()
        cached.sync_energy()
        assert (plain.battery.consumed_mj == cached.battery.consumed_mj)
        assert cached._state_cache.hits == 2
        assert cached._state_cache.misses == 1

    def test_shared_cache_across_identical_devices(self):
        cache = StateDigestCache()
        first = booted_device(cache)
        second = booted_device(cache)
        context = "Code_Attest"
        a = first.digest_writable_memory(first.context(context))
        b = second.digest_writable_memory(second.context(context))
        assert a == b
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    def test_compromise_invalidates_the_cache(self):
        cache = StateDigestCache()
        device = booted_device(cache)
        context = device.context("Code_Attest")
        clean = device.digest_writable_memory(context)
        assert device.digest_writable_memory(context) == clean
        device.flash.load(200, b"\xEB\xFE\x90")     # planted compromise
        dirty = device.digest_writable_memory(context)
        assert dirty != clean
        # clean key, dirty key: two distinct entries, no false hit.
        assert cache.stats()["misses"] == 2
        assert device.digest_writable_memory(context) == dirty

    def test_freshness_prefix_writes_do_not_invalidate(self):
        """counter_R / Clock_MSB / IDT live below _DATA_OFF, outside the
        attested spans -- honest protocol rounds must keep hitting."""
        cache = StateDigestCache()
        device = booted_device(cache)
        context = device.context("Code_Attest")
        clean = device.digest_writable_memory(context)
        device.ram.store(0x40, (123).to_bytes(8, "little"))
        assert device.ram.fingerprint_exclude_below == _DATA_OFF
        assert device.digest_writable_memory(context) == clean
        assert cache.stats()["hits"] == 1

    def test_attested_ram_write_invalidates(self):
        cache = StateDigestCache()
        device = booted_device(cache)
        context = device.context("Code_Attest")
        clean = device.digest_writable_memory(context)
        device.ram.store(_DATA_OFF + 8, b"\xff")
        assert device.digest_writable_memory(context) != clean
        assert cache.stats()["misses"] == 2


class TestEligibilityGating:
    def test_naive_engine_bypasses_the_cache(self):
        cache = StateDigestCache()
        device = booted_device(cache)
        context = device.context("Code_Attest")
        with fastpath.forced("naive"):
            device.digest_writable_memory(context)
            device.digest_writable_memory(context)
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0,
                                 "max_entries": 256}

    def test_bus_tracers_bypass_the_cache(self):
        cache = StateDigestCache()
        device = booted_device(cache)
        seen = []
        device.bus.add_tracer(
            lambda context, access, address, length: seen.append(access))
        context = device.context("Code_Attest")
        device.digest_writable_memory(context)
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_detached_device_never_consults_a_cache(self):
        device = booted_device()
        context = device.context("Code_Attest")
        assert device._state_cache is None
        assert not device._state_cache_eligible(
            context, device.attested_spans())


class TestFingerprint:
    def test_store_advances_fingerprint(self):
        device = booted_device()
        before = device.ram.content_fingerprint
        device.ram.store(_DATA_OFF + 1, b"\x01")
        assert device.ram.content_fingerprint != before

    def test_excluded_prefix_store_keeps_fingerprint(self):
        device = booted_device()
        before = device.ram.content_fingerprint
        device.ram.store(0, b"\x01")
        assert device.ram.content_fingerprint == before

    def test_straddling_store_is_conservatively_included(self):
        device = booted_device()
        before = device.ram.content_fingerprint
        device.ram.store(_DATA_OFF - 1, b"\x00\x00")
        assert device.ram.content_fingerprint != before
