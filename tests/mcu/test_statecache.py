"""State-digest cache: equivalence contract and content addressing.

A cache hit must be observationally identical to a recompute -- same
digest, same consumed cycles, same energy -- and any mutation of
attested memory (a planted compromise included) must miss the cache and
produce the post-mutation digest.
"""

import pytest

from repro import fastpath
from repro.errors import ConfigurationError
from repro.mcu.device import Device, DeviceConfig, _DATA_OFF
from repro.mcu.statecache import StateDigestCache
from tests.conftest import tiny_config


def booted_device(cache=None, config=None):
    device = Device(config if config is not None else tiny_config())
    device.install_app()
    device.provision(b"statecache-key16")
    device.boot()
    if cache is not None:
        device.attach_state_cache(cache)
    return device


class TestCacheStructure:
    def test_rejects_negative_bound(self):
        with pytest.raises(ConfigurationError):
            StateDigestCache(max_entries=-1)

    def test_zero_bound_is_unbounded(self):
        cache = StateDigestCache(max_entries=0)
        for index in range(1000):
            cache.store((index,), bytes([index % 256]))
        assert len(cache) == 1000
        assert cache.evictions == 0
        assert cache.lookup((0,)) == b"\x00"

    def test_hit_miss_counting_and_eviction(self):
        cache = StateDigestCache(max_entries=2)
        assert cache.lookup(("a",)) is None
        cache.store(("a",), b"A")
        cache.store(("b",), b"B")
        assert cache.lookup(("a",)) == b"A"
        cache.store(("c",), b"C")          # evicts oldest: ("a",)
        assert cache.lookup(("a",)) is None
        assert cache.lookup(("c",)) == b"C"
        assert cache.stats() == {"hits": 2, "misses": 2, "evictions": 1,
                                 "entries": 2, "max_entries": 2}
        cache.clear()
        assert len(cache) == 0

    def test_clear_starts_a_fresh_measurement_epoch(self):
        cache = StateDigestCache(max_entries=2)
        cache.store(("a",), b"A")
        cache.lookup(("a",))
        cache.lookup(("missing",))
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "evictions": 0,
                                 "entries": 0, "max_entries": 2}

    def test_publish_exports_gauges_on_demand(self):
        from repro.obs import Telemetry
        cache = StateDigestCache(max_entries=1)
        cache.store(("a",), b"A")
        cache.store(("b",), b"B")           # evicts ("a",)
        cache.lookup(("b",))
        cache.lookup(("a",))
        telemetry = Telemetry()
        cache.publish(telemetry)
        metrics = {m["name"]: m["value"]
                   for m in telemetry.registry.dump()["metrics"]}
        assert metrics["statecache.hits"] == 1
        assert metrics["statecache.misses"] == 1
        assert metrics["statecache.evictions"] == 1

    def test_reset_stats_keeps_entries(self):
        cache = StateDigestCache(max_entries=2)
        cache.store(("a",), b"A")
        cache.lookup(("a",))
        cache.reset_stats()
        assert cache.stats()["hits"] == 0
        assert cache.lookup(("a",)) == b"A"

    def test_restore_of_existing_key_keeps_fifo_position(self):
        # Re-storing a resident key must neither evict anything nor
        # refresh the key's age: this is FIFO, not LRU.
        cache = StateDigestCache(max_entries=2)
        cache.store(("a",), b"A")
        cache.store(("b",), b"B")
        cache.store(("a",), b"A2")          # update in place, no eviction
        assert cache.lookup(("b",)) == b"B"
        assert cache.lookup(("a",)) == b"A2"
        cache.store(("c",), b"C")           # ("a",) is still the oldest
        assert cache.lookup(("a",)) is None
        assert cache.lookup(("b",)) == b"B"


class TestDigestEquivalence:
    def test_hit_returns_same_digest_cycles_and_energy(self):
        plain = booted_device()
        cached = booted_device(StateDigestCache())
        context = "Code_Attest"

        digests_plain, digests_cached = [], []
        for _ in range(3):
            digests_plain.append(
                plain.digest_writable_memory(plain.context(context)))
            digests_cached.append(
                cached.digest_writable_memory(cached.context(context)))
        assert digests_plain == digests_cached
        assert plain.cpu.cycle_count == cached.cpu.cycle_count
        plain.sync_energy()
        cached.sync_energy()
        assert (plain.battery.consumed_mj == cached.battery.consumed_mj)
        assert cached._state_cache.hits == 2
        assert cached._state_cache.misses == 1

    def test_shared_cache_across_identical_devices(self):
        cache = StateDigestCache()
        first = booted_device(cache)
        second = booted_device(cache)
        context = "Code_Attest"
        a = first.digest_writable_memory(first.context(context))
        b = second.digest_writable_memory(second.context(context))
        assert a == b
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    def test_compromise_invalidates_the_cache(self):
        cache = StateDigestCache()
        device = booted_device(cache)
        context = device.context("Code_Attest")
        clean = device.digest_writable_memory(context)
        assert device.digest_writable_memory(context) == clean
        device.flash.load(200, b"\xEB\xFE\x90")     # planted compromise
        dirty = device.digest_writable_memory(context)
        assert dirty != clean
        # clean key, dirty key: two distinct entries, no false hit.
        assert cache.stats()["misses"] == 2
        assert device.digest_writable_memory(context) == dirty

    def test_freshness_prefix_writes_do_not_invalidate(self):
        """counter_R / Clock_MSB / IDT live below _DATA_OFF, outside the
        attested spans -- honest protocol rounds must keep hitting."""
        cache = StateDigestCache()
        device = booted_device(cache)
        context = device.context("Code_Attest")
        clean = device.digest_writable_memory(context)
        device.ram.store(0x40, (123).to_bytes(8, "little"))
        assert device.ram.fingerprint_exclude_below == _DATA_OFF
        assert device.digest_writable_memory(context) == clean
        assert cache.stats()["hits"] == 1

    def test_attested_ram_write_invalidates(self):
        cache = StateDigestCache()
        device = booted_device(cache)
        context = device.context("Code_Attest")
        clean = device.digest_writable_memory(context)
        device.ram.store(_DATA_OFF + 8, b"\xff")
        assert device.digest_writable_memory(context) != clean
        assert cache.stats()["misses"] == 2


class TestEligibilityGating:
    def test_naive_engine_bypasses_the_cache(self):
        cache = StateDigestCache()
        device = booted_device(cache)
        context = device.context("Code_Attest")
        with fastpath.forced("naive"):
            device.digest_writable_memory(context)
            device.digest_writable_memory(context)
        assert cache.stats() == {"hits": 0, "misses": 0, "evictions": 0,
                                 "entries": 0, "max_entries": 256}

    def test_bus_tracers_bypass_the_cache(self):
        cache = StateDigestCache()
        device = booted_device(cache)
        seen = []
        device.bus.add_tracer(
            lambda context, access, address, length: seen.append(access))
        context = device.context("Code_Attest")
        device.digest_writable_memory(context)
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_detached_device_never_consults_a_cache(self):
        device = booted_device()
        context = device.context("Code_Attest")
        assert device._state_cache is None
        assert not device._state_cache_eligible(
            context, device.attested_spans())


class TestFingerprint:
    def test_store_advances_fingerprint(self):
        device = booted_device()
        before = device.ram.content_fingerprint
        device.ram.store(_DATA_OFF + 1, b"\x01")
        assert device.ram.content_fingerprint != before

    def test_excluded_prefix_store_keeps_fingerprint(self):
        device = booted_device()
        before = device.ram.content_fingerprint
        device.ram.store(0, b"\x01")
        assert device.ram.content_fingerprint == before

    def test_straddling_store_is_conservatively_included(self):
        device = booted_device()
        before = device.ram.content_fingerprint
        device.ram.store(_DATA_OFF - 1, b"\x00\x00")
        assert device.ram.content_fingerprint != before

    def test_straddle_boundary_cases_are_pinned(self):
        """The exclude-bound comparison is ``offset + length <= bound``:
        a write *ending exactly at* the bound is excluded, one ending a
        single byte past it is chained.  Pinned because an off-by-one
        here silently serves stale digests for writes that touch the
        first attested byte."""
        device = booted_device()
        before = device.ram.content_fingerprint
        device.ram.store(_DATA_OFF - 2, b"\x00\x00")   # ends at bound
        assert device.ram.content_fingerprint == before
        device.ram.store(_DATA_OFF - 1, b"\x00\x00")   # one byte past
        assert device.ram.content_fingerprint != before

    def test_zero_length_store_is_skipped_uniformly(self):
        """Empty stores mutate nothing: they must advance neither the
        fingerprint chain (two histories differing only by empty writes
        describe identical contents) nor a digest tree, at any offset --
        below, straddling, or above the exclude bound."""
        device = booted_device(StateDigestCache(max_entries=0))
        device.enable_incremental()
        tree = device.ram.digest_tree
        context = device.context("Code_Attest")
        device.digest_writable_memory(context)  # builds the tree
        before = device.ram.content_fingerprint
        for offset in (0, _DATA_OFF - 1, _DATA_OFF, _DATA_OFF + 100):
            device.ram.store(offset, b"")
        assert device.ram.content_fingerprint == before
        assert tree.dirty_leaf_count == 0

    def test_straddling_store_dirties_the_covering_leaf(self):
        """A write straddling the exclude bound touches attested bytes,
        so the digest tree (whose window starts at the bound) must see
        it even though only its tail is inside the window."""
        device = booted_device(StateDigestCache(max_entries=0))
        device.enable_incremental()
        tree = device.ram.digest_tree
        context = device.context("Code_Attest")
        device.digest_writable_memory(context)
        assert tree.dirty_leaf_count == 0
        device.ram.store(_DATA_OFF - 1, b"\x00\x00")
        assert tree.dirty_leaf_count == 1
