"""EA-MPU semantics: rules, arbitration, lockdown, register file."""

import pytest

from repro.errors import (ConfigurationError, MemoryAccessViolation,
                          MPULockedError)
from repro.mcu.cpu import ExecutionContext
from repro.mcu.mpu import (ALL_CODE, CTRL_OFFSET, ExecutionAwareMPU,
                           NO_CODE, RULE_BASE_OFFSET, RULE_STRIDE,
                           _merge_intervals, _subtract_intervals)

ATTEST = ExecutionContext("Code_Attest", 0x1000, 0x2000)
APP = ExecutionContext("app", 0x4000, 0x8000)

KEY_SPAN = (0x9000, 0x9010)


def protected_mpu():
    mpu = ExecutionAwareMPU(max_rules=4)
    mpu.program_rule(0, code=(0x1000, 0x2000), data=KEY_SPAN,
                     read=True, write=False)
    mpu.set_enabled(True)
    return mpu


class TestArbitration:
    def test_uncovered_address_open(self):
        mpu = protected_mpu()
        mpu.check_access(APP, "read", 0x5000, 16)   # no exception

    def test_matching_code_granted(self):
        mpu = protected_mpu()
        mpu.check_access(ATTEST, "read", 0x9000, 16)

    def test_non_matching_code_denied(self):
        mpu = protected_mpu()
        with pytest.raises(MemoryAccessViolation) as excinfo:
            mpu.check_access(APP, "read", 0x9000, 16)
        assert excinfo.value.context == "app"

    def test_access_type_enforced(self):
        mpu = protected_mpu()
        with pytest.raises(MemoryAccessViolation):
            mpu.check_access(ATTEST, "write", 0x9000, 16)

    def test_partial_overlap_denied(self):
        """An access straddling a protected boundary is denied for the
        covered part even if the rest is open."""
        mpu = protected_mpu()
        with pytest.raises(MemoryAccessViolation):
            mpu.check_access(APP, "read", 0x8FF0, 0x20)

    def test_disabled_mpu_allows_everything(self):
        mpu = ExecutionAwareMPU()
        mpu.program_rule(0, code=NO_CODE, data=KEY_SPAN,
                         read=False, write=False)
        # not enabled -> open
        mpu.check_access(APP, "write", 0x9000, 4)

    def test_hardware_context_bypasses(self):
        mpu = protected_mpu()
        mpu.check_access(None, "write", 0x9000, 4)

    def test_no_code_rule_denies_all_software(self):
        mpu = ExecutionAwareMPU()
        mpu.program_rule(0, code=NO_CODE, data=(0x100, 0x200),
                         read=True, write=True)
        mpu.set_enabled(True)
        with pytest.raises(MemoryAccessViolation):
            mpu.check_access(ATTEST, "read", 0x100, 1)

    def test_all_code_readonly_rule(self):
        mpu = ExecutionAwareMPU()
        mpu.program_rule(0, code=ALL_CODE, data=(0x100, 0x200),
                         read=True, write=False)
        mpu.set_enabled(True)
        mpu.check_access(APP, "read", 0x150, 4)
        with pytest.raises(MemoryAccessViolation):
            mpu.check_access(APP, "write", 0x150, 4)

    def test_overlapping_rules_any_grant_wins(self):
        mpu = ExecutionAwareMPU()
        mpu.program_rule(0, code=ALL_CODE, data=(0x100, 0x200),
                         read=True, write=False)
        mpu.program_rule(1, code=(0x1000, 0x2000), data=(0x100, 0x200),
                         read=True, write=True)
        mpu.set_enabled(True)
        mpu.check_access(ATTEST, "write", 0x150, 4)   # rule 1 grants
        with pytest.raises(MemoryAccessViolation):
            mpu.check_access(APP, "write", 0x150, 4)  # only rule 0 covers app

    def test_containment_not_overlap(self):
        """A context spanning beyond the rule's code range does not match."""
        wide = ExecutionContext("wide", 0x0800, 0x3000)
        mpu = protected_mpu()
        with pytest.raises(MemoryAccessViolation):
            mpu.check_access(wide, "read", 0x9000, 4)

    def test_violation_log(self):
        mpu = protected_mpu()
        with pytest.raises(MemoryAccessViolation):
            mpu.check_access(APP, "read", 0x9000, 1)
        assert len(mpu.violations) == 1


class TestLockdown:
    def test_sticky_lock_blocks_reconfiguration(self):
        mpu = protected_mpu()
        mpu.lock()
        assert mpu.locked
        with pytest.raises(MPULockedError):
            mpu.program_rule(1, code=ALL_CODE, data=(0, 4),
                             read=True, write=True)

    def test_lock_bit_cannot_be_cleared(self):
        mpu = ExecutionAwareMPU()
        mpu.lock()
        with pytest.raises(MPULockedError):
            mpu.mmio_write(CTRL_OFFSET, 0x00, "malware")
        assert mpu.locked

    def test_hardwired_rule_immutable_before_lock(self):
        mpu = ExecutionAwareMPU()
        mpu.program_rule(0, code=(0x1000, 0x2000), data=KEY_SPAN,
                         read=True, write=False, hardwired=True)
        with pytest.raises(MPULockedError):
            mpu.clear_rule(0)

    def test_non_hardwired_rule_clearable(self):
        mpu = protected_mpu()
        mpu.clear_rule(0)
        assert mpu.active_rule_count == 0

    def test_self_protection_idiom(self):
        """The Figure 1a lockdown: a read-only rule over the MPU's own
        registers makes reconfiguration an EA-MPU violation when writes
        go through the bus path (tested at device level); here we check
        the register-file path still honours the sticky lock."""
        mpu = protected_mpu()
        mpu.lock("boot")
        with pytest.raises(MPULockedError):
            mpu.set_enabled(False)
        assert mpu.enabled


class TestRegisterFile:
    def test_rule_encoding_roundtrip(self):
        mpu = ExecutionAwareMPU(max_rules=2)
        rule = mpu.program_rule(1, code=(0xAA00, 0xBB00),
                                data=(0x1234, 0x5678),
                                read=True, write=True)
        assert rule.code_start == 0xAA00
        assert rule.data_end == 0x5678
        assert rule.allow_read and rule.allow_write
        decoded = mpu.rules()
        assert len(decoded) == 1
        assert decoded[0] == rule

    def test_register_file_size(self):
        mpu = ExecutionAwareMPU(max_rules=3)
        assert mpu.register_file_size == RULE_BASE_OFFSET + 3 * RULE_STRIDE

    def test_byte_reads(self):
        mpu = ExecutionAwareMPU()
        mpu.program_rule(0, code=(0x11223344, 0x55667788), data=(0, 1),
                         read=True, write=False)
        base = RULE_BASE_OFFSET
        raw = bytes(mpu.mmio_read(base + i, None) for i in range(4))
        assert int.from_bytes(raw, "little") == 0x11223344

    def test_out_of_range_offsets(self):
        mpu = ExecutionAwareMPU(max_rules=1)
        with pytest.raises(MemoryAccessViolation):
            mpu.mmio_read(10_000, None)
        with pytest.raises(MemoryAccessViolation):
            mpu.mmio_write(10_000, 0, None)

    def test_rule_index_bounds(self):
        mpu = ExecutionAwareMPU(max_rules=2)
        with pytest.raises(ConfigurationError):
            mpu.program_rule(2, code=ALL_CODE, data=(0, 1),
                             read=True, write=False)

    def test_inverted_ranges_rejected(self):
        mpu = ExecutionAwareMPU()
        with pytest.raises(ConfigurationError):
            mpu.program_rule(0, code=(10, 5), data=(0, 1),
                             read=True, write=False)

    def test_needs_at_least_one_slot(self):
        with pytest.raises(ConfigurationError):
            ExecutionAwareMPU(max_rules=0)


class TestIntervalMath:
    def test_merge(self):
        assert _merge_intervals([(5, 10), (1, 3), (9, 12)]) == \
            [(1, 3), (5, 12)]
        assert _merge_intervals([]) == []
        assert _merge_intervals([(1, 2), (2, 3)]) == [(1, 3)]

    def test_subtract(self):
        assert _subtract_intervals([(0, 10)], [(3, 5)]) == [(0, 3), (5, 10)]
        assert _subtract_intervals([(0, 10)], [(0, 10)]) == []
        assert _subtract_intervals([(0, 10)], []) == [(0, 10)]
        assert _subtract_intervals([(0, 4), (6, 8)], [(2, 7)]) == \
            [(0, 2), (7, 8)]
