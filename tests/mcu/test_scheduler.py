"""Cooperative scheduler: deadlines under attestation blocking."""

import pytest

from repro.errors import ConfigurationError
from repro.mcu.scheduler import CooperativeScheduler, PeriodicTask


def task(period=1.0, job=0.1, policy="skip", name="sense"):
    return PeriodicTask(name=name, period_seconds=period,
                        job_seconds=job, policy=policy)


class TestUnloaded:
    def test_all_jobs_met(self):
        report = CooperativeScheduler([task()]).run(10.0)
        assert report.released == 10
        assert report.met == 10
        assert report.miss_ratio == 0.0

    def test_two_tasks_interleave(self):
        scheduler = CooperativeScheduler([
            task(period=1.0, job=0.1, name="sense"),
            task(period=0.5, job=0.05, name="actuate"),
        ])
        report = scheduler.run(5.0)
        assert report.miss_ratio == 0.0
        assert len(report.of_task("actuate")) == 10

    def test_job_timing(self):
        report = CooperativeScheduler([task()]).run(2.0)
        first = report.jobs[0]
        assert first.started == 0.0
        assert first.finished == pytest.approx(0.1)
        assert first.lateness_seconds == 0.0


class TestBlocking:
    def test_blocked_job_skipped(self):
        report = CooperativeScheduler([task()]).run(
            5.0, busy_intervals=[(2.0, 3.05)])
        blocked = [job for job in report.jobs if job.release == 2.0]
        assert blocked[0].outcome == "skipped"
        assert report.skipped == 1
        assert report.met == 4

    def test_partial_block_still_fits(self):
        report = CooperativeScheduler([task()]).run(
            5.0, busy_intervals=[(2.0, 2.5)])
        assert report.miss_ratio == 0.0
        blocked = [job for job in report.jobs if job.release == 2.0][0]
        assert blocked.started == pytest.approx(2.5)

    def test_catch_up_runs_late(self):
        report = CooperativeScheduler([task(policy="catch-up")]).run(
            5.0, busy_intervals=[(2.0, 3.05)])
        late = [job for job in report.jobs if job.outcome == "late"]
        assert len(late) == 1
        assert late[0].finished == pytest.approx(3.15)
        assert late[0].lateness_seconds == pytest.approx(0.15)

    def test_long_block_spans_periods(self):
        report = CooperativeScheduler([task()]).run(
            10.0, busy_intervals=[(1.0, 4.2)])
        assert report.skipped == 3

    def test_backlog_from_back_to_back_attestations(self):
        """Queued catch-up jobs accumulate lateness across consecutive
        busy intervals -- the flood effect the analytic bound misses."""
        report = CooperativeScheduler([task(policy="catch-up")]).run(
            8.0, busy_intervals=[(1.0, 2.05), (2.1, 3.05), (3.1, 4.05)])
        late = [job for job in report.jobs if job.outcome == "late"]
        assert len(late) >= 2
        assert report.max_lateness_seconds > 0.1

    def test_busy_interval_before_any_release(self):
        report = CooperativeScheduler([task()]).run(
            3.0, busy_intervals=[(0.0, 0.85)])
        first = report.jobs[0]
        assert first.outcome == "met"
        assert first.started == pytest.approx(0.85)


class TestValidation:
    def test_infeasible_task(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask("t", period_seconds=1.0, job_seconds=2.0)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask("t", 1.0, 0.1, policy="pray")

    def test_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            CooperativeScheduler([task(), task()])

    def test_overlapping_busy(self):
        with pytest.raises(ConfigurationError):
            CooperativeScheduler([task()]).run(
                5.0, busy_intervals=[(1.0, 2.0), (1.5, 2.5)])

    def test_needs_tasks_and_horizon(self):
        with pytest.raises(ConfigurationError):
            CooperativeScheduler([])
        with pytest.raises(ConfigurationError):
            CooperativeScheduler([task()]).run(0.0)


class TestSessionIntegration:
    def test_real_attestation_intervals(self, session_factory):
        """Feed the trust anchor's actual busy intervals into the
        executive and observe the impact on a control task."""
        session = session_factory()
        for _ in range(3):
            session.attest_once()
        intervals = session.anchor.busy_intervals
        assert len(intervals) == 3
        scheduler = CooperativeScheduler([
            PeriodicTask("control", period_seconds=0.02,
                         job_seconds=0.01)])
        horizon = max(end for _, end in intervals) + 1.0
        report = scheduler.run(horizon, busy_intervals=intervals)
        # Each ~35 ms measurement blanks 20 ms control periods.
        assert report.skipped >= 3
        assert report.met > 0
