"""The zero-copy bulk read path and its equivalence with the naive walk.

``MemoryBus.read_view`` may serve a whole span through one MPU check
only when ``can_bulk_read`` proves the span is ordinary unruled memory;
everything else (MMIO, ruled spans, unmapped tails, observed buses)
must take the seed's per-chunk path so arbitration outcomes, tracer
records and absorbed bytes stay byte-identical.
"""

import pytest

from repro import fastpath
from repro.errors import ConfigurationError, MemoryAccessViolation
from repro.mcu import Device, ROAM_HARDENED, UNPROTECTED
from repro.mcu.memory import (MemoryBus, MemoryMap, MemoryRegion,
                              MemoryType)

from ..conftest import tiny_config


def build_device(profile) -> Device:
    device = Device(tiny_config())
    device.install_app()
    device.provision(b"K" * 16)
    device.boot(profile)
    return device


class _CountingPeripheral:
    def __init__(self):
        self.reads = []

    def mmio_read(self, offset, context):
        self.reads.append(offset)
        return (0x40 + offset) & 0xFF

    def mmio_write(self, offset, value, context):
        raise AssertionError("unused")


@pytest.fixture
def plain_bus():
    mm = MemoryMap()
    mm.add(MemoryRegion("ram", 0x2000, 0x1000, MemoryType.RAM))
    peripheral = _CountingPeripheral()
    mm.add(MemoryRegion("mmio", 0x8000, 0x10, MemoryType.MMIO,
                        peripheral=peripheral))
    bus = MemoryBus(mm)
    return bus, peripheral


class TestBulkReadPrimitives:
    def test_read_view_equals_read_and_is_readonly(self, plain_bus):
        bus, _ = plain_bus
        bus.write(None, 0x2100, bytes(range(200)))
        view = bus.read_view(None, 0x2100, 200)
        assert bytes(view) == bus.read(None, 0x2100, 200)
        assert isinstance(view, memoryview)
        with pytest.raises(TypeError):
            view[0] = 0xFF

    def test_read_view_reflects_backing_store(self, plain_bus):
        """Zero copy means a later write is visible through the view --
        callers absorb it before releasing the bus."""
        bus, _ = plain_bus
        view = bus.read_view(None, 0x2000, 4)
        bus.write(None, 0x2000, b"\xAA\xBB\xCC\xDD")
        assert bytes(view) == b"\xAA\xBB\xCC\xDD"

    def test_can_bulk_read_rejections(self, plain_bus):
        bus, _ = plain_bus
        assert bus.can_bulk_read(None, 0x2000, 0x1000)
        assert not bus.can_bulk_read(None, 0x2000, 0)        # empty
        assert not bus.can_bulk_read(None, 0x2000, 0x1001)   # past end
        assert not bus.can_bulk_read(None, 0x1FFF, 2)        # unmapped
        assert not bus.can_bulk_read(None, 0x8000, 4)        # MMIO

    def test_read_view_on_mmio_still_served_per_byte(self, plain_bus):
        bus, peripheral = plain_bus
        view = bus.read_view(None, 0x8000, 4)
        assert bytes(view) == bytes([0x40, 0x41, 0x42, 0x43])
        assert peripheral.reads == [0, 1, 2, 3]

    def test_read_into(self, plain_bus):
        bus, _ = plain_bus
        bus.write(None, 0x2010, b"abcdef")
        out = bytearray(10)
        assert bus.read_into(None, 0x2010, 6, out, out_offset=2) == 6
        assert out == b"\x00\x00abcdef\x00\x00"
        out2 = bytearray(4)
        bus.read_into(None, 0x8000, 4, out2)
        assert out2 == bytes([0x40, 0x41, 0x42, 0x43])

    def test_read_into_bounds_checked(self, plain_bus):
        bus, _ = plain_bus
        with pytest.raises(ConfigurationError):
            bus.read_into(None, 0x2000, 8, bytearray(4))
        with pytest.raises(ConfigurationError):
            bus.read_into(None, 0x2000, 4, bytearray(8), out_offset=-1)

    def test_unmapped_read_view_raises(self, plain_bus):
        bus, _ = plain_bus
        with pytest.raises(MemoryAccessViolation):
            bus.read_view(None, 0x2FF0, 0x20)


class TestRuledSpans:
    def test_hardened_device_rules_disable_bulk_on_protected_spans(self):
        device = build_device(ROAM_HARDENED)
        attest = device.context("Code_Attest")
        # The span holding K_Attest is ruled: a single whole-span check
        # would skip the per-byte arbitration, so bulk is refused.
        assert not device.bus.can_bulk_read(attest, device.key_address, 16)
        # The attested RAM span excludes the anchor's protected words
        # and carries no rule, so it is bulk-eligible.
        ram_span = device.attested_spans()[0]
        assert device.bus.can_bulk_read(attest, ram_span[0],
                                        ram_span[1] - ram_span[0])

    def test_unprotected_device_is_fully_bulk_eligible(self):
        device = build_device(UNPROTECTED)
        attest = device.context("Code_Attest")
        for region in device.memory.writable_regions():
            assert device.bus.can_bulk_read(attest, region.start,
                                            region.size)

    @pytest.mark.parametrize("engine", ["naive", "accel"])
    def test_malware_denial_identical_under_fast_path(self, engine):
        """A ruled span forces the per-chunk path, so an MPU denial
        surfaces identically whichever engine runs the measurement."""
        device = build_device(ROAM_HARDENED)
        malware = device.make_malware_context()
        with fastpath.forced(engine):
            with pytest.raises(MemoryAccessViolation):
                device.measure_writable_memory(malware, b"K" * 16, b"c")


class TestDeviceEquivalence:
    @pytest.mark.parametrize("profile", [UNPROTECTED, ROAM_HARDENED],
                             ids=lambda p: p.name)
    def test_measurements_identical_across_engines(self, profile):
        """Digest, MAC and consumed cycles of both measurement kinds are
        byte-identical under every engine."""
        outcomes = {}
        for engine in fastpath.ENGINES:
            with fastpath.forced(engine):
                device = build_device(profile)
                attest = device.context("Code_Attest")
                before = device.cpu.cycle_count
                mac = device.measure_writable_memory(attest, b"K" * 16,
                                                     b"challenge")
                mid = device.cpu.cycle_count
                digest = device.digest_writable_memory(attest)
                after = device.cpu.cycle_count
                outcomes[engine] = (mac, digest, mid - before, after - mid)
        assert outcomes["pure"] == outcomes["naive"]
        assert outcomes["accel"] == outcomes["naive"]

    def test_tracer_attaches_forces_naive_access_pattern(self):
        """An observed bus must produce the exact per-chunk trace the
        naive walk produces, even under the fast engine."""
        traces = {}
        for engine in ("naive", "accel"):
            with fastpath.forced(engine):
                device = build_device(UNPROTECTED)
                log = []
                device.bus.add_tracer(
                    lambda ctx, access, addr, length:
                    log.append((access, addr, length)))
                attest = device.context("Code_Attest")
                device.digest_writable_memory(attest)
                traces[engine] = log
        assert traces["accel"] == traces["naive"]
        assert all(length <= 4096 for _, _, length in traces["accel"])
