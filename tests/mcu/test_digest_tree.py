"""Digest-tree properties: incremental refresh == from-scratch rebuild.

Two layers of the incremental-measurement contract
(``docs/performance.md``):

* :class:`repro.incremental.DigestTree` alone -- for ANY geometry and
  ANY write sequence, the incrementally refreshed root must equal the
  root a fresh tree computes over the same final bytes (content
  addressing cannot depend on history), and only covering leaves may be
  re-hashed;
* the device path -- incremental measurement must be byte-identical to
  the full walk in digest, consumed cycles and energy for arbitrary
  attested-memory mutations.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.incremental import DigestTree
from repro.mcu.device import Device, _DATA_OFF
from repro.mcu.statecache import StateDigestCache
from tests.conftest import tiny_config


def fresh_root(backing, window_start, window_size, chunk_size, arity):
    """Reference: from-scratch tree over the same bytes."""
    return DigestTree(window_start, window_size, chunk_size=chunk_size,
                      arity=arity).root(backing)


geometries = st.tuples(
    st.integers(min_value=0, max_value=64),      # window_start
    st.integers(min_value=1, max_value=1500),    # window_size
    st.integers(min_value=1, max_value=257),     # chunk_size
    st.integers(min_value=2, max_value=17))      # arity

writes = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1600),
              st.binary(min_size=0, max_size=300)),
    max_size=12)


class TestTreeProperties:
    @settings(max_examples=60, deadline=None)
    @given(geometry=geometries, sequence=writes,
           probe_points=st.lists(st.integers(min_value=0, max_value=11),
                                 max_size=3))
    def test_refreshed_root_equals_rebuild(self, geometry, sequence,
                                           probe_points):
        """Interleave writes with root probes at arbitrary points: after
        every probe the incrementally maintained root must equal a
        from-scratch rebuild over the final bytes."""
        window_start, window_size, chunk_size, arity = geometry
        backing = bytearray(window_start + window_size + 64)
        tree = DigestTree(window_start, window_size,
                          chunk_size=chunk_size, arity=arity)
        tree.root(backing)  # build so note_write tracking is live
        for step, (offset, data) in enumerate(sequence):
            offset = min(offset, len(backing) - len(data))
            backing[offset:offset + len(data)] = data
            tree.note_write(offset, len(data))
            if step in probe_points:
                assert tree.root(backing) == fresh_root(
                    bytes(backing), *geometry)
        assert tree.root(backing) == fresh_root(bytes(backing), *geometry)
        assert tree.dirty_leaf_count == 0

    @settings(max_examples=60, deadline=None)
    @given(geometry=geometries,
           offset=st.integers(min_value=0, max_value=1600),
           length=st.integers(min_value=0, max_value=400))
    def test_covering_leaves_matches_bruteforce(self, geometry, offset,
                                                length):
        window_start, window_size, chunk_size, arity = geometry
        tree = DigestTree(window_start, window_size,
                          chunk_size=chunk_size, arity=arity)
        covered = {
            (position - window_start) // chunk_size
            for position in range(offset, offset + length)
            if window_start <= position < window_start + window_size}
        span = tree.covering_leaves(offset, length)
        if span is None:
            assert covered == set()
        else:
            first, last = span
            assert covered == set(range(first, last + 1))

    @settings(max_examples=40, deadline=None)
    @given(geometry=geometries, sequence=writes)
    def test_refresh_rehashes_only_dirty_leaves(self, geometry, sequence):
        """The refresh cost claim: leaf hashes after a build grow by at
        most the number of distinct dirtied leaves per probe."""
        window_start, window_size, chunk_size, arity = geometry
        backing = bytearray(window_start + window_size + 64)
        tree = DigestTree(window_start, window_size,
                          chunk_size=chunk_size, arity=arity)
        tree.root(backing)
        baseline = tree.leaf_hashes
        assert baseline == tree.leaf_count
        dirtied = set()
        for offset, data in sequence:
            offset = min(offset, len(backing) - len(data))
            backing[offset:offset + len(data)] = data
            tree.note_write(offset, len(data))
            span = tree.covering_leaves(offset, len(data))
            if span is not None:
                dirtied.update(range(span[0], span[1] + 1))
        assert tree.dirty_leaf_count == len(dirtied)
        tree.root(backing)
        assert tree.leaf_hashes == baseline + len(dirtied)


class TestTreeUnit:
    def test_geometry_validation(self):
        for kwargs in ({"window_start": -1, "window_size": 8},
                       {"window_start": 0, "window_size": 0},
                       {"window_start": 0, "window_size": 8,
                        "chunk_size": 0},
                       {"window_start": 0, "window_size": 8, "arity": 1}):
            with pytest.raises(ConfigurationError):
                DigestTree(**kwargs)

    def test_lazy_until_first_root(self):
        tree = DigestTree(0, 100, chunk_size=10)
        assert not tree.built
        assert tree.dirty_leaf_count == tree.leaf_count == 10
        tree.note_write(0, 5)  # no-op while unbuilt
        assert tree.leaf_hashes == 0
        tree.root(bytes(100))
        assert tree.built
        assert tree.leaf_hashes == 10

    def test_invalidate_forces_full_rebuild(self):
        backing = bytearray(64)
        tree = DigestTree(0, 64, chunk_size=16)
        clean = tree.root(backing)
        # Snapshot-restore path: bytes change without note_write.
        backing[20] = 0xEB
        assert tree.root(backing) == clean  # stale by design...
        tree.invalidate()
        assert tree.root(backing) != clean  # ...until invalidated
        assert tree.full_builds == 2

    def test_writes_outside_window_never_dirty(self):
        tree = DigestTree(32, 64, chunk_size=16)
        tree.root(bytes(128))
        tree.note_write(0, 32)    # entirely below the window
        tree.note_write(96, 10)   # entirely above the window
        tree.note_write(5, 0)     # zero length
        assert tree.dirty_leaf_count == 0
        tree.note_write(30, 4)    # straddles the window start
        assert tree.dirty_leaf_count == 1


def booted_device(cache=None):
    device = Device(tiny_config())
    device.install_app()
    device.provision(b"digest-tree-k16!")
    device.boot()
    if cache is not None:
        device.attach_state_cache(cache)
    return device


device_writes = st.lists(
    st.tuples(st.sampled_from(["ram", "flash"]),
              st.integers(min_value=0, max_value=4000),
              st.binary(min_size=1, max_size=200)),
    min_size=1, max_size=6)


class TestDeviceEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(sequence=device_writes, rewrite_history=st.booleans())
    def test_incremental_equals_full_walk(self, sequence, rewrite_history):
        """Arbitrary mutations, then measurement: the incremental device
        (trees + two-level cache) must match a plain device byte for
        byte in digest, consumed cycles and energy.  With
        ``rewrite_history`` the same bytes are also re-stored in reverse
        order first, so the content key (not the history key) serves the
        final hit."""
        plain = booted_device()
        incremental = booted_device(StateDigestCache(max_entries=0))
        incremental.enable_incremental()
        for device in (plain, incremental):
            context = device.context("Code_Attest")
            for name, offset, data in sequence:
                region = getattr(device, name)
                offset = min(offset, region.size - len(data))
                region.load(offset, data)
            if rewrite_history:
                for name, offset, data in reversed(sequence):
                    region = getattr(device, name)
                    offset = min(offset, region.size - len(data))
                    region.load(offset, data)
            device.digest_writable_memory(context)  # prime the cache
            for name, offset, data in sequence:
                region = getattr(device, name)
                offset = min(offset, region.size - len(data))
                region.load(offset, data)  # same bytes, new history
            device.sync_energy()
        plain_ctx = plain.context("Code_Attest")
        incr_ctx = incremental.context("Code_Attest")
        results = []
        for device, context in ((plain, plain_ctx),
                                (incremental, incr_ctx)):
            digest = device.digest_writable_memory(context)
            device.sync_energy()
            results.append((digest, device.cpu.cycle_count,
                            device.battery.consumed_mj))
        assert results[0] == results[1]

    def test_content_key_hits_across_write_histories(self):
        """The PR 5 gap this PR closes, as a deterministic case: same
        final bytes via a different write order must hit via the content
        key and skip the full walk."""
        cache = StateDigestCache(max_entries=0)
        device = booted_device(cache)
        device.enable_incremental()
        context = device.context("Code_Attest")
        device.digest_writable_memory(context)
        chunks = [(0, b"A" * 64), (64, b"B" * 64)]
        for offset, data in chunks:
            device.ram.load(_DATA_OFF + offset, data)
        first = device.digest_writable_memory(context)
        tree_hashes = device.ram.digest_tree.leaf_hashes
        for offset, data in reversed(chunks):  # same bytes, new history
            device.ram.load(_DATA_OFF + offset, data)
        assert device.digest_writable_memory(context) == first
        # The second measurement refreshed the tree (one dirty leaf
        # range) but never paid a full walk: the content key hit.
        stats = cache.stats()
        assert stats["hits"] >= 1
        assert device.ram.digest_tree.leaf_hashes > tree_hashes
        assert device.ram.digest_tree.full_builds == 1

    def test_disable_incremental_detaches_trees(self):
        device = booted_device(StateDigestCache())
        device.enable_incremental()
        assert device.ram.digest_tree is not None
        device.disable_incremental()
        assert device.ram.digest_tree is None
        assert device.flash.digest_tree is None
        context = device.context("Code_Attest")
        assert device._content_digest_key(
            device.attested_spans()) is None
        device.digest_writable_memory(context)  # plain path still works
