"""Interrupt controller: IDT dispatch, masking, deferral, sabotage."""

import pytest

from repro.errors import ConfigurationError, InterruptError
from repro.mcu.cpu import CPU, ExecutionContext
from repro.mcu.interrupts import InterruptController, MaskRegister
from repro.mcu.memory import MemoryBus, MemoryMap, MemoryRegion, MemoryType


IDT_BASE = 0x2000
HANDLER_ADDR = 0x0100


def make_system(uninterruptible_handler=False):
    cpu = CPU()
    mm = MemoryMap()
    mm.add(MemoryRegion("rom", 0x0000, 0x1000, MemoryType.ROM,
                        executable=True))
    mm.add(MemoryRegion("ram", 0x2000, 0x1000, MemoryType.RAM))
    bus = MemoryBus(mm)
    ic = InterruptController(cpu, bus, IDT_BASE, num_irqs=4)
    ctx = ExecutionContext("handler", 0x0100, 0x0200)
    fired = []
    ic.register_entry_point(HANDLER_ADDR, ctx, lambda irq: fired.append(irq))
    ic.set_vector_raw(0, HANDLER_ADDR)
    return cpu, bus, ic, fired


class TestDispatch:
    def test_basic_dispatch(self):
        cpu, bus, ic, fired = make_system()
        assert ic.raise_irq(0)
        assert fired == [0]
        assert cpu.cycle_count == ic.dispatch_cost_cycles

    def test_dispatch_runs_under_handler_context(self):
        cpu, bus, ic, fired = make_system()
        observed = []
        ctx = ExecutionContext("h2", 0x0200, 0x0300)
        ic.register_entry_point(0x0200, ctx,
                                lambda irq: observed.append(
                                    cpu.current_context.name))
        ic.set_vector_raw(1, 0x0200)
        ic.raise_irq(1)
        assert observed == ["h2"]

    def test_dispatch_log(self):
        cpu, bus, ic, fired = make_system()
        ic.raise_irq(0)
        assert len(ic.dispatch_log) == 1
        assert ic.dispatch_log[0][1] == 0
        assert ic.dispatch_log[0][2] == "handler"

    def test_bad_irq_number(self):
        cpu, bus, ic, fired = make_system()
        with pytest.raises(InterruptError):
            ic.raise_irq(99)
        with pytest.raises(InterruptError):
            ic.set_vector_raw(-1, 0)

    def test_entry_point_outside_context_rejected(self):
        cpu, bus, ic, fired = make_system()
        ctx = ExecutionContext("x", 0x0100, 0x0200)
        with pytest.raises(ConfigurationError):
            ic.register_entry_point(0x0500, ctx, lambda irq: None)

    def test_vector_readback(self):
        cpu, bus, ic, fired = make_system()
        assert ic.get_vector(0) == HANDLER_ADDR


class TestMasking:
    def test_masked_irq_dropped(self):
        cpu, bus, ic, fired = make_system()
        ic.mask.disable(0)
        assert not ic.raise_irq(0)
        assert fired == []
        assert ic.dropped_log[0][2] == "masked"

    def test_reenable(self):
        cpu, bus, ic, fired = make_system()
        ic.mask.disable(0)
        ic.mask.enable(0)
        assert ic.raise_irq(0)
        assert fired == [0]

    def test_mask_mmio_interface(self):
        mask = MaskRegister(8)
        assert mask.mmio_read(0, None) == 0xFF
        mask.mmio_write(0, 0xFE, None)
        assert not mask.is_enabled(0)
        assert mask.is_enabled(1)

    def test_mask_size(self):
        assert MaskRegister(8).size == 4
        assert MaskRegister(64).size == 8


class TestSabotage:
    def test_idt_rewrite_redirects(self):
        """Malware registering its own handler and rewriting the vector
        steals the interrupt (the Figure 1b attack surface)."""
        cpu, bus, ic, fired = make_system()
        stolen = []
        malware_ctx = ExecutionContext("malware", 0x2800, 0x2C00)
        ic.register_entry_point(0x2800, malware_ctx,
                                lambda irq: stolen.append(irq))
        # Unprotected IDT: anyone can write the vector through the bus.
        bus.write_u32(None, IDT_BASE, 0x2800)
        ic.raise_irq(0)
        assert stolen == [0]
        assert fired == []

    def test_vector_to_dead_code_drops(self):
        cpu, bus, ic, fired = make_system()
        bus.write_u32(None, IDT_BASE, 0x0F00)   # no code there
        ic.raise_irq(0)
        assert fired == []
        assert ic.dropped_log[0][2] == "bad-vector"


class TestDeferral:
    def test_uninterruptible_context_defers(self):
        cpu, bus, ic, fired = make_system()
        atomic = ExecutionContext("rom", 0x0000, 0x0100,
                                  uninterruptible=True)
        with cpu.running(atomic):
            ic.raise_irq(0)
            assert fired == []
            assert ic.pending == [0]
        assert ic.run_pending() == 1
        assert fired == [0]

    def test_pending_order_preserved(self):
        cpu, bus, ic, fired = make_system()
        ic.set_vector_raw(1, HANDLER_ADDR)
        atomic = ExecutionContext("rom", 0, 0x100, uninterruptible=True)
        with cpu.running(atomic):
            ic.raise_irq(1)
            ic.raise_irq(0)
        ic.run_pending()
        assert fired == [1, 0]

    def test_num_irqs_validation(self):
        cpu = CPU()
        mm = MemoryMap()
        mm.add(MemoryRegion("ram", 0, 0x100, MemoryType.RAM))
        with pytest.raises(ConfigurationError):
            InterruptController(cpu, MemoryBus(mm), 0, num_irqs=0)
