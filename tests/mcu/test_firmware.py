"""Firmware modules and images: determinism, layout, measurement."""

import pytest

from repro.errors import ConfigurationError
from repro.mcu.firmware import FirmwareImage, FirmwareModule


class TestModule:
    def test_code_deterministic_per_build(self):
        a = FirmwareModule("app", 1024, version=1)
        b = FirmwareModule("app", 1024, version=1)
        assert a.code_bytes() == b.code_bytes()

    def test_version_changes_code(self):
        v1 = FirmwareModule("app", 1024, version=1)
        v2 = FirmwareModule("app", 1024, version=2)
        assert v1.code_bytes() != v2.code_bytes()

    def test_name_changes_code(self):
        assert FirmwareModule("a", 64).code_bytes() != \
            FirmwareModule("b", 64).code_bytes()

    def test_code_size(self):
        assert len(FirmwareModule("m", 777).code_bytes()) == 777

    def test_measurement_tracks_code(self):
        m1 = FirmwareModule("app", 256, version=1)
        m2 = FirmwareModule("app", 256, version=2)
        assert m1.measurement() != m2.measurement()
        assert len(m1.measurement()) == 20

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            FirmwareModule("m", 0)


class TestImage:
    def test_layout_and_span(self):
        image = FirmwareImage()
        image.add(FirmwareModule("boot", 0x100), 0x0000)
        image.add(FirmwareModule("app", 0x200), 0x1000)
        assert image.span("app") == (0x1000, 0x1200)
        assert image.module("boot").size == 0x100

    def test_rejects_overlap(self):
        image = FirmwareImage()
        image.add(FirmwareModule("a", 0x100), 0x0000)
        with pytest.raises(ConfigurationError):
            image.add(FirmwareModule("b", 0x100), 0x0080)

    def test_rejects_duplicate(self):
        image = FirmwareImage()
        image.add(FirmwareModule("a", 0x100), 0x0000)
        with pytest.raises(ConfigurationError):
            image.add(FirmwareModule("a", 0x100), 0x1000)

    def test_unknown_module(self):
        with pytest.raises(KeyError):
            FirmwareImage().module("ghost")

    def test_measurement_covers_all_modules(self):
        def build(app_version):
            image = FirmwareImage()
            image.add(FirmwareModule("boot", 0x100), 0x0000)
            image.add(FirmwareModule("app", 0x100, version=app_version),
                      0x1000)
            return image.measurement()

        assert build(1) == build(1)
        assert build(1) != build(2)

    def test_measurement_sensitive_to_placement(self):
        image1 = FirmwareImage()
        image1.add(FirmwareModule("app", 0x100), 0x1000)
        image2 = FirmwareImage()
        image2.add(FirmwareModule("app", 0x100), 0x2000)
        assert image1.measurement() != image2.measurement()
