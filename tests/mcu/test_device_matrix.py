"""Device configuration matrix: every profile x clock design boots and
enforces its advertised properties."""

import pytest

from repro.errors import MemoryAccessViolation
from repro.mcu import (ALL_PROFILES, BASELINE, Device, EXT_HARDENED,
                       ROAM_HARDENED, UNPROTECTED)
from tests.conftest import tiny_config

KEY = b"K" * 16
CLOCKS = ("hw64", "hw32div", "sw", "none")


def booted(profile, clock):
    device = Device(tiny_config(clock_kind=clock))
    device.provision(KEY)
    device.boot(profile)
    return device


@pytest.mark.parametrize("profile", ALL_PROFILES)
@pytest.mark.parametrize("clock", CLOCKS)
class TestBootMatrix:
    def test_boots_and_measures(self, profile, clock):
        device = booted(profile, clock)
        attest = device.context("Code_Attest")
        digest = device.digest_writable_memory(attest)
        assert len(digest) == 20

    def test_trust_anchor_always_has_key_access(self, profile, clock):
        device = booted(profile, clock)
        assert device.read_key(device.context("Code_Attest")) == KEY

    def test_counter_rw_for_anchor(self, profile, clock):
        device = booted(profile, clock)
        attest = device.context("Code_Attest")
        device.write_counter(attest, 11)
        assert device.read_counter(attest) == 11


def can(fn) -> bool:
    try:
        fn()
        return True
    except MemoryAccessViolation:
        return False


class TestEnforcementMatrix:
    """Each profile's promise, stated as what malware can and cannot do."""

    @pytest.mark.parametrize("profile,key_readable,counter_writable", [
        (UNPROTECTED, True, True),
        (BASELINE, False, True),
        (EXT_HARDENED, False, False),
        (ROAM_HARDENED, False, False),
    ])
    def test_key_and_counter(self, profile, key_readable, counter_writable):
        device = booted(profile, "hw64")
        malware = device.make_malware_context()
        assert can(lambda: device.read_key(malware)) == key_readable
        assert can(lambda: device.write_counter(malware, 1)) == \
            counter_writable

    @pytest.mark.parametrize("profile,clock_writable", [
        (UNPROTECTED, True),
        (BASELINE, True),
        (EXT_HARDENED, True),
        (ROAM_HARDENED, False),
    ])
    @pytest.mark.parametrize("clock", ["hw64", "hw32div"])
    def test_hw_clock_tamper(self, profile, clock_writable, clock):
        device = booted(profile, clock)
        malware = device.make_malware_context()

        def tamper():
            with device.cpu.running(malware):
                device.bus.write(malware, device.clock_register_span[0],
                                 b"\x00")

        assert can(tamper) == clock_writable

    @pytest.mark.parametrize("profile,msb_writable", [
        (UNPROTECTED, True),
        (BASELINE, True),
        (ROAM_HARDENED, False),
    ])
    def test_sw_clock_msb_tamper(self, profile, msb_writable):
        device = booted(profile, "sw")
        malware = device.make_malware_context()

        def tamper():
            with device.cpu.running(malware):
                device.bus.write_u64(malware, device.clock_msb_address, 0)

        assert can(tamper) == msb_writable


class TestAttestedSpans:
    def test_spans_cover_ram_and_flash(self):
        device = booted(ROAM_HARDENED, "hw64")
        spans = device.attested_spans()
        total = sum(end - start for start, end in spans)
        reserved = 0x100   # IDT / counter / Clock_MSB window
        assert total == device.writable_memory_bytes - reserved

    def test_spans_exclude_reserved_words(self):
        device = booted(ROAM_HARDENED, "hw64")
        for start, end in device.attested_spans():
            assert not start <= device.counter_address < end
            assert not start <= device.clock_msb_address < end
            assert not start <= device.idt_base < end

    def test_spans_disjoint_and_ordered(self):
        device = booted(ROAM_HARDENED, "hw64")
        spans = device.attested_spans()
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start


class TestEnergyAcrossClockDesigns:
    def test_sw_clock_costs_more_energy_at_idle(self):
        """The SW-clock's wrap handler wakes the CPU; the hardware clock
        counts for free.  A real design trade-off the model exposes."""
        def idle_energy(clock):
            device = booted(BASELINE, clock)
            device.sync_energy()
            before = device.battery.consumed_mj
            device.idle_seconds(10.0)
            device.sync_energy()
            return device.battery.consumed_mj - before

        assert idle_energy("sw") > idle_energy("hw64")

    def test_hw_clock_idle_is_pure_sleep(self):
        device = booted(BASELINE, "hw64")
        device.sync_energy()
        before = device.battery.consumed_mj
        device.idle_seconds(100.0)
        device.sync_energy()
        drained = device.battery.consumed_mj - before
        assert drained == pytest.approx(
            device.energy.sleep_energy_mj(100.0), rel=0.01)


class TestMalwareContexts:
    def test_multiple_malware_contexts(self):
        device = booted(BASELINE, "hw64")
        a = device.make_malware_context("mal-a", size=1024)
        b = device.make_malware_context("mal-b", size=2048)
        assert a.code_range != b.code_range or a.name != b.name
        assert device.context("mal-a") is a

    def test_malware_lives_in_ram(self):
        device = booted(BASELINE, "hw64")
        malware = device.make_malware_context(size=512)
        assert device.ram.contains(malware.code_start)
        assert malware.code_end <= device.ram.end
