"""Second wave of property-based tests: scheduler, paths, guard,
wire formats, model-checker consistency."""

from hypothesis import given, settings, strategies as st

from repro.core.messages import AttestationRequest
from repro.core.modelcheck import check_policy
from repro.crypto.rng import DeterministicRng
from repro.mcu.scheduler import CooperativeScheduler, PeriodicTask
from repro.net.path import Hop, NetworkPath


# ---------------------------------------------------------------------------
# Scheduler invariants
# ---------------------------------------------------------------------------

busy_strategy = st.lists(
    st.tuples(st.floats(0.0, 8.0), st.floats(0.05, 2.0)),
    max_size=4,
).map(lambda raw: _disjoint([(start, start + length)
                             for start, length in raw]))


def _disjoint(intervals):
    """Make an arbitrary interval list disjoint by clipping."""
    result = []
    cursor = 0.0
    for start, end in sorted(intervals):
        start = max(start, cursor)
        if end > start:
            result.append((start, end))
            cursor = end
    return result


@given(busy=busy_strategy,
       period=st.floats(0.2, 2.0),
       job_fraction=st.floats(0.05, 0.9))
@settings(max_examples=60)
def test_scheduler_executions_never_overlap_busy_intervals(
        busy, period, job_fraction):
    task = PeriodicTask("t", period, period * job_fraction,
                        policy="catch-up")
    report = CooperativeScheduler([task]).run(10.0, busy)
    for job in report.jobs:
        if job.started is None:
            continue
        for b_start, b_end in busy:
            # No overlap between the job execution and any busy interval.
            assert job.finished <= b_start + 1e-9 or \
                job.started >= b_end - 1e-9


@given(busy=busy_strategy, period=st.floats(0.2, 2.0))
@settings(max_examples=60)
def test_scheduler_jobs_start_after_release_and_run_in_order(busy, period):
    task = PeriodicTask("t", period, period * 0.3, policy="catch-up")
    report = CooperativeScheduler([task]).run(10.0, busy)
    executed = [job for job in report.jobs if job.started is not None]
    for job in executed:
        assert job.started >= job.release - 1e-9
        assert job.finished - job.started == \
            __import__("pytest").approx(task.job_seconds)
    for first, second in zip(executed, executed[1:]):
        assert second.started >= first.finished - 1e-9


@given(busy=busy_strategy)
@settings(max_examples=40)
def test_scheduler_skip_policy_never_reports_late(busy):
    task = PeriodicTask("t", 1.0, 0.2, policy="skip")
    report = CooperativeScheduler([task]).run(10.0, busy)
    assert all(job.outcome in ("met", "skipped") for job in report.jobs)
    assert report.met + report.skipped == report.released


# ---------------------------------------------------------------------------
# Network paths
# ---------------------------------------------------------------------------

hop_strategy = st.tuples(st.floats(0.0, 0.05), st.floats(0.0, 0.05)).map(
    lambda t: Hop("h", t[0], t[1]))


@given(hops=st.lists(hop_strategy, min_size=1, max_size=6),
       seed=st.binary(min_size=1, max_size=8))
@settings(max_examples=60)
def test_path_samples_within_envelope(hops, seed):
    path = NetworkPath(hops)
    rng = DeterministicRng(seed)
    for _ in range(20):
        delay = path.sample(rng)
        assert path.base_latency_seconds - 1e-12 <= delay
        assert delay <= (path.base_latency_seconds
                         + path.jitter_span_seconds + 1e-12)


@given(hops=st.lists(hop_strategy, min_size=1, max_size=5))
def test_path_composition_is_additive(hops):
    path = NetworkPath(hops)
    assert path.base_latency_seconds == __import__("pytest").approx(
        sum(h.latency_seconds for h in hops))
    assert path.jitter_span_seconds == __import__("pytest").approx(
        sum(h.jitter_seconds for h in hops))


# ---------------------------------------------------------------------------
# Wire formats
# ---------------------------------------------------------------------------

@given(challenge=st.binary(max_size=32),
       counter=st.one_of(st.none(), st.integers(0, 2 ** 64 - 2)),
       nonce=st.one_of(st.none(), st.binary(min_size=1, max_size=32)))
def test_request_wire_roundtrip_property(challenge, counter, nonce):
    original = AttestationRequest(challenge=challenge, counter=counter,
                                  nonce=nonce, auth_scheme="hmac-sha1",
                                  auth_tag=b"t" * 20)
    parsed = AttestationRequest.from_bytes(original.to_bytes())
    assert parsed == original
    assert parsed.signed_payload() == original.signed_payload()


# ---------------------------------------------------------------------------
# Model checker internal consistency
# ---------------------------------------------------------------------------

@given(requests=st.integers(2, 3), window=st.floats(0.5, 2.0))
@settings(max_examples=10, deadline=None)
def test_modelcheck_counter_invariants_hold_for_any_geometry(requests,
                                                             window):
    result = check_policy("counter", requests=requests, window=window,
                          spacing=window * 3)
    assert "no-double-acceptance" in result.holds
    assert "order-safety" in result.holds
    assert "honest-liveness" in result.holds


@given(window=st.floats(0.5, 2.0))
@settings(max_examples=8, deadline=None)
def test_modelcheck_monotonic_timestamp_always_safe(window):
    result = check_policy("timestamp", window=window, spacing=window * 3,
                          monotonic_timestamps=True)
    assert not result.violations
