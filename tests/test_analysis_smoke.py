"""Tier-1 wiring for ``scripts/analysis_smoke.py``.

Runs the smoke script exactly as CI would (a subprocess with only
``PYTHONPATH=src``) so a regression in the static verifier, the linter,
the report schema, or the shipped protection profiles fails the suite,
not just the nightly job.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "scripts" / "analysis_smoke.py"
ENV = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}


def run_smoke(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, env=ENV)


class TestAnalysisSmokeScript:
    def test_default_gates_pass(self):
        proc = run_smoke()
        assert proc.returncode == 0, proc.stderr
        assert "analysis-smoke: OK" in proc.stderr
        assert "lint clean" in proc.stderr

    def test_untainted_fixture_fails_the_failure_mode_gate(self):
        """Sanity-check the gate actually gates: pointing the tainted-tree
        gate at a clean directory must exit 1 with a diagnostic."""
        proc = run_smoke("--lint-root", "scripts")
        assert proc.returncode == 1
        assert "FAIL: failure mode" in proc.stderr
