"""Schema validation of the ``BENCH_wallclock.json`` perf report."""

import copy

import pytest

from repro.obs import WALLCLOCK_SCHEMA, validate_wallclock_report
from repro.perf import REPORT_SCHEMA_ID


def minimal_report() -> dict:
    """A hand-built report matching what ``build_report`` emits."""
    entry = {"ram_kb": 16, "writable_kb": 24, "engine": "accel",
             "seconds": 0.001, "mb_per_s": 24.0, "digest": "ab" * 20}
    naive = dict(entry, engine="naive", seconds=0.5, mb_per_s=0.05)
    return {
        "schema": REPORT_SCHEMA_ID,
        "engine_default": "accel",
        "host": {"python": "3.11.0", "implementation": "CPython",
                 "machine": "x86_64"},
        "sweep": [entry],
        "naive_baseline": naive,
        "speedup": {"ram_kb": 16, "naive_seconds": 0.5,
                    "fast_seconds": 0.001, "factor": 500.0},
        "hmac_cache": {"rounds": 500, "cold_seconds": 0.01,
                       "warm_seconds": 0.002, "speedup": 5.0},
        "equivalence": {"ram_kb": 16, "rounds": 2, "identical": True,
                        "engines": {"accel": {"identical": True,
                                              "mismatched_fields": []}}},
    }


def test_minimal_report_validates():
    assert validate_wallclock_report(minimal_report()) == []


def test_harness_built_report_validates():
    from repro.perf import build_report

    report = build_report(sweep_kb=(8,), naive_kb=8, equivalence_ram_kb=8)
    assert validate_wallclock_report(report) == []


def test_schema_is_exported():
    assert WALLCLOCK_SCHEMA["properties"]["schema"]["enum"] \
        == [REPORT_SCHEMA_ID]


@pytest.mark.parametrize("corrupt, fragment", [
    (lambda r: r.pop("speedup"), "missing required key 'speedup'"),
    (lambda r: r["speedup"].pop("factor"), "missing required key 'factor'"),
    (lambda r: r.__setitem__("schema", "other/v9"), "not in allowed values"),
    (lambda r: r["sweep"][0].__setitem__("engine", "turbo"),
     "not in allowed values"),
    (lambda r: r["sweep"][0].__setitem__("seconds", "fast"),
     "expected number"),
    (lambda r: r["sweep"][0].__setitem__("ram_kb", 0), "below minimum"),
    (lambda r: r["naive_baseline"].__setitem__("engine", "accel"),
     "engine must be 'naive'"),
    (lambda r: r["equivalence"].__setitem__("identical", "yes"),
     "expected boolean"),
    (lambda r: r.__setitem__("sweep", "oops"), "expected array"),
])
def test_corrupted_reports_are_rejected(corrupt, fragment):
    report = copy.deepcopy(minimal_report())
    corrupt(report)
    errors = validate_wallclock_report(report)
    assert errors, "corruption not detected"
    assert any(fragment in error for error in errors), errors


def test_non_dict_rejected():
    assert validate_wallclock_report([]) \
        == ["wallclock: expected object, got list"]
