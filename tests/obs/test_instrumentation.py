"""End-to-end instrumentation: the registry must mirror the pipeline.

The acceptance bar for the telemetry layer: attach a sink to a whole
session, run the protocol, and every number the legacy counters
(:class:`ProverStats`, channel/verifier bookkeeping) report must be
readable -- equal -- out of the metrics registry, with the trace telling
the same story event by event.  And attaching no sink must change
nothing.
"""

import json

import pytest

from repro.obs import Telemetry, validate_jsonl_trace, validate_registry_dump
from repro.services.monitor import AttestationMonitor, MonitorPolicy


@pytest.fixture
def observed(session_factory):
    session = session_factory(telemetry=Telemetry(), seed="obs-e2e")
    session.learn_reference_state()
    return session


class TestProverRegistryMatchesStats:
    def test_accepted_rounds(self, observed):
        for _ in range(3):
            result = observed.attest_once(settle_seconds=10.0)
            assert result.trusted
        stats = observed.anchor.stats
        registry = observed.telemetry.registry
        assert registry.value("prover.requests.received") == stats.received
        assert registry.value("prover.requests.accepted") == stats.accepted
        assert registry.total("prover.requests.rejected") == \
            stats.rejected_total
        assert registry.value("prover.validation_cycles") == \
            stats.validation_cycles
        assert registry.value("prover.attestation_cycles") == \
            stats.attestation_cycles

    def test_rejections_are_labelled_by_reason(self, observed):
        request = observed.verifier.make_request()
        # Replay the same request twice: the second must die at freshness.
        observed.anchor.handle_request(request)
        response, reason = observed.anchor.handle_request(request)
        assert response is None
        registry = observed.telemetry.registry
        assert registry.value("prover.requests.rejected", reason=reason) == 1
        assert observed.anchor.stats.rejected == {reason: 1}
        rejected = observed.telemetry.trace.of_kind("request-rejected")
        assert [e.fields["reason"] for e in rejected] == [reason]

    def test_histograms_observe_once_per_request(self, observed):
        observed.attest_once(settle_seconds=10.0)
        registry = observed.telemetry.registry
        stats = observed.anchor.stats
        validation = registry.histogram("prover.validation_cycles_per_request")
        attestation = registry.histogram(
            "prover.attestation_cycles_per_request")
        assert validation.count == stats.received
        assert attestation.count == stats.accepted
        assert validation.sum == stats.validation_cycles
        assert attestation.sum == stats.attestation_cycles


class TestTraceTellsTheStory:
    def test_event_pipeline_of_a_clean_round(self, observed):
        observed.attest_once(settle_seconds=10.0)
        trace = observed.telemetry.trace
        assert trace.count("request-received") == 1
        assert trace.count("request-accepted") == 1
        assert trace.count("measurement-start") == 1
        assert trace.count("measurement-end") == 1
        # request + response each cross the channel once.
        assert trace.count("channel-send") == 2
        assert trace.count("channel-deliver") == 2
        # The whole export validates and seq is strictly increasing.
        assert validate_jsonl_trace(trace.to_jsonl()) == []

    def test_measurement_cycles_match_stats(self, observed):
        observed.attest_once(settle_seconds=10.0)
        ends = observed.telemetry.trace.of_kind("measurement-end")
        stats = observed.anchor.stats
        assert len(ends) == 1
        # The measurement is the dominant share of the attestation cost.
        assert 0 < ends[0].fields["cycles"] <= stats.attestation_cycles


class TestOtherLayers:
    def test_verifier_counters(self, observed):
        assert observed.attest_once(settle_seconds=10.0).trusted
        registry = observed.telemetry.registry
        assert registry.value("verifier.requests_issued") == 1
        assert registry.value("verifier.responses_validated") == 1
        assert registry.value("verifier.verdicts", trusted="yes") == 1
        assert registry.value("verifier.verdicts", trusted="no",
                              default=0) == 0

    def test_channel_counters_balance(self, observed):
        observed.attest_once(settle_seconds=10.0)
        registry = observed.telemetry.registry
        sent = registry.value("channel.sent")
        assert sent == 2
        assert registry.value("channel.delivered") \
            + registry.value("channel.dropped") == sent
        assert registry.value("channel.pending_events") == 0

    def test_device_geometry_gauges(self, observed):
        registry = observed.telemetry.registry
        config = observed.device.config
        assert registry.value("device.ram_bytes") == config.ram_size
        assert registry.value("device.flash_bytes") == config.flash_size
        assert registry.value("device.writable_bytes") == \
            observed.device.writable_memory_bytes

    def test_energy_gauges_track_battery(self, observed):
        observed.attest_once(settle_seconds=10.0)
        observed.device.sync_energy()
        registry = observed.telemetry.registry
        battery = observed.device.battery
        assert registry.value("device.energy_consumed_mj") == \
            pytest.approx(battery.consumed_mj)
        assert registry.value("device.battery_fraction_remaining") == \
            pytest.approx(battery.fraction_remaining)

    def test_cpu_cycles_attributed_to_contexts(self, observed):
        observed.attest_once(settle_seconds=10.0)
        registry = observed.telemetry.registry
        attest = registry.value("cpu.cycles", context="Code_Attest")
        assert attest > 0
        # Cycles observed through telemetry never exceed the CPU's own
        # counter (the sink attaches after boot, so early cycles are
        # legitimately unobserved).
        assert registry.total("cpu.cycles") <= observed.device.cpu.cycle_count

    def test_monitor_events_mirrored(self, observed):
        monitor = AttestationMonitor(
            observed, MonitorPolicy(interval_seconds=30.0))
        monitor.run(rounds=2)
        registry = observed.telemetry.registry
        trace = observed.telemetry.trace
        assert registry.total("monitor.events") == len(monitor.events)
        assert trace.count("monitor-event") == len(monitor.events)
        assert registry.value("monitor.events", kind="ok") == \
            sum(1 for e in monitor.events if e.kind == "ok")


class TestNoBehaviourChange:
    def test_observed_and_unobserved_sessions_agree(self, session_factory):
        plain = session_factory(seed="obs-parity")
        observed = session_factory(telemetry=Telemetry(), seed="obs-parity")
        for session in (plain, observed):
            session.learn_reference_state()
            for _ in range(2):
                assert session.attest_once(settle_seconds=10.0).trusted
        assert plain.anchor.stats == observed.anchor.stats
        assert plain.device.cpu.cycle_count == observed.device.cpu.cycle_count
        plain_summary = plain.summary()
        observed_summary = observed.summary()
        assert plain_summary == observed_summary

    def test_null_sink_is_the_default(self, session_factory):
        session = session_factory(seed="obs-default")
        assert session.telemetry.enabled is False
        assert session.anchor.telemetry is session.telemetry
        assert session.device.telemetry is session.telemetry


class TestExportsValidate:
    def test_registry_dump_and_trace_export(self, observed, tmp_path):
        observed.attest_once(settle_seconds=10.0)
        observed.device.sync_energy()
        dump = json.loads(json.dumps(observed.telemetry.registry.dump()))
        assert validate_registry_dump(dump) == []
        path = tmp_path / "trace.jsonl"
        observed.telemetry.trace.export_jsonl(path)
        assert validate_jsonl_trace(path.read_text()) == []
