"""Unit tests for the metrics registry primitives."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.obs.registry import Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("reqs", {})
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        c = Counter("reqs", {})
        with pytest.raises(ConfigurationError):
            c.inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth", {})
        g.set(7)
        g.add(-2)
        assert g.value == 5


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper(self):
        h = Histogram("lat", {}, buckets=(10, 100))
        h.observe(10)      # lands in <=10
        h.observe(11)      # lands in <=100
        h.observe(1000)    # overflow
        assert h.count == 3
        assert h.sum == 1021
        assert h.bucket_counts == [1, 1]
        assert h.overflow == 1

    def test_mean(self):
        h = Histogram("lat", {}, buckets=(10,))
        assert h.mean == 0.0
        h.observe(4)
        h.observe(6)
        assert h.mean == 5.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("lat", {}, buckets=(100, 10))


class TestMetricsRegistry:
    def test_counter_is_memoized_per_label_set(self):
        reg = MetricsRegistry()
        a = reg.counter("reqs", scheme="speck")
        b = reg.counter("reqs", scheme="speck")
        c = reg.counter("reqs", scheme="hmac")
        assert a is b and a is not c

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("reqs", a="1", b="2")
        b = reg.counter("reqs", b="2", a="1")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("reqs")
        with pytest.raises(ConfigurationError):
            reg.gauge("reqs")

    def test_value_and_total_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("rej", reason="stale").inc(2)
        reg.counter("rej", reason="auth").inc(3)
        assert reg.value("rej", reason="stale") == 2
        assert reg.value("missing", default=-1) == -1
        assert reg.total("rej") == 5

    def test_total_excludes_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(10,)).observe(5)
        assert reg.total("lat") == 0

    def test_dump_is_deterministic_and_schema_tagged(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a", x="2").inc()
        reg.counter("a", x="1").inc()
        reg.gauge("g").set(3)
        reg.histogram("h", buckets=(1, 2)).observe(1)
        dump = reg.dump()
        assert dump["schema"] == "repro.obs.registry/v1"
        names = [(m["name"], tuple(sorted(m["labels"].items())))
                 for m in dump["metrics"]]
        assert names == sorted(names)
        assert dump == reg.dump()


class TestRegistryMerge:
    """Shard-merge semantics: counters add, gauges take the incoming
    value, histograms add bucket-wise -- and the merged dump must not
    depend on which shard an instrument first appeared in."""

    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("reqs", scheme="speck").inc(2)
        b.counter("reqs", scheme="speck").inc(3)
        b.counter("reqs", scheme="hmac").inc(1)
        assert a.merge(b) is a
        assert a.value("reqs", scheme="speck") == 5
        assert a.value("reqs", scheme="hmac") == 1

    def test_gauges_take_incoming_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(7)
        b.gauge("depth").set(2)
        a.merge(b)
        assert a.value("depth") == 2

    def test_histograms_add_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(10, 100)).observe(5)
        h = b.histogram("lat", buckets=(10, 100))
        h.observe(50)
        h.observe(1000)
        a.merge(b)
        merged = a.histogram("lat", buckets=(10, 100))
        assert merged.count == 3
        assert merged.sum == 1055
        assert merged.bucket_counts == [1, 1]
        assert merged.overflow == 1

    def test_histogram_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(10,)).observe(1)
        b.histogram("lat", buckets=(10, 100)).observe(1)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_order_does_not_change_the_dump(self):
        def shard(counter_value, gauge_value):
            reg = MetricsRegistry()
            reg.counter("reqs").inc(counter_value)
            reg.gauge("depth").set(gauge_value)
            reg.histogram("lat", buckets=(10,)).observe(counter_value)
            return reg

        left = MetricsRegistry()
        left.merge(shard(1, 5))
        left.merge(shard(2, 9))
        fresh = MetricsRegistry()
        fresh.counter("reqs").inc(3)
        fresh.gauge("depth").set(9)
        h = fresh.histogram("lat", buckets=(10,))
        h.observe(1)
        h.observe(2)
        assert left.dump() == fresh.dump()

    def test_from_dump_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("reqs", scheme="speck").inc(4)
        reg.gauge("depth").set(-2)
        h = reg.histogram("lat", buckets=(10, 100))
        h.observe(7)
        h.observe(5000)
        rebuilt = MetricsRegistry.from_dump(reg.dump())
        assert rebuilt.dump() == reg.dump()

    def test_from_dump_rejects_wrong_schema(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry.from_dump({"schema": "nope", "metrics": []})

    def test_from_dump_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry.from_dump(
                {"schema": "repro.obs.registry/v1",
                 "metrics": [{"kind": "summary", "name": "x",
                              "labels": {}, "value": 1}]})


class TestErrorFreeFolding:
    """The expansion-based accumulators make float folding *exact*.

    A fleet folds per-shard registries in whatever order the process
    pool finishes, and a checkpoint round-trips every accumulator
    through JSON.  Both only stay deterministic if the fold is exactly
    associative/commutative and the dump loses no bits -- which plain
    left-to-right float addition is not.
    """

    _values = st.lists(
        st.floats(min_value=-1e12, max_value=1e12,
                  allow_nan=False, allow_infinity=False,
                  width=64),
        min_size=1, max_size=24)

    @given(values=_values, order=st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_merge_is_exactly_order_independent(self, values, order):
        shards = []
        for value in values:
            reg = MetricsRegistry()
            reg.counter("energy_mj").inc(abs(value))
            reg.histogram("lat", buckets=(1.0, 1e6)).observe(value)
            shards.append(reg)
        shuffled = list(shards)
        order.shuffle(shuffled)

        sequential = MetricsRegistry()
        for reg in shards:
            sequential.merge(reg)
        permuted = MetricsRegistry()
        for reg in shuffled:
            permuted.merge(reg)
        assert sequential.dump() == permuted.dump()

    @given(values=_values)
    @settings(max_examples=200, deadline=None)
    def test_dump_roundtrip_is_exact_for_adversarial_floats(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        for value in values:
            reg.counter("energy_mj").inc(abs(value))
            h.observe(value)
        wire = json.loads(json.dumps(reg.dump()))
        rebuilt = MetricsRegistry.from_dump(wire)
        assert rebuilt.dump() == reg.dump()
        follow = MetricsRegistry()
        follow.counter("energy_mj").inc(1.0 / 3.0)
        rebuilt.merge(follow)
        reg.merge(follow)
        assert rebuilt.dump() == reg.dump()
