"""Unit tests for the event trace, schemas, and telemetry facade."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (EVENT_KINDS, EventTrace, NULL_TELEMETRY, Telemetry,
                       validate_event, validate_jsonl_trace,
                       validate_registry_dump)


class TestEventTrace:
    def test_records_are_numbered_and_typed(self):
        trace = EventTrace()
        a = trace.record("request-received", 0.5, scheme="speck")
        b = trace.record("request-accepted", 1.0)
        assert (a.seq, b.seq) == (0, 1)
        assert a.kind == "request-received"
        assert a.fields == {"scheme": "speck"}
        assert len(trace) == 2
        assert trace.count("request-received") == 1
        assert [e.kind for e in trace.of_kind("request-accepted")] == \
            ["request-accepted"]

    def test_unknown_kind_raises(self):
        trace = EventTrace()
        with pytest.raises(ConfigurationError):
            trace.record("request-recieved", 0.0)  # the typo this catches

    def test_non_scalar_field_raises(self):
        trace = EventTrace()
        with pytest.raises(ConfigurationError):
            trace.record("channel-send", 0.0, payload=[1, 2, 3])

    def test_bounded_memory_drops_oldest_and_counts(self):
        trace = EventTrace(max_events=3)
        for i in range(5):
            trace.record("channel-send", float(i))
        assert len(trace) == 3
        assert trace.dropped_events == 2
        assert [e.seq for e in trace] == [2, 3, 4]

    def test_jsonl_roundtrip_validates(self, tmp_path):
        trace = EventTrace()
        trace.record("measurement-start", 0.1, bytes=8192)
        trace.record("measurement-end", 0.9, cycles=290000)
        text = trace.to_jsonl()
        assert validate_jsonl_trace(text) == []
        path = tmp_path / "trace.jsonl"
        assert trace.export_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "measurement-start"

    def test_export_of_empty_trace_is_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert EventTrace().export_jsonl(path) == 0
        assert path.read_text() == ""


class TestTraceMerge:
    """Shard-merge primitives: ``as_records`` round-trips through
    ``extend_records`` and the concatenation re-numbers ``seq`` so the
    merged trace still validates."""

    def test_as_records_matches_event_dicts(self):
        trace = EventTrace()
        trace.record("request-received", 0.5, scheme="speck")
        trace.record("request-accepted", 1.0)
        records = trace.as_records()
        assert [r["kind"] for r in records] == ["request-received",
                                                "request-accepted"]
        assert records == [e.as_dict() for e in trace]

    def test_extend_records_renumbers_and_validates(self):
        shard_a, shard_b = EventTrace(), EventTrace()
        shard_a.record("channel-send", 0.1, bytes=64)
        shard_a.record("channel-deliver", 0.2)
        shard_b.record("request-received", 0.05)
        merged = EventTrace()
        assert merged.extend_records(shard_a.as_records()) == 2
        assert merged.extend_records(shard_b.as_records()) == 1
        assert [e.seq for e in merged] == [0, 1, 2]
        assert [e.kind for e in merged] == ["channel-send",
                                            "channel-deliver",
                                            "request-received"]
        assert next(iter(merged)).fields == {"bytes": 64}
        assert validate_jsonl_trace(merged.to_jsonl()) == []

    def test_extend_records_rejects_unknown_kind(self):
        merged = EventTrace()
        with pytest.raises(ConfigurationError):
            merged.extend_records(
                [{"seq": 0, "time": 0.0, "kind": "not-a-kind"}])


class TestSchemaValidation:
    def test_valid_event_passes(self):
        assert validate_event({"seq": 0, "time": 0.0,
                               "kind": "clock-wrap", "wraps": 1}) == []

    def test_every_known_kind_is_in_the_schema_enum(self):
        for kind in EVENT_KINDS:
            assert validate_event({"seq": 0, "time": 0.0, "kind": kind}) == []

    def test_bad_events_are_rejected_with_reasons(self):
        assert validate_event({"time": 0.0, "kind": "clock-wrap"})
        assert validate_event({"seq": 0, "time": 0.0, "kind": "nope"})
        assert validate_event({"seq": -1, "time": 0.0, "kind": "clock-wrap"})
        assert validate_event({"seq": 0, "time": 0.0, "kind": "clock-wrap",
                               "extra": {"nested": True}})

    def test_jsonl_seq_must_increase(self):
        text = ('{"seq": 1, "time": 0.0, "kind": "channel-send"}\n'
                '{"seq": 1, "time": 0.1, "kind": "channel-send"}')
        errors = validate_jsonl_trace(text)
        assert any("not increasing" in e for e in errors)

    def test_registry_dump_roundtrip(self):
        telemetry = Telemetry()
        telemetry.count("prover.requests.received")
        telemetry.set_gauge("device.ram_bytes", 8192)
        telemetry.observe("prover.validation_cycles_per_request", 360)
        dump = json.loads(json.dumps(telemetry.registry.dump()))
        assert validate_registry_dump(dump) == []

    def test_registry_dump_rejects_malformed(self):
        assert validate_registry_dump({"metrics": []})          # no schema tag
        assert validate_registry_dump(
            {"schema": "repro.obs.registry/v1",
             "metrics": [{"kind": "counter", "name": "x", "labels": {},
                          "value": "three"}]})


class TestTelemetryFacade:
    def test_hooks_update_registry_and_trace(self):
        telemetry = Telemetry()
        telemetry.count("prover.requests.rejected", reason="stale-nonce")
        telemetry.event("request-rejected", 0.25, reason="stale-nonce")
        assert telemetry.registry.value("prover.requests.rejected",
                                        reason="stale-nonce") == 1
        assert telemetry.trace.count("request-rejected") == 1

    def test_null_sink_is_inert_and_shared(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.registry is None
        assert NULL_TELEMETRY.trace is None
        # All hooks accept the same arguments and do nothing.
        NULL_TELEMETRY.count("anything", 5, label="x")
        NULL_TELEMETRY.event("not-even-a-valid-kind", 0.0)
        NULL_TELEMETRY.set_gauge("g", 1)
        NULL_TELEMETRY.observe("h", 2)
