"""Tier-1 wiring for ``scripts/bench_schema_check.py``.

Every checked-in ``BENCH_*.json`` artefact must validate against its
schema in :mod:`repro.obs.schema` in one pass, and an artefact without
a registered validator must fail loudly -- a new benchmark cannot land
a report format CI never looks at.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "scripts" / "bench_schema_check.py"
ENV = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}


def run_check(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, env=ENV)


class TestBenchSchemaCheck:
    def test_all_checked_in_artifacts_validate(self):
        proc = run_check()
        assert proc.returncode == 0, proc.stderr
        assert "bench-schema-check: OK" in proc.stderr

    def test_every_artifact_is_covered(self):
        """The one-pass run must see every BENCH_*.json at the root."""
        proc = run_check()
        for path in sorted(REPO.glob("BENCH_*.json")):
            assert path.name in proc.stderr

    def test_unknown_artifact_fails(self, tmp_path):
        rogue = tmp_path / "BENCH_rogue.json"
        rogue.write_text("{}\n")
        proc = run_check(str(rogue))
        assert proc.returncode == 1
        assert "no validator registered" in proc.stderr

    def test_corrupt_artifact_fails(self, tmp_path):
        broken = tmp_path / "BENCH_snapshot.json"
        broken.write_text("{not json\n")
        proc = run_check(str(broken))
        assert proc.returncode == 1
        assert "unreadable" in proc.stderr

    def test_schema_violation_fails(self, tmp_path):
        source = json.loads((REPO / "BENCH_snapshot.json").read_text())
        del source["gate"]
        mutated = tmp_path / "BENCH_snapshot.json"
        mutated.write_text(json.dumps(source))
        proc = run_check(str(mutated))
        assert proc.returncode == 1
        assert "gate" in proc.stderr
