"""Tier-1 wiring for ``scripts/delta_smoke.py``.

Runs the smoke script exactly as CI would (a subprocess with only
``PYTHONPATH=src``) so a broken delta path -- a chain that folds to
something other than the full snapshot, a shard-parallel delta capture
that drifts, a compaction that loses bytes, or a bisection that misses
the first matching event or stops beating the linear scan -- fails the
suite, not just a manual run.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "scripts" / "delta_smoke.py"
ENV = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}


def run_smoke(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, env=ENV)


class TestDeltaSmokeScript:
    def test_default_gates_pass(self):
        proc = run_smoke()
        assert proc.returncode == 0, proc.stderr
        assert "delta-smoke: OK" in proc.stderr
        assert "chain == full" in proc.stderr
        assert "bisect found seq" in proc.stderr
