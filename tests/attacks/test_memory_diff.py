"""Memory snapshots and change-extent diffing."""

import pytest

from repro.attacks.forensics import MemorySnapshot, diff_snapshots
from repro.mcu import BASELINE, Device
from tests.conftest import tiny_config


@pytest.fixture
def device():
    dev = Device(tiny_config())
    dev.provision(b"K" * 16)
    dev.boot(BASELINE)
    return dev


class TestDiff:
    def test_identical_snapshots_no_extents(self, device):
        before = MemorySnapshot(device)
        after = MemorySnapshot(device)
        assert diff_snapshots(before, after) == []

    def test_single_change_located(self, device):
        before = MemorySnapshot(device)
        target = device.data_base
        device.ram.load(target - device.ram.start, b"\xEB\xFE")
        extents = diff_snapshots(before, MemorySnapshot(device))
        assert len(extents) == 1
        assert extents[0].region == "ram"
        assert extents[0].start == target
        assert extents[0].length == 2
        assert extents[0].end == target + 2

    def test_nearby_changes_merge(self, device):
        before = MemorySnapshot(device)
        offset = device.data_base - device.ram.start
        device.ram.load(offset, b"\xAA")
        device.ram.load(offset + 4, b"\xBB")     # 3-byte gap < min_gap
        extents = diff_snapshots(before, MemorySnapshot(device), min_gap=8)
        assert len(extents) == 1
        assert extents[0].length == 5

    def test_distant_changes_separate(self, device):
        before = MemorySnapshot(device)
        offset = device.data_base - device.ram.start
        device.ram.load(offset, b"\xAA")
        device.ram.load(offset + 100, b"\xBB")
        extents = diff_snapshots(before, MemorySnapshot(device))
        assert len(extents) == 2

    def test_changes_across_regions(self, device):
        before = MemorySnapshot(device)
        device.ram.load(device.data_base - device.ram.start, b"\x01")
        device.flash.load(50, b"\x02")
        extents = diff_snapshots(before, MemorySnapshot(device))
        assert {extent.region for extent in extents} == {"ram", "flash"}

    def test_roaming_implant_localised(self, device):
        """The diff pinpoints a Phase II implant that the digest only
        detects."""
        before = MemorySnapshot(device)
        malware = device.make_malware_context(size=512)
        device.ram.load(malware.code_start - device.ram.start,
                        b"\xEB" * 512)
        extents = diff_snapshots(before, MemorySnapshot(device))
        assert len(extents) == 1
        assert extents[0].start == malware.code_start
        assert extents[0].length == 512

    def test_erased_then_restored_leaves_nothing(self, device):
        """The Phase II erase-and-restore cycle defeats snapshot diffing
        too -- stealth is stealth."""
        before = MemorySnapshot(device)
        offset = device.data_base - device.ram.start
        original = device.ram.raw_read(offset, 64)
        device.ram.load(offset, b"\xEB" * 64)
        device.ram.load(offset, original)
        assert diff_snapshots(before, MemorySnapshot(device)) == []

    def test_membership(self, device):
        snapshot = MemorySnapshot(device)
        assert "ram" in snapshot
        assert "flash" in snapshot
        assert "rom" not in snapshot
