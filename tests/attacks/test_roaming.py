"""The three-phase roaming adversary against single configurations."""

import pytest

from repro.attacks.roaming import RoamingAdversary
from repro.attacks.scenarios import run_roaming_attack
from repro.mcu import BASELINE, EXT_HARDENED, ROAM_HARDENED, UNPROTECTED


class TestCounterRollback:
    def test_succeeds_on_baseline_and_undetectable(self):
        record = run_roaming_attack(strategy="counter-rollback",
                                    policy="counter", profile=BASELINE,
                                    seed="t-roam-1")
        assert record.dos_succeeded
        assert record.outcome.compromise.counter_rolled_back
        # Section 5: "the DoS attack is undetectable after the fact".
        assert not record.detectable
        assert record.outcome.state_digest_clean

    def test_blocked_by_counter_protection(self):
        record = run_roaming_attack(strategy="counter-rollback",
                                    policy="counter", profile=EXT_HARDENED,
                                    seed="t-roam-2")
        assert not record.dos_succeeded
        assert "write-counter" in record.outcome.compromise.denied

    def test_wasted_cycles_accounted_on_success(self):
        record = run_roaming_attack(strategy="counter-rollback",
                                    policy="counter", profile=BASELINE,
                                    seed="t-roam-3")
        assert record.outcome.prover_wasted_cycles > 0


class TestClockReset:
    def test_succeeds_on_baseline_but_leaves_clock_behind(self):
        record = run_roaming_attack(strategy="clock-reset",
                                    policy="timestamp", profile=BASELINE,
                                    seed="t-roam-4")
        assert record.dos_succeeded
        assert record.outcome.compromise.clock_reset
        # Section 5: "the prover's clock remains behind".
        assert record.outcome.clock_left_behind
        assert record.detectable

    def test_ext_hardening_does_not_help(self):
        record = run_roaming_attack(strategy="clock-reset",
                                    policy="timestamp", profile=EXT_HARDENED,
                                    seed="t-roam-5")
        assert record.dos_succeeded

    @pytest.mark.parametrize("clock_kind", ["hw64", "sw"])
    def test_blocked_by_full_hardening(self, clock_kind):
        record = run_roaming_attack(strategy="clock-reset",
                                    policy="timestamp",
                                    profile=ROAM_HARDENED,
                                    clock_kind=clock_kind,
                                    seed=f"t-roam-6-{clock_kind}")
        assert not record.dos_succeeded
        assert not record.outcome.compromise.clock_reset

    def test_sw_clock_fallback_sabotage_denied_when_hardened(self):
        record = run_roaming_attack(strategy="clock-reset",
                                    policy="timestamp",
                                    profile=ROAM_HARDENED, clock_kind="sw",
                                    seed="t-roam-7")
        denied = record.outcome.compromise.denied
        assert "write-clock-msb" in denied
        assert "write-idt" in denied
        assert "mask-irq" in denied

    def test_sw_clock_msb_rewrite_on_baseline(self):
        record = run_roaming_attack(strategy="clock-reset",
                                    policy="timestamp", profile=BASELINE,
                                    clock_kind="sw", seed="t-roam-8")
        assert record.dos_succeeded


class TestMonotonicTimestampExtension:
    """The 8-byte monotonic extension re-routes the clock-reset attack
    through the stored word -- so protecting counter_R alone (1 rule)
    blocks it, without any clock-protection rules."""

    def test_ext_hardened_plus_monotonic_blocks_clock_reset(self):
        record = run_roaming_attack(strategy="clock-reset",
                                    policy="timestamp",
                                    profile=EXT_HARDENED,
                                    monotonic_timestamps=True,
                                    seed="t-mono-1")
        assert not record.dos_succeeded
        assert "write-counter" in record.outcome.compromise.denied

    def test_baseline_plus_monotonic_still_falls(self):
        """Without counter_R protection the adversary rolls the stored
        word back alongside the clock -- the extension alone is not a
        defence."""
        record = run_roaming_attack(strategy="clock-reset",
                                    policy="timestamp", profile=BASELINE,
                                    monotonic_timestamps=True,
                                    seed="t-mono-2")
        assert record.dos_succeeded
        assert record.outcome.compromise.counter_rolled_back

    def test_paper_scheme_needs_clock_protection(self):
        """Contrast: without the extension, ext-hardened still falls to
        the clock reset (the paper's Section 5 result)."""
        record = run_roaming_attack(strategy="clock-reset",
                                    policy="timestamp",
                                    profile=EXT_HARDENED,
                                    monotonic_timestamps=False,
                                    seed="t-mono-3")
        assert record.dos_succeeded


class TestKeyExtraction:
    def test_unprotected_device_leaks_key(self):
        record = run_roaming_attack(strategy="counter-rollback",
                                    policy="counter", profile=UNPROTECTED,
                                    seed="t-roam-9")
        assert record.outcome.compromise.key_extracted
        assert record.outcome.compromise.stolen_key is not None

    @pytest.mark.parametrize("profile", [BASELINE, EXT_HARDENED,
                                         ROAM_HARDENED])
    def test_any_mpu_profile_protects_key(self, profile):
        record = run_roaming_attack(strategy="counter-rollback",
                                    policy="counter", profile=profile,
                                    seed=f"t-roam-10-{profile.name}")
        assert not record.outcome.compromise.key_extracted
        assert "read-key" in record.outcome.compromise.denied


class TestKeyForgery:
    """Section 5: a stolen K_Attest lets Adv_roam forge fresh authentic
    requests, making every freshness defence irrelevant."""

    def _run(self, profile, enforce_entry_points=True, seed="t-forge"):
        from repro.attacks.roaming import RoamingAdversary
        from repro.core import build_session
        from tests.conftest import tiny_config
        session = build_session(
            profile=profile, policy_name="counter",
            device_config=tiny_config(
                enforce_entry_points=enforce_entry_points),
            seed=seed)
        session.sim.run(until=60.0)
        session.attest_once()
        lag = session.sim.now - session.device.cpu.elapsed_seconds
        if lag > 0:
            session.device.idle_seconds(lag)
        return RoamingAdversary(session).execute("key-forgery")

    def test_unprotected_key_enables_forgery(self):
        outcome = self._run(UNPROTECTED, seed="t-forge-1")
        assert outcome.compromise.key_extracted
        assert outcome.dos_succeeded

    def test_hardened_device_blocks_forgery(self):
        outcome = self._run(ROAM_HARDENED, seed="t-forge-2")
        assert not outcome.compromise.key_extracted
        assert not outcome.compromise.key_extracted_via_code_reuse
        assert not outcome.dos_succeeded

    def test_mpu_rules_insufficient_without_entry_enforcement(self):
        """Section 6.2's full requirement chain: EA-MPU rules protect the
        key only if trusted code cannot be entered mid-body."""
        outcome = self._run(ROAM_HARDENED, enforce_entry_points=False,
                            seed="t-forge-3")
        assert outcome.compromise.key_extracted_via_code_reuse
        assert outcome.dos_succeeded

    def test_forged_request_beats_freshness_forever(self):
        """Unlike replays, forgery needs no rollback: the attacker stamps
        future counters at will (the reason key protection is listed
        before counter/clock protection in Section 5)."""
        outcome = self._run(UNPROTECTED, seed="t-forge-4")
        assert outcome.dos_succeeded
        assert not outcome.compromise.counter_rolled_back


class TestTraceErasure:
    def test_malware_erases_itself_from_measurement(self):
        """Phase II's exact-restore means the post-attack state digest is
        clean -- the paper's stealthiness claim."""
        record = run_roaming_attack(strategy="counter-rollback",
                                    policy="counter", profile=BASELINE,
                                    seed="t-roam-11")
        assert record.outcome.state_digest_clean


class TestPhaseOrdering:
    def test_phase1_requires_recorded_traffic(self, session_factory):
        session = session_factory(policy_name="counter")
        adversary = RoamingAdversary(session)
        with pytest.raises(LookupError):
            adversary.phase1_eavesdrop()

    def test_phase2_requires_phase1(self, session_factory):
        session = session_factory(policy_name="counter")
        adversary = RoamingAdversary(session)
        with pytest.raises(LookupError):
            adversary.phase2_compromise("counter-rollback")

    def test_unknown_strategy(self, session_factory):
        session = session_factory(policy_name="counter")
        session.attest_once()
        adversary = RoamingAdversary(session)
        adversary.phase1_eavesdrop()
        with pytest.raises(ValueError):
            adversary.phase2_compromise("quantum")
