"""External adversary primitives: replay, delay, floods."""

import pytest

from repro.attacks.external import (BogusRequestFlooder,
                                    DelayNthRequestAdversary, ReplayAttacker,
                                    request_entries)
from repro.core.messages import AttestationRequest
from repro.net.channel import DolevYaoChannel
from repro.net.simulator import Simulation


class Sink:
    def __init__(self, name):
        self.name = name
        self.received = []

    def deliver(self, message, sender):
        self.received.append(message)


def wire(adversary=None):
    sim = Simulation()
    channel = DolevYaoChannel(sim, latency_seconds=0.01,
                              adversary=adversary)
    verifier, prover = Sink("verifier"), Sink("prover")
    channel.attach(verifier)
    channel.attach(prover)
    return sim, channel, verifier, prover


def request(counter=1):
    return AttestationRequest(challenge=b"c" * 16, counter=counter,
                              auth_scheme="hmac-sha1", auth_tag=b"t" * 20)


class TestDelayAdversary:
    def test_delays_only_target(self):
        adversary = DelayNthRequestAdversary(extra_delay=1.0, target_index=0)
        sim, channel, verifier, prover = wire(adversary)
        channel.send("verifier", "prover", request(1))
        channel.send("verifier", "prover", request(2))
        sim.run()
        # Request 2 passed immediately; request 1 arrived after the delay.
        assert [m.counter for m in prover.received] == [2, 1]
        assert adversary.delayed[0].counter == 1

    def test_non_request_traffic_untouched(self):
        adversary = DelayNthRequestAdversary(extra_delay=5.0)
        verdict = adversary.on_message("not a request", "a", "b", 0.0)
        assert verdict.extra_delay == 0.0

    def test_counts_only_requests(self):
        adversary = DelayNthRequestAdversary(extra_delay=1.0, target_index=1)
        adversary.on_message("noise", "a", "b", 0.0)
        verdict0 = adversary.on_message(request(1), "a", "b", 0.0)
        verdict1 = adversary.on_message(request(2), "a", "b", 0.0)
        assert verdict0.extra_delay == 0.0
        assert verdict1.extra_delay == 1.0


class TestReplayAttacker:
    def test_records_and_replays_verbatim(self):
        sim, channel, verifier, prover = wire()
        original = request(7)
        channel.send("verifier", "prover", original)
        sim.run()
        attacker = ReplayAttacker(channel, sim)
        assert attacker.recorded_requests() == [original]
        replayed = attacker.replay_latest(delay=2.0)
        sim.run()
        assert replayed is original
        assert prover.received == [original, original]
        assert attacker.replays_sent == 1

    def test_injected_copies_not_re_recorded_as_genuine(self):
        sim, channel, verifier, prover = wire()
        channel.send("verifier", "prover", request(7))
        sim.run()
        attacker = ReplayAttacker(channel, sim)
        attacker.replay_latest()
        sim.run()
        assert len(attacker.recorded_requests()) == 1

    def test_nothing_recorded(self):
        sim, channel, verifier, prover = wire()
        attacker = ReplayAttacker(channel, sim)
        with pytest.raises(LookupError):
            attacker.replay_latest()

    def test_request_entries_filters_responses(self):
        sim, channel, verifier, prover = wire()
        channel.send("verifier", "prover", request(1))
        channel.send("prover", "verifier", "a response object")
        assert len(request_entries(channel, "prover")) == 1


class TestFlooder:
    def test_flood_schedules_requests(self):
        sim, channel, verifier, prover = wire()
        flooder = BogusRequestFlooder(channel, sim, auth_scheme="none")
        count = flooder.flood(rate_per_second=10, duration_seconds=1.0)
        sim.run()
        assert count == len(prover.received)
        assert count == 9  # arrivals at 0.1 .. 0.9
        assert flooder.sent == count

    def test_forged_requests_vary(self):
        sim, channel, verifier, prover = wire()
        flooder = BogusRequestFlooder(channel, sim, auth_scheme="hmac-sha1")
        a = flooder.forge_request()
        b = flooder.forge_request()
        assert a.challenge != b.challenge
        assert a.auth_tag != b""

    def test_unauthenticated_forgeries_have_no_tag(self):
        sim, channel, verifier, prover = wire()
        flooder = BogusRequestFlooder(channel, sim, auth_scheme="none")
        assert flooder.forge_request().auth_tag == b""

    def test_poisson_flood(self):
        sim, channel, verifier, prover = wire()
        flooder = BogusRequestFlooder(channel, sim, auth_scheme="none")
        count = flooder.flood(rate_per_second=20, duration_seconds=2.0,
                              poisson=True)
        sim.run()
        assert 10 <= count <= 80   # ~40 expected
        assert len(prover.received) == count

    def test_policy_fields_with_counter_advance(self):
        sim, channel, verifier, prover = wire()
        flooder = BogusRequestFlooder(channel, sim, auth_scheme="hmac-sha1",
                                      policy_fields={"counter": 100})
        first = flooder.forge_request()
        flooder.sent = 3
        later = flooder.forge_request()
        assert first.counter == 100
        assert later.counter == 103
