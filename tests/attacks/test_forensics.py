"""Forensic examination after roaming attacks."""

import pytest

from repro.attacks.forensics import Finding, ForensicExaminer
from repro.attacks.roaming import RoamingAdversary
from repro.core import build_session
from repro.mcu import BASELINE, ROAM_HARDENED
from tests.conftest import tiny_config


def attacked_session(strategy, policy, profile, seed):
    session = build_session(profile=profile, policy_name=policy,
                            device_config=tiny_config(),
                            timestamp_window_seconds=1.0, seed=seed)
    golden = session.learn_reference_state()
    session.sim.run(until=60.0)
    session.attest_once()
    lag = session.sim.now - session.device.cpu.elapsed_seconds
    if lag > 0:
        session.device.idle_seconds(lag)
    adversary = RoamingAdversary(session)
    outcome = adversary.execute(strategy, golden_digest=golden)
    return session, golden, outcome


class TestCleanDevice:
    def test_untouched_device_is_clean(self, session_factory):
        session = session_factory()
        golden = session.learn_reference_state()
        session.attest_once()
        examiner = ForensicExaminer(session.device, golden_digest=golden)
        report = examiner.examine(
            true_time_seconds=session.device.cpu.elapsed_seconds,
            verifier_next_counter=session.verifier.freshness_state.next_counter)
        assert report.clean
        assert report.worst_severity == "info"


class TestCounterRollbackInvisibility:
    def test_successful_rollback_leaves_no_evidence(self):
        """The paper's headline: on an *unhardened* device (which also
        records no MPU denials for the rollback itself, since the write
        was permitted), the attack is forensically invisible except for
        the denied key read."""
        session, golden, outcome = attacked_session(
            "counter-rollback", "counter", BASELINE, "forensics-1")
        assert outcome.dos_succeeded
        examiner = ForensicExaminer(session.device, golden_digest=golden)
        report = examiner.examine(
            true_time_seconds=session.device.cpu.elapsed_seconds,
            verifier_next_counter=session.verifier.freshness_state.next_counter)
        # State digest and counter look perfectly normal.
        assert report.of_check("state-digest")[0].severity == "info"
        assert report.of_check("counter")[0].severity == "info"
        assert report.of_check("clock")[0].severity == "info"

    def test_failed_attempts_leave_mpu_traces(self):
        session, golden, outcome = attacked_session(
            "counter-rollback", "counter", ROAM_HARDENED, "forensics-2")
        assert not outcome.dos_succeeded
        report = ForensicExaminer(session.device,
                                  golden_digest=golden).examine()
        mpu = report.of_check("mpu-log")[0]
        assert mpu.severity == "suspicious"
        assert "malware" in mpu.detail


class TestClockResetEvidence:
    def test_clock_left_behind_flagged_as_compromise(self):
        session, golden, outcome = attacked_session(
            "clock-reset", "timestamp", BASELINE, "forensics-3")
        assert outcome.dos_succeeded
        examiner = ForensicExaminer(session.device, golden_digest=golden)
        report = examiner.examine(
            true_time_seconds=session.device.cpu.elapsed_seconds)
        clock = report.of_check("clock")[0]
        assert clock.severity == "compromise"
        assert "behind" in clock.detail
        assert not report.clean


class TestIndividualChecks:
    def test_state_digest_tamper_detected(self, session_factory):
        session = session_factory()
        golden = session.learn_reference_state()
        session.device.flash.load(64, b"\xEB\xFE")
        report = ForensicExaminer(session.device,
                                  golden_digest=golden).examine()
        assert report.of_check("state-digest")[0].severity == "compromise"

    def test_no_golden_digest_is_informational(self, session_factory):
        session = session_factory()
        report = ForensicExaminer(session.device).examine()
        assert report.of_check("state-digest")[0].severity == "info"

    def test_counter_ahead_of_verifier_flagged(self, session_factory):
        session = session_factory()
        attest = session.device.context("Code_Attest")
        session.device.write_counter(attest, 1_000_000)
        report = ForensicExaminer(session.device).examine(
            verifier_next_counter=5)
        assert report.of_check("counter")[0].severity == "compromise"

    def test_masked_interrupts_flagged(self):
        session = build_session(policy_name="timestamp",
                                device_config=tiny_config(clock_kind="sw"),
                                profile=BASELINE, seed="forensics-mask")
        device = session.device
        device.interrupts.mask.disable(0)
        device.idle_seconds(0.05)   # wraps get dropped
        report = ForensicExaminer(device).examine()
        interrupts = report.of_check("interrupts")
        assert any(f.severity == "suspicious" and "mask" in f.detail
                   for f in interrupts)

    def test_idt_sabotage_flagged_as_compromise(self):
        session = build_session(policy_name="timestamp",
                                device_config=tiny_config(clock_kind="sw"),
                                profile=BASELINE, seed="forensics-idt")
        device = session.device
        malware = device.make_malware_context()
        with device.cpu.running(malware):
            device.bus.write_u32(malware, device.idt_base, 0x0F00)
        device.idle_seconds(0.05)
        report = ForensicExaminer(device).examine()
        assert any(f.severity == "compromise" and "IDT" in f.detail
                   for f in report.of_check("interrupts"))

    def test_finding_severity_validated(self):
        with pytest.raises(ValueError):
            Finding("x", "catastrophic", "detail")

    def test_report_sorting(self, session_factory):
        session = session_factory()
        report = ForensicExaminer(session.device).examine()
        ordered = report.sorted()
        severities = ["compromise", "suspicious", "info"]
        indices = [severities.index(f.severity) for f in ordered]
        assert indices == sorted(indices)
