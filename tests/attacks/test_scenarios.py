"""Scenario orchestration: Table 2 matrix, roaming suite, floods."""

import pytest

from repro.attacks.scenarios import (TABLE2_EXPECTED, run_dos_flood,
                                     run_roaming_suite, run_table2_matrix)


@pytest.fixture(scope="module")
def matrix():
    return run_table2_matrix(seed="test-matrix")


class TestTable2:
    def test_matches_paper(self, matrix):
        assert matrix.matches(TABLE2_EXPECTED)

    def test_nonce_row(self, matrix):
        assert matrix.mitigated("replay", "nonce")
        assert not matrix.mitigated("reorder", "nonce")
        assert not matrix.mitigated("delay", "nonce")

    def test_counter_row(self, matrix):
        assert matrix.mitigated("replay", "counter")
        assert matrix.mitigated("reorder", "counter")
        assert not matrix.mitigated("delay", "counter")

    def test_timestamp_row(self, matrix):
        for attack in ("replay", "reorder", "delay"):
            assert matrix.mitigated(attack, "timestamp")

    def test_renderable(self, matrix):
        rows = matrix.as_rows()
        assert len(rows) == 4
        assert rows[0][0] == "Attack"


class TestRoamingSuite:
    @pytest.fixture(scope="class")
    def records(self):
        return run_roaming_suite(clock_kinds=("hw64",), seed="test-suite")

    def test_shape(self, records):
        # 3 profiles x (1 counter + 1 clock) = 6 records.
        assert len(records) == 6

    def test_baseline_falls_to_everything(self, records):
        baseline = [r for r in records if r.profile == "baseline"]
        assert all(r.dos_succeeded for r in baseline)

    def test_roam_hardened_blocks_everything(self, records):
        hardened = [r for r in records if r.profile == "roam-hardened"]
        assert all(not r.dos_succeeded for r in hardened)

    def test_ext_hardened_partial(self, records):
        ext = {r.strategy: r for r in records
               if r.profile == "ext-hardened"}
        assert not ext["counter-rollback"].dos_succeeded
        assert ext["clock-reset"].dos_succeeded

    def test_detectability_split(self, records):
        """Counter rollback is stealthy; clock reset leaves evidence."""
        successes = [r for r in records if r.dos_succeeded]
        for record in successes:
            if record.strategy == "counter-rollback":
                assert not record.detectable
            else:
                assert record.detectable


class TestFloods:
    def test_unauthenticated_flood_triggers_measurements(self):
        result = run_dos_flood(auth_scheme="none", rate_per_second=0.5,
                               duration_seconds=20.0, seed="test-flood-1")
        assert result.accepted == result.requests_sent
        assert result.rejected == 0
        assert result.duty_fraction > 0.01

    def test_authenticated_flood_rejected_cheaply(self):
        result = run_dos_flood(auth_scheme="speck-64/128-cbc-mac",
                               rate_per_second=0.5, duration_seconds=20.0,
                               seed="test-flood-2")
        assert result.accepted == 0
        assert result.rejected == result.requests_sent
        assert result.duty_fraction < 0.001

    def test_ecdsa_flood_is_itself_dos(self):
        """The Section 4.1 paradox: ECDSA validation costs the prover
        almost as much as the attack it was meant to stop."""
        ecdsa = run_dos_flood(auth_scheme="ecdsa-secp160r1",
                              rate_per_second=0.5, duration_seconds=20.0,
                              seed="test-flood-3")
        speck = run_dos_flood(auth_scheme="speck-64/128-cbc-mac",
                              rate_per_second=0.5, duration_seconds=20.0,
                              seed="test-flood-3")
        assert ecdsa.accepted == 0   # forgeries still rejected...
        # Per-validation the gap is ~11000x (170.9 ms vs 0.015 ms); the
        # whole-run ratio is diluted by shared boot-time hashing.
        assert ecdsa.active_seconds > 100 * speck.active_seconds

    def test_flood_task_impact_shape(self):
        """Unauthenticated floods blank control deadlines on a prover
        whose measurement exceeds the task slack; authentication keeps
        the schedule clean."""
        from repro.attacks.scenarios import run_flood_task_impact
        from repro.mcu import DeviceConfig

        def big():
            return DeviceConfig(ram_size=64 * 1024, flash_size=64 * 1024,
                                app_size=8 * 1024)

        unauth = run_flood_task_impact(auth_scheme="none",
                                       rate_per_second=0.5,
                                       duration_seconds=20.0,
                                       device_config=big(),
                                       seed="test-fti")
        speck = run_flood_task_impact(auth_scheme="speck-64/128-cbc-mac",
                                      rate_per_second=0.5,
                                      duration_seconds=20.0,
                                      device_config=big(),
                                      seed="test-fti")
        assert unauth.skipped > 0
        assert speck.skipped == 0
        assert unauth.released == speck.released

    def test_flood_result_carries_busy_intervals(self):
        result = run_dos_flood(auth_scheme="none", rate_per_second=0.5,
                               duration_seconds=10.0, seed="test-busy")
        assert len(result.busy_intervals) == result.accepted
        for start, end in result.busy_intervals:
            assert end > start

    def test_energy_ordering(self):
        none = run_dos_flood(auth_scheme="none", rate_per_second=0.5,
                             duration_seconds=20.0, seed="test-flood-4")
        speck = run_dos_flood(auth_scheme="speck-64/128-cbc-mac",
                              rate_per_second=0.5, duration_seconds=20.0,
                              seed="test-flood-4")
        assert none.energy_mj > speck.energy_mj
