"""Rate limiting: the naive alternative defence and its lock-out attack."""

import pytest

from repro.attacks.scenarios import run_rate_limit_lockout
from repro.core import build_session
from repro.errors import ConfigurationError
from repro.core.prover import ProverTrustAnchor
from repro.core.authenticator import NullAuthenticator
from repro.core.freshness import NoFreshness
from repro.mcu import Device, ROAM_HARDENED
from tests.conftest import tiny_config


class TestLimiterMechanics:
    def test_limits_back_to_back_requests(self):
        session = build_session(device_config=tiny_config(),
                                rate_limit_seconds=10.0,
                                policy_name="none", auth_scheme="none",
                                seed="rl-1")
        session.sim.run(until=0.001)
        session.verifier_node.request_attestation()
        session.verifier_node.request_attestation()
        session.sim.run(until=session.sim.now + 5.0)
        stats = session.anchor.stats
        assert stats.accepted == 1
        assert stats.rejected == {"rate-limited": 1}

    def test_interval_expiry_restores_service(self):
        session = build_session(device_config=tiny_config(),
                                rate_limit_seconds=2.0,
                                seed="rl-2")
        session.learn_reference_state()
        assert session.attest_once().trusted
        session.sim.run(until=session.sim.now + 3.0)
        assert session.attest_once().trusted
        assert session.anchor.stats.rejected_total == 0

    def test_limited_request_burns_no_freshness_state(self):
        session = build_session(device_config=tiny_config(),
                                rate_limit_seconds=30.0,
                                policy_name="counter",
                                seed="rl-3")
        session.sim.run(until=0.001)
        first = session.verifier_node.request_attestation()
        second = session.verifier_node.request_attestation()
        session.sim.run(until=session.sim.now + 5.0)
        assert session.anchor.stats.rejected == {"rate-limited": 1}
        # The stored counter reflects only the accepted request.
        attest = session.device.context("Code_Attest")
        assert session.device.read_counter(attest) == first.counter

    def test_disabled_by_default(self, session_factory):
        session = session_factory()
        session.sim.run(until=0.001)
        session.verifier_node.request_attestation()
        session.verifier_node.request_attestation()
        session.sim.run(until=session.sim.now + 5.0)
        assert session.anchor.stats.accepted == 2

    def test_negative_interval_rejected(self):
        device = Device(tiny_config())
        device.provision(b"K" * 16)
        device.boot(ROAM_HARDENED)
        with pytest.raises(ConfigurationError):
            ProverTrustAnchor(device, NullAuthenticator(), NoFreshness(),
                              min_interval_seconds=-1.0)


class TestLockoutAttack:
    def test_unauthenticated_limiter_is_lockable(self):
        result = run_rate_limit_lockout(auth_scheme="none", seed="rl-lock")
        assert result.genuine_accepted == 0
        assert result.forged_measured == result.genuine_sent
        assert result.rejected_rate_limited == result.genuine_sent
        assert result.genuine_service_ratio == 0.0

    def test_authentication_makes_limiter_irrelevant(self):
        result = run_rate_limit_lockout(auth_scheme="speck-64/128-cbc-mac",
                                        seed="rl-lock")
        assert result.genuine_service_ratio == 1.0
        assert result.forged_measured == 0
