"""Unit tests for the static protection-invariant verifier.

The interesting cases are the ones no shipped boot path produces: we
tamper with a booted device's rule table directly (``program_rule``
bypasses the bus, so lockdown does not stop the test harness) or rewrite
fields of the extracted :class:`MachineModel`, then check the verifier
catches exactly the hole we opened and names a concrete counterexample
inside it.
"""

import dataclasses

from repro.analysis.invariants import (ATTACK_FOR_INVARIANT,
                                       EXPECTED_FAILURES, INVARIANT_ORDER,
                                       MachineModel, analyze_device,
                                       analyze_model, attacker_reachable,
                                       expected_failures, verify_profile)
from repro.mcu.device import Device, DeviceConfig
from repro.mcu.mpu import ALL_CODE
from repro.mcu.profiles import (ALL_PROFILES, BASELINE, ROAM_HARDENED,
                                UNPROTECTED)


def hardened_device(**overrides) -> Device:
    defaults = dict(ram_size=16 * 1024, flash_size=32 * 1024,
                    app_size=4 * 1024, clock_kind="hw64")
    defaults.update(overrides)
    device = Device(DeviceConfig(**defaults))
    device.provision(b"K" * 16)
    device.boot(ROAM_HARDENED)
    return device


class TestReachability:
    def test_uncovered_memory_is_reachable(self):
        device = hardened_device()
        model = MachineModel.from_device(device)
        # Plain RAM far from any protected span: ordinary memory.
        probe = (device.memory.region("ram").start, device.memory.region(
            "ram").start + 16)
        assert attacker_reachable(model, probe, "write") == [probe]

    def test_key_unreachable_on_hardened_device(self):
        model = MachineModel.from_device(hardened_device())
        assert attacker_reachable(model, model.key_span, "read") == []
        assert attacker_reachable(model, model.key_span, "write") == []

    def test_disabled_mpu_reaches_everything(self):
        model = dataclasses.replace(
            MachineModel.from_device(hardened_device()), mpu_enabled=False)
        assert attacker_reachable(model, model.key_span, "read") == [
            model.key_span]

    def test_empty_span_never_reachable(self):
        model = MachineModel.from_device(hardened_device())
        assert attacker_reachable(model, (0x1000, 0x1000), "read") == []

    def test_code_reuse_folds_trusted_code_into_attacker(self):
        open_device = hardened_device(enforce_entry_points=False)
        model = MachineModel.from_device(open_device)
        # Jumping into Code_Attest inherits its key-read grant.
        assert attacker_reachable(model, model.key_span, "read")


class TestInvariantCatalog:
    def test_verdict_order_is_stable(self):
        report = analyze_device(hardened_device())
        assert tuple(v.invariant for v in report.verdicts) == INVARIANT_ORDER

    def test_roam_hardened_holds_everything(self):
        report = analyze_device(hardened_device())
        assert report.holds
        assert report.failed() == frozenset()

    def test_expected_failures_match_all_profiles(self):
        for profile in ALL_PROFILES:
            for clock_kind in ("hw64", "hw32div", "sw", "none"):
                report = verify_profile(profile, clock_kind=clock_kind)
                assert report.failed() == expected_failures(
                    profile.name, clock_kind), (profile.name, clock_kind)

    def test_clockless_device_drops_clock_integrity_expectation(self):
        assert "clock-integrity" in EXPECTED_FAILURES["unprotected"]
        assert "clock-integrity" not in expected_failures("unprotected",
                                                          "none")

    def test_attack_mapping_names_roaming_strategies(self):
        report = analyze_device(hardened_device())
        mapped = {v.invariant: v.attack for v in report.verdicts
                  if v.attack is not None}
        assert mapped == ATTACK_FOR_INVARIANT

    def test_unprotected_counterexamples_are_concrete(self):
        report = verify_profile(UNPROTECTED)
        verdict = report.verdict("key-confidentiality")
        assert not verdict.holds
        cx = verdict.counterexample
        assert cx is not None
        assert cx.access == "read"
        assert cx.code_address is not None
        assert "K_Attest" in cx.detail


class TestTamperedConfigurations:
    def test_widening_rule_leaks_the_key(self):
        device = hardened_device()
        free_slot = device.mpu.active_rule_count
        device.mpu.program_rule(free_slot, code=ALL_CODE,
                                data=device.key_span, read=True,
                                write=False)
        report = analyze_device(device)
        assert not report.verdict("key-confidentiality").holds
        cx = report.verdict("key-confidentiality").counterexample
        assert device.key_span[0] <= cx.address < device.key_span[1]
        assert f"rule[{free_slot}]" in cx.detail

    def test_write_grant_over_read_only_rule_is_widening(self):
        device = hardened_device()
        free_slot = device.mpu.active_rule_count
        # The lockdown rule makes the register file read-only to all
        # software; an overlapping rule that re-grants write to any code
        # nullifies it.
        device.mpu.program_rule(free_slot, code=ALL_CODE,
                                data=device.mpu_register_span, read=True,
                                write=True)
        report = analyze_device(device)
        verdict = report.verdict("no-widening-overlap")
        assert not verdict.holds
        assert f"rule[{free_slot}]" in verdict.detail
        assert verdict.counterexample.access == "write"

    def test_counter_write_rule_enables_rollback(self):
        device = hardened_device()
        free_slot = device.mpu.active_rule_count
        device.mpu.program_rule(free_slot, code=ALL_CODE,
                                data=device.counter_span, read=True,
                                write=True)
        verdict = analyze_device(device).verdict(
            "counter-rollback-protection")
        assert not verdict.holds
        assert verdict.attack == "counter-rollback"

    def test_unlocked_register_file_fails_lockdown(self):
        device = hardened_device()
        model = MachineModel.from_device(device)
        # Keep the rule table but drop both the sticky lock and the
        # self-protection rule: malware can then rewrite the rules.
        stripped = dataclasses.replace(
            model, mpu_locked=False,
            rules=tuple(r for r in model.rules
                        if r.data_overlap(*model.mpu_register_span) is None))
        verdict = analyze_model(stripped).verdict("mpu-lockdown")
        assert not verdict.holds
        cx = verdict.counterexample
        assert (model.mpu_register_span[0] <= cx.address
                < model.mpu_register_span[1])

    def test_rule_budget_overflow_detected(self):
        model = MachineModel.from_device(hardened_device())
        assert len(model.rules) > 2
        shrunk = dataclasses.replace(model, max_rules=2)
        verdict = analyze_model(shrunk).verdict("rule-budget")
        assert not verdict.holds
        assert "exceed" in verdict.detail

    def test_unvouched_attestation_code_fails_secure_boot(self):
        model = MachineModel.from_device(hardened_device())
        # Pretend Code_Attest lives outside ROM and outside the measured
        # image: nothing vouches for it at boot.
        floating = dataclasses.replace(model, rom_span=(0, 0),
                                       measured_spans=())
        verdict = analyze_model(floating).verdict("secure-boot-coverage")
        assert not verdict.holds
        assert "Code_Attest" in verdict.detail

    def test_over_restriction_is_flagged_not_silently_secure(self):
        device = hardened_device()
        model = MachineModel.from_device(device)
        # Replace the key rule's code selector with an empty range: no
        # software at all can read the key, including Code_Attest.
        rules = []
        for rule in model.rules:
            if rule.data_overlap(*model.key_span) is not None:
                rule = dataclasses.replace(rule, code_start=0, code_end=0)
            rules.append(rule)
        bricked = dataclasses.replace(model, rules=tuple(rules))
        verdict = analyze_model(bricked).verdict("key-confidentiality")
        assert not verdict.holds
        assert "over-restriction" in verdict.detail

    def test_sw_clock_idt_hole_is_clock_integrity_failure(self):
        device = Device(DeviceConfig(ram_size=16 * 1024,
                                     flash_size=32 * 1024,
                                     app_size=4 * 1024, clock_kind="sw"))
        device.provision(b"K" * 16)
        device.boot(ROAM_HARDENED)
        model = MachineModel.from_device(device)
        # Drop the IDT rule: redirecting the wrap interrupt silently
        # stops the software clock.
        holed = dataclasses.replace(
            model, rules=tuple(
                r for r in model.rules
                if r.data_overlap(*model.idt_span) is None))
        verdict = analyze_model(holed).verdict("clock-integrity")
        assert not verdict.holds
        assert "IDT" in verdict.detail


class TestBaselineProfile:
    def test_baseline_protects_key_but_not_counter(self):
        report = verify_profile(BASELINE)
        assert report.verdict("key-confidentiality").holds
        assert not report.verdict("counter-rollback-protection").holds
        assert report.failed_attacks() == {"counter-rollback",
                                           "clock-reset"}

    def test_report_round_trips_to_dict(self):
        report = verify_profile(BASELINE)
        entry = report.as_dict()
        assert entry["profile"] == "baseline"
        assert entry["holds"] is False
        assert len(entry["verdicts"]) == len(INVARIANT_ORDER)
        failing = [v for v in entry["verdicts"] if not v["holds"]]
        assert all("counterexample" in v for v in failing)
