"""Unit tests for the dynamic canary leak-hunt.

The hunt provisions a real fleet with a known canary master key, runs
real attestation rounds through the swarm and the asyncio service, then
scans every serialized artifact for any textual encoding of any key.
Both directions must hold: a clean build yields zero hits (with the
raw-bytes control proving the scanner *would* see a leak), and a build
with a planted leak is caught.
"""

from repro.analysis.canary import (CANARY_MASTER_KEY, needles_for_key,
                                   run_canary_hunt, scan_text)


class TestNeedles:
    def test_every_encoding_is_covered(self):
        key = bytes(range(16))
        needles = needles_for_key("k", key)
        assert set(needles) == {"k/hex", "k/HEX", "k/base64", "k/repr"}
        assert needles["k/hex"] == key.hex()
        assert needles["k/HEX"] == key.hex().upper()
        assert needles["k/repr"] == repr(key)

    def test_scan_reports_each_matching_needle(self):
        needles = needles_for_key("k", b"\xde\xad\xbe\xef")
        hits = scan_text("artifact", "blah deadbeef blah", needles)
        assert [(h.artifact, h.needle) for h in hits] == [
            ("artifact", "k/hex")]
        assert scan_text("artifact", "nothing here", needles) == []


class TestHunt:
    def test_clean_build_has_no_hits_and_a_live_control(self):
        report = run_canary_hunt(size=2, sweeps=1, waves=1)
        assert report.clean, [(h.artifact, h.needle) for h in report.hits]
        assert report.control_hit, (
            "raw key bytes missing from decoded blobs -- the scanner "
            "is blind, a clean verdict proves nothing")
        assert not report.leak_planted
        assert len(report.artifacts_scanned) == 8

    def test_planted_leak_is_caught(self):
        report = run_canary_hunt(size=2, sweeps=1, waves=1, leak=True)
        assert report.leak_planted
        assert not report.clean
        artifacts = {h.artifact for h in report.hits}
        assert "swarm-trace" in artifacts

    def test_report_round_trips_to_dict(self):
        report = run_canary_hunt(size=2, sweeps=1, waves=1)
        d = report.as_dict()
        assert d["clean"] is True
        assert d["control_hit"] is True
        assert d["leak_planted"] is False
        assert d["artifacts_scanned"] == list(report.artifacts_scanned)

    def test_hunt_is_deterministic(self):
        a = run_canary_hunt(size=2, sweeps=1, waves=1)
        b = run_canary_hunt(size=2, sweeps=1, waves=1)
        assert a.as_dict() == b.as_dict()

    def test_canary_key_is_pinned(self):
        assert CANARY_MASTER_KEY == bytes.fromhex(
            "9f3ac81d5e72640bd1c7a9558e02f4b6")
        assert len(CANARY_MASTER_KEY) == 16
