"""Unit tests for the determinism/consistency linter.

Each rule is exercised against a minimal seeded source string placed on
the path scope where the rule applies, plus the checked-in tainted
fixture tree, waiver mechanics, and the schema-validated combined
report.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import (Waiver, lint_source, lint_tree,
                                 load_waivers)
from repro.analysis.report import build_report, render_report_json
from repro.analysis.invariants import verify_shipped_profiles
from repro.obs.schema import validate_analysis_report

REPO = Path(__file__).resolve().parents[2]
SIM_PATH = "src/repro/fake_module.py"


def rules_in(source: str, path: str = SIM_PATH) -> set[str]:
    return {v.rule for v in lint_source(source, path)}


class TestDeterminismRules:
    def test_host_clock_flagged_in_simulated_path(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert "DET001" in rules_in(source)

    def test_datetime_now_flagged(self):
        source = ("from datetime import datetime\n"
                  "def f():\n    return datetime.now()\n")
        assert "DET001" in rules_in(source)

    def test_host_clock_allowed_in_perf(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert rules_in(source, "src/repro/perf/wallclock.py") == set()

    def test_host_clock_allowed_in_fleet_boundary(self):
        """repro.perf.fleet owns the host-parallel boundary and carries
        its own allowlist entry."""
        source = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert rules_in(source, "src/repro/perf/fleet.py") == set()

    def test_perf_directory_is_not_a_blanket_waiver(self):
        """A NEW module under src/repro/perf/ is flagged until it earns
        a justified HOST_BOUNDARY_MODULES entry -- the allowlist is
        per-module, not per-directory."""
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert "DET001" in rules_in(source, "src/repro/perf/newmodule.py")
        assert "DET002" in rules_in("import random\n",
                                    "src/repro/perf/newmodule.py")

    def test_host_boundary_entries_are_justified(self):
        from repro.analysis.lint import HOST_BOUNDARY_MODULES
        assert "src/repro/perf/fleet.py" in HOST_BOUNDARY_MODULES
        for path, reason in HOST_BOUNDARY_MODULES.items():
            assert path.startswith("src/repro/"), path
            assert reason and len(reason) > 10, (
                f"{path} needs a real justification")

    def test_host_clock_allowed_outside_src(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert rules_in(source, "tests/test_something.py") == set()

    def test_stdlib_random_import_flagged(self):
        assert "DET002" in rules_in("import random\n")
        assert "DET002" in rules_in("from random import Random\n")

    def test_seeded_rng_not_flagged(self):
        source = "from repro.crypto.rng import DeterministicRng\n"
        assert rules_in(source) == set()


class TestFloatCycleRule:
    def test_true_division_in_cycle_function(self):
        source = "def hmac_cycles(n):\n    return n / 64\n"
        assert "FLT001" in rules_in(source)

    def test_float_literal_in_cycle_function(self):
        source = "def consume_cycles(n):\n    return n * 1.5\n"
        assert "FLT001" in rules_in(source)

    def test_float_conversion_in_cycle_function(self):
        source = "def attest_cycles(n):\n    return float(n)\n"
        assert "FLT001" in rules_in(source)

    def test_integer_ceil_div_is_clean(self):
        source = "def hmac_cycles(n):\n    return -(-n // 64)\n"
        assert rules_in(source) == set()

    def test_tick_functions_are_covered_too(self):
        source = "def read_ticks(raw):\n    return int(raw * 1.001)\n"
        assert "FLT001" in rules_in(source)

    def test_integer_tick_function_is_clean(self):
        source = ("def read_ticks(raw):\n"
                  "    return raw + raw * 1000 // 1_000_000\n")
        assert rules_in(source) == set()

    def test_wall_unit_conversions_are_the_sanctioned_boundary(self):
        source = ("def _ms_to_cycles(ms):\n    return int(ms * 24000.0)\n"
                  "def cycles_to_seconds(c):\n    return c / 24e6\n")
        assert rules_in(source) == set()

    def test_non_cycle_functions_unscoped(self):
        source = "def average(n):\n    return n / 2\n"
        assert rules_in(source) == set()


class TestTelemetryNameRule:
    def test_unknown_metric_name_flagged(self):
        source = "def f(telemetry):\n    telemetry.count('prover.nope')\n"
        assert "TEL001" in rules_in(source)

    def test_known_metric_name_clean(self):
        source = ("def f(telemetry):\n"
                  "    telemetry.count('prover.requests.received')\n")
        assert rules_in(source) == set()

    def test_unknown_event_kind_flagged(self):
        source = ("def f(telemetry):\n"
                  "    telemetry.event('definitely-not-a-kind', 0)\n")
        assert "TEL001" in rules_in(source)

    def test_known_event_kind_clean(self):
        source = ("def f(telemetry):\n"
                  "    telemetry.event('request-received', 0)\n")
        assert rules_in(source) == set()

    def test_dynamic_names_out_of_scope(self):
        source = ("def f(telemetry, prefix):\n"
                  "    telemetry.count(f'{prefix}.cycles')\n")
        assert rules_in(source) == set()

    def test_non_telemetry_receivers_ignored(self):
        source = "def f(bag):\n    bag.count('whatever')\n"
        assert rules_in(source) == set()


class TestDeprecatedAliasRule:
    def test_retry_delay_seconds_kwarg(self):
        source = "p = MonitorPolicy(retry_delay_seconds=5.0)\n"
        assert "DEP001" in rules_in(source, "examples/demo.py")

    def test_monitor_policy_max_retries_kwarg(self):
        source = "p = MonitorPolicy(max_retries=2)\n"
        assert "DEP001" in rules_in(source, "examples/demo.py")

    def test_retry_policy_max_retries_is_fine(self):
        source = "p = RetryPolicy(max_retries=2)\n"
        assert rules_in(source, "examples/demo.py") == set()

    def test_unresponsive_attribute(self):
        source = "def f(result):\n    return result.unresponsive\n"
        assert "DEP001" in rules_in(source, "examples/demo.py")

    def test_applies_everywhere_including_tests(self):
        source = "p = MonitorPolicy(retry_delay_seconds=5.0)\n"
        assert "DEP001" in rules_in(source, "tests/test_demo.py")


class TestWaivers:
    def test_waiver_matches_rule_and_path(self):
        waiver = Waiver(rule="DET002", path=SIM_PATH, reason="test double")
        violations = lint_source("import random\n", SIM_PATH)
        assert violations and waiver.matches(violations[0])
        elsewhere = lint_source("import random\n", "src/repro/other.py")
        assert not waiver.matches(elsewhere[0])

    def test_load_waivers_requires_reason(self, tmp_path):
        bad = tmp_path / "waivers.json"
        bad.write_text('[{"rule": "DEP001", "path": "x.py", "reason": ""}]')
        with pytest.raises(ValueError, match="justification"):
            load_waivers(bad)

    def test_load_waivers_rejects_unknown_rule(self, tmp_path):
        bad = tmp_path / "waivers.json"
        bad.write_text('[{"rule": "XXX999", "path": "x.py", '
                       '"reason": "because"}]')
        with pytest.raises(ValueError, match="unknown rule"):
            load_waivers(bad)

    def test_missing_waiver_file_means_no_waivers(self, tmp_path):
        assert load_waivers(tmp_path / "absent.json") == []

    def test_checked_in_waivers_load_and_apply(self):
        waivers = load_waivers(REPO / "lint-waivers.json")
        assert waivers
        report = lint_tree(REPO, waivers=waivers)
        assert report.clean, [v.as_dict() for v in report.violations]
        assert report.waived
        assert all(v.waiver_reason for v in report.waived)


class TestAsyncHostClock:
    """DET001 covers the asyncio spellings of the host clock."""

    def test_asyncio_sleep_flagged(self):
        source = ("import asyncio\n"
                  "async def f():\n"
                  "    await asyncio.sleep(0.1)\n")
        assert "DET001" in rules_in(source)

    def test_loop_time_flagged(self):
        source = ("def f(loop):\n"
                  "    return loop.time()\n")
        assert "DET001" in rules_in(source)

    def test_attestd_is_clean(self):
        """Pin: the asyncio service tier must stay off the host clock --
        its scheduling runs on injected simulated time, and this test is
        the tripwire against an accidental asyncio.sleep sneaking in."""
        from repro.analysis.lint import lint_file
        violations = lint_file(REPO / "src/repro/services/attestd.py", REPO)
        det = [v for v in violations if v.rule == "DET001"]
        assert det == [], [v.as_dict() for v in det]


class TestStaleWaivers:
    def test_unused_waiver_reported_stale(self):
        ghost = Waiver(rule="DET002", path="src/repro/never/was.py",
                       reason="waives nothing")
        report = lint_tree(
            REPO, waivers=load_waivers(REPO / "lint-waivers.json") + [ghost])
        assert ghost in report.stale_waivers
        entries = report.as_dict()["stale_waivers"]
        assert {"rule": "DET002", "path": "src/repro/never/was.py",
                "reason": "waives nothing"} in entries

    def test_checked_in_waivers_are_all_live(self):
        report = lint_tree(
            REPO, waivers=load_waivers(REPO / "lint-waivers.json"))
        assert report.stale_waivers == (), [
            (w.rule, w.path) for w in report.stale_waivers]

    def test_stale_does_not_unclean_report(self):
        """Staleness is a CLI exit-code concern (overridable with
        --allow-stale); the report itself stays clean so violation
        accounting is unchanged."""
        ghost = Waiver(rule="FLT001", path="gone.py", reason="stale")
        report = lint_tree(
            REPO, waivers=load_waivers(REPO / "lint-waivers.json") + [ghost])
        assert report.clean
        assert report.stale_waivers == (ghost,)


class TestTaintedFixtureTree:
    def test_every_seeded_rule_detected(self):
        report = lint_tree(REPO / "tests/analysis/fixtures/seeded")
        assert {v.rule for v in report.violations} == {
            "DET001", "DET002", "FLT001", "TEL001"}
        assert not report.clean

    def test_fixture_does_not_taint_repo_root_lint(self):
        report = lint_tree(
            REPO, waivers=load_waivers(REPO / "lint-waivers.json"))
        tainted = [v for v in report.violations
                   if "fixtures/seeded" in v.path]
        assert tainted == []


class TestCombinedReport:
    def test_report_validates_and_is_deterministic(self):
        waivers = load_waivers(REPO / "lint-waivers.json")
        profiles = verify_shipped_profiles()
        lint = lint_tree(REPO, waivers=waivers)
        report = build_report(profiles, lint)
        assert validate_analysis_report(report) == []
        assert (render_report_json(report)
                == render_report_json(build_report(profiles, lint)))

    def test_malformed_report_rejected(self):
        assert validate_analysis_report({"schema": "repro.analysis/v1"})
        clean_lint = {"files_scanned": 0, "clean": True,
                      "violations": [], "waived": []}
        assert validate_analysis_report({"schema": "nope", "profiles": [],
                                         "lint": clean_lint})
        bad_verdict = {"schema": "repro.analysis/v1", "lint": clean_lint,
                       "profiles": [{"profile": "baseline",
                                     "clock_kind": "hw64", "holds": True,
                                     "verdicts": [{"invariant": "bogus",
                                                   "holds": True,
                                                   "detail": "x"}]}]}
        assert any("invariant" in error
                   for error in validate_analysis_report(bad_verdict))
