"""Property tests for the interprocedural dataflow engine.

Three families, all hypothesis-driven:

* the powerset lattice obeys the join-semilattice laws the fixpoint
  relies on (commutative, associative, idempotent, bottom identity,
  ``leq`` consistent with ``join``);
* ``FunctionSummary.merge`` is a monotone join -- it reports growth
  exactly when something grew, so the engine's "no round changed
  anything" exit is a real fixpoint;
* the whole-program fixpoint terminates and is deterministic on random
  call graphs, including self-recursion and mutual cycles, and taint
  survives an arbitrary chain of forwarding wrappers.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.dataflow import (BOTTOM, MAX_ROUNDS, FunctionSummary,
                                     Program, SetLattice, analyze_program)
from repro.analysis.taint import KeyConfidentialityClient

tags = st.frozensets(
    st.sampled_from(["key", "key-addr", ("param", 0), ("param", 1)]),
    max_size=4)


class TestLatticeLaws:
    @given(tags, tags)
    def test_join_commutative(self, a, b):
        assert SetLattice.join(a, b) == SetLattice.join(b, a)

    @given(tags, tags, tags)
    def test_join_associative(self, a, b, c):
        assert (SetLattice.join(SetLattice.join(a, b), c)
                == SetLattice.join(a, SetLattice.join(b, c)))

    @given(tags)
    def test_join_idempotent_with_bottom_identity(self, a):
        assert SetLattice.join(a, a) == a
        assert SetLattice.join(a, BOTTOM) == a

    @given(tags, tags)
    def test_leq_consistent_with_join(self, a, b):
        joined = SetLattice.join(a, b)
        assert SetLattice.leq(a, joined)
        assert SetLattice.leq(b, joined)
        assert SetLattice.leq(a, b) == (joined == b)


summaries = st.builds(
    FunctionSummary,
    returns=st.frozensets(st.sampled_from(["key", "key-addr"]), max_size=2),
    return_params=st.frozensets(st.integers(0, 3), max_size=3),
    sink_params=st.dictionaries(
        st.integers(0, 3),
        st.sets(st.tuples(st.sampled_from(["telemetry", "trace"]),
                          st.just(())), max_size=2),
        max_size=3),
    attr_stores=st.frozensets(
        st.tuples(st.sampled_from(["key", "start"]), st.integers(0, 2)),
        max_size=3))


class TestSummaryMerge:
    @given(summaries, summaries)
    def test_merge_reports_growth_exactly(self, a, b):
        before = a.as_dict()
        changed = a.merge(b)
        assert changed == (a.as_dict() != before)

    @given(summaries, summaries)
    def test_merge_idempotent(self, a, b):
        a.merge(b)
        assert a.merge(b) is False

    @given(summaries, summaries)
    def test_merge_commutative_in_result(self, a, b):
        left = FunctionSummary()
        left.merge(a)
        left.merge(b)
        right = FunctionSummary()
        right.merge(b)
        right.merge(a)
        assert left.as_dict() == right.as_dict()


def _wrapper_graph_source(n: int, edges: list) -> str:
    """n forwarding wrappers with a random call graph (cycles allowed)."""
    lines = []
    for i in range(n):
        lines.append(f"def f{i}(x):")
        lines.append("    y = x")
        for (src, dst) in edges:
            if src == i:
                lines.append(f"    y = f{dst}(y)")
        lines.append("    return y")
    lines += [
        "def entry(telemetry):",
        "    k = read_key()",
        "    r = f0(k)",
        "    telemetry.event('kind', 0, note=r)",
    ]
    return "\n".join(lines) + "\n"


graphs = st.integers(2, 5).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                 max_size=2 * n)))


class TestFixpoint:
    @settings(max_examples=30, deadline=None)
    @given(graphs)
    def test_terminates_and_is_deterministic(self, graph):
        n, edges = graph
        source = _wrapper_graph_source(n, edges)
        program = Program.from_sources({"src/repro/gen.py": source})
        first = analyze_program(program, KeyConfidentialityClient())
        assert first.rounds < MAX_ROUNDS
        second = analyze_program(program, KeyConfidentialityClient())
        assert ([v.as_dict() for v in first.violations]
                == [v.as_dict() for v in second.violations])
        assert ({q: s.as_dict() for q, s in first.summaries.items()}
                == {q: s.as_dict() for q, s in second.summaries.items()})

    @settings(max_examples=30, deadline=None)
    @given(graphs)
    def test_taint_survives_any_wrapper_graph(self, graph):
        """entry() always pipes read_key() through f0 into telemetry, so
        whatever the wrapper topology, exactly that KEY001 must fire."""
        n, edges = graph
        source = _wrapper_graph_source(n, edges)
        program = Program.from_sources({"src/repro/gen.py": source})
        result = analyze_program(program, KeyConfidentialityClient())
        key001 = [v for v in result.violations if v.rule == "KEY001"]
        assert key001, "wrapper graph swallowed the taint"
        assert all(v.sink == "telemetry" for v in key001)

    @settings(max_examples=15, deadline=None)
    @given(graphs)
    def test_sanitizer_kills_the_same_graph(self, graph):
        n, edges = graph
        source = _wrapper_graph_source(n, edges).replace(
            "    r = f0(k)", "    r = f0(hmac_sha1(k, b''))")
        program = Program.from_sources({"src/repro/gen.py": source})
        result = analyze_program(program, KeyConfidentialityClient())
        assert result.violations == ()

    def test_pure_infinite_recursion_is_no_flow(self):
        """``f(x) = f(x)`` never returns, so the least fixpoint soundly
        reports no flow through it -- and still terminates."""
        source = ("def f(x):\n"
                  "    return f(x)\n"
                  "def entry(telemetry):\n"
                  "    telemetry.count('c', f(read_key()))\n")
        program = Program.from_sources({"src/repro/rec.py": source})
        result = analyze_program(program, KeyConfidentialityClient())
        assert result.rounds < MAX_ROUNDS
        assert result.violations == ()

    def test_direct_recursion_terminates(self):
        source = ("def f(x):\n"
                  "    if len(x) > 8:\n"
                  "        return f(x)\n"
                  "    return x\n"
                  "def entry(telemetry):\n"
                  "    telemetry.count('c', f(read_key()))\n")
        program = Program.from_sources({"src/repro/rec.py": source})
        result = analyze_program(program, KeyConfidentialityClient())
        assert result.rounds < MAX_ROUNDS
        assert [v.rule for v in result.violations] == ["KEY001"]

    def test_mutual_recursion_terminates(self):
        source = ("def a(x):\n    return b(x)\n"
                  "def b(x):\n"
                  "    if len(x) > 8:\n"
                  "        return a(x)\n"
                  "    return x\n"
                  "def entry(trace):\n"
                  "    trace.record('e', 0, a(read_key()))\n")
        program = Program.from_sources({"src/repro/mut.py": source})
        result = analyze_program(program, KeyConfidentialityClient())
        assert result.rounds < MAX_ROUNDS
        assert [v.rule for v in result.violations] == ["KEY001"]
