"""Deliberately leaky module for the taint analyzer's failure-mode gate.

Every function below violates the key-confidentiality policy in a
distinct way; ``scripts/taint_smoke.py`` fails if any of them goes
undetected.  This file lives under a fixture root and is never
imported.
"""

from repro.crypto.kdf import derive_device_key


def leak_via_telemetry(telemetry, master_key):
    """KEY001: raw key bytes into a telemetry event payload."""
    key = derive_device_key(master_key, "device-000")
    telemetry.event("attest-request", 0.0, note=key.hex())


def leak_via_branch(telemetry, master_key):
    """KEY002: key content decides a telemetered branch."""
    key = derive_device_key(master_key, "device-001")
    if key[0] & 1:
        telemetry.count("attest_requests_total")


def emit(telemetry, value):
    telemetry.set_gauge("battery_fraction", value)


def leak_via_helper(telemetry, master_key):
    """KEY001 through a helper: needs the interprocedural summary."""
    key = derive_device_key(master_key, "device-002")
    emit(telemetry, key)


def undeclared_export(report):
    """KEY003: a host-boundary write in an undeclared module."""
    print(report)
