"""Deliberately tainted module for the lint failure-mode gate.

This file lives under ``tests/analysis/fixtures/seeded`` and is linted
with that directory as the scan root, which puts it on the simulated
path (``src/repro/``) where every determinism rule applies.  Each
construct below must be flagged; ``scripts/analysis_smoke.py`` fails if
any goes undetected.  The real repo-root lint does *not* flag this file
because, relative to the repo, it is test data, not simulator source.
"""

import random
import time


def sample_jitter() -> float:
    # DET002 (stdlib random) and DET001 (host clock) in one expression.
    return random.random() * time.time()


def tainted_cycles(n: int) -> int:
    # FLT001 three ways: float(), true division, float literal.
    return int(float(n) / 2.0)


def emit(telemetry) -> None:
    # TEL001: neither name exists in the exported schema.
    telemetry.count("prover.bogus_metric", 1)
    telemetry.event("bogus-kind", 0.0)
