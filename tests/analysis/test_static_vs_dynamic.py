"""Cross-check: static verdicts must agree with simulated ground truth.

The verifier's claim is that interval reasoning over the EA-MPU rule
table predicts what ``repro.attacks.roaming`` discovers by actually
running the three-phase attack.  For every shipped profile we compare,
invariant by attack-mapped invariant:

- ``key-confidentiality``        vs  Phase II key extraction
- ``counter-rollback-protection`` vs  Phase II counter rollback
- ``clock-integrity``            vs  Phase II clock sabotage

A static *failure* must coincide with a dynamic *success* of the
corresponding attack preparation, and vice versa.  Only the
attack-mapped invariants participate: ``mpu-lockdown`` also fails on the
unprotected profile, correctly, but has no single attack flag to compare
against.
"""

import pytest

from repro.analysis.invariants import ATTACK_FOR_INVARIANT, verify_profile
from repro.attacks.roaming import RoamingAdversary
from repro.attacks.scenarios import run_roaming_attack
from repro.core.protocol import build_session
from repro.mcu.device import DeviceConfig
from repro.mcu.profiles import ALL_PROFILES, ROAM_HARDENED


def key_compromised(compromise) -> bool:
    return compromise.key_extracted or compromise.key_extracted_via_code_reuse


def clock_compromised(compromise) -> bool:
    return (compromise.clock_reset or compromise.idt_redirected
            or compromise.irq_masked)


@pytest.mark.parametrize("profile", ALL_PROFILES,
                         ids=[p.name for p in ALL_PROFILES])
class TestStaticAgreesWithDynamic:
    def test_key_confidentiality_matches_key_extraction(self, profile):
        static = verify_profile(profile, clock_kind="hw64")
        record = run_roaming_attack(
            strategy="key-forgery", policy="counter", profile=profile,
            clock_kind="hw64", seed=f"xcheck:{profile.name}:key")
        statically_leaks = not static.verdict("key-confidentiality").holds
        assert statically_leaks == key_compromised(
            record.outcome.compromise)

    def test_counter_rollback_matches_counter_tamper(self, profile):
        static = verify_profile(profile, clock_kind="hw64")
        record = run_roaming_attack(
            strategy="counter-rollback", policy="counter", profile=profile,
            clock_kind="hw64", seed=f"xcheck:{profile.name}:counter")
        statically_open = not static.verdict(
            "counter-rollback-protection").holds
        assert statically_open == record.outcome.compromise.counter_rolled_back

    @pytest.mark.parametrize("clock_kind", ["hw64", "sw"])
    def test_clock_integrity_matches_clock_sabotage(self, profile,
                                                    clock_kind):
        static = verify_profile(profile, clock_kind=clock_kind)
        record = run_roaming_attack(
            strategy="clock-reset", policy="timestamp", profile=profile,
            clock_kind=clock_kind,
            seed=f"xcheck:{profile.name}:clock:{clock_kind}")
        statically_open = not static.verdict("clock-integrity").holds
        assert statically_open == clock_compromised(
            record.outcome.compromise)

    def test_failed_attacks_match_any_success(self, profile):
        """The report's attack summary equals the union of dynamic wins."""
        static = verify_profile(profile, clock_kind="hw64")
        dynamic = set()
        for strategy, policy in (("key-forgery", "counter"),
                                 ("counter-rollback", "counter"),
                                 ("clock-reset", "timestamp")):
            record = run_roaming_attack(
                strategy=strategy, policy=policy, profile=profile,
                clock_kind="hw64",
                seed=f"xcheck:{profile.name}:union:{strategy}")
            compromise = record.outcome.compromise
            if strategy == "key-forgery" and key_compromised(compromise):
                dynamic.add("key-forgery")
            if (strategy == "counter-rollback"
                    and compromise.counter_rolled_back):
                dynamic.add("counter-rollback")
            if strategy == "clock-reset" and clock_compromised(compromise):
                dynamic.add("clock-reset")
        assert static.failed_attacks() == dynamic
        assert dynamic <= set(ATTACK_FOR_INVARIANT.values())


class TestCodeReuseVariant:
    def test_unenforced_entry_points_leak_statically_and_dynamically(self):
        """Section 6.2: without entry-point enforcement a code-reuse jump
        into Code_Attest defeats even the roam-hardened profile -- and
        the static model, which folds trusted code into the attacker set,
        must predict exactly that."""
        config = DeviceConfig(ram_size=16 * 1024, flash_size=32 * 1024,
                              app_size=4 * 1024, clock_kind="hw64",
                              enforce_entry_points=False)
        static = verify_profile(ROAM_HARDENED, config=config)
        assert not static.verdict("key-confidentiality").holds

        session = build_session(profile=ROAM_HARDENED, policy_name="counter",
                                device_config=config, seed="xcheck:reuse")
        session.learn_reference_state()
        session.sim.run(until=60.0)
        session.attest_once()
        adversary = RoamingAdversary(session)
        adversary.phase1_eavesdrop()
        compromise = adversary.phase2_compromise("key-extract")
        assert compromise.key_extracted_via_code_reuse

    def test_enforced_entry_points_hold_statically_and_dynamically(self):
        static = verify_profile(ROAM_HARDENED, clock_kind="hw64")
        assert static.verdict("key-confidentiality").holds
        record = run_roaming_attack(
            strategy="key-forgery", policy="counter",
            profile=ROAM_HARDENED, clock_kind="hw64",
            seed="xcheck:enforced")
        assert not key_compromised(record.outcome.compromise)
