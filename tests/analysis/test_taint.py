"""Unit tests for the key-confidentiality taint client.

The real acceptance criteria live in ``scripts/taint_smoke.py`` (clean
tree, seeded fixture, canary agreement, determinism); these tests pin
the analysis semantics one rule at a time against minimal sources, plus
policy loading/waiving/staleness mechanics.
"""

from pathlib import Path

import pytest

from repro.analysis.dataflow import MAX_ROUNDS, Program, analyze_program
from repro.analysis.taint import (EXCLUDED_SELF_MODULES,
                                  KNOWN_BOUNDARY_MODULES, BoundaryModule,
                                  KeyConfidentialityClient, PolicySink,
                                  TaintPolicy, analyze_taint_tree,
                                  load_policy)

REPO = Path(__file__).resolve().parents[2]
FIXTURE = REPO / "tests/analysis/fixtures/taint_seeded"


def rules_in(source: str, path: str = "src/repro/mod.py") -> list:
    program = Program.from_sources({path: source})
    return [v.rule for v in
            analyze_program(program, KeyConfidentialityClient()).violations]


class TestSources:
    def test_derive_device_key_is_a_source(self):
        source = ("def f(telemetry):\n"
                  "    k = derive_device_key(b'm', 'dev')\n"
                  "    telemetry.count('c', k)\n")
        assert rules_in(source) == ["KEY001"]

    def test_key_address_is_public_but_its_dereference_is_not(self):
        """The span object is the address token: telemetering it is fine
        (addresses are layout, not secrets), raw_read-ing it is not."""
        source = ("def ok(telemetry, layout):\n"
                  "    telemetry.count('c', layout.key_span)\n"
                  "def bad(telemetry, layout, bus):\n"
                  "    data = raw_read(bus, layout.key_span)\n"
                  "    telemetry.count('c', data)\n")
        assert rules_in(source) == ["KEY001"]

    def test_ordinary_raw_read_is_clean(self):
        source = ("def f(telemetry, bus):\n"
                  "    telemetry.count('c', raw_read(bus, 0x100))\n")
        assert rules_in(source) == []


class TestSanitizers:
    def test_hmac_output_is_public(self):
        source = ("def f(telemetry):\n"
                  "    tag = hmac_sha1(read_key(), b'nonce')\n"
                  "    telemetry.count('c', tag)\n")
        assert rules_in(source) == []

    def test_digest_method_on_tainted_receiver(self):
        source = ("def f(telemetry, h):\n"
                  "    h.update(read_key())\n"
                  "    telemetry.count('c', h.digest())\n")
        assert rules_in(source) == []


class TestSinks:
    def test_exception_text_is_a_sink(self):
        source = ("def f():\n"
                  "    raise ValueError(read_key())\n")
        assert rules_in(source) == ["KEY001"]

    def test_attribute_flow_is_name_joined(self):
        source = ("class S:\n"
                  "    def boot(self):\n"
                  "        self.key = read_key()\n"
                  "def f(telemetry, session):\n"
                  "    telemetry.count('c', session.key)\n")
        assert rules_in(source) == ["KEY001"]

    def test_key_decided_branch_near_telemetry(self):
        source = ("def f(telemetry):\n"
                  "    if read_key()[0] & 1:\n"
                  "        telemetry.count('c', 1)\n")
        assert rules_in(source) == ["KEY002"]

    def test_key_decided_branch_without_observer_is_fine(self):
        source = ("def f():\n"
                  "    if read_key()[0] & 1:\n"
                  "        x = 1\n")
        assert rules_in(source) == []


class TestSeededFixture:
    def test_all_three_rules_fire(self):
        report = analyze_taint_tree(FIXTURE)
        assert [v.rule for v in report.violations] == [
            "KEY001", "KEY002", "KEY001", "KEY003"]
        assert not report.clean

    def test_interprocedural_chain_is_witnessed(self):
        report = analyze_taint_tree(FIXTURE)
        chained = [v for v in report.violations if len(v.chain) > 1]
        assert chained, "helper-mediated leak lost its witness chain"
        assert all("leaky.py" in hop for hop in chained[0].chain)


class TestPolicy:
    def test_checked_in_policy_loads_with_reasons(self):
        policy = load_policy(REPO / "taint-policy.json")
        assert policy.sinks and policy.boundary_modules
        assert all(s.reason for s in policy.sinks)
        assert all(m.reason for m in policy.boundary_modules)

    def test_missing_file_is_empty_policy(self, tmp_path):
        policy = load_policy(tmp_path / "absent.json")
        assert policy == TaintPolicy((), ())

    def test_reasonless_sink_rejected(self, tmp_path):
        bad = tmp_path / "p.json"
        bad.write_text('{"policy_sinks": [{"kind": "blob-store", '
                       '"path": "x.py", "reason": ""}]}')
        with pytest.raises(ValueError, match="justification"):
            load_policy(bad)

    def test_reasonless_boundary_rejected(self, tmp_path):
        bad = tmp_path / "p.json"
        bad.write_text('{"boundary_modules": [{"path": "x.py"}]}')
        with pytest.raises(ValueError, match="justification"):
            load_policy(bad)

    def test_policy_sink_waives_matching_violation(self):
        policy = TaintPolicy(
            sinks=(PolicySink(kind="telemetry",
                              path="src/repro/leaky.py",
                              reason="test waiver"),),
            boundary_modules=())
        report = analyze_taint_tree(FIXTURE, policy=policy)
        assert [v.rule for v in report.violations] == ["KEY002", "KEY003"]
        assert [(v.rule, reason) for v, reason in report.waived] == [
            ("KEY001", "test waiver"), ("KEY001", "test waiver")]

    def test_declared_boundary_module_suppresses_key003(self):
        policy = TaintPolicy(
            sinks=(),
            boundary_modules=(BoundaryModule(
                path="src/repro/leaky.py", reason="test boundary"),))
        report = analyze_taint_tree(FIXTURE, policy=policy)
        assert "KEY003" not in [v.rule for v in report.violations]
        assert report.stale_policy == ()


class TestStalePolicy:
    def test_sink_matching_no_site_is_stale(self):
        policy = TaintPolicy(
            sinks=(PolicySink(kind="blob-store", path="src/repro/gone.py",
                              reason="was removed"),),
            boundary_modules=())
        report = analyze_taint_tree(FIXTURE, policy=policy)
        assert report.stale_policy == ({
            "kind": "policy-sink", "path": "src/repro/gone.py",
            "sink": "blob-store",
            "detail": "matches no catalogued sink site"},)

    def test_boundary_module_without_boundary_ops_is_stale(self):
        policy = TaintPolicy(
            sinks=(),
            boundary_modules=(BoundaryModule(path="src/repro/gone.py",
                                             reason="was removed"),))
        report = analyze_taint_tree(FIXTURE, policy=policy)
        assert [e["kind"] for e in report.stale_policy] == [
            "boundary-module"]

    def test_checked_in_policy_is_not_stale_on_the_real_tree(self):
        report = analyze_taint_tree(
            REPO, policy=load_policy(REPO / "taint-policy.json"))
        assert report.stale_policy == ()


class TestCleanTree:
    def test_repo_is_key_tight(self):
        report = analyze_taint_tree(
            REPO, policy=load_policy(REPO / "taint-policy.json"))
        assert report.clean, [v.as_dict() for v in report.violations]
        assert report.rounds < MAX_ROUNDS
        assert report.files_scanned > 50
        assert report.sinks  # the sink catalogue itself is non-empty

    def test_canary_module_is_self_excluded(self):
        """The leak hunter deliberately derives keys and encodes them
        every way a leak could; it is checked dynamically (by its own
        verdicts), not statically."""
        program = Program.from_tree(REPO, exclude=EXCLUDED_SELF_MODULES)
        assert "src/repro/analysis/canary.py" not in program.files
        assert "src/repro/analysis/taint.py" in program.files

    def test_known_boundary_modules_are_justified(self):
        for path, reason in KNOWN_BOUNDARY_MODULES.items():
            assert path.startswith("src/repro/"), path
            assert reason and len(reason) > 10, path
