"""Tier-1 wiring for ``scripts/service_smoke.py``.

Runs the smoke script exactly as CI would (a subprocess with only
``PYTHONPATH=src``) so a broken service path -- an admission decision
that stops being deterministic, a shard count that leaks into
verdicts, a restore that drifts from the uninterrupted run, or a
stale/invalid ``BENCH_service.json`` -- fails the suite, not just a
manual run.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "scripts" / "service_smoke.py"
ENV = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}


def run_smoke(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, env=ENV)


class TestServiceSmokeScript:
    def test_default_gates_pass(self):
        proc = run_smoke()
        assert proc.returncode == 0, proc.stderr
        assert "service-smoke: OK" in proc.stderr
        assert "restore-continue exact" in proc.stderr
