"""Tier-1 wiring for ``scripts/incremental_smoke.py``.

Runs the smoke script exactly as CI would (a subprocess with only
``PYTHONPATH=src``) so a broken incremental engine -- a digest tree
whose refreshed root drifts from a rebuild, a content cache that stops
hitting after OTA rounds, or a ``BENCH_incremental.json`` that stops
validating -- fails the suite, not just the nightly benchmark job.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "scripts" / "incremental_smoke.py"
ENV = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}


def run_smoke(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, env=ENV)


class TestIncrementalSmokeScript:
    def test_default_gates_pass(self):
        proc = run_smoke()
        assert proc.returncode == 0, proc.stderr
        assert "incremental-smoke: OK" in proc.stderr
        assert "incremental == full" in proc.stderr
        assert "compromise detected" in proc.stderr

    def test_missing_report_fails_loudly(self):
        """Sanity-check the gate actually gates: pointing at a missing
        report must exit 1 with a diagnostic."""
        proc = run_smoke("--report", str(REPO / "no-such-report.json"))
        assert proc.returncode == 1
        assert "FAIL: report missing" in proc.stderr
