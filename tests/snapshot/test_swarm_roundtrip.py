"""Fleet checkpoints: interrupted runs must be indistinguishable.

The property under test is the contract from ``repro.snapshot``: for
any fleet shape, run K sweeps, checkpoint, keep one copy running and
restore the checkpoint into a fresh build, then drive both to the same
sweep count -- every report, device state, metric dump, trace record
and battery reading must match exactly.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SnapshotError
from repro.perf.fleet import FleetEngine, FleetSpec
from repro.snapshot import build_swarm_from_spec, swarm_spec


def fingerprint(swarm):
    """Everything observable about a fleet, in comparable form."""
    state = {
        "sweeps_run": swarm.sweeps_run,
        "device_states": swarm.device_states(),
        "total": swarm.total_attestations(),
        "battery": {m.device_id: m.battery_fraction
                    for m in swarm.members},
    }
    if swarm.observe:
        state["registry"] = json.dumps(swarm.merged_registry().dump(),
                                       sort_keys=True)
        state["trace"] = swarm.merged_trace_records()
    return state


class TestSwarmRoundTrip:
    @given(size=st.integers(min_value=2, max_value=5),
           faults=st.booleans(), retry=st.booleans(),
           sweeps_before=st.integers(min_value=1, max_value=3),
           sweeps_after=st.integers(min_value=1, max_value=2))
    @settings(max_examples=12, deadline=None)
    def test_restore_plus_continue_equals_uninterrupted(
            self, size, faults, retry, sweeps_before, sweeps_after):
        spec = swarm_spec(size=size, faults=faults, retry=retry,
                          seed=f"hyp-{size}-{faults}-{retry}")
        uninterrupted = build_swarm_from_spec(spec)
        restored = build_swarm_from_spec(spec)

        for _ in range(sweeps_before):
            uninterrupted.sweep()
        document = uninterrupted.snapshot()
        restored.restore(document)
        for _ in range(sweeps_after):
            uninterrupted.sweep()
            restored.sweep()
        assert fingerprint(uninterrupted) == fingerprint(restored)

    def test_reports_match_sweep_for_sweep(self):
        spec = swarm_spec(size=3, faults=True, retry=True, seed="reports")
        a = build_swarm_from_spec(spec)
        b = build_swarm_from_spec(spec)
        a.sweep()
        b.restore(a.snapshot())
        for _ in range(3):
            assert a.sweep() == b.sweep()

    def test_member_set_mismatch_refuses(self):
        a = build_swarm_from_spec(swarm_spec(size=3, seed="m"))
        b = build_swarm_from_spec(swarm_spec(size=4, seed="m"))
        a.sweep()
        with pytest.raises(SnapshotError, match="member"):
            b.restore(a.snapshot())


class TestReplay:
    def test_replay_reproduces_an_exact_trace_prefix(self):
        spec = swarm_spec(size=3, faults=True, seed="replay")
        live = build_swarm_from_spec(spec)
        live.sweep()
        document = live.snapshot()
        live.sweep()
        live.sweep()
        full = live.merged_trace_records()

        for target in (len(full) // 2, len(full) - 1):
            fresh = build_swarm_from_spec(spec)
            records = fresh.replay_to_seq(document, target)
            assert records == full[:target + 1]
            assert records[-1]["seq"] == target

    def test_unreachable_seq_refuses(self):
        spec = swarm_spec(size=2, seed="replay-far")
        live = build_swarm_from_spec(spec)
        live.sweep()
        document = live.snapshot()
        fresh = build_swarm_from_spec(spec)
        with pytest.raises(SnapshotError, match="seq"):
            fresh.replay_to_seq(document, 10_000_000, max_sweeps=2)

    def test_negative_seq_refuses(self):
        spec = swarm_spec(size=2, seed="replay-neg")
        live = build_swarm_from_spec(spec)
        live.sweep()
        document = live.snapshot()
        with pytest.raises(SnapshotError):
            build_swarm_from_spec(spec).replay_to_seq(document, -1)


class TestFleetEngine:
    def test_sharded_round_trip_with_caches(self):
        spec = FleetSpec(size=6, observe=True, seed="fleet-rt")
        with FleetEngine(spec, workers=2) as live:
            live.sweep()
            document = live.snapshot()
            assert document["kind"] == "fleet"
            assert len(document["state"]["shards"]) == 2
            live.sweep()
            expected_states = live.device_states()
            expected_registry = live.merged_registry().dump()
            expected_cache = live.cache_stats()

        with FleetEngine(spec, workers=2) as resumed:
            resumed.restore(document)
            resumed.sweep()
            assert resumed.sweeps_run == 2
            assert resumed.device_states() == expected_states
            assert resumed.merged_registry().dump() == expected_registry
            assert resumed.cache_stats() == expected_cache

    def test_fleet_document_restores_into_sequential_swarm(self):
        spec = FleetSpec(size=4, observe=True, seed="fleet-flat")
        with FleetEngine(spec, workers=2) as live:
            live.sweep()
            document = live.snapshot()
            live.sweep()
            expected_states = live.device_states()
            expected_registry = live.merged_registry().dump()

        swarm = spec.build()
        swarm.restore(document)
        swarm.sweep()
        assert swarm.device_states() == expected_states
        assert swarm.merged_registry().dump() == expected_registry

    def test_worker_count_mismatch_refuses(self):
        spec = FleetSpec(size=4, seed="fleet-wc")
        with FleetEngine(spec, workers=2) as live:
            live.sweep()
            document = live.snapshot()
        with FleetEngine(spec, workers=1) as other:
            with pytest.raises(SnapshotError, match="worker"):
                other.restore(document)
