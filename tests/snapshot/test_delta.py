"""Delta checkpoints: dirty-chunk chains, compaction and bisection.

The contract under test is ``repro.snapshot.delta/v1``: a chain of
delta documents folds back (``materialize_chain``) into a document
byte-identical to a full snapshot of the same instant, for any
protection profile, clock kind, chain depth or shard layout -- and the
supporting machinery (atomic saves, content-addressed blob store,
digest-tree leaf addressing, replay bisection) holds its own edges.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SnapshotError
from repro.incremental import DEFAULT_CHUNK_SIZE, DigestTree
from repro.mcu.device import DeviceConfig
from repro.mcu.profiles import ALL_PROFILES
from repro.obs.schema import (SNAPSHOT_DELTA_SCHEMA_ID,
                              validate_registry_dump,
                              validate_snapshot_delta)
from repro.obs.telemetry import Telemetry
from repro.perf.fleet import FleetEngine, FleetSpec
from repro.services.swarm import Swarm
from repro.snapshot import (BlobStore, bisect_replay,
                            checkpoint_trace_length, compact_chain,
                            document_id, linear_scan, load_chain,
                            load_document, materialize_chain,
                            save_document, verify_chain)
from repro.snapshot.delta import _session_states
from repro.snapshot.swarm import _decode_cache_key, _encode_cache_key


def canonical(document) -> str:
    return json.dumps(document, sort_keys=True)


def build_swarm(size=3, *, incremental=True, observe=True,
                seed="delta-test", **kwargs):
    return Swarm(size, incremental=incremental, observe=observe,
                 seed=seed, **kwargs)


def rewrite(swarm, round_index):
    """Dirty a couple of RAM chunks per member via provisioning."""
    for member in swarm.members:
        ram = member.session.device.ram
        payload = bytes((round_index + member.index + i) % 256
                        for i in range(300))
        ram.load(128, payload)
        ram.load(ram.size - 512, payload)


def capture_chain(swarm, links):
    chain = [swarm.snapshot()]
    for round_index in range(links):
        rewrite(swarm, round_index)
        swarm.sweep()
        chain.append(swarm.snapshot(parent=chain[-1]))
    return chain, swarm.snapshot()


class TestAtomicSave:
    def test_failed_write_leaves_existing_file_intact(self, tmp_path):
        """An exception mid-serialization must not clobber the
        previous checkpoint or leave temp litter behind."""
        path = tmp_path / "checkpoint.json"
        save_document({"good": 1}, path)
        before = path.read_text()
        with pytest.raises(TypeError):
            save_document({"bad": object()}, path)
        assert path.read_text() == before
        assert os.listdir(tmp_path) == ["checkpoint.json"]

    def test_replaces_atomically_and_round_trips(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        save_document({"v": 1}, path)
        save_document({"v": 2}, path)
        assert json.loads(path.read_text()) == {"v": 2}
        assert path.read_text().endswith("\n")
        assert os.listdir(tmp_path) == ["checkpoint.json"]


class TestBlobStore:
    def test_collision_names_both_images(self):
        store = BlobStore()
        store.put("ab" * 20, b"first-image")
        with pytest.raises(SnapshotError) as err:
            store.put("ab" * 20, b"second-image!")
        message = str(err.value)
        import hashlib
        assert hashlib.sha1(b"first-image").hexdigest() in message
        assert hashlib.sha1(b"second-image!").hexdigest() in message
        assert str(len(b"first-image")) in message
        assert str(len(b"second-image!")) in message

    def test_stats_and_publish_gauges(self):
        store = BlobStore()
        store.put("aa" * 20, b"x" * 10)
        store.put("bb" * 20, b"y" * 30)
        assert store.stats() == {"blobs": 2, "bytes": 40}
        telemetry = Telemetry()
        store.publish(telemetry)
        dump = telemetry.registry.dump()
        assert validate_registry_dump(dump) == []
        gauges = {entry["name"]: entry["value"]
                  for entry in dump["metrics"]
                  if entry["kind"] == "gauge"}
        assert gauges["snapshot.blobs"] == 2
        assert gauges["snapshot.bytes"] == 40
        # publishing is read-only for the store itself
        assert store.stats() == {"blobs": 2, "bytes": 40}

    def test_subset_skips_absent_keys(self):
        store = BlobStore()
        store.put("aa" * 20, b"x")
        subset = store.subset(["aa" * 20, "ff" * 20])
        assert len(subset) == 1
        assert subset.get("aa" * 20) == b"x"


class TestCacheKeyCodec:
    def test_span_key_round_trips(self):
        key = ((0, 64, b"\x01" * 20), (64, 256, b"\x02" * 20))
        assert _decode_cache_key(_encode_cache_key(key)) == key

    def test_content_key_round_trips(self):
        key = ("content", (0, 4096, 4096, 16, b"\x03" * 20))
        assert _decode_cache_key(_encode_cache_key(key)) == key


class TestDeltaChain:
    def test_chain_folds_to_the_full_snapshot(self):
        swarm = build_swarm()
        swarm.sweep()
        chain, full = capture_chain(swarm, 2)
        for delta in chain[1:]:
            assert validate_snapshot_delta(delta) == []
            assert delta["schema"] == SNAPSHOT_DELTA_SCHEMA_ID
        assert canonical(materialize_chain(chain)) == canonical(full)

    def test_delta_records_use_chunk_mode_for_dirty_regions(self):
        swarm = build_swarm()
        swarm.sweep()
        chain, _ = capture_chain(swarm, 1)
        modes = set()
        for session in _session_states(chain[1]["state"], "swarm"):
            for record in session["device"]["regions"]:
                modes.add(record["delta"]["mode"])
        assert "chunks" in modes      # the rewritten RAM
        assert "unchanged" in modes   # everything untouched

    def test_chunk_delta_is_much_smaller_than_full(self):
        swarm = build_swarm()
        swarm.sweep()
        chain, full = capture_chain(swarm, 1)
        assert len(canonical(chain[1])) * 2 < len(canonical(full))

    def test_without_trees_falls_back_to_blob_mode(self):
        swarm = build_swarm(incremental=False)
        swarm.sweep()
        chain, full = capture_chain(swarm, 1)
        modes = set()
        for session in _session_states(chain[1]["state"], "swarm"):
            for record in session["device"]["regions"]:
                modes.add(record["delta"]["mode"])
        assert "blob" in modes
        assert "chunks" not in modes
        assert canonical(materialize_chain(chain)) == canonical(full)

    def test_compact_equals_materialize(self):
        swarm = build_swarm()
        swarm.sweep()
        chain, full = capture_chain(swarm, 2)
        assert canonical(compact_chain(chain)) == canonical(full)

    def test_restore_plus_continue_equals_uninterrupted(self):
        live = build_swarm(seed="delta-continue")
        live.sweep()
        chain, _ = capture_chain(live, 2)
        resumed = build_swarm(seed="delta-continue")
        resumed.restore(materialize_chain(chain))
        assert live.sweep() == resumed.sweep()
        assert (live.merged_trace_records()
                == resumed.merged_trace_records())
        assert (live.freshness_fingerprint()
                == resumed.freshness_fingerprint())

    def test_verify_chain_rejects_broken_linkage(self):
        swarm = build_swarm()
        swarm.sweep()
        chain, _ = capture_chain(swarm, 2)
        with pytest.raises(SnapshotError, match="parent"):
            verify_chain([chain[0], chain[2]])
        with pytest.raises(SnapshotError):
            verify_chain(chain[1:])          # delta cannot root a chain

    def test_delta_against_wrong_fleet_refuses(self):
        a = build_swarm(seed="fleet-a")
        b = build_swarm(size=4, seed="fleet-b")
        a.sweep()
        b.sweep()
        parent = a.snapshot()
        with pytest.raises(SnapshotError):
            b.snapshot(parent=parent)

    def test_document_id_is_content_addressed(self):
        swarm = build_swarm()
        swarm.sweep()
        document = swarm.snapshot()
        round_tripped = json.loads(json.dumps(document))
        assert document_id(document) == document_id(round_tripped)
        mutated = json.loads(json.dumps(document))
        mutated["state"]["sweeps_run"] += 1
        assert document_id(mutated) != document_id(document)

    def test_load_chain_follows_parent_paths(self, tmp_path):
        # parent_id hashes the parent *with* its meta, so each link's
        # parent_path must be in place before the next capture.
        swarm = build_swarm()
        swarm.sweep()
        root = swarm.snapshot()
        rewrite(swarm, 0)
        swarm.sweep()
        d1 = swarm.snapshot(parent=root)
        d1["meta"] = {"parent_path": "root.json"}
        rewrite(swarm, 1)
        swarm.sweep()
        d2 = swarm.snapshot(parent=d1)
        d2["meta"] = {"parent_path": "d1.json"}
        save_document(root, tmp_path / "root.json")
        save_document(d1, tmp_path / "d1.json")
        save_document(d2, tmp_path / "d2.json")
        loaded = load_chain(tmp_path / "d2.json")
        assert [document_id(doc) for doc in loaded] == \
            [document_id(doc) for doc in (root, d1, d2)]

    def test_load_chain_without_parent_path_refuses(self, tmp_path):
        swarm = build_swarm()
        swarm.sweep()
        chain, _ = capture_chain(swarm, 1)
        save_document(chain[1], tmp_path / "orphan.json")
        with pytest.raises(SnapshotError, match="parent_path"):
            load_chain(tmp_path / "orphan.json")


class TestInvalidateTimesDeltaRestore:
    def test_restored_trees_rebuild_byte_identical_roots(self):
        """Restore invalidates every digest tree; the lazily rebuilt
        roots and leaf rows must match a from-scratch tree over the
        same bytes -- stale leaves would silently corrupt the *next*
        delta capture."""
        live = build_swarm(seed="delta-trees")
        live.sweep()
        chain, _ = capture_chain(live, 2)
        resumed = build_swarm(seed="delta-trees")
        resumed.restore(materialize_chain(chain))
        for member in resumed.members:
            for region in member.session.device.memory:
                tree = getattr(region, "digest_tree", None)
                if tree is None:
                    continue
                fresh = DigestTree(tree.window_start, tree.window_size,
                                   chunk_size=tree.chunk_size,
                                   arity=tree.arity)
                assert tree.root(region._data) == \
                    fresh.root(region._data)
                assert tree.leaf_digests(region._data) == \
                    fresh.leaf_digests(region._data)

    def test_next_delta_after_restore_matches_uninterrupted(self):
        live = build_swarm(seed="delta-trees-2")
        live.sweep()
        chain, _ = capture_chain(live, 1)
        resumed = build_swarm(seed="delta-trees-2")
        resumed.restore(materialize_chain(chain))
        rewrite(live, 7)
        rewrite(resumed, 7)
        live.sweep()
        resumed.sweep()
        live_delta = live.snapshot(parent=chain[-1])
        resumed_delta = resumed.snapshot(parent=chain[-1])
        assert canonical(live_delta) == canonical(resumed_delta)


class TestShardedFleetDelta:
    def test_shard_parallel_chain_folds_and_restores(self):
        spec = FleetSpec(size=4,
                         device_config=DeviceConfig(ram_size=8 * 1024,
                                                    flash_size=16 * 1024,
                                                    app_size=2 * 1024),
                         observe=True, incremental=True,
                         seed="delta-fleet-test")
        with FleetEngine(spec, workers=2) as engine:
            engine.sweep()
            chain = [engine.snapshot()]
            engine.sweep()
            chain.append(engine.snapshot(parent=chain[-1]))
            full = engine.snapshot()
            continued = engine.sweep()
        folded = materialize_chain(chain)
        assert canonical(folded) == canonical(full)
        with FleetEngine(spec, workers=2) as resumed:
            resumed.restore(folded)
            assert resumed.sweep() == continued

    def test_worker_count_mismatch_refuses(self):
        spec = FleetSpec(size=4, incremental=True, seed="delta-fleet-wc")
        with FleetEngine(spec, workers=2) as engine:
            engine.sweep()
            parent = engine.snapshot()
        with FleetEngine(spec, workers=1) as other:
            other.sweep()
            with pytest.raises(SnapshotError, match="shard"):
                other.snapshot(parent=parent)


class TestBisect:
    @staticmethod
    def run_with_checkpoints(seed, sweeps):
        recorded = build_swarm(size=2, seed=seed)
        documents = [recorded.snapshot()]
        for _ in range(sweeps):
            recorded.sweep()
            documents.append(recorded.snapshot(parent=documents[-1]))
        truth = build_swarm(size=2, seed=seed)
        for _ in range(sweeps):
            truth.sweep()
        return documents, truth.merged_trace_records()

    def test_finds_the_exact_first_flip_cheaper_than_linear(self):
        documents, records = self.run_with_checkpoints("bisect-unit", 12)
        threshold = records[-1]["time"] * 0.8
        predicate = lambda record: record["time"] >= threshold
        expected = next(r for r in records if predicate(r))
        found = bisect_replay(build_swarm(size=2, seed="bisect-unit"),
                              documents, predicate)
        assert found["seq"] == expected["seq"]
        assert found["record"] == expected
        assert found["probes"] > 0
        baseline = linear_scan(build_swarm(size=2, seed="bisect-unit"),
                               documents[0], predicate)
        assert baseline["seq"] == expected["seq"]
        assert found["events_replayed"] < baseline["events_replayed"]

    def test_checkpoint_trace_length_anchors_the_axis(self):
        documents, records = self.run_with_checkpoints("bisect-len", 2)
        assert checkpoint_trace_length(documents[0]) == 0
        assert checkpoint_trace_length(documents[-1]) == len(records)

    def test_unobserved_checkpoints_refuse(self):
        swarm = build_swarm(size=2, observe=False, seed="bisect-blind")
        swarm.sweep()
        with pytest.raises(SnapshotError, match="observe"):
            bisect_replay(build_swarm(size=2, observe=False,
                                      seed="bisect-blind"),
                          [swarm.snapshot()], lambda record: True)

    def test_never_matching_predicate_refuses(self):
        documents, _ = self.run_with_checkpoints("bisect-never", 1)
        with pytest.raises(SnapshotError, match="never matched"):
            bisect_replay(build_swarm(size=2, seed="bisect-never"),
                          documents, lambda record: False, max_sweeps=2)


class TestRoundTripProperties:
    @given(profile_index=st.integers(min_value=0,
                                     max_value=len(ALL_PROFILES) - 1),
           clock_kind=st.sampled_from(["hw64", "hw32div", "sw", "none"]),
           links=st.integers(min_value=1, max_value=3),
           size=st.integers(min_value=2, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_chain_identity_across_profiles_and_clocks(
            self, profile_index, clock_kind, links, size):
        profile = ALL_PROFILES[profile_index]
        seed = f"hyp-delta:{profile.name}:{clock_kind}:{links}:{size}"

        def build():
            return Swarm(size, profile=profile,
                         device_config=DeviceConfig(clock_kind=clock_kind),
                         observe=True, incremental=True, seed=seed)

        live = build()
        live.sweep()
        chain, full = capture_chain(live, links)
        assert canonical(materialize_chain(chain)) == canonical(full)
        resumed = build()
        resumed.restore(materialize_chain(chain))
        assert live.sweep() == resumed.sweep()
        assert (live.freshness_fingerprint()
                == resumed.freshness_fingerprint())
