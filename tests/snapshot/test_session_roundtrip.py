"""Session checkpoints: restore + continue must equal never-stopping.

A checkpoint is only useful if the restored run is *byte-identical* to
the uninterrupted one -- same digests, same cycle counts, same energy,
same telemetry.  Every test here builds two identical sessions, runs
one ahead, checkpoints it, restores into the other, then drives both
onward and compares everything observable.
"""

import json

import pytest

from repro.errors import SnapshotError
from repro.mcu import DeviceConfig
from repro.mcu.profiles import ALL_PROFILES
from repro.services.swarm import Swarm
from tests.conftest import tiny_config


def twin_swarms(**kwargs):
    """Two independent but identical single-member swarms."""
    kwargs.setdefault("seed", "session-roundtrip")
    return Swarm(1, **kwargs), Swarm(1, **kwargs)


def state_of(session):
    device = session.device
    device.sync_energy()
    return {
        "summary": session.summary(),
        "cycles": device.cpu.cycle_count,
        "consumed_mj": device.battery.consumed_mj,
        "flash": device.memory.region("flash").snapshot(),
        "ram": device.memory.region("ram").snapshot(),
        "now": session.sim.now,
    }


class TestRoundTrip:
    @pytest.mark.parametrize("profile", ALL_PROFILES,
                             ids=lambda p: p.name)
    def test_profiles(self, profile):
        a, b = twin_swarms(profile=profile)
        a.sweep()
        b.restore(a.snapshot())
        a.sweep()
        b.sweep()
        assert state_of(a.members[0].session) == \
            state_of(b.members[0].session)

    @pytest.mark.parametrize("policy", ["counter", "nonce", "timestamp"])
    def test_freshness_policies(self, policy):
        a, b = twin_swarms(policy_name=policy)
        a.sweep()
        a.sweep()
        b.restore(a.snapshot())
        a.sweep()
        b.sweep()
        assert state_of(a.members[0].session) == \
            state_of(b.members[0].session)

    @pytest.mark.parametrize("clock_kind", ["hw64", "hw32div", "sw"])
    def test_clock_kinds(self, clock_kind):
        config = tiny_config(clock_kind=clock_kind)
        a, b = twin_swarms(device_config=config, policy_name="timestamp")
        a.sweep()
        b.restore(a.snapshot())
        a.sweep()
        b.sweep()
        assert state_of(a.members[0].session) == \
            state_of(b.members[0].session)

    def test_telemetry_round_trips(self):
        a, b = twin_swarms(observe=True)
        a.sweep()
        b.restore(a.snapshot())
        a.sweep()
        b.sweep()
        assert a.merged_registry().dump() == b.merged_registry().dump()
        assert a.merged_trace_records() == b.merged_trace_records()

    def test_document_is_pure_json(self):
        a, _ = twin_swarms(observe=True)
        a.sweep()
        document = a.snapshot()
        assert document == json.loads(json.dumps(document))


class TestGuards:
    def test_non_quiescent_session_refuses(self):
        a, _ = twin_swarms()
        a.members[0].session.sim.schedule(1e9, lambda: None)
        with pytest.raises(SnapshotError, match="still scheduled"):
            a.snapshot()

    def test_profile_mismatch_refuses(self):
        a, _ = twin_swarms(profile=ALL_PROFILES[-1])
        _, b = twin_swarms(profile=ALL_PROFILES[0])
        a.sweep()
        with pytest.raises(SnapshotError, match="profile"):
            b.restore(a.snapshot())

    def test_geometry_mismatch_refuses(self):
        a, _ = twin_swarms()
        _, b = twin_swarms(
            device_config=DeviceConfig(ram_size=32 * 1024,
                                       flash_size=64 * 1024,
                                       app_size=4 * 1024))
        a.sweep()
        with pytest.raises(SnapshotError):
            b.restore(a.snapshot())

    def test_telemetry_presence_mismatch_refuses(self):
        a, _ = twin_swarms(observe=True)
        _, b = twin_swarms(observe=False)
        a.sweep()
        with pytest.raises(SnapshotError, match="telemetry"):
            b.restore(a.snapshot())
        c, _ = twin_swarms(observe=False)
        _, d = twin_swarms(observe=True)
        c.sweep()
        with pytest.raises(SnapshotError, match="telemetry"):
            d.restore(c.snapshot())

    def test_wrong_kind_refuses(self):
        a, b = twin_swarms()
        a.sweep()
        document = a.members[0].session.snapshot()
        with pytest.raises(SnapshotError, match="kind"):
            b.restore(document)


class TestBlobDedup:
    def test_identical_members_share_flash_and_ram_images(self):
        # In an honest fleet every member runs the same firmware, so a
        # size-N snapshot should hold N unique ROM images (per-member
        # keys live there) plus ONE shared flash and ONE shared ram.
        for size in (2, 5):
            swarm = Swarm(size, seed="dedup")
            swarm.sweep()
            document = swarm.snapshot()
            assert len(document["blobs"]) == size + 2

    def test_diverged_member_adds_images(self):
        swarm = Swarm(3, seed="dedup-div")
        swarm.sweep()
        device = swarm.members[0].session.device
        ram = device.memory.region("ram")
        ram.store(ram.size - 4, b"\xde\xad\xbe\xef")
        document = swarm.snapshot()
        assert len(document["blobs"]) == 3 + 2 + 1
