"""Envelope validation: ``validate_snapshot`` and document plumbing."""

import pytest

from repro.errors import SnapshotError
from repro.obs.schema import SNAPSHOT_SCHEMA_ID, validate_snapshot
from repro.snapshot import (BlobStore, load_document, make_document,
                            save_document, unwrap_document)


def minimal_session_document():
    state = {"sim": {}, "device": {}, "channel": {}, "verifier": {},
             "verifier_node": {}, "anchor": {}}
    return make_document("session", state, BlobStore())


class TestValidateSnapshot:
    def test_minimal_documents_validate(self):
        assert validate_snapshot(minimal_session_document()) == []
        swarm = make_document(
            "swarm", {"sweeps_run": 0, "members": [], "breakers": {}},
            BlobStore())
        assert validate_snapshot(swarm) == []
        fleet = make_document(
            "fleet", {"workers": 2, "sweeps_run": 0, "shards": []},
            BlobStore())
        assert validate_snapshot(fleet) == []

    def test_schema_id_pinned(self):
        assert minimal_session_document()["schema"] == SNAPSHOT_SCHEMA_ID

    def test_missing_required_keys_flagged(self):
        document = minimal_session_document()
        del document["blobs"]
        assert validate_snapshot(document)

    def test_unknown_kind_flagged(self):
        document = minimal_session_document()
        document["kind"] = "universe"
        assert validate_snapshot(document)

    def test_non_hex_blob_key_flagged(self):
        document = minimal_session_document()
        document["blobs"]["not hex!"] = "AAAA"
        assert validate_snapshot(document)

    def test_non_string_blob_value_flagged(self):
        document = minimal_session_document()
        document["blobs"]["00ff"] = 17
        assert validate_snapshot(document)

    def test_missing_state_keys_flagged(self):
        document = minimal_session_document()
        del document["state"]["anchor"]
        errors = validate_snapshot(document)
        assert any("anchor" in error for error in errors)


class TestDocumentPlumbing:
    def test_unwrap_rejects_kind_mismatch(self):
        with pytest.raises(SnapshotError, match="kind"):
            unwrap_document(minimal_session_document(), "swarm")

    def test_unwrap_rejects_invalid_document(self):
        with pytest.raises(SnapshotError):
            unwrap_document({"schema": "nope"}, "session")

    def test_disk_round_trip(self, tmp_path):
        blobs = BlobStore()
        blobs.put("0102", b"payload")
        document = make_document(
            "swarm", {"sweeps_run": 3, "members": [], "breakers": {}},
            blobs, meta={"spec": {"size": 1}})
        path = tmp_path / "checkpoint.json"
        save_document(document, path)
        assert load_document(path) == document

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "wrong"}')
        with pytest.raises(SnapshotError):
            load_document(path)


class TestBlobStore:
    def test_put_is_idempotent_for_equal_content(self):
        blobs = BlobStore()
        blobs.put("aa", b"same")
        blobs.put("aa", b"same")
        assert len(blobs) == 1

    def test_collision_refuses(self):
        blobs = BlobStore()
        blobs.put("aa", b"one")
        with pytest.raises(SnapshotError, match="collision"):
            blobs.put("aa", b"two")

    def test_missing_fingerprint_refuses(self):
        with pytest.raises(SnapshotError):
            BlobStore().get("bb")

    def test_encode_decode_round_trip(self):
        blobs = BlobStore()
        blobs.put("10", b"alpha")
        blobs.put("20", b"beta")
        decoded = BlobStore.decode(blobs.encode())
        assert decoded.get("10") == b"alpha"
        assert decoded.get("20") == b"beta"
