"""Property-based tests (hypothesis) on core invariants.

Covers: crypto round-trips and hashlib agreement, CBC/PKCS#7, the
EA-MPU's interval algebra, freshness-policy state machines, counters and
wrap-around arithmetic, and the deterministic RNG.
"""

import hashlib
import hmac as stdlib_hmac

from hypothesis import given, settings, strategies as st

from repro.core.freshness import (CounterPolicy, InMemoryStateView,
                                  NonceHistoryPolicy, TimestampPolicy)
from repro.core.messages import AttestationRequest
from repro.crypto.aes import AES128
from repro.crypto.hmac import HmacSha1, constant_time_compare, hmac_sha1
from repro.crypto.modes import CBC, cbc_mac, pkcs7_pad, pkcs7_unpad
from repro.crypto.rng import DeterministicRng
from repro.crypto.sha1 import SHA1
from repro.crypto.speck import Speck64_128
from repro.mcu.cpu import CPU
from repro.mcu.mpu import _merge_intervals, _subtract_intervals
from repro.mcu.timer import HardwareCounter


# ---------------------------------------------------------------------------
# Crypto
# ---------------------------------------------------------------------------

@given(st.binary(max_size=2048))
def test_sha1_matches_hashlib(data):
    assert SHA1(data).digest() == hashlib.sha1(data).digest()


@given(st.binary(max_size=512), st.lists(st.integers(1, 64), max_size=6))
def test_sha1_chunking_invariance(data, cuts):
    h = SHA1()
    offset = 0
    for cut in cuts:
        h.update(data[offset:offset + cut])
        offset += cut
    h.update(data[offset:])
    assert h.digest() == hashlib.sha1(data).digest()


@given(st.binary(max_size=128), st.binary(max_size=512))
def test_hmac_matches_stdlib(key, message):
    assert hmac_sha1(key, message) == \
        stdlib_hmac.new(key, message, hashlib.sha1).digest()


@given(st.integers(0, 10_000))
def test_hmac_compression_count_matches_execution(length):
    """The analytic compression count equals what the implementation
    actually performs (inner message blocks + fixed blocks)."""
    message = b"\x00" * length
    mac = HmacSha1(b"key-16-bytes-ok!", message)
    mac.digest()
    analytic = HmacSha1.total_compressions(length)
    # Executed: 1 ipad key block + message blocks + inner pad + 2 outer.
    inner_executed = 1 + mac.blocks_processed
    assert analytic >= inner_executed
    assert analytic - inner_executed <= 3


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16,
                                                      max_size=16))
def test_aes_roundtrip(key, block):
    cipher = AES128(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=8,
                                                      max_size=8))
def test_speck_roundtrip(key, block):
    cipher = Speck64_128(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(st.binary(max_size=200), st.sampled_from([8, 16]))
def test_pkcs7_roundtrip(data, block_size):
    assert pkcs7_unpad(pkcs7_pad(data, block_size), block_size) == data


@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16,
                                                      max_size=16),
       st.binary(max_size=300))
def test_cbc_roundtrip(key, iv, plaintext):
    mode = CBC(AES128(key))
    assert mode.decrypt(iv, mode.encrypt(iv, plaintext)) == plaintext


@given(st.binary(min_size=16, max_size=16), st.binary(max_size=100),
       st.binary(max_size=100))
def test_cbc_mac_injective_on_samples(key, m1, m2):
    if m1 != m2:
        assert cbc_mac(AES128(key), m1) != cbc_mac(AES128(key), m2)


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_constant_time_compare_equivalence(a, b):
    assert constant_time_compare(a, b) == (a == b)


# ---------------------------------------------------------------------------
# RNG
# ---------------------------------------------------------------------------

@given(st.binary(min_size=1, max_size=32), st.integers(0, 300))
def test_rng_reproducible(seed, n):
    assert DeterministicRng(seed).bytes(n) == DeterministicRng(seed).bytes(n)


@given(st.binary(min_size=1, max_size=16),
       st.integers(-1000, 1000), st.integers(0, 1000))
def test_rng_randint_in_range(seed, low, span):
    high = low + span
    value = DeterministicRng(seed).randint(low, high)
    assert low <= value <= high


# ---------------------------------------------------------------------------
# EA-MPU interval algebra
# ---------------------------------------------------------------------------

interval = st.tuples(st.integers(0, 1000), st.integers(0, 1000)).map(
    lambda t: (min(t), max(t) + 1))


@given(st.lists(interval, max_size=8))
def test_merge_produces_disjoint_sorted(intervals):
    merged = _merge_intervals(intervals)
    for (a_lo, a_hi), (b_lo, b_hi) in zip(merged, merged[1:]):
        assert a_hi < b_lo
    covered = set()
    for lo, hi in intervals:
        covered.update(range(lo, hi))
    merged_covered = set()
    for lo, hi in merged:
        merged_covered.update(range(lo, hi))
    assert covered == merged_covered


@given(st.lists(interval, max_size=6), st.lists(interval, max_size=6))
def test_subtract_matches_set_semantics(minuend, subtrahend):
    m = _merge_intervals(minuend)
    s = _merge_intervals(subtrahend)
    result = _subtract_intervals(m, s)
    expected = set()
    for lo, hi in m:
        expected.update(range(lo, hi))
    for lo, hi in s:
        expected.difference_update(range(lo, hi))
    actual = set()
    for lo, hi in result:
        actual.update(range(lo, hi))
    assert actual == expected


# ---------------------------------------------------------------------------
# Freshness state machines
# ---------------------------------------------------------------------------

def _request(**fields):
    return AttestationRequest(challenge=b"c" * 16, **fields)


@given(st.lists(st.integers(0, 50), max_size=30))
def test_counter_policy_never_accepts_nonincreasing(counters):
    """Whatever the arrival order, each accepted counter is strictly
    greater than every previously accepted one."""
    policy = CounterPolicy()
    view = InMemoryStateView()
    accepted = []
    for counter in counters:
        ok, _ = policy.check(_request(counter=counter), view)
        if ok:
            policy.commit(_request(counter=counter), view)
            accepted.append(counter)
    assert accepted == sorted(set(accepted))


@given(st.lists(st.binary(min_size=8, max_size=8), max_size=30))
def test_nonce_policy_accepts_each_nonce_once(nonces):
    policy = NonceHistoryPolicy(nonce_size=8)
    view = InMemoryStateView()
    accepted = []
    for nonce in nonces:
        request = _request(nonce=nonce)
        ok, _ = policy.check(request, view)
        if ok:
            policy.commit(request, view)
            accepted.append(nonce)
    assert len(accepted) == len(set(accepted))
    assert set(accepted) == set(nonces)


@given(st.integers(1, 10_000), st.integers(0, 100_000),
       st.integers(0, 100_000))
def test_timestamp_policy_window_semantics(window, local, stamp):
    policy = TimestampPolicy(window_ticks=window)
    view = InMemoryStateView(clock=local)
    ok, _ = policy.check(_request(timestamp_ticks=stamp), view)
    assert ok == (abs(stamp - local) <= window)


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=20),
       st.integers(1, 100))
def test_monotonic_timestamps_strictly_increase(stamps, window):
    policy = TimestampPolicy(window_ticks=window, monotonic=True)
    accepted = []
    for stamp in stamps:
        view = InMemoryStateView(clock=stamp)  # perfectly synced clock
        view.counter = accepted[-1] if accepted else 0
        request = _request(timestamp_ticks=stamp)
        ok, _ = policy.check(request, view)
        if ok:
            policy.commit(request, view)
            accepted.append(stamp)
    assert all(b > a for a, b in zip(accepted, accepted[1:]))


# ---------------------------------------------------------------------------
# Hardware counters
# ---------------------------------------------------------------------------

@given(st.integers(0, 100_000), st.sampled_from([8, 16, 32]),
       st.integers(1, 64))
@settings(max_examples=50)
def test_counter_value_formula(cycles, width, divider):
    cpu = CPU()
    counter = HardwareCounter(cpu, width_bits=width, divider=divider)
    cpu.consume_cycles(cycles) if cycles else None
    assert counter.value == (cycles // divider) % (1 << width)


@given(st.integers(0, 5000), st.integers(0, 255))
@settings(max_examples=50)
def test_counter_set_value_then_counts_on(cycles, new_value):
    cpu = CPU()
    counter = HardwareCounter(cpu, width_bits=8, software_writable=True)
    if cycles:
        cpu.consume_cycles(cycles)
    counter.set_value(new_value)
    assert counter.value == new_value
    cpu.consume_cycles(3)
    assert counter.value == (new_value + 3) % 256
