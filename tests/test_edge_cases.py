"""Small edge cases across modules, plus cross-validation checks."""

import pytest

from repro.errors import MemoryAccessViolation, RequestRejected
from repro.mcu import BASELINE, UNPROTECTED, Device
from repro.mcu.profiles import ProtectionProfile
from tests.conftest import tiny_config


class TestDeviceEdges:
    def test_idle_zero_and_negative_are_noops(self, booted_device):
        before = booted_device.cpu.cycle_count
        booted_device.idle_seconds(0.0)
        booted_device.idle_seconds(-1.0)
        assert booted_device.cpu.cycle_count == before

    def test_sync_energy_idempotent(self, booted_device):
        booted_device.cpu.consume_cycles(1000)
        booted_device.sync_energy()
        consumed = booted_device.battery.consumed_mj
        booted_device.sync_energy()
        assert booted_device.battery.consumed_mj == consumed

    def test_boot_log_records_rules(self, booted_device):
        assert any("rule[" in line for line in booted_device.boot_log)
        assert any("booted with profile" in line
                   for line in booted_device.boot_log)

    def test_unprotected_profile_installs_no_rules(self):
        device = Device(tiny_config())
        device.provision(b"K" * 16)
        device.boot(UNPROTECTED)
        assert device.mpu.active_rule_count == 0
        assert not device.mpu.enabled


class TestErrorMetadata:
    def test_memory_violation_carries_context(self, booted_device):
        malware = booted_device.make_malware_context()
        with pytest.raises(MemoryAccessViolation) as excinfo:
            booted_device.read_key(malware)
        error = excinfo.value
        assert error.access == "read"
        assert error.context == "malware"
        assert error.address == booted_device.key_address

    def test_request_rejected_reason(self):
        error = RequestRejected("nope", reason="stale-counter")
        assert error.reason == "stale-counter"

    def test_profile_str(self):
        assert str(BASELINE) == "baseline"
        assert isinstance(BASELINE, ProtectionProfile)


class TestCrossValidation:
    def test_scenario_and_modelcheck_table2_agree(self):
        """Two independent derivations of Table 2 -- scripted attack
        simulation on real devices vs exhaustive schedule enumeration on
        the pure state machines -- must produce the same matrix."""
        from repro.attacks.scenarios import (TABLE2_ATTACKS,
                                             run_table2_matrix)
        from repro.core.modelcheck import table2_from_model_checking

        simulated = run_table2_matrix(seed="xval")
        checked = table2_from_model_checking(paper_assumptions=True)
        for feature in ("nonce", "counter", "timestamp"):
            simulated_set = {attack for attack in TABLE2_ATTACKS
                             if simulated.mitigated(attack, feature)}
            assert simulated_set == checked[feature], feature

    def test_device_and_analytic_costs_agree_at_all_sizes(self):
        """The simulated device's measurement cycles must track the
        analytic model across memory sizes (not just at 512 KB)."""
        from repro.crypto import CryptoCostModel
        from repro.mcu import DeviceConfig, ROAM_HARDENED

        model = CryptoCostModel()
        for ram_kb in (8, 32, 128):
            device = Device(DeviceConfig(ram_size=ram_kb * 1024,
                                         flash_size=16 * 1024,
                                         app_size=2 * 1024))
            device.provision(b"K" * 16)
            device.boot(ROAM_HARDENED)
            attest = device.context("Code_Attest")
            before = device.cpu.cycle_count
            device.digest_writable_memory(attest)
            measured = device.cpu.cycle_count - before
            attested = sum(end - start
                           for start, end in device.attested_spans())
            analytic = model.sha1_cycles(attested)
            assert measured == analytic
