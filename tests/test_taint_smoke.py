"""Tier-1 wiring for ``scripts/taint_smoke.py``.

Runs the smoke script exactly as CI would (a subprocess with only
``PYTHONPATH=src``) so a regression in the taint analyzer, the policy
mechanics, the canary hunt, or the combined report schema fails the
suite, not just the nightly job.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "scripts" / "taint_smoke.py"
ENV = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}


def run_smoke(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, env=ENV)


class TestTaintSmokeScript:
    def test_default_gates_pass(self):
        proc = run_smoke()
        assert proc.returncode == 0, proc.stderr
        assert "taint-smoke: OK" in proc.stderr
        assert "canary agrees both ways" in proc.stderr

    def test_clean_fixture_fails_the_failure_mode_gate(self):
        """Sanity-check the gate actually gates: pointing the seeded-tree
        gate at a leak-free directory must exit 1 with a diagnostic."""
        proc = run_smoke("--fixture-root", "scripts")
        assert proc.returncode == 1
        assert "FAIL: failure mode" in proc.stderr
