"""The experiment CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (["table1"], ["table2"], ["table2", "--model-check"],
                     ["table3"], ["overhead"], ["roam", "--clock", "hw64"],
                     ["flood", "--rate", "1.0"],
                     ["attest", "--scheme", "hmac-sha1"],
                     ["metrics", "--rounds", "3"],
                     ["fleet-bench", "--size", "12", "--workers", "2",
                      "--json"]):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attest", "--scheme", "rot13"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "0.092" in out and "170.907" in out
        assert "754.032" in out   # 512 KB default

    def test_table1_custom_memory(self, capsys):
        assert main(["table1", "--ram-kb", "64"]) == 0
        assert "attestation of 64 KB" in capsys.readouterr().out

    def test_table2_model_check(self, capsys):
        assert main(["table2", "--model-check"]) == 0
        out = capsys.readouterr().out
        assert "delay, reorder, replay" in out

    def test_table2_model_check_strict(self, capsys):
        assert main(["table2", "--model-check", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "unrestricted adversary" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "5528" in out and "116" in out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "6038" in out and "5.76" in out

    def test_attest_round(self, capsys):
        assert main(["attest", "--ram-kb", "8"]) == 0
        out = capsys.readouterr().out
        assert "trusted=True" in out

    def test_flood_quick(self, capsys):
        assert main(["flood", "--rate", "0.2", "--duration", "10",
                     "--ram-kb", "8"]) == 0
        out = capsys.readouterr().out
        assert "ecdsa-secp160r1" in out

    def test_modelcheck_table(self, capsys):
        assert main(["modelcheck"]) == 0
        out = capsys.readouterr().out
        assert "timestamp+monotonic" in out
        # The monotonic row holds every property.
        row = [line for line in out.splitlines()
               if line.startswith("timestamp+monotonic")][0]
        assert "FAILS" not in row

    def test_swatt_topology(self, capsys):
        assert main(["swatt", "--trials", "3",
                     "--iterations", "2000"]) == 0
        out = capsys.readouterr().out
        assert "direct" in out and "wan" in out

    def test_report_aggregation(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "alpha.txt").write_text("table A\n")
        (results / "beta.txt").write_text("table B\n")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "## alpha" in out and "table B" in out

    def test_report_to_file(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "alpha.txt").write_text("table A\n")
        output = tmp_path / "report.md"
        assert main(["report", "--results-dir", str(results),
                     "--output", str(output)]) == 0
        assert "table A" in output.read_text()

    def test_report_missing_dir(self, tmp_path):
        assert main(["report", "--results-dir",
                     str(tmp_path / "nope")]) == 1

    def test_attest_json(self, capsys):
        import json
        assert main(["attest", "--ram-kb", "8", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["verdict"]["trusted"] is True
        assert summary["device"]["profile"] == "roam-hardened"
        assert summary["stats"]["accepted"] == 1
        assert 0 < summary["energy"]["consumed_mj"] < 100

    def test_metrics_to_stdout(self, capsys):
        import json
        assert main(["metrics", "--rounds", "1", "--ram-kb", "8"]) == 0
        captured = capsys.readouterr()
        assert "# OK: registry matches ProverStats" in captured.err
        # stdout carries trace JSONL followed by the registry dump.
        assert '"kind": "request-accepted"' in captured.out
        dump_start = captured.out.index('{\n  "metrics"')
        dump = json.loads(captured.out[dump_start:])
        assert dump["schema"] == "repro.obs.registry/v1"

    def test_fleet_bench_json(self, capsys, tmp_path):
        import json
        out = tmp_path / "BENCH_fleet.json"
        assert main(["fleet-bench", "--size", "8", "--ram-kb", "64",
                     "--sweeps", "1", "--workers", "2", "--json",
                     "--out", str(out)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.perf.fleet/v1"
        assert report["reports_identical"] is True
        assert report["equivalence"]["identical"] is True
        assert json.loads(out.read_text()) == report

    def test_metrics_to_files(self, tmp_path):
        import json

        from repro.obs import validate_jsonl_trace, validate_registry_dump
        trace = tmp_path / "trace.jsonl"
        registry = tmp_path / "registry.json"
        assert main(["metrics", "--rounds", "2", "--ram-kb", "8",
                     "--trace-out", str(trace),
                     "--registry-out", str(registry)]) == 0
        assert validate_jsonl_trace(trace.read_text()) == []
        assert validate_registry_dump(
            json.loads(registry.read_text())) == []


class TestMetricsSmokeScript:
    def test_smoke_script_passes(self, tmp_path):
        """The CI smoke script: run `repro metrics` on the quickstart
        scenario and validate both exports against the schemas."""
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[1]
        script = repo / "scripts" / "metrics_smoke.py"
        env_path = str(repo / "src")
        proc = subprocess.run(
            [sys.executable, str(script), "--ram-kb", "8",
             "--keep", str(tmp_path)],
            capture_output=True, text=True,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stderr
        assert "metrics-smoke: OK" in proc.stderr
        assert (tmp_path / "trace.jsonl").is_file()
        assert (tmp_path / "registry.json").is_file()
