"""Multi-hop path composition."""

import pytest

from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.net.path import (DIRECT_LINK, Hop, NetworkPath, campus_path,
                            wan_path)


class TestHop:
    def test_fixed_latency(self):
        hop = Hop("wire", 0.005)
        rng = DeterministicRng(b"h")
        assert hop.sample(rng) == 0.005

    def test_jitter_bounds(self):
        hop = Hop("radio", 0.005, 0.010)
        rng = DeterministicRng(b"h")
        samples = [hop.sample(rng) for _ in range(200)]
        assert all(0.005 <= s <= 0.015 for s in samples)
        assert max(samples) - min(samples) > 0.005

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Hop("bad", -0.001)
        with pytest.raises(ConfigurationError):
            Hop("bad", 0.001, -0.001)


class TestPath:
    def test_composition(self):
        path = NetworkPath([Hop("a", 0.001, 0.002), Hop("b", 0.003, 0.004)])
        assert path.base_latency_seconds == pytest.approx(0.004)
        assert path.jitter_span_seconds == pytest.approx(0.006)
        assert path.expected_latency_seconds == pytest.approx(0.007)
        assert len(path) == 2

    def test_sample_within_envelope(self):
        path = campus_path()
        rng = DeterministicRng(b"p")
        for _ in range(100):
            delay = path.sample(rng)
            assert path.base_latency_seconds <= delay <= \
                path.base_latency_seconds + path.jitter_span_seconds

    def test_round_trip_doubles(self):
        path = NetworkPath([Hop("a", 0.010)])
        rng = DeterministicRng(b"p")
        assert path.sample_round_trip(rng) == pytest.approx(0.020)

    def test_extended(self):
        longer = DIRECT_LINK.extended(Hop("relay", 0.005, 0.001))
        assert len(longer) == 2
        assert len(DIRECT_LINK) == 1   # original untouched

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkPath([])

    def test_describe(self):
        text = campus_path().describe()
        assert "gateway" in text and "ms" in text


class TestChannelIntegration:
    def test_channel_samples_path_latency(self):
        from repro.net.channel import DolevYaoChannel
        from repro.net.simulator import Simulation

        class Sink:
            def __init__(self, name):
                self.name = name
                self.times = []
                self.sim = None

            def deliver(self, message, sender):
                self.times.append(self.sim.now)

        sim = Simulation()
        channel = DolevYaoChannel(sim, path=campus_path(), seed="pc")
        a, b = Sink("a"), Sink("b")
        a.sim = b.sim = sim
        channel.attach(a)
        channel.attach(b)
        for _ in range(20):
            channel.send("a", "b", "ping")
        sim.run()
        path = campus_path()
        for t in b.times:
            assert path.base_latency_seconds <= t or True  # sends at t=0
        deliveries = sorted(b.times)
        assert deliveries[0] >= path.base_latency_seconds
        assert max(deliveries) - min(deliveries) > 0.001  # jitter visible

    def test_session_over_wan_path(self):
        """A full attestation round across the jittery WAN path: verdicts
        are latency-independent (contrast with the SWATT baseline)."""
        from repro.core import build_session
        from tests.conftest import tiny_config
        session = build_session(device_config=tiny_config(),
                                network_path=wan_path(),
                                seed="path-session")
        session.learn_reference_state()
        assert session.attest_once(settle_seconds=10.0).trusted


class TestPresets:
    def test_jitter_grows_with_distance(self):
        """The Section 2 story in numbers: each topology step multiplies
        the timing uncertainty a SWATT verifier must absorb."""
        assert DIRECT_LINK.jitter_span_seconds < \
            campus_path().jitter_span_seconds < \
            wan_path().jitter_span_seconds

    def test_direct_link_negligible(self):
        assert DIRECT_LINK.jitter_span_seconds < 0.0001

    def test_wan_jitter_dwarfs_swatt_overhead(self):
        """At 40k accesses the cheat overhead is 3.3 ms; the WAN path's
        jitter span is an order of magnitude beyond it."""
        overhead = 40_000 * 2 / 24_000_000
        assert wan_path().jitter_span_seconds > 10 * overhead
