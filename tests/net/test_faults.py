"""Fault models: composable lossy links with a determinism contract."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import build_session
from repro.core.messages import AttestationRequest
from repro.errors import ConfigurationError, NetworkError
from repro.net.channel import DolevYaoChannel, Verdict
from repro.net.faults import (BernoulliLoss, Duplicator, FaultPipeline,
                              GilbertElliottLoss, LatencyJitter, Reorderer)
from repro.net.simulator import Simulation
from tests.conftest import tiny_config


class Sink:
    def __init__(self, name):
        self.name = name
        self.received = []

    def deliver(self, message, sender):
        self.received.append((message, sender))


def wired_channel(adversary=None):
    sim = Simulation()
    channel = DolevYaoChannel(sim, adversary=adversary)
    a, b = Sink("a"), Sink("b")
    channel.attach(a)
    channel.attach(b)
    return sim, channel, a, b


def verdicts_for(model, count=64):
    """The model's decisions over a fixed message sequence."""
    return [model.on_message(f"m{i}", "a", "b", float(i))
            for i in range(count)]


class TestVerdictDuplicate:
    def test_duplicate_is_a_legal_action(self):
        verdict = Verdict("duplicate", duplicate_delay=0.5)
        assert verdict.action == "duplicate"

    def test_negative_duplicate_delay_rejected(self):
        with pytest.raises(NetworkError):
            Verdict("duplicate", duplicate_delay=-0.1)

    def test_unknown_action_still_rejected(self):
        with pytest.raises(NetworkError):
            Verdict("teleport")


class DuplicateEverything:
    def __init__(self, duplicate_delay=0.0):
        self.duplicate_delay = duplicate_delay

    def on_message(self, message, sender, receiver, time):
        return Verdict("duplicate", duplicate_delay=self.duplicate_delay)


class TestChannelDuplicate:
    def test_both_copies_delivered(self):
        sim, channel, a, b = wired_channel(DuplicateEverything())
        channel.send("a", "b", "payload")
        sim.run()
        assert [m for m, _ in b.received] == ["payload", "payload"]
        assert channel.duplicated == 1
        assert channel.delivered == 2

    def test_transcript_records_both_copies(self):
        sim, channel, a, b = wired_channel(DuplicateEverything())
        channel.send("a", "b", "payload")
        sim.run()
        outcomes = [entry.outcome for entry in channel.transcript]
        assert outcomes == ["forwarded", "duplicated"]

    def test_delayed_duplicate_arrives_later(self):
        sim, channel, a, b = wired_channel(DuplicateEverything(
            duplicate_delay=2.0))
        channel.send("a", "b", "payload")
        sim.run(until=1.0)
        assert len(b.received) == 1
        sim.run()
        assert len(b.received) == 2

    def test_duplicated_request_rejected_by_freshness(self):
        """Regression: a duplicate of a genuine request is a replay.

        The prover accepts the first copy, measures, and must reject the
        second under any freshness policy -- here the default counter
        policy flags it stale.
        """

        class DuplicateRequests:
            def on_message(self, message, sender, receiver, time):
                if isinstance(message, AttestationRequest):
                    return Verdict("duplicate", duplicate_delay=0.5)
                return Verdict("forward")

        session = build_session(device_config=tiny_config(),
                                adversary=DuplicateRequests(),
                                seed="dup-replay")
        session.learn_reference_state()
        result = session.attest_once(settle_seconds=10.0)
        assert result.trusted
        stats = session.anchor.stats
        assert stats.received == 2
        assert stats.accepted == 1
        assert stats.rejected == {"stale-counter": 1}

    def test_duplicated_nonce_request_rejected_too(self):
        class DuplicateRequests:
            def on_message(self, message, sender, receiver, time):
                if isinstance(message, AttestationRequest):
                    return Verdict("duplicate")
                return Verdict("forward")

        session = build_session(device_config=tiny_config(),
                                policy_name="nonce",
                                adversary=DuplicateRequests(),
                                seed="dup-replay-nonce")
        session.learn_reference_state()
        assert session.attest_once(settle_seconds=10.0).trusted
        assert session.anchor.stats.rejected == {"replayed-nonce": 1}


class TestFaultModels:
    def test_bernoulli_rate_zero_never_drops(self):
        assert all(v.action == "forward"
                   for v in verdicts_for(BernoulliLoss(0.0, seed="s")))

    def test_bernoulli_rate_one_always_drops(self):
        assert all(v.action == "drop"
                   for v in verdicts_for(BernoulliLoss(1.0, seed="s")))

    def test_bernoulli_mid_rate_drops_some(self):
        actions = {v.action for v in verdicts_for(BernoulliLoss(0.3, seed="s"),
                                                  count=200)}
        assert actions == {"forward", "drop"}

    def test_bernoulli_validates_rate(self):
        with pytest.raises(ConfigurationError):
            BernoulliLoss(1.5)

    def test_gilbert_elliott_bursts(self):
        model = GilbertElliottLoss(p_enter_burst=0.2, p_exit_burst=0.2,
                                   seed="burst")
        drops = [v.action == "drop" for v in verdicts_for(model, count=400)]
        assert any(drops) and not all(drops)
        # Bursty: at least one run of consecutive drops longer than 1.
        runs, current = [], 0
        for dropped in drops:
            current = current + 1 if dropped else 0
            runs.append(current)
        assert max(runs) > 1

    def test_jitter_bounded(self):
        model = LatencyJitter(0.25, seed="jitter")
        for verdict in verdicts_for(model):
            assert verdict.action == "forward"
            assert 0.0 <= verdict.extra_delay < 0.25

    def test_duplicator_carries_delay(self):
        model = Duplicator(1.0, duplicate_delay_seconds=0.7, seed="dup")
        verdict = model.on_message("m", "a", "b", 0.0)
        assert verdict.action == "duplicate"
        assert verdict.duplicate_delay == 0.7

    def test_reorderer_holds_some(self):
        model = Reorderer(0.5, hold_seconds=0.1, seed="reorder")
        delays = {v.extra_delay for v in verdicts_for(model, count=100)}
        assert delays == {0.0, 0.1}

    def test_reorder_overtaking_end_to_end(self):
        class HoldFirst:
            def __init__(self):
                self.first = True

            def on_message(self, message, sender, receiver, time):
                if self.first:
                    self.first = False
                    return Verdict("forward", extra_delay=1.0)
                return Verdict("forward")

        sim, channel, a, b = wired_channel(HoldFirst())
        channel.send("a", "b", "first")
        channel.send("a", "b", "second")
        sim.run()
        assert [m for m, _ in b.received] == ["second", "first"]


class TestFaultPipeline:
    def test_needs_a_model(self):
        with pytest.raises(ConfigurationError):
            FaultPipeline()

    def test_drop_wins(self):
        pipeline = FaultPipeline(LatencyJitter(0.1, seed="s"),
                                 BernoulliLoss(1.0, seed="s"),
                                 Duplicator(1.0, seed="s"))
        assert pipeline.on_message("m", "a", "b", 0.0).action == "drop"

    def test_delays_add(self):
        pipeline = FaultPipeline(Reorderer(1.0, hold_seconds=0.2, seed="s"),
                                 Reorderer(1.0, hold_seconds=0.3, seed="t"))
        verdict = pipeline.on_message("m", "a", "b", 0.0)
        assert verdict.extra_delay == pytest.approx(0.5)

    def test_duplicate_merges_with_delay(self):
        pipeline = FaultPipeline(Duplicator(1.0, duplicate_delay_seconds=0.4,
                                            seed="s"),
                                 Reorderer(1.0, hold_seconds=0.2, seed="t"))
        verdict = pipeline.on_message("m", "a", "b", 0.0)
        assert verdict.action == "duplicate"
        assert verdict.duplicate_delay == 0.4
        assert verdict.extra_delay == pytest.approx(0.2)

    def test_all_models_consulted_after_drop(self):
        """A drop early in the pipeline must not starve later models'
        random streams -- composition order never changes a model's
        schedule."""
        solo = [v.action for v in verdicts_for(BernoulliLoss(0.5, seed="x"),
                                               count=50)]
        piped = FaultPipeline(BernoulliLoss(1.0, seed="dropper"),
                              BernoulliLoss(0.5, seed="x"))
        for i in range(50):
            piped.on_message(f"m{i}", "a", "b", float(i))
        replay = [v.action for v in verdicts_for(BernoulliLoss(0.5, seed="x"),
                                                 count=50)]
        assert solo == replay  # the solo model is deterministic...
        # ...and the piped copy consumed its stream at the same pace:
        fresh = BernoulliLoss(0.5, seed="x")
        pipeline = FaultPipeline(BernoulliLoss(1.0, seed="dropper"), fresh)
        pipeline.on_message("m", "a", "b", 0.0)
        follow_up = fresh.on_message("m2", "a", "b", 1.0)
        reference = BernoulliLoss(0.5, seed="x")
        reference.on_message("m", "a", "b", 0.0)
        assert follow_up.action == reference.on_message("m2", "a", "b",
                                                        1.0).action


def _verdict_key(verdict):
    return (verdict.action, verdict.extra_delay, verdict.duplicate_delay)


_MODEL_BUILDERS = {
    "bernoulli": lambda p, seed: BernoulliLoss(p, seed=seed),
    "gilbert": lambda p, seed: GilbertElliottLoss(
        p_enter_burst=p, p_exit_burst=0.5, seed=seed),
    "jitter": lambda p, seed: LatencyJitter(p, seed=seed),
    "duplicator": lambda p, seed: Duplicator(
        p, duplicate_delay_seconds=0.1, seed=seed),
    "reorderer": lambda p, seed: Reorderer(p, hold_seconds=0.05, seed=seed),
}


class TestDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(names=st.lists(st.sampled_from(sorted(_MODEL_BUILDERS)),
                          min_size=1, max_size=4),
           p=st.floats(min_value=0.0, max_value=1.0),
           seed=st.text(alphabet="abc123", min_size=1, max_size=6))
    def test_any_composition_is_deterministic(self, names, p, seed):
        """Same seed, same messages => byte-identical fault schedule."""

        def build():
            return FaultPipeline(*[
                _MODEL_BUILDERS[name](p, f"{seed}:{i}")
                for i, name in enumerate(names)])

        first = [_verdict_key(v) for v in verdicts_for(build(), count=40)]
        second = [_verdict_key(v) for v in verdicts_for(build(), count=40)]
        assert first == second

    @settings(max_examples=15, deadline=None)
    @given(p=st.floats(min_value=0.05, max_value=0.95),
           seed=st.text(alphabet="xyz", min_size=1, max_size=4))
    def test_substreams_are_independent(self, p, seed):
        """A sibling model in the pipeline never shifts this model's
        drop schedule (each model draws from its own substream)."""
        lone = [v.action for v in
                verdicts_for(BernoulliLoss(p, seed=seed), count=30)]
        pipeline = FaultPipeline(LatencyJitter(0.5, seed=seed + "-other"),
                                 BernoulliLoss(p, seed=seed))
        piped = [pipeline.on_message(f"m{i}", "a", "b", float(i)).action
                 for i in range(30)]
        assert lone == piped  # jitter never drops, so actions must match
