"""Discrete-event kernel: ordering, time, run limits."""

import pytest

from repro.errors import SimulationError
from repro.net.simulator import Simulation


class TestScheduling:
    def test_time_order(self):
        sim = Simulation()
        fired = []
        sim.schedule(2.0, lambda: fired.append("late"))
        sim.schedule(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]
        assert sim.now == 2.0

    def test_fifo_tie_break(self):
        sim = Simulation()
        fired = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulation().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        sim.run()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_events_can_schedule_events(self):
        sim = Simulation()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_leaves_future_events(self):
        sim = Simulation()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_with_empty_queue(self):
        sim = Simulation()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_step(self):
        sim = Simulation()
        assert not sim.step()
        sim.schedule(1.0, lambda: None)
        assert sim.step()
        assert sim.events_processed == 1

    def test_runaway_guard(self):
        sim = Simulation()

        def loop():
            sim.schedule(0.001, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_reentrant_run_rejected(self):
        sim = Simulation()
        caught = []

        def evil():
            try:
                sim.run()
            except SimulationError:
                caught.append(True)

        sim.schedule(0.0, evil)
        sim.run()
        assert caught == [True]
