"""Dolev-Yao channel: delivery, adversary verdicts, injection, transcripts."""

import pytest

from repro.errors import NetworkError
from repro.net.channel import DolevYaoChannel, PassthroughAdversary, Verdict
from repro.net.simulator import Simulation


class Sink:
    def __init__(self, name):
        self.name = name
        self.received = []

    def deliver(self, message, sender):
        self.received.append((message, sender))


def make_channel(adversary=None, latency=0.01):
    sim = Simulation()
    channel = DolevYaoChannel(sim, latency_seconds=latency,
                              adversary=adversary)
    a, b = Sink("a"), Sink("b")
    channel.attach(a)
    channel.attach(b)
    return sim, channel, a, b


class TestHonestDelivery:
    def test_send_delivers_after_latency(self):
        sim, channel, a, b = make_channel()
        channel.send("a", "b", "hello")
        assert b.received == []
        sim.run()
        assert b.received == [("hello", "a")]
        assert sim.now == pytest.approx(0.01)

    def test_counters(self):
        sim, channel, a, b = make_channel()
        channel.send("a", "b", "x")
        sim.run()
        assert channel.delivered == 1
        assert channel.dropped == 0

    def test_unknown_receiver(self):
        sim, channel, a, b = make_channel()
        with pytest.raises(NetworkError):
            channel.send("a", "ghost", "x")

    def test_duplicate_attach(self):
        sim, channel, a, b = make_channel()
        with pytest.raises(NetworkError):
            channel.attach(Sink("a"))

    def test_negative_latency(self):
        with pytest.raises(NetworkError):
            DolevYaoChannel(Simulation(), latency_seconds=-1)


class TestAdversaryVerdicts:
    def test_drop(self):
        class Dropper:
            def on_message(self, message, sender, receiver, time):
                return Verdict("drop")

        sim, channel, a, b = make_channel(Dropper())
        entry = channel.send("a", "b", "secret")
        sim.run()
        assert b.received == []
        assert channel.dropped == 1
        assert entry.outcome == "dropped"

    def test_delay(self):
        class Delayer:
            def on_message(self, message, sender, receiver, time):
                return Verdict("forward", extra_delay=1.0)

        sim, channel, a, b = make_channel(Delayer())
        entry = channel.send("a", "b", "msg")
        sim.run()
        assert sim.now == pytest.approx(1.01)
        assert entry.outcome == "delayed"
        assert b.received == [("msg", "a")]

    def test_invalid_verdict(self):
        with pytest.raises(NetworkError):
            Verdict("teleport")
        with pytest.raises(NetworkError):
            Verdict("forward", extra_delay=-1)

    def test_passthrough_default(self):
        verdict = PassthroughAdversary().on_message("m", "a", "b", 0.0)
        assert verdict.action == "forward"
        assert verdict.extra_delay == 0.0


class TestInjection:
    def test_inject_spoofed(self):
        sim, channel, a, b = make_channel()
        channel.inject("b", "forged", spoofed_sender="a", delay=0.5)
        sim.run()
        assert b.received == [("forged", "a")]
        assert channel.injected == 1

    def test_injected_not_revetted_by_adversary(self):
        calls = []

        class Spy:
            def on_message(self, message, sender, receiver, time):
                calls.append(message)
                return Verdict("forward")

        sim, channel, a, b = make_channel(Spy())
        channel.inject("b", "forged", spoofed_sender="a")
        sim.run()
        assert calls == []

    def test_inject_unknown_receiver(self):
        sim, channel, a, b = make_channel()
        with pytest.raises(NetworkError):
            channel.inject("ghost", "x", spoofed_sender="a")


class TestTranscript:
    def test_eavesdropping_records_everything(self):
        class Dropper:
            def on_message(self, message, sender, receiver, time):
                return Verdict("drop")

        sim, channel, a, b = make_channel(Dropper())
        channel.send("a", "b", "dropped-but-seen")
        assert len(channel.transcript) == 1
        assert channel.transcript[0].message == "dropped-but-seen"

    def test_injection_flagged(self):
        sim, channel, a, b = make_channel()
        channel.inject("b", "x", spoofed_sender="a")
        assert channel.transcript[0].outcome == "injected"

    def test_filters(self):
        sim, channel, a, b = make_channel()
        channel.send("a", "b", "to-b")
        channel.send("b", "a", "to-a")
        to_b = channel.transcript.to_receiver("b")
        assert len(to_b) == 1
        assert to_b[0].message == "to-b"
        assert channel.transcript.last_to("a").message == "to-a"
        assert channel.transcript.last_to("ghost") is None
