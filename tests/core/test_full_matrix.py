"""Every auth scheme x freshness policy combination, end to end."""

import pytest

from repro.core import build_session
from tests.conftest import tiny_config

SCHEMES = ["none", "speck-64/128-cbc-mac", "aes-128-cbc-mac", "hmac-sha1"]
POLICIES = ["none", "nonce", "counter", "timestamp"]


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("policy", POLICIES)
class TestConfigurationMatrix:
    def test_two_rounds_trusted(self, scheme, policy):
        session = build_session(auth_scheme=scheme, policy_name=policy,
                                device_config=tiny_config(),
                                seed=f"matrix-{scheme}-{policy}")
        session.learn_reference_state()
        first = session.attest_once()
        assert first.trusted, f"{scheme}/{policy}: {first.detail}"
        session.sim.run(until=session.sim.now + 3.0)
        second = session.attest_once()
        assert second.trusted, f"{scheme}/{policy}: {second.detail}"
        assert session.anchor.stats.accepted == 2
        assert session.anchor.stats.rejected_total == 0


class TestMatrixReplayDefence:
    """Replay resistance per policy, same attack applied uniformly."""

    @pytest.mark.parametrize("policy,expect_replay_accepted", [
        ("none", True),
        ("nonce", False),
        ("counter", False),
        ("timestamp", False),   # replay after the window
    ])
    def test_replay_after_window(self, policy, expect_replay_accepted):
        from repro.attacks.external import ReplayAttacker
        session = build_session(auth_scheme="hmac-sha1", policy_name=policy,
                                device_config=tiny_config(),
                                timestamp_window_seconds=1.0,
                                seed=f"matrix-replay-{policy}")
        session.attest_once()
        accepted_before = session.anchor.stats.accepted
        attacker = ReplayAttacker(session.channel, session.sim)
        attacker.replay_latest(delay=3.0)
        session.sim.run(until=session.sim.now + 10.0)
        replay_accepted = session.anchor.stats.accepted > accepted_before
        assert replay_accepted == expect_replay_accepted


class TestEcdsaEndToEnd:
    def test_ecdsa_with_counter(self):
        session = build_session(auth_scheme="ecdsa-secp160r1",
                                policy_name="counter",
                                device_config=tiny_config(),
                                seed="matrix-ecdsa")
        session.learn_reference_state()
        assert session.attest_once(settle_seconds=10.0).trusted
        # The validation cost alone dwarfs symmetric schemes.
        validation_ms = session.anchor.stats.validation_cycles / 24_000
        assert validation_ms > 150
