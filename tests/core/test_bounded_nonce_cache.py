"""Bounded nonce caches: why the paper rejects truncated histories."""

import pytest

from repro.core.freshness import (InMemoryStateView, NonceHistoryPolicy,
                                  VerifierFreshnessState)
from repro.core.messages import AttestationRequest
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError


def request(nonce):
    return AttestationRequest(challenge=b"c" * 16, nonce=nonce)


def vstate():
    return VerifierFreshnessState(rng=DeterministicRng(b"bn"))


class TestBoundedCache:
    def test_within_capacity_behaves_like_full_history(self):
        policy = NonceHistoryPolicy(max_entries=4)
        view = InMemoryStateView()
        nonces = [bytes([i]) * 16 for i in range(3)]
        for nonce in nonces:
            ok, _ = policy.check(request(nonce), view)
            assert ok
            policy.commit(request(nonce), view)
        for nonce in nonces:
            assert policy.check(request(nonce), view) == \
                (False, "replayed-nonce")

    def test_eviction_reopens_the_replay_window(self):
        """The attack the bound invites: wait out the cache, replay."""
        policy = NonceHistoryPolicy(max_entries=2)
        view = InMemoryStateView()
        old = bytes(16)
        policy.commit(request(old), view)
        # Two more genuine requests evict the old nonce...
        for i in range(1, 3):
            policy.commit(request(bytes([i]) * 16), view)
        # ...and its replay is accepted again.
        ok, _ = policy.check(request(old), view)
        assert ok

    def test_memory_stays_bounded(self):
        policy = NonceHistoryPolicy(nonce_size=16, max_entries=8)
        view = InMemoryStateView()
        for i in range(100):
            policy.commit(request(i.to_bytes(16, "big")), view)
        assert policy.prover_state_bytes(view) == 8 * 16

    def test_unbounded_default_never_evicts(self):
        policy = NonceHistoryPolicy()
        view = InMemoryStateView()
        for i in range(50):
            policy.commit(request(i.to_bytes(16, "big")), view)
        assert policy.check(request(bytes(16)), view) == \
            (False, "replayed-nonce")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NonceHistoryPolicy(max_entries=0)

    def test_device_state_view_supports_eviction(self, session_factory):
        session = session_factory(policy_name="nonce")
        view = session.anchor.state
        view.remember_nonce(b"n" * 16)
        view.forget_nonce(b"n" * 16)
        assert not view.nonce_seen(b"n" * 16)
        view.forget_nonce(b"absent-nonce!!!!")   # idempotent


class TestModelCheckedEviction:
    def test_bounded_cache_fails_replay_safety(self):
        """Exhaustive checking finds the eviction replay automatically.

        A 1-slot cache over 3 genuine requests: the schedule 'deliver 0,
        deliver 1 (evicts 0), redeliver 0' violates no-double-acceptance.
        """
        from repro.core import modelcheck

        original = modelcheck.make_policy

        def patched(name, **kwargs):
            if name == "nonce":
                return NonceHistoryPolicy(max_entries=1)
            return original(name, **kwargs)

        modelcheck.make_policy = patched
        try:
            result = modelcheck.check_policy("nonce")
        finally:
            modelcheck.make_policy = original
        assert "no-double-acceptance" in result.fails
