"""Freshness policies against an in-memory state view."""

import pytest

from repro.core.freshness import (CounterPolicy, InMemoryStateView,
                                  NoFreshness, NonceHistoryPolicy,
                                  TimestampPolicy, VerifierFreshnessState,
                                  make_policy)
from repro.core.messages import AttestationRequest
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError


def vstate(clock=None):
    return VerifierFreshnessState(rng=DeterministicRng(b"t"),
                                  clock_ticks=clock)


def request(**fields):
    return AttestationRequest(challenge=b"c" * 16, **fields)


class TestNoFreshness:
    def test_accepts_everything(self):
        policy = NoFreshness()
        view = InMemoryStateView()
        ok, reason = policy.check(request(), view)
        assert ok and reason == "ok"
        assert policy.stamp(vstate()) == {}


class TestCounterPolicy:
    def test_stamp_increments(self):
        policy = CounterPolicy()
        state = vstate()
        assert policy.stamp(state) == {"counter": 1}
        assert policy.stamp(state) == {"counter": 2}

    def test_fresh_counter_accepted_and_committed(self):
        policy = CounterPolicy()
        view = InMemoryStateView()
        req = request(counter=5)
        assert policy.check(req, view) == (True, "ok")
        policy.commit(req, view)
        assert view.get_counter() == 5

    def test_stale_counter_rejected(self):
        policy = CounterPolicy()
        view = InMemoryStateView(counter=5)
        assert policy.check(request(counter=5), view) == \
            (False, "stale-counter")
        assert policy.check(request(counter=4), view) == \
            (False, "stale-counter")

    def test_missing_counter_rejected(self):
        ok, reason = CounterPolicy().check(request(), InMemoryStateView())
        assert not ok and reason == "missing-counter"

    def test_state_is_one_word(self):
        assert CounterPolicy().prover_state_bytes(InMemoryStateView()) == 8


class TestNoncePolicy:
    def test_stamp_draws_unique_nonces(self):
        policy = NonceHistoryPolicy()
        state = vstate()
        n1 = policy.stamp(state)["nonce"]
        n2 = policy.stamp(state)["nonce"]
        assert n1 != n2
        assert len(n1) == 16

    def test_replay_detected(self):
        policy = NonceHistoryPolicy()
        view = InMemoryStateView()
        req = request(nonce=b"n" * 16)
        assert policy.check(req, view)[0]
        policy.commit(req, view)
        assert policy.check(req, view) == (False, "replayed-nonce")

    def test_missing_nonce(self):
        ok, reason = NonceHistoryPolicy().check(request(),
                                                InMemoryStateView())
        assert reason == "missing-nonce"

    def test_memory_grows_without_bound(self):
        """Section 4.2's objection, measurable."""
        policy = NonceHistoryPolicy(nonce_size=16)
        view = InMemoryStateView()
        for i in range(100):
            req = request(nonce=i.to_bytes(16, "big"))
            policy.commit(req, view)
        assert policy.prover_state_bytes(view) == 1600

    def test_small_nonce_rejected(self):
        with pytest.raises(ConfigurationError):
            NonceHistoryPolicy(nonce_size=4)


class TestTimestampPolicy:
    def test_stamp_uses_clock(self):
        policy = TimestampPolicy(window_ticks=100)
        assert policy.stamp(vstate(clock=lambda: 12345)) == \
            {"timestamp_ticks": 12345}

    def test_stamp_without_clock_fails(self):
        with pytest.raises(ConfigurationError):
            TimestampPolicy(window_ticks=10).stamp(vstate())

    def test_window_acceptance(self):
        policy = TimestampPolicy(window_ticks=100)
        view = InMemoryStateView(clock=1000)
        assert policy.check(request(timestamp_ticks=950), view)[0]
        assert policy.check(request(timestamp_ticks=1100), view)[0]
        assert policy.check(request(timestamp_ticks=899), view) == \
            (False, "stale-timestamp")
        assert policy.check(request(timestamp_ticks=1101), view) == \
            (False, "stale-timestamp")

    def test_missing_fields(self):
        policy = TimestampPolicy(window_ticks=10)
        assert policy.check(request(), InMemoryStateView(clock=0))[1] == \
            "missing-timestamp"
        assert policy.check(request(timestamp_ticks=5),
                            InMemoryStateView())[1] == "no-prover-clock"

    def test_paper_mode_is_stateless(self):
        policy = TimestampPolicy(window_ticks=100)
        view = InMemoryStateView(clock=1000)
        req = request(timestamp_ticks=1000)
        policy.commit(req, view)
        assert view.get_counter() == 0
        assert policy.prover_state_bytes(view) == 0
        # Within-window replay is accepted in the paper's scheme; the
        # inter-spacing assumption is what rules it out in practice.
        assert policy.check(req, view)[0]

    def test_monotonic_extension_blocks_window_replay(self):
        policy = TimestampPolicy(window_ticks=100, monotonic=True)
        view = InMemoryStateView(clock=1000)
        req = request(timestamp_ticks=1000)
        assert policy.check(req, view)[0]
        policy.commit(req, view)
        assert policy.check(req, view) == \
            (False, "non-monotonic-timestamp")
        assert policy.prover_state_bytes(view) == 8

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            TimestampPolicy(window_ticks=0)


class TestFactory:
    def test_all_names(self):
        assert isinstance(make_policy("none"), NoFreshness)
        assert isinstance(make_policy("nonce"), NonceHistoryPolicy)
        assert isinstance(make_policy("counter"), CounterPolicy)
        ts = make_policy("timestamp", window_ticks=10)
        assert isinstance(ts, TimestampPolicy)
        assert not ts.monotonic

    def test_monotonic_flag(self):
        ts = make_policy("timestamp", window_ticks=10,
                         monotonic_timestamps=True)
        assert ts.monotonic

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_policy("entropy")

    def test_expected_mitigations_match_table2(self):
        assert make_policy("nonce").expected_mitigations == {"replay"}
        assert make_policy("counter").expected_mitigations == \
            {"replay", "reorder"}
        assert make_policy("timestamp", window_ticks=1).expected_mitigations \
            == {"replay", "reorder", "delay"}
