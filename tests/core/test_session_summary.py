"""Session summaries and long-run (soak) consistency."""

import json


class TestSummary:
    def test_structure(self, session_factory):
        session = session_factory(auth_scheme="hmac-sha1",
                                  policy_name="counter")
        session.learn_reference_state()
        session.attest_once()
        summary = session.summary()
        assert summary["device"]["profile"] == "roam-hardened"
        assert summary["device"]["clock_kind"] == "hw64"
        assert summary["protocol"]["auth_scheme"] == "hmac-sha1"
        assert summary["protocol"]["freshness_policy"] == "counter"
        assert summary["stats"]["accepted"] == 1
        assert summary["stats"]["attestation_ms"] > 10
        assert 0 < summary["energy"]["consumed_mj"] < 100
        assert summary["time"]["simulated_seconds"] > 0

    def test_json_serialisable(self, session_factory):
        session = session_factory()
        session.attest_once()
        text = json.dumps(session.summary())
        assert json.loads(text)["stats"]["accepted"] == 1

    def test_rejections_appear(self, session_factory):
        from repro.attacks.external import ReplayAttacker
        session = session_factory(policy_name="counter")
        session.attest_once()
        attacker = ReplayAttacker(session.channel, session.sim)
        attacker.replay_latest(delay=3.0)
        session.sim.run(until=session.sim.now + 10.0)
        summary = session.summary()
        assert summary["stats"]["rejected"] == {"stale-counter": 1}


class TestSoak:
    """Long-run consistency: many rounds, invariants intact throughout."""

    ROUNDS = 25

    def test_soak_counter_session(self, session_factory):
        session = session_factory(policy_name="counter")
        session.learn_reference_state()
        energies = []
        for round_index in range(self.ROUNDS):
            result = session.attest_once(settle_seconds=3.0)
            assert result.trusted, f"round {round_index} failed"
            session.device.sync_energy()
            energies.append(session.device.battery.consumed_mj)
        stats = session.anchor.stats
        assert stats.accepted == self.ROUNDS
        assert stats.rejected_total == 0
        # Energy strictly increases and per-round cost is stable.
        assert all(b > a for a, b in zip(energies, energies[1:]))
        deltas = [b - a for a, b in zip(energies, energies[1:])]
        assert max(deltas) < 2.5 * min(deltas)
        # Counter on the device matches the number of accepted rounds.
        attest = session.device.context("Code_Attest")
        assert session.device.read_counter(attest) == self.ROUNDS
        # Busy intervals are disjoint and ordered.
        intervals = session.anchor.busy_intervals
        for (a_start, a_end), (b_start, b_end) in zip(intervals,
                                                      intervals[1:]):
            assert a_end <= b_start

    def test_soak_timestamp_session(self, session_factory):
        session = session_factory(policy_name="timestamp")
        session.learn_reference_state()
        for _ in range(10):
            session.sim.run(until=session.sim.now + 2.0)
            assert session.attest_once(settle_seconds=3.0).trusted

    def test_soak_device_clock_never_regresses(self, session_factory):
        session = session_factory(clock_kind="sw", policy_name="timestamp")
        attest = session.device.context("Code_Attest")
        last = 0
        for _ in range(10):
            session.attest_once(settle_seconds=2.0)
            now = session.device.read_clock_ticks(attest)
            assert now >= last
            last = now
