"""Wire formats: determinism, field coverage, tag binding."""

import pytest

from repro.core.messages import AttestationRequest, AttestationResponse
from repro.errors import ProtocolError


class TestRequest:
    def test_signed_payload_deterministic(self):
        a = AttestationRequest(challenge=b"c" * 16, counter=5)
        b = AttestationRequest(challenge=b"c" * 16, counter=5)
        assert a.signed_payload() == b.signed_payload()

    def test_payload_covers_every_field(self):
        base = AttestationRequest(challenge=b"c" * 16, counter=5,
                                  timestamp_ticks=100, nonce=b"n" * 8)
        variants = [
            AttestationRequest(challenge=b"d" * 16, counter=5,
                               timestamp_ticks=100, nonce=b"n" * 8),
            AttestationRequest(challenge=b"c" * 16, counter=6,
                               timestamp_ticks=100, nonce=b"n" * 8),
            AttestationRequest(challenge=b"c" * 16, counter=5,
                               timestamp_ticks=101, nonce=b"n" * 8),
            AttestationRequest(challenge=b"c" * 16, counter=5,
                               timestamp_ticks=100, nonce=b"m" * 8),
            AttestationRequest(challenge=b"c" * 16, counter=5,
                               timestamp_ticks=100, nonce=b"n" * 8,
                               auth_scheme="hmac-sha1"),
        ]
        for variant in variants:
            assert variant.signed_payload() != base.signed_payload()

    def test_absent_fields_encode_distinctly(self):
        with_counter = AttestationRequest(challenge=b"c", counter=0)
        without = AttestationRequest(challenge=b"c")
        assert with_counter.signed_payload() != without.signed_payload()

    def test_tag_not_in_signed_payload(self):
        request = AttestationRequest(challenge=b"c")
        assert request.signed_payload() == \
            request.with_tag(b"tag").signed_payload()

    def test_with_tag_preserves_fields(self):
        request = AttestationRequest(challenge=b"c", counter=9,
                                     auth_scheme="hmac-sha1")
        tagged = request.with_tag(b"T" * 20)
        assert tagged.counter == 9
        assert tagged.auth_tag == b"T" * 20
        assert tagged.auth_scheme == "hmac-sha1"

    def test_to_bytes_includes_tag(self):
        request = AttestationRequest(challenge=b"c").with_tag(b"T" * 20)
        assert request.to_bytes().endswith(b"T" * 20)

    def test_validation(self):
        with pytest.raises(ProtocolError):
            AttestationRequest(challenge=b"c", counter=-1)
        with pytest.raises(ProtocolError):
            AttestationRequest(challenge=b"x" * 70_000)
        with pytest.raises(ProtocolError):
            AttestationRequest(challenge=b"c", nonce=b"n" * 300)

    def test_describe(self):
        text = AttestationRequest(challenge=b"c" * 16, counter=5).describe()
        assert "counter=5" in text
        assert "attreq" in text


class TestResponse:
    def test_tagged_payload_covers_fields(self):
        base = AttestationResponse(challenge=b"c", measurement=b"m" * 20,
                                   request_counter=1)
        variants = [
            AttestationResponse(challenge=b"d", measurement=b"m" * 20,
                                request_counter=1),
            AttestationResponse(challenge=b"c", measurement=b"x" * 20,
                                request_counter=1),
            AttestationResponse(challenge=b"c", measurement=b"m" * 20,
                                request_counter=2),
            AttestationResponse(challenge=b"c", measurement=b"m" * 20,
                                request_counter=1, request_timestamp=7),
        ]
        for variant in variants:
            assert variant.tagged_payload() != base.tagged_payload()

    def test_tag_excluded_from_tagged_payload(self):
        response = AttestationResponse(challenge=b"c", measurement=b"m" * 20)
        assert response.tagged_payload() == \
            response.with_tag(b"t").tagged_payload()

    def test_with_tag(self):
        response = AttestationResponse(challenge=b"c", measurement=b"m" * 20)
        assert response.with_tag(b"T").tag == b"T"

    def test_to_bytes_roundtrip_fields(self):
        response = AttestationResponse(challenge=b"c", measurement=b"m" * 20,
                                       tag=b"T" * 20)
        raw = response.to_bytes()
        assert b"m" * 20 in raw
        assert raw.endswith(b"T" * 20)
