"""Satellite guarantee of the fast measurement engine: a full protocol
run under any fast engine is observably identical to the naive seed.

"Observably" means everything that leaves the simulation: response MACs
and measurements, the verifier verdict, consumed *simulated* cycles,
prover stats, and the full telemetry registry dump.  Host wall-clock is
the only thing allowed to differ.
"""

import json
import subprocess
import sys

import pytest

from repro import fastpath
from repro.core import build_session
from repro.crypto.hmac import clear_hmac_midstate_cache
from repro.obs import Telemetry

from ..conftest import tiny_config


def run_scenario(engine: str, rounds: int = 2) -> dict:
    """One seeded attestation scenario; returns every observable."""
    with fastpath.forced(engine):
        clear_hmac_midstate_cache()
        telemetry = Telemetry()
        session = build_session(device_config=tiny_config(),
                                telemetry=telemetry,
                                seed="fastpath-equivalence")
        reference = session.learn_reference_state()
        verdicts = []
        for _ in range(rounds):
            verdicts.append(session.attest_once().trusted)
        request = session.verifier.make_request()
        response, reason = session.anchor.handle_request(request)
        stats = session.anchor.stats
        return {
            "reference": reference.hex(),
            "verdicts": verdicts,
            "reason": reason,
            "measurement": response.measurement.hex(),
            "mac": response.tag.hex(),
            "cycles": session.device.cpu.cycle_count,
            "stats": (stats.received, stats.accepted,
                      dict(stats.rejected), stats.validation_cycles,
                      stats.attestation_cycles),
            "registry": json.dumps(telemetry.registry.dump(),
                                   sort_keys=True),
        }


@pytest.mark.parametrize("engine", ["pure", "accel"])
def test_fast_engines_observably_identical_to_naive(engine):
    baseline = run_scenario("naive")
    candidate = run_scenario(engine)
    assert candidate == baseline
    # And the run actually attested successfully -- equality of two
    # broken runs would prove nothing.
    assert baseline["verdicts"] == [True, True]
    assert baseline["reason"] == "ok"


def test_env_flag_disables_fast_path_at_import():
    """``REPRO_FAST_PATH=0`` must select the naive engine in a fresh
    interpreter (the documented off switch)."""
    code = ("import repro.fastpath as f; "
            "print(f.engine(), f.is_fast())")
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        env={"PYTHONPATH": "src", "REPRO_FAST_PATH": "0"},
        cwd=__import__("pathlib").Path(__file__).parents[2],
        check=True).stdout.split()
    assert out == ["naive", "False"]


def test_perf_harness_equivalence_check_is_clean():
    """The shipped harness agrees: its equivalence block is clean and
    covers both fast engines."""
    from repro.perf import equivalence_check

    result = equivalence_check(ram_kb=8, rounds=1)
    assert result["identical"] is True
    assert set(result["engines"]) == {"pure", "accel"}
    for verdict in result["engines"].values():
        assert verdict["mismatched_fields"] == []
