"""Request authentication schemes: tags, verification, costs."""

import pytest

from repro.core.authenticator import (AesCbcMacAuthenticator,
                                      EcdsaAuthenticator, HmacAuthenticator,
                                      NullAuthenticator,
                                      SpeckCbcMacAuthenticator,
                                      make_symmetric_authenticator)
from repro.crypto.costmodel import CryptoCostModel
from repro.crypto.ecc import SECP160R1, generate_keypair
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError

KEY = b"k" * 16
PAYLOAD = b"attestation request payload"


@pytest.fixture(scope="module")
def model():
    return CryptoCostModel()


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(SECP160R1, DeterministicRng(b"auth-tests"))


SYMMETRIC = [HmacAuthenticator, AesCbcMacAuthenticator,
             SpeckCbcMacAuthenticator]


class TestSymmetricSchemes:
    @pytest.mark.parametrize("cls", SYMMETRIC)
    def test_roundtrip(self, cls):
        auth = cls(KEY)
        tag = auth.tag(PAYLOAD)
        assert auth.verify(PAYLOAD, tag)

    @pytest.mark.parametrize("cls", SYMMETRIC)
    def test_tampered_payload_fails(self, cls):
        auth = cls(KEY)
        tag = auth.tag(PAYLOAD)
        assert not auth.verify(PAYLOAD + b"x", tag)

    @pytest.mark.parametrize("cls", SYMMETRIC)
    def test_tampered_tag_fails(self, cls):
        auth = cls(KEY)
        tag = bytearray(auth.tag(PAYLOAD))
        tag[0] ^= 1
        assert not auth.verify(PAYLOAD, bytes(tag))

    @pytest.mark.parametrize("cls", SYMMETRIC)
    def test_wrong_key_fails(self, cls):
        tag = cls(KEY).tag(PAYLOAD)
        assert not cls(b"x" * 16).verify(PAYLOAD, tag)

    def test_factory(self):
        for scheme in ("none", "hmac-sha1", "aes-128-cbc-mac",
                       "speck-64/128-cbc-mac"):
            auth = make_symmetric_authenticator(scheme, KEY)
            assert auth.scheme == scheme

    def test_factory_unknown(self):
        with pytest.raises(ConfigurationError):
            make_symmetric_authenticator("enigma", KEY)


class TestNull:
    def test_accepts_anything(self):
        auth = NullAuthenticator()
        assert auth.tag(PAYLOAD) == b""
        assert auth.verify(PAYLOAD, b"")
        assert auth.verify(PAYLOAD, b"garbage")

    def test_zero_cost(self, model):
        assert NullAuthenticator().prover_validation_cycles(model) == 0


class TestEcdsa:
    def test_signer_checker_roundtrip(self, keypair):
        signer = EcdsaAuthenticator.signer(keypair)
        checker = EcdsaAuthenticator.checker(keypair.public)
        tag = signer.tag(PAYLOAD)
        assert checker.verify(PAYLOAD, tag)

    def test_tampered_fails(self, keypair):
        signer = EcdsaAuthenticator.signer(keypair)
        checker = EcdsaAuthenticator.checker(keypair.public)
        assert not checker.verify(PAYLOAD + b"!", signer.tag(PAYLOAD))

    def test_malformed_tag_fails_closed(self, keypair):
        checker = EcdsaAuthenticator.checker(keypair.public)
        assert not checker.verify(PAYLOAD, b"too-short")
        assert not checker.verify(PAYLOAD, bytes(42))

    def test_checker_cannot_sign(self, keypair):
        checker = EcdsaAuthenticator.checker(keypair.public)
        with pytest.raises(ConfigurationError):
            checker.tag(PAYLOAD)

    def test_needs_some_key(self):
        with pytest.raises(ConfigurationError):
            EcdsaAuthenticator()


class TestCostOrdering:
    def test_paper_ordering(self, model, keypair):
        """Speck < AES < HMAC << ECDSA (Section 4.1)."""
        costs = [
            SpeckCbcMacAuthenticator(KEY).prover_validation_cycles(model),
            AesCbcMacAuthenticator(KEY).prover_validation_cycles(model),
            HmacAuthenticator(KEY).prover_validation_cycles(model),
            EcdsaAuthenticator.checker(
                keypair.public).prover_validation_cycles(model),
        ]
        assert costs == sorted(costs)
        assert costs[3] > 100 * costs[2]
