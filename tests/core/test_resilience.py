"""Retry policies, circuit breakers, and resilient sessions."""

import pytest

from repro.core import build_session
from repro.core.messages import AttestationRequest
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.crypto.rng import DeterministicRng
from repro.errors import ConfigurationError
from repro.net.channel import Verdict
from repro.net.faults import BernoulliLoss
from repro.obs.telemetry import Telemetry
from tests.conftest import tiny_config


class DropFirstN:
    def __init__(self, count):
        self.remaining = count

    def on_message(self, message, sender, receiver, time):
        if isinstance(message, AttestationRequest) and self.remaining > 0:
            self.remaining -= 1
            return Verdict("drop")
        return Verdict("forward")


class DropAllRequests:
    def on_message(self, message, sender, receiver, time):
        if isinstance(message, AttestationRequest):
            return Verdict("drop")
        return Verdict("forward")


def resilient_session(adversary=None, seed="resilience", **kwargs):
    session = build_session(device_config=tiny_config(),
                            adversary=adversary, seed=seed, **kwargs)
    session.learn_reference_state()
    return session


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempt_timeout_seconds=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(total_budget_seconds=0)

    def test_backoff_progression(self):
        policy = RetryPolicy(base_backoff_seconds=0.5, backoff_factor=2.0,
                             max_backoff_seconds=3.0)
        delays = [policy.backoff_delay(n) for n in range(1, 6)]
        assert delays == [0.5, 1.0, 2.0, 3.0, 3.0]   # capped

    def test_zero_base_means_no_backoff(self):
        policy = RetryPolicy()
        assert policy.backoff_delay(1) == 0.0
        assert policy.backoff_delay(7) == 0.0

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_backoff_seconds=1.0, jitter_fraction=0.5)
        a = policy.backoff_delay(1, DeterministicRng("jitter"))
        b = policy.backoff_delay(1, DeterministicRng("jitter"))
        assert a == b
        assert 1.0 <= a <= 1.5

    def test_jitter_needs_no_rng_when_disabled(self):
        policy = RetryPolicy(base_backoff_seconds=1.0)
        assert policy.backoff_delay(2, None) == 2.0

    def test_effective_timeout_clamps_up_only(self):
        policy = RetryPolicy(attempt_timeout_seconds=2.0)
        assert policy.effective_timeout(None) == 2.0
        assert policy.effective_timeout(0.5) == 2.0
        assert policy.effective_timeout(7.5) == 7.5

    def test_budget(self):
        policy = RetryPolicy(total_budget_seconds=10.0)
        assert not policy.budget_exhausted(9.9)
        assert policy.budget_exhausted(10.0)
        assert not RetryPolicy().budget_exhausted(1e9)


class TestCircuitBreaker:
    def test_starts_healthy(self):
        assert CircuitBreaker().state == "healthy"

    def test_degrades_then_quarantines(self):
        breaker = CircuitBreaker(degrade_after=1, quarantine_after=3)
        breaker.record_failure()
        assert breaker.state == "degraded"
        breaker.record_failure()
        assert breaker.state == "degraded"
        breaker.record_failure()
        assert breaker.state == "quarantined"
        assert breaker.transitions == [("healthy", "degraded"),
                                       ("degraded", "quarantined")]

    def test_success_resets(self):
        breaker = CircuitBreaker(degrade_after=1, quarantine_after=2)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.state == "healthy"
        assert breaker.consecutive_failures == 0
        assert breaker.transitions[-1] == ("quarantined", "healthy")

    def test_quarantine_probe_cadence(self):
        breaker = CircuitBreaker(degrade_after=1, quarantine_after=1)
        breaker.record_failure()
        assert breaker.state == "quarantined"
        decisions = [breaker.should_attempt(probe_every=3)
                     for _ in range(6)]
        assert decisions == [False, False, True, False, False, True]

    def test_healthy_always_attempts(self):
        breaker = CircuitBreaker()
        assert all(breaker.should_attempt() for _ in range(10))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(degrade_after=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(degrade_after=3, quarantine_after=2)


class TestAttestResilient:
    def test_clean_channel_single_attempt(self):
        session = resilient_session()
        outcome = session.attest_resilient(RetryPolicy())
        assert outcome.trusted
        assert outcome.attempts == 1
        assert outcome.timeouts == 0
        assert outcome.gave_up is None

    def test_retries_ride_out_transient_loss(self):
        session = resilient_session(adversary=DropFirstN(2), seed="res-2")
        outcome = session.attest_resilient(
            RetryPolicy(attempt_timeout_seconds=2.0, max_retries=3))
        assert outcome.trusted
        assert outcome.attempts == 3
        assert outcome.timeouts == 2
        assert session.verifier.timeouts == 2

    def test_retries_exhausted(self):
        session = resilient_session(adversary=DropAllRequests(), seed="res-3")
        outcome = session.attest_resilient(
            RetryPolicy(attempt_timeout_seconds=1.0, max_retries=2))
        assert not outcome.trusted
        assert outcome.gave_up == "retries-exhausted"
        assert outcome.attempts == 3
        assert outcome.result.detail == "no-response"

    def test_budget_exhausted(self):
        session = resilient_session(adversary=DropAllRequests(), seed="res-4")
        outcome = session.attest_resilient(
            RetryPolicy(attempt_timeout_seconds=2.0, max_retries=50,
                        total_budget_seconds=5.0))
        assert outcome.gave_up == "budget-exhausted"
        assert outcome.elapsed_seconds < 10.0

    def test_backoff_advances_simulated_time(self):
        session = resilient_session(adversary=DropFirstN(1), seed="res-5")
        outcome = session.attest_resilient(
            RetryPolicy(attempt_timeout_seconds=1.0, max_retries=2,
                        base_backoff_seconds=4.0))
        assert outcome.trusted
        assert outcome.backoff_seconds == 4.0
        assert outcome.elapsed_seconds >= 5.0   # timeout + backoff

    def test_timeout_clamps_to_measured_round_trip(self):
        """After one measured round, a too-tight deadline is clamped up
        so the retry waits for the response instead of racing it."""
        session = resilient_session(seed="res-6")
        first = session.attest_resilient(RetryPolicy())
        assert first.trusted
        measured = session.verifier_node.last_round_seconds
        assert measured is not None and measured > 0
        tight = RetryPolicy(attempt_timeout_seconds=measured / 100,
                            max_retries=0)
        outcome = session.attest_resilient(tight)
        assert outcome.trusted            # deadline was clamped up
        assert outcome.timeouts == 0

    def test_stale_result_not_mistaken_for_answer(self):
        """A deadline shorter than the round trip with no measured
        history must report a timeout, not return the previous round's
        verdict."""
        session = resilient_session(seed="res-7")
        assert session.attest_resilient(RetryPolicy()).trusted
        session.verifier_node.last_round_seconds = None  # forget history
        outcome = session.attest_resilient(
            RetryPolicy(attempt_timeout_seconds=1e-6, max_retries=0))
        assert not outcome.trusted
        assert outcome.timeouts == 1
        assert outcome.result.detail == "no-response"

    def test_telemetry_counters(self):
        telemetry = Telemetry()
        session = resilient_session(adversary=DropFirstN(2), seed="res-8",
                                    telemetry=telemetry)
        session.attest_resilient(
            RetryPolicy(attempt_timeout_seconds=1.0, max_retries=3,
                        base_backoff_seconds=0.5))
        dump = telemetry.registry.dump()
        counters = {m["name"]: m["value"] for m in dump["metrics"]
                    if m["kind"] == "counter" and not m["labels"]}
        assert counters["session.timeouts"] == 2
        assert counters["session.retries"] == 2
        assert counters["verifier.timeouts"] == 2
        assert counters["session.backoff_seconds"] == pytest.approx(1.5)
        assert telemetry.trace.count("session-timeout") == 2
        assert telemetry.trace.count("session-retry") == 2
        assert telemetry.trace.count("session-backoff") == 2

    def test_deterministic_replay(self):
        """Two identically-seeded lossy runs agree on everything."""

        def run():
            telemetry = Telemetry()
            session = build_session(
                device_config=tiny_config(),
                adversary=BernoulliLoss(0.3, seed="det-loss"),
                telemetry=telemetry, seed="det-session")
            session.learn_reference_state()
            policy = RetryPolicy(attempt_timeout_seconds=2.0, max_retries=4,
                                 base_backoff_seconds=0.25,
                                 jitter_fraction=0.2)
            rng = DeterministicRng("det-jitter")
            outcomes = [session.attest_resilient(policy, rng=rng)
                        for _ in range(4)]
            transcript = [(e.sender, e.receiver, e.outcome)
                          for e in session.channel.transcript]
            return ([(o.trusted, o.attempts, o.timeouts, o.backoff_seconds)
                     for o in outcomes],
                    transcript, telemetry.trace.to_jsonl())

        assert run() == run()


class TestBudgetClamp:
    """Regression: the final attempt used to wait its full per-attempt
    deadline even when the total budget had almost run out, so a round
    with ``total_budget_seconds=5`` could spend nearly 7 simulated
    seconds.  The deadline is now clamped to the remaining budget."""

    def test_elapsed_never_exceeds_budget(self):
        session = resilient_session(adversary=DropAllRequests(),
                                    seed="clamp-1")
        outcome = session.attest_resilient(
            RetryPolicy(attempt_timeout_seconds=2.0, max_retries=50,
                        total_budget_seconds=5.0))
        assert outcome.gave_up == "budget-exhausted"
        assert outcome.elapsed_seconds <= 5.0 + 1e-9

    def test_last_attempt_clamped_not_skipped(self):
        """10 s deadline, 12 s budget: attempt two gets the ~2 s that
        remain instead of a full deadline (22 s total) or nothing."""
        session = resilient_session(adversary=DropAllRequests(),
                                    seed="clamp-2")
        outcome = session.attest_resilient(
            RetryPolicy(attempt_timeout_seconds=10.0, max_retries=50,
                        total_budget_seconds=12.0))
        assert outcome.attempts == 2
        assert outcome.elapsed_seconds <= 12.0 + 1e-9

    def test_budget_wins_when_both_limits_bind(self):
        """When the retry count and the budget run out on the same
        attempt, the budget is what stopped the round and must be the
        reported cause."""
        session = resilient_session(adversary=DropAllRequests(),
                                    seed="clamp-3")
        outcome = session.attest_resilient(
            RetryPolicy(attempt_timeout_seconds=5.0, max_retries=0,
                        total_budget_seconds=3.0))
        assert outcome.attempts == 1
        assert outcome.gave_up == "budget-exhausted"
        # +0.001: the session's very first round steps off the epoch
        # before the attempt deadline starts counting.
        assert outcome.elapsed_seconds <= 3.001 + 1e-9
