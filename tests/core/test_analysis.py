"""Result aggregation and table rendering."""

from repro.core.analysis import (AttackOutcome, MitigationMatrix,
                                 render_table)


def outcome(attack, feature, succeeded):
    return AttackOutcome(attack=attack, defence=feature, succeeded=succeeded)


class TestAttackOutcome:
    def test_mitigated_is_inverse_of_success(self):
        assert outcome("replay", "counter", False).mitigated
        assert not outcome("replay", "nonce", True).mitigated

    def test_fields(self):
        record = AttackOutcome(attack="replay", defence="counter",
                               succeeded=False, detectable=True,
                               prover_wasted_cycles=100, detail="x")
        assert record.detectable
        assert record.prover_wasted_cycles == 100


class TestMatrix:
    def make(self):
        matrix = MitigationMatrix(attacks=["replay", "delay"],
                                  features=["nonce", "timestamp"])
        matrix.record(outcome("replay", "nonce", False))
        matrix.record(outcome("delay", "nonce", True))
        matrix.record(outcome("replay", "timestamp", False))
        matrix.record(outcome("delay", "timestamp", False))
        return matrix

    def test_cells(self):
        matrix = self.make()
        assert matrix.mitigated("replay", "nonce")
        assert not matrix.mitigated("delay", "nonce")
        assert matrix.cell("delay", "timestamp") == "yes"
        assert matrix.cell("delay", "nonce") == "-"

    def test_rows(self):
        rows = self.make().as_rows()
        assert rows[0] == ["Attack", "nonce", "timestamp"]
        assert rows[1] == ["replay", "yes", "yes"]
        assert rows[2] == ["delay", "-", "yes"]

    def test_matches(self):
        matrix = self.make()
        assert matrix.matches({"nonce": {"replay"},
                               "timestamp": {"replay", "delay"}})
        assert not matrix.matches({"nonce": {"replay", "delay"},
                                   "timestamp": {"replay", "delay"}})


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table([["A", "BBB"], ["xx", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "BBB" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines[3]) == len(lines[1])

    def test_empty(self):
        assert render_table([]) == ""
