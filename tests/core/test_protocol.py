"""End-to-end sessions: assembly, rounds, timing feedback."""

import pytest

from repro.core import build_session
from repro.errors import ConfigurationError
from repro.mcu import BASELINE, ROAM_HARDENED, UNPROTECTED
from tests.conftest import tiny_config


class TestAssembly:
    def test_default_session_attests(self, session_factory):
        session = session_factory()
        session.learn_reference_state()
        result = session.attest_once()
        assert result.trusted
        assert result.state_known_good

    @pytest.mark.parametrize("scheme", ["none", "hmac-sha1",
                                        "aes-128-cbc-mac",
                                        "speck-64/128-cbc-mac"])
    def test_all_symmetric_schemes(self, session_factory, scheme):
        session = session_factory(auth_scheme=scheme)
        assert session.attest_once().authentic

    @pytest.mark.parametrize("policy", ["none", "nonce", "counter",
                                        "timestamp"])
    def test_all_policies(self, session_factory, policy):
        session = session_factory(policy_name=policy)
        assert session.attest_once().authentic

    @pytest.mark.parametrize("clock", ["hw64", "hw32div", "sw"])
    def test_all_clock_designs(self, session_factory, clock):
        session = session_factory(clock_kind=clock, policy_name="timestamp")
        assert session.attest_once().authentic

    def test_timestamp_requires_clock(self):
        with pytest.raises(ConfigurationError):
            build_session(policy_name="timestamp",
                          device_config=tiny_config(clock_kind="none"))

    @pytest.mark.parametrize("profile", [UNPROTECTED, BASELINE,
                                         ROAM_HARDENED])
    def test_profiles_boot_and_attest(self, session_factory, profile):
        session = session_factory(profile=profile)
        assert session.attest_once().authentic

    def test_deterministic_with_seed(self):
        def run(seed):
            session = build_session(device_config=tiny_config(), seed=seed)
            session.attest_once()
            return session.anchor.stats.accepted, session.sim.now

        assert run("a") == run("a")


class TestTimingFeedback:
    def test_measurement_delays_response(self, session_factory):
        """The prover's processing time must show up as response latency."""
        session = session_factory(device_config=tiny_config(
            ram_size=8 * 1024, flash_size=64 * 1024, app_size=4 * 1024))
        start = 0.001
        session.attest_once()
        # 72 KB at ~0.092 ms / 64 B is ~100 ms of measurement; the round
        # trip must reflect it (2x latency = 10 ms alone would be ~0.01).
        assert session.sim.now - start > 0.05

    def test_multiple_rounds(self, session_factory):
        session = session_factory()
        session.learn_reference_state()
        for _ in range(3):
            assert session.attest_once().trusted
        assert session.anchor.stats.accepted == 3

    def test_device_time_syncs_to_sim(self, session_factory):
        session = session_factory()
        session.sim.run(until=5.0)
        session.attest_once()
        assert session.device.cpu.elapsed_seconds >= 5.0


class TestStateDetection:
    def test_infection_detected_while_present(self, session_factory):
        session = session_factory()
        session.learn_reference_state()
        assert session.attest_once().state_known_good
        session.device.flash.load(50, b"\xEB\xFE\x90\x90")
        result = session.attest_once()
        assert result.authentic
        assert result.state_known_good is False

    def test_unsolicited_response_flagged(self, session_factory):
        from repro.core.messages import AttestationResponse
        session = session_factory()
        session.channel.inject(
            "verifier",
            AttestationResponse(challenge=b"?" * 16, measurement=b"m" * 20),
            spoofed_sender="prover")
        session.sim.run(until=session.sim.now + 1)
        assert session.verifier_node.results[-1].detail == \
            "unsolicited-response"
