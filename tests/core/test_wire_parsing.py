"""Wire-format parsing: round-trips, malformed input, fuzzing."""

import pytest
from hypothesis import given, strategies as st

from repro.core.messages import AttestationRequest, AttestationResponse
from repro.errors import ProtocolError


def sample_request(**overrides):
    fields = dict(challenge=b"c" * 16, counter=42, timestamp_ticks=None,
                  nonce=None, auth_scheme="hmac-sha1", auth_tag=b"T" * 20)
    fields.update(overrides)
    return AttestationRequest(**fields)


class TestRequestRoundTrip:
    @pytest.mark.parametrize("fields", [
        {},
        {"counter": None},
        {"counter": 0},
        {"timestamp_ticks": 123456},
        {"nonce": b"n" * 16},
        {"auth_scheme": "none", "auth_tag": b""},
        {"challenge": b""},
        {"counter": 2 ** 63, "timestamp_ticks": 2 ** 40,
         "nonce": b"x" * 255},
    ])
    def test_roundtrip(self, fields):
        original = sample_request(**fields)
        parsed = AttestationRequest.from_bytes(original.to_bytes())
        assert parsed == original

    def test_signed_payload_survives_parse(self):
        """Tags computed before serialisation verify after parsing."""
        original = sample_request()
        parsed = AttestationRequest.from_bytes(original.to_bytes())
        assert parsed.signed_payload() == original.signed_payload()

    @given(challenge=st.binary(max_size=64),
           counter=st.one_of(st.none(), st.integers(0, 2 ** 64 - 2)),
           timestamp=st.one_of(st.none(), st.integers(0, 2 ** 64 - 2)),
           nonce=st.one_of(st.none(), st.binary(min_size=1, max_size=255)),
           tag=st.binary(max_size=64))
    def test_fuzz_roundtrip(self, challenge, counter, timestamp, nonce, tag):
        original = AttestationRequest(
            challenge=challenge, counter=counter, timestamp_ticks=timestamp,
            nonce=nonce, auth_scheme="speck-64/128-cbc-mac", auth_tag=tag)
        assert AttestationRequest.from_bytes(original.to_bytes()) == original


class TestRequestMalformed:
    def test_wrong_magic(self):
        raw = bytearray(sample_request().to_bytes())
        raw[0] ^= 0xFF
        with pytest.raises(ProtocolError, match="magic"):
            AttestationRequest.from_bytes(bytes(raw))

    def test_truncation_everywhere(self):
        raw = sample_request().to_bytes()
        for cut in range(len(raw)):
            with pytest.raises(ProtocolError):
                AttestationRequest.from_bytes(raw[:cut])

    def test_trailing_garbage(self):
        raw = sample_request().to_bytes() + b"\x00"
        with pytest.raises(ProtocolError, match="trailing"):
            AttestationRequest.from_bytes(raw)

    def test_non_bytes(self):
        with pytest.raises(ProtocolError):
            AttestationRequest.from_bytes("a string")

    def test_non_ascii_scheme(self):
        raw = bytearray(sample_request(auth_scheme="hmac-sha1").to_bytes())
        # Scheme bytes sit between the challenge and the tag; flip one.
        index = raw.rindex(b"hmac-sha1"[:4])
        raw[index] = 0xFF
        with pytest.raises(ProtocolError):
            AttestationRequest.from_bytes(bytes(raw))

    @given(st.binary(max_size=80))
    def test_fuzz_never_crashes(self, junk):
        """Arbitrary bytes either parse or raise ProtocolError -- never
        anything else."""
        try:
            AttestationRequest.from_bytes(junk)
        except ProtocolError:
            pass


def sample_response(**overrides):
    fields = dict(challenge=b"c" * 16, measurement=b"m" * 20,
                  request_counter=7, request_timestamp=None, tag=b"T" * 20)
    fields.update(overrides)
    return AttestationResponse(**fields)


class TestResponseRoundTrip:
    @pytest.mark.parametrize("fields", [
        {},
        {"request_counter": None},
        {"request_timestamp": 99},
        {"tag": b""},
        {"measurement": b""},
    ])
    def test_roundtrip(self, fields):
        original = sample_response(**fields)
        assert AttestationResponse.from_bytes(original.to_bytes()) == original

    def test_tagged_payload_survives_parse(self):
        original = sample_response()
        parsed = AttestationResponse.from_bytes(original.to_bytes())
        assert parsed.tagged_payload() == original.tagged_payload()

    def test_truncation(self):
        raw = sample_response().to_bytes()
        for cut in (0, 3, 5, len(raw) - 1):
            with pytest.raises(ProtocolError):
                AttestationResponse.from_bytes(raw[:cut])

    def test_request_magic_rejected(self):
        with pytest.raises(ProtocolError, match="magic"):
            AttestationResponse.from_bytes(sample_request().to_bytes())

    @given(st.binary(max_size=80))
    def test_fuzz_never_crashes(self, junk):
        try:
            AttestationResponse.from_bytes(junk)
        except ProtocolError:
            pass


class TestCrossParse:
    def test_end_to_end_over_serialised_wire(self, session_factory):
        """A full protocol round where messages cross a byte boundary:
        serialise-then-parse on each hop must not perturb verdicts."""
        from repro.core.authenticator import make_symmetric_authenticator
        session = session_factory(auth_scheme="hmac-sha1")
        session.attest_once()
        entry = session.channel.transcript.to_receiver("prover")[0]
        reparsed = AttestationRequest.from_bytes(entry.message.to_bytes())
        auth = make_symmetric_authenticator("hmac-sha1", session.key)
        assert auth.verify(reparsed.signed_payload(), reparsed.auth_tag)
