"""Protocol behaviour under adverse network conditions."""


from repro.core import build_session
from repro.core.messages import AttestationRequest
from repro.net.channel import Verdict
from tests.conftest import tiny_config


class DropRequests:
    """In-path adversary that drops the first ``count`` requests."""

    def __init__(self, count):
        self.remaining = count

    def on_message(self, message, sender, receiver, time):
        if isinstance(message, AttestationRequest) and self.remaining > 0:
            self.remaining -= 1
            return Verdict("drop")
        return Verdict("forward")


class DropResponses:
    """Drops everything that is not a request (i.e. the responses)."""

    def on_message(self, message, sender, receiver, time):
        if isinstance(message, AttestationRequest):
            return Verdict("forward")
        return Verdict("drop")


class TestMessageLoss:
    def test_dropped_request_yields_no_response(self):
        session = build_session(device_config=tiny_config(),
                                adversary=DropRequests(1),
                                seed="adv-drop-req")
        result = session.attest_once()
        assert result.detail == "no-response"
        assert session.anchor.stats.received == 0

    def test_recovery_after_drops(self):
        session = build_session(device_config=tiny_config(),
                                adversary=DropRequests(2),
                                seed="adv-drop-recover")
        assert session.attest_once().detail == "no-response"
        assert session.attest_once().detail == "no-response"
        assert session.attest_once().authentic

    def test_dropped_response_counts_as_no_response(self):
        session = build_session(device_config=tiny_config(),
                                adversary=DropResponses(),
                                seed="adv-drop-resp")
        result = session.attest_once()
        assert result.detail == "no-response"
        # The prover *did* the work -- that asymmetry is the DoS:
        assert session.anchor.stats.accepted == 1

    def test_counter_hole_after_dropped_request(self):
        """A dropped request burns a verifier counter; later requests
        still validate (counters need only increase, not be dense)."""
        session = build_session(device_config=tiny_config(),
                                policy_name="counter",
                                adversary=DropRequests(1),
                                seed="adv-hole")
        session.attest_once()
        result = session.attest_once()
        assert result.authentic


class TestConcurrentRounds:
    def test_two_outstanding_requests_resolve(self, session_factory):
        session = session_factory(policy_name="counter")
        session.sim.run(until=0.001)
        session.verifier_node.request_attestation()
        session.verifier_node.request_attestation()
        session.sim.run(until=session.sim.now + 10.0)
        # Non-preemptive prover: both handled, in order.
        assert session.anchor.stats.accepted == 2
        assert len(session.verifier_node.results) == 2
        assert all(r.authentic for r in session.verifier_node.results)

    def test_second_response_queues_behind_first(self, session_factory):
        """Non-preemptive prover: with two back-to-back requests the
        second response is delayed by BOTH measurements."""
        session = session_factory()
        session.sim.run(until=0.001)
        session.verifier_node.request_attestation()
        session.verifier_node.request_attestation()
        session.sim.run(until=session.sim.now + 10.0)
        responses = session.channel.transcript.to_receiver("verifier")
        assert len(responses) == 2
        gap = responses[1].time - responses[0].time
        per_measurement = (session.anchor.stats.attestation_cycles
                           / session.anchor.stats.accepted / 24_000_000)
        assert gap >= per_measurement * 0.9

    def test_requests_processed_in_arrival_order(self, session_factory):
        session = session_factory(policy_name="counter")
        session.sim.run(until=0.001)
        first = session.verifier_node.request_attestation()
        second = session.verifier_node.request_attestation()
        session.sim.run(until=session.sim.now + 10.0)
        assert second.counter == first.counter + 1
        assert session.anchor.stats.rejected_total == 0


class TestLatencyScaling:
    def test_round_trip_grows_with_latency(self):
        def request_to_response_seconds(latency):
            session = build_session(device_config=tiny_config(),
                                    latency_seconds=latency,
                                    seed="adv-latency")
            session.attest_once()
            transcript = session.channel.transcript
            request_time = transcript.to_receiver("prover")[0].time
            response_time = transcript.to_receiver("verifier")[0].time
            return response_time - request_time

        fast = request_to_response_seconds(0.001)
        slow = request_to_response_seconds(0.100)
        # The response leaves ~one inbound latency + processing later.
        assert slow > fast + 0.08

    def test_verdict_independent_of_latency(self):
        for latency in (0.001, 0.05, 0.5):
            session = build_session(device_config=tiny_config(),
                                    latency_seconds=latency,
                                    seed=f"adv-lat-{latency}")
            session.learn_reference_state()
            assert session.attest_once(settle_seconds=10.0).trusted


class TestEavesdroppingSurface:
    def test_transcript_records_both_directions(self, session_factory):
        session = session_factory()
        session.attest_once()
        to_prover = session.channel.transcript.to_receiver("prover")
        to_verifier = session.channel.transcript.to_receiver("verifier")
        assert len(to_prover) == 1
        assert len(to_verifier) == 1

    def test_recorded_request_verifies_under_key(self, session_factory):
        """What Phase I records is a *genuine* authenticated request --
        the replay primitive needs no forgery."""
        from repro.core.authenticator import make_symmetric_authenticator
        session = session_factory(auth_scheme="hmac-sha1")
        session.attest_once()
        recorded = session.channel.transcript.to_receiver("prover")[0].message
        auth = make_symmetric_authenticator("hmac-sha1", session.key)
        assert auth.verify(recorded.signed_payload(), recorded.auth_tag)
