"""Exhaustive freshness-policy model checking."""

import pytest

from repro.attacks.scenarios import TABLE2_EXPECTED
from repro.core.modelcheck import (PROPERTIES, check_policy,
                                   table2_from_model_checking)
from repro.errors import ConfigurationError


class TestTable2Derivation:
    def test_paper_assumptions_reproduce_table2(self):
        derived = table2_from_model_checking(paper_assumptions=True)
        assert derived == TABLE2_EXPECTED

    def test_unrestricted_adversary_exposes_replay_gap(self):
        """Without the implicit replay-later assumption, the stateless
        timestamp scheme loses its replay tick (immediate replays fall
        inside the acceptance window)."""
        derived = table2_from_model_checking(paper_assumptions=False)
        assert "replay" not in derived["timestamp"]
        assert derived["nonce"] == {"replay"}
        assert derived["counter"] == {"replay", "reorder"}

    def test_monotonic_extension_closes_the_gap(self):
        result = check_policy("timestamp", monotonic_timestamps=True)
        assert result.holds == set(PROPERTIES)
        assert not result.violations


class TestPerPolicyProperties:
    def test_counter(self):
        result = check_policy("counter")
        assert "no-double-acceptance" in result.holds
        assert "order-safety" in result.holds
        assert "honest-liveness" in result.holds
        assert "no-stale-acceptance" in result.fails

    def test_nonce(self):
        result = check_policy("nonce")
        assert "no-double-acceptance" in result.holds
        assert "honest-liveness" in result.holds
        assert "order-safety" in result.fails
        assert "no-stale-acceptance" in result.fails

    def test_none_policy_fails_everything_adversarial(self):
        result = check_policy("none")
        assert "honest-liveness" in result.holds
        assert "no-double-acceptance" in result.fails
        assert "no-stale-acceptance" in result.fails

    def test_violations_carry_witnesses(self):
        result = check_policy("counter")
        witnesses = result.witnesses("no-stale-acceptance")
        assert witnesses
        assert all(w.property_name == "no-stale-acceptance"
                   for w in witnesses)
        assert witnesses[0].detail

    def test_schedule_space_size(self):
        """3 requests x (drop | 1-2 copies from 3 delays) = 10^3."""
        result = check_policy("counter")
        assert result.schedules_checked == 1000

    def test_min_replay_delay_prunes(self):
        strict = check_policy("timestamp")
        restricted = check_policy("timestamp", min_replay_delay=2.0)
        assert restricted.schedules_checked < strict.schedules_checked
        assert "no-double-acceptance" in restricted.holds
        assert "no-double-acceptance" in strict.fails


class TestValidation:
    def test_spacing_must_exceed_window(self):
        with pytest.raises(ConfigurationError):
            check_policy("counter", spacing=1.0, window=1.0)

    def test_scales_with_request_count(self):
        small = check_policy("counter", requests=2)
        large = check_policy("counter", requests=4)
        assert large.schedules_checked > small.schedules_checked
        assert small.holds == large.holds
