"""Regression tests for the freshness-state bugfix batch.

Three bugs fixed together:

* the device state view charged every nonce at a hard-coded 16 bytes
  when checking flash capacity, regardless of the policy's actual
  ``nonce_size``;
* the bounded nonce cache's eviction FIFO lived on the *policy* object,
  so a policy shared between provers evicted one prover's nonces when
  another prover's history grew (and used ``list.pop(0)``);
* ``make_policy("nonce", ...)`` could not construct the bounded-cache
  variant at all.
"""

import pytest

from repro.core.freshness import (InMemoryStateView, NonceHistory,
                                  NonceHistoryPolicy, make_policy)
from repro.core.messages import AttestationRequest
from repro.core.modelcheck import check_policy
from repro.errors import ConfigurationError
from repro.obs import Telemetry


def request(nonce=None, counter=None):
    return AttestationRequest(challenge=b"c" * 16, nonce=nonce,
                              counter=counter)


class TestNonceHistory:
    def test_fifo_eviction_order(self):
        history = NonceHistory()
        for i in range(3):
            assert history.add(bytes([i]) * 8)
        assert history.pop_oldest() == bytes([0]) * 8
        assert history.pop_oldest() == bytes([1]) * 8
        assert len(history) == 1

    def test_duplicate_add_is_ignored(self):
        history = NonceHistory()
        assert history.add(b"n" * 8)
        assert not history.add(b"n" * 8)
        assert len(history) == 1
        assert history.stored_bytes == 8

    def test_lazy_discard_skips_dead_entries_on_pop(self):
        history = NonceHistory()
        for i in range(3):
            history.add(bytes([i]) * 8)
        history.discard(bytes([0]) * 8)
        # The discarded head must not resurface as an eviction victim.
        assert history.pop_oldest() == bytes([1]) * 8

    def test_stored_bytes_tracks_actual_lengths(self):
        history = NonceHistory()
        history.add(b"a" * 8)
        history.add(b"b" * 64)
        assert history.stored_bytes == 72
        history.pop_oldest()
        assert history.stored_bytes == 64

    def test_pop_on_empty_returns_none(self):
        assert NonceHistory().pop_oldest() is None


class TestNonceHistoryCompaction:
    """Regression: ``discard`` deleted lazily but never compacted, so
    an add/discard churn workload grew the eviction queue without
    bound even while the live set stayed tiny."""

    def test_churn_keeps_queue_bounded(self):
        history = NonceHistory()
        for i in range(10_000):
            nonce = i.to_bytes(4, "big")
            history.add(nonce)
            history.discard(nonce)
        assert len(history) == 0
        # The old code left all 10k slots in the deque forever.
        assert history.tombstones <= 1
        assert history.stored_bytes == 0

    def test_compaction_preserves_eviction_order(self):
        history = NonceHistory()
        nonces = [bytes([i]) * 8 for i in range(8)]
        for nonce in nonces:
            history.add(nonce)
        # Discard enough entries to trigger compaction (tombstones must
        # outnumber the 3 survivors).
        for nonce in nonces[:5]:
            history.discard(nonce)
        assert history.tombstones == 0
        assert history.pop_oldest() == nonces[5]
        assert history.pop_oldest() == nonces[6]

    def test_discard_then_re_add_keeps_original_slot_semantics(self):
        """Lazy discard has always resurrected the original queue slot
        when a nonce is re-added before it surfaces; compaction keeps
        the first occurrence of each live member so that observable
        order is unchanged."""
        history = NonceHistory()
        a, b, c = b"a" * 8, b"b" * 8, b"c" * 8
        history.add(a)
        history.add(b)
        history.discard(a)
        history.add(c)
        history.add(a)
        assert history.pop_oldest() == a
        assert history.pop_oldest() == b
        assert history.pop_oldest() == c
        assert history.stored_bytes == 0

    def test_stored_bytes_pinned_through_churn(self):
        history = NonceHistory()
        for round_number in range(50):
            nonce = round_number.to_bytes(8, "big")
            history.add(nonce)
            if round_number % 2:
                history.discard(nonce)
        live = len(history)
        assert history.stored_bytes == live * 8
        while history.pop_oldest() is not None:
            pass
        assert history.stored_bytes == 0


class TestFlashCapacityUsesActualNonceLength:
    """Bug 1: capacity check hard-coded 16 bytes per nonce."""

    def test_large_nonces_exhaust_flash_sooner(self, session_factory):
        session = session_factory(policy_name="nonce")
        view = session.anchor.state
        capacity = session.device.config.flash_size // 4
        nonce_size = 64
        fits = capacity // nonce_size
        for i in range(fits):
            view.remember_nonce(i.to_bytes(nonce_size, "big"))
        assert view.nonce_bytes == fits * nonce_size
        # One more 64-byte nonce exceeds the flash budget.  Under the
        # old 16-bytes-per-nonce accounting this would have been
        # accepted (fits+1 nonces * 16 bytes << capacity).
        assert (fits + 1) * 16 < capacity
        with pytest.raises(ConfigurationError):
            view.remember_nonce(fits.to_bytes(nonce_size, "big"))

    def test_small_nonces_fit_more_than_the_old_formula(self,
                                                        session_factory):
        session = session_factory(policy_name="nonce")
        view = session.anchor.state
        capacity = session.device.config.flash_size // 4
        # The old formula (count * 16) would reject after capacity/16
        # 8-byte nonces; actual-length accounting fits twice as many.
        old_limit = capacity // 16
        for i in range(old_limit + 1):
            view.remember_nonce(i.to_bytes(8, "big"))
        assert view.nonce_count == old_limit + 1


class TestEvictionFifoIsPerView:
    """Bug 2: the FIFO lived on the policy and cross-evicted views."""

    def test_shared_policy_does_not_cross_evict(self):
        policy = NonceHistoryPolicy(max_entries=2)
        prover_a = InMemoryStateView()
        prover_b = InMemoryStateView()
        a_nonces = [bytes([i]) * 16 for i in range(2)]
        for nonce in a_nonces:
            policy.commit(request(nonce), prover_a)
        # A third commit -- on a *different* prover -- previously pushed
        # the shared FIFO over max_entries and evicted prover A's oldest
        # nonce, silently reopening A's replay window.
        policy.commit(request(bytes([9]) * 16), prover_b)
        for nonce in a_nonces:
            assert policy.check(request(nonce), prover_a) == \
                (False, "replayed-nonce")
        assert prover_a.nonce_count == 2
        assert prover_b.nonce_count == 1

    def test_eviction_still_works_within_one_view(self):
        policy = NonceHistoryPolicy(max_entries=2)
        view = InMemoryStateView()
        oldest = bytes(16)
        for nonce in (oldest, bytes([1]) * 16, bytes([2]) * 16):
            policy.commit(request(nonce), view)
        assert view.nonce_count == 2
        ok, _ = policy.check(request(oldest), view)
        assert ok  # evicted => replayable: the attack the bound invites

    def test_policy_has_no_fifo_state_of_its_own(self):
        policy = NonceHistoryPolicy(max_entries=1)
        assert not any("fifo" in attr.lower() for attr in vars(policy))


class TestMakePolicyBoundedVariant:
    """Bug 3: the factory could not build a bounded cache."""

    def test_factory_passes_max_entries_through(self):
        policy = make_policy("nonce", max_entries=4)
        assert isinstance(policy, NonceHistoryPolicy)
        assert policy.max_entries == 4

    def test_factory_default_is_unbounded(self):
        assert make_policy("nonce").max_entries is None

    def test_factory_validates_bound(self):
        with pytest.raises(ConfigurationError):
            make_policy("nonce", max_entries=0)

    def test_model_checker_exhibits_eviction_replay(self):
        """No monkeypatching needed any more: the checker can build the
        bounded variant itself and finds the replay automatically."""
        result = check_policy("nonce", max_entries=1)
        assert "no-double-acceptance" in result.fails

    def test_unbounded_nonce_policy_still_checks_clean(self):
        result = check_policy("nonce")
        assert "no-double-acceptance" not in result.fails


class TestRateLimitBurnsNoFreshnessState:
    """A rate-limited request must not advance freshness state, and must
    be booked as a rejection (stats and registry)."""

    def test_rate_limited_request_is_counted_and_stateless(
            self, session_factory):
        session = session_factory(telemetry=Telemetry(),
                                  rate_limit_seconds=1000.0,
                                  seed="rate-limit-regression")
        session.learn_reference_state()
        anchor = session.anchor
        first = session.verifier.make_request()
        second = session.verifier.make_request()

        response, reason = anchor.handle_request(first)
        assert response is not None and reason == "ok"
        counter_after_first = anchor.state.get_counter()

        # Immediately after: inside the rate window.
        response, reason = anchor.handle_request(second)
        assert response is None and reason == "rate-limited"
        # No freshness state burnt: the counter word did not move.
        assert anchor.state.get_counter() == counter_after_first
        # Booked in ProverStats and in the registry, labelled by reason.
        assert anchor.stats.rejected == {"rate-limited": 1}
        registry = session.telemetry.registry
        assert registry.value("prover.requests.rejected",
                              reason="rate-limited") == 1

        # Because no state was burnt, the *same* stamped request is
        # still fresh once the rate window has passed.
        session.device.idle_seconds(2000.0)
        response, reason = anchor.handle_request(second)
        assert response is not None and reason == "ok"
        assert anchor.stats.accepted == 2
        assert registry.value("prover.requests.accepted") == 2
