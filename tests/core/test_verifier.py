"""Verifier: request construction and response validation."""

import pytest

from repro.core.authenticator import HmacAuthenticator
from repro.core.freshness import CounterPolicy, make_policy
from repro.core.messages import AttestationResponse
from repro.core.verifier import Verifier
from repro.crypto.hmac import hmac_sha1
from repro.errors import VerificationFailed

KEY = b"K" * 16


def make_verifier(policy=None, clock=None):
    return Verifier(KEY, HmacAuthenticator(KEY),
                    policy if policy is not None else CounterPolicy(),
                    clock_ticks=clock)


def fake_response(request, measurement=b"m" * 20, key=KEY):
    response = AttestationResponse(
        challenge=request.challenge, measurement=measurement,
        request_counter=request.counter,
        request_timestamp=request.timestamp_ticks)
    return response.with_tag(hmac_sha1(key, response.tagged_payload()))


class TestRequests:
    def test_requests_carry_valid_tags(self):
        verifier = make_verifier()
        request = verifier.make_request()
        assert HmacAuthenticator(KEY).verify(request.signed_payload(),
                                             request.auth_tag)

    def test_counters_increase(self):
        verifier = make_verifier()
        first = verifier.make_request()
        second = verifier.make_request()
        assert second.counter == first.counter + 1

    def test_challenges_unique(self):
        verifier = make_verifier()
        assert verifier.make_request().challenge != \
            verifier.make_request().challenge

    def test_timestamp_policy_stamps(self):
        verifier = make_verifier(policy=make_policy("timestamp",
                                                    window_ticks=10),
                                 clock=lambda: 777)
        assert verifier.make_request().timestamp_ticks == 777

    def test_issue_counter(self):
        verifier = make_verifier()
        verifier.make_request()
        verifier.make_request()
        assert verifier.requests_issued == 2


class TestResponseValidation:
    def test_authentic_unknown_state(self):
        verifier = make_verifier()
        request = verifier.make_request()
        result = verifier.check_response(request, fake_response(request))
        assert result.authentic
        assert result.state_known_good is None
        assert result.trusted

    def test_reference_match(self):
        verifier = make_verifier()
        verifier.learn_reference(b"m" * 20)
        request = verifier.make_request()
        result = verifier.check_response(request, fake_response(request))
        assert result.trusted and result.state_known_good

    def test_reference_mismatch_flags_state(self):
        verifier = make_verifier()
        verifier.learn_reference(b"golden" + b"\x00" * 14)
        request = verifier.make_request()
        result = verifier.check_response(request, fake_response(request))
        assert result.authentic
        assert result.state_known_good is False
        assert not result.trusted

    def test_bad_tag_rejected(self):
        verifier = make_verifier()
        request = verifier.make_request()
        result = verifier.check_response(
            request, fake_response(request, key=b"other-key-16byte"))
        assert not result.authentic
        assert result.detail == "bad-response-tag"

    def test_challenge_mismatch(self):
        verifier = make_verifier()
        request_a = verifier.make_request()
        request_b = verifier.make_request()
        result = verifier.check_response(request_a, fake_response(request_b))
        assert not result.authentic
        assert result.detail == "challenge-mismatch"

    def test_revoked_reference_flags_state(self):
        verifier = make_verifier()
        verifier.learn_reference(b"m" * 20)
        verifier.learn_reference(b"n" * 20)
        assert verifier.revoke_reference(b"m" * 20)
        request = verifier.make_request()
        result = verifier.check_response(request, fake_response(request))
        assert result.authentic
        assert result.state_known_good is False

    def test_revoke_unknown_reference(self):
        verifier = make_verifier()
        assert not verifier.revoke_reference(b"ghost" + b"\x00" * 15)

    def test_rotate_reference(self):
        verifier = make_verifier()
        verifier.learn_reference(b"old" + b"\x00" * 17)
        verifier.rotate_reference(b"old" + b"\x00" * 17, b"m" * 20)
        request = verifier.make_request()
        result = verifier.check_response(request, fake_response(request))
        assert result.trusted

    def test_rollback_after_update_flagged_end_to_end(self):
        """Fleet-level anti-rollback: after an update + rotation, a
        device attesting the *old* digest is untrusted even though that
        digest was once known-good."""
        from repro.core import build_session
        from repro.mcu.firmware import FirmwareModule
        from repro.services.codeupdate import UpdateAuthority, UpdateManager
        from tests.conftest import tiny_config

        session = build_session(device_config=tiny_config(),
                                seed="revoke-e2e")
        old_digest = session.learn_reference_state()
        manager = UpdateManager(session.device)
        manager.apply(UpdateAuthority(session.key).package(
            FirmwareModule("app", 2048, version=2)))
        attest = session.device.context("Code_Attest")
        new_digest = session.device.digest_writable_memory(attest)
        session.verifier.rotate_reference(old_digest, new_digest)
        assert session.attest_once().trusted
        # Roll the flash image back to v1 behind the verifier's back.
        session.device.flash.load(
            0, FirmwareModule("app", 2048, version=1).code_bytes())
        result = session.attest_once()
        assert result.authentic
        assert result.state_known_good is False

    def test_require_trusted_raises(self):
        verifier = make_verifier()
        request = verifier.make_request()
        bad = fake_response(request, key=b"other-key-16byte")
        with pytest.raises(VerificationFailed):
            verifier.require_trusted(request, bad)
        verifier.require_trusted(request, fake_response(request))
