"""The prover trust anchor: pipeline order, costs, device-backed state."""

import pytest

from repro.core.authenticator import (HmacAuthenticator, NullAuthenticator,
                                      SpeckCbcMacAuthenticator)
from repro.core.freshness import CounterPolicy, NoFreshness, make_policy
from repro.core.messages import AttestationRequest
from repro.core.prover import ProverTrustAnchor
from repro.errors import ConfigurationError
from repro.mcu import Device, EXT_HARDENED, ROAM_HARDENED
from tests.conftest import tiny_config

KEY = b"K" * 16


def make_anchor(policy=None, authenticator=None, profile=ROAM_HARDENED,
                **config_overrides):
    device = Device(tiny_config(**config_overrides))
    device.provision(KEY)
    device.boot(profile)
    return ProverTrustAnchor(
        device,
        authenticator if authenticator is not None else HmacAuthenticator(KEY),
        policy if policy is not None else CounterPolicy())


def signed_request(key=KEY, **fields):
    request = AttestationRequest(challenge=b"c" * 16,
                                 auth_scheme="hmac-sha1", **fields)
    return request.with_tag(HmacAuthenticator(key).tag(
        request.signed_payload()))


class TestPipeline:
    def test_valid_request_produces_response(self):
        anchor = make_anchor()
        response, reason = anchor.handle_request(signed_request(counter=1))
        assert reason == "ok"
        assert response is not None
        assert response.challenge == b"c" * 16
        assert len(response.measurement) == 20
        assert len(response.tag) == 20

    def test_bad_tag_rejected_before_freshness(self):
        anchor = make_anchor()
        bad = AttestationRequest(challenge=b"c" * 16, counter=1,
                                 auth_scheme="hmac-sha1",
                                 auth_tag=b"x" * 20)
        response, reason = anchor.handle_request(bad)
        assert response is None and reason == "bad-auth"
        # Freshness state untouched: the same counter still works.
        response, reason = anchor.handle_request(signed_request(counter=1))
        assert reason == "ok"

    def test_wrong_key_rejected(self):
        anchor = make_anchor()
        response, reason = anchor.handle_request(
            signed_request(key=b"wrong-key-016bb!", counter=1))
        assert reason == "bad-auth"

    def test_stale_counter_rejected(self):
        anchor = make_anchor()
        anchor.handle_request(signed_request(counter=5))
        response, reason = anchor.handle_request(signed_request(counter=5))
        assert reason == "stale-counter"
        response, reason = anchor.handle_request(signed_request(counter=4))
        assert reason == "stale-counter"

    def test_rejection_is_cheap_acceptance_is_expensive(self):
        """The core DoS defence: rejected requests must not trigger the
        measurement."""
        anchor = make_anchor()
        cpu = anchor.device.cpu

        before = cpu.cycle_count
        anchor.handle_request(signed_request(counter=1))
        accept_cost = cpu.cycle_count - before

        before = cpu.cycle_count
        anchor.handle_request(signed_request(counter=1))  # stale now
        reject_cost = cpu.cycle_count - before

        # On the tiny 24 KB test device the gap is ~80x; on the paper's
        # 512 KB device it is ~1750x.
        assert reject_cost < accept_cost / 50

    def test_requires_booted_device(self):
        device = Device(tiny_config())
        device.provision(KEY)
        with pytest.raises(ConfigurationError):
            ProverTrustAnchor(device, NullAuthenticator(), NoFreshness())


class TestStats:
    def test_counters(self):
        anchor = make_anchor()
        anchor.handle_request(signed_request(counter=1))
        anchor.handle_request(signed_request(counter=1))
        anchor.handle_request(AttestationRequest(
            challenge=b"c", auth_scheme="hmac-sha1", auth_tag=b"z" * 20))
        stats = anchor.stats
        assert stats.received == 3
        assert stats.accepted == 1
        assert stats.rejected == {"stale-counter": 1, "bad-auth": 1}
        assert stats.rejected_total == 2

    def test_cycle_attribution(self):
        anchor = make_anchor()
        anchor.handle_request(signed_request(counter=1))
        assert anchor.stats.validation_cycles > 0
        assert anchor.stats.attestation_cycles > \
            50 * anchor.stats.validation_cycles

    def test_busy_intervals_recorded(self):
        anchor = make_anchor()
        anchor.handle_request(signed_request(counter=1))
        assert len(anchor.busy_intervals) == 1
        start, end = anchor.busy_intervals[0]
        assert end > start


class TestDeviceStateView:
    def test_counter_backed_by_protected_word(self):
        anchor = make_anchor(profile=EXT_HARDENED)
        view = anchor.state
        view.set_counter(42)
        assert view.get_counter() == 42
        device = anchor.device
        assert device.read_counter(device.context("Code_Attest")) == 42

    def test_clock_ticks(self):
        anchor = make_anchor()
        anchor.device.idle_seconds(0.01)
        assert anchor.state.clock_ticks() > 0

    def test_clockless_device_returns_none(self):
        anchor = make_anchor(clock_kind="none")
        assert anchor.state.clock_ticks() is None

    def test_nonce_store(self):
        anchor = make_anchor(policy=make_policy("nonce"))
        view = anchor.state
        assert not view.nonce_seen(b"n" * 16)
        view.remember_nonce(b"n" * 16)
        assert view.nonce_seen(b"n" * 16)
        assert view.nonce_count == 1

    def test_nonce_store_capacity_limit(self):
        anchor = make_anchor(policy=make_policy("nonce"))
        view = anchor.state
        capacity = anchor.device.config.flash_size // 4 // 16
        with pytest.raises(ConfigurationError):
            for i in range(capacity + 2):
                view.remember_nonce(i.to_bytes(16, "big"))


class TestResponseAuthenticity:
    def test_response_tag_verifies_under_k_attest(self):
        from repro.crypto.hmac import hmac_sha1
        anchor = make_anchor()
        response, _ = anchor.handle_request(signed_request(counter=1))
        assert response.tag == hmac_sha1(KEY, response.tagged_payload())

    def test_response_echoes_freshness(self):
        anchor = make_anchor()
        response, _ = anchor.handle_request(signed_request(counter=7))
        assert response.request_counter == 7

    def test_speck_authenticated_pipeline(self):
        anchor = make_anchor(authenticator=SpeckCbcMacAuthenticator(KEY))
        request = AttestationRequest(challenge=b"c" * 16, counter=1,
                                     auth_scheme="speck-64/128-cbc-mac")
        request = request.with_tag(
            SpeckCbcMacAuthenticator(KEY).tag(request.signed_payload()))
        response, reason = anchor.handle_request(request)
        assert reason == "ok"
