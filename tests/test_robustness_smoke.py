"""Tier-1 wiring for ``scripts/robustness_smoke.py``.

Runs the smoke script exactly as CI would (a subprocess with only
``PYTHONPATH=src``) so a broken robustness layer fails the suite, not
just the nightly job.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SCRIPT = REPO / "scripts" / "robustness_smoke.py"
ENV = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}


def run_smoke(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True, env=ENV)


class TestRobustnessSmokeScript:
    def test_default_gates_pass(self):
        proc = run_smoke()
        assert proc.returncode == 0, proc.stderr
        assert "robustness-smoke: OK" in proc.stderr
        assert "deterministic replay clean" in proc.stderr

    def test_impossible_success_gate_fails_loudly(self):
        """Sanity-check the gate actually gates: demanding more verified
        rounds than the campaign runs must exit 1 with a diagnostic."""
        proc = run_smoke("--rounds", "2", "--min-ok", "3")
        assert proc.returncode == 1
        assert "FAIL: success rate" in proc.stderr
