"""Shared fixtures: fast-to-simulate devices and sessions."""

from __future__ import annotations

import pytest

from repro.core import build_session
from repro.mcu import Device, DeviceConfig, ROAM_HARDENED


def tiny_config(**overrides) -> DeviceConfig:
    """The smallest practical prover: quick measurements in tests."""
    defaults = dict(ram_size=8 * 1024, flash_size=16 * 1024,
                    app_size=2 * 1024)
    defaults.update(overrides)
    return DeviceConfig(**defaults)


@pytest.fixture
def config() -> DeviceConfig:
    return tiny_config()


@pytest.fixture
def booted_device(config) -> Device:
    """A provisioned, roam-hardened device."""
    device = Device(config)
    device.provision(b"K" * 16)
    device.boot(ROAM_HARDENED)
    return device


@pytest.fixture
def session_factory():
    """Factory for end-to-end sessions on tiny devices."""

    def factory(**kwargs):
        kwargs.setdefault("device_config", tiny_config(
            clock_kind=kwargs.pop("clock_kind", "hw64")))
        return build_session(**kwargs)

    return factory
