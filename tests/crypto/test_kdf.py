"""HKDF-SHA1 against RFC 5869 test vectors and fleet key derivation."""

import pytest

from repro.crypto.kdf import (derive_device_key, hkdf, hkdf_expand,
                              hkdf_extract)
from repro.errors import CryptoError


class TestRfc5869Sha1Vectors:
    """Appendix A.4-A.6 of RFC 5869 (the SHA-1 test cases)."""

    def test_case_4_basic(self):
        ikm = b"\x0b" * 11
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == "9b6c18c432a7bf8f0e71c8eb88f4b30baa2ba243"
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == ("085a01ea1b10f36933068b56efa5ad81"
                             "a4f14b822f5b091568a9cdd4f155fda2"
                             "c22e422478d305f3f896")

    def test_case_5_long_inputs(self):
        ikm = bytes(range(0x00, 0x50))
        salt = bytes(range(0x60, 0xB0))
        info = bytes(range(0xB0, 0x100))
        okm = hkdf(ikm, salt=salt, info=info, length=82)
        assert okm.hex() == ("0bd770a74d1160f7c9f12cd5912a06eb"
                             "ff6adcae899d92191fe4305673ba2ffe"
                             "8fa3f1a4e5ad79f3f334b3b202b2173c"
                             "486ea37ce3d397ed034c7f9dfeb15c5e"
                             "927336d0441f4c4300e2cff0d0900b52"
                             "d3b4")

    def test_case_6_empty_salt_and_info(self):
        ikm = b"\x0b" * 22
        okm = hkdf(ikm, salt=b"", info=b"", length=42)
        assert okm.hex() == ("0ac1af7002b3d761d1e55298da9d0506"
                             "b9ae52057220a306e07b6b87e8df21d0"
                             "ea00033de03984d34918")


class TestExpandValidation:
    def test_length_bounds(self):
        prk = hkdf_extract(b"", b"ikm")
        with pytest.raises(CryptoError):
            hkdf_expand(prk, b"", 0)
        with pytest.raises(CryptoError):
            hkdf_expand(prk, b"", 255 * 20 + 1)

    def test_short_prk_rejected(self):
        with pytest.raises(CryptoError):
            hkdf_expand(b"short", b"", 16)

    def test_info_separates_outputs(self):
        prk = hkdf_extract(b"salt", b"ikm")
        assert hkdf_expand(prk, b"a", 16) != hkdf_expand(prk, b"b", 16)


class TestDeviceKeys:
    MASTER = b"M" * 16

    def test_deterministic(self):
        assert derive_device_key(self.MASTER, "device-001") == \
            derive_device_key(self.MASTER, "device-001")

    def test_distinct_per_device(self):
        keys = {derive_device_key(self.MASTER, f"device-{i:03d}")
                for i in range(50)}
        assert len(keys) == 50

    def test_distinct_per_master(self):
        assert derive_device_key(b"A" * 16, "device-001") != \
            derive_device_key(b"B" * 16, "device-001")

    def test_length(self):
        assert len(derive_device_key(self.MASTER, "d", length=32)) == 32

    def test_empty_id_rejected(self):
        with pytest.raises(CryptoError):
            derive_device_key(self.MASTER, "")

    def test_swarm_uses_derived_keys(self):
        from repro.crypto.kdf import derive_device_key
        from repro.services.swarm import Swarm
        from tests.conftest import tiny_config
        fleet = Swarm(2, device_config=tiny_config(),
                      master_key=self.MASTER, seed="kdf-swarm")
        for member in fleet.members:
            assert member.session.key == derive_device_key(
                self.MASTER, member.device_id)
        report = fleet.sweep()
        assert report.healthy
