"""The three SHA-1 host engines must be indistinguishable by digest
and by simulated accounting.

``naive`` is the seed reference, ``pure`` the unrolled batch core and
``accel`` the hashlib-backed engine (see :mod:`repro.fastpath`); every
test here runs the same absorption pattern under each engine and
cross-checks against ``hashlib``.
"""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro import fastpath
from repro.crypto.sha1 import (BLOCK_SIZE, SHA1, _compress, compress_blocks)

ENGINES = list(fastpath.ENGINES)


def chunked(payload: bytes, cuts: list[int]) -> list[bytes]:
    """Split ``payload`` at the (sorted, de-duplicated) cut offsets."""
    bounds = sorted({min(c, len(payload)) for c in cuts})
    pieces, last = [], 0
    for bound in bounds + [len(payload)]:
        pieces.append(payload[last:bound])
        last = bound
    return pieces


@pytest.mark.parametrize("engine", ENGINES)
@settings(max_examples=40, deadline=None)
@given(data=st.data(),
       payload=st.binary(max_size=4 * BLOCK_SIZE + 17))
def test_chunked_updates_match_hashlib(engine, data, payload):
    """Any split of the message, fed as bytes / bytearray / memoryview
    slices, with copies taken mid-stream, digests like ``hashlib``."""
    cuts = data.draw(st.lists(st.integers(0, len(payload)), max_size=6))
    with fastpath.forced(engine):
        h = SHA1()
        absorbed = b""
        for index, piece in enumerate(chunked(payload, cuts)):
            form = data.draw(st.sampled_from(["bytes", "bytearray",
                                              "memoryview", "view-slice"]),
                             label=f"form[{index}]")
            if form == "bytes":
                h.update(piece)
            elif form == "bytearray":
                h.update(bytearray(piece))
            elif form == "memoryview":
                h.update(memoryview(piece))
            else:
                padded = b"\x00" + piece + b"\xFF"
                h.update(memoryview(padded)[1:1 + len(piece)])
            absorbed += piece
            if data.draw(st.booleans(), label=f"copy[{index}]"):
                clone = h.copy()
                assert clone.digest() == hashlib.sha1(absorbed).digest()
                clone.update(b"divergent")  # must not disturb the original
        assert absorbed == payload
        assert h.digest() == hashlib.sha1(payload).digest()
        assert h.hexdigest() == hashlib.sha1(payload).hexdigest()
        # The object stays usable after digest().
        h.update(b"tail")
        assert h.digest() == hashlib.sha1(payload + b"tail").digest()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65,
                                    119, 120, 127, 128, 200])
def test_block_accounting_matches_hashlib_derived_counts(engine, length):
    """``blocks_processed`` / ``total_blocks_for_digest`` are arithmetic
    over the absorbed length -- identical under every engine, and equal
    to the hashlib-derived padded-block count either side of the 56-byte
    padding boundary."""
    payload = bytes(range(256))[:0] + (b"\xA5" * length)
    with fastpath.forced(engine):
        h = SHA1()
        # Absorb in uneven chunks so buffering paths are exercised.
        h.update(payload[:7])
        h.update(payload[7:])
        assert h.blocks_processed == length // BLOCK_SIZE
        # A full digest compresses ceil((length + 9) / 64) blocks: the
        # message plus 0x80 plus the 8-byte bit length.
        expected_total = (length + 8) // BLOCK_SIZE + 1
        assert h.total_blocks_for_digest == expected_total
        assert h.digest() == hashlib.sha1(payload).digest()


@pytest.mark.parametrize("engine", ENGINES)
def test_compress_blocks_matches_reference_per_block(engine):
    """The batch core equals the per-block reference ``_compress``."""
    buf = bytes(range(256)) * 2  # 8 blocks
    state = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
    reference = state
    for offset in range(0, len(buf), BLOCK_SIZE):
        reference = _compress(reference, buf[offset:offset + BLOCK_SIZE])
    with fastpath.forced(engine):
        assert compress_blocks(state, buf, 0, len(buf) // BLOCK_SIZE) \
            == reference
        # Offsets and memoryview input work too.
        shifted = b"\xEE" * 3 + buf
        assert compress_blocks(state, memoryview(shifted), 3,
                               len(buf) // BLOCK_SIZE) == reference


def test_update_accepts_memoryview_without_copying_semantics():
    """Satellite (a) regression: ``update`` must not coerce views with
    ``bytes(data)`` on the fast paths -- a released/mutated source must
    not corrupt an already-absorbed digest."""
    for engine in ENGINES:
        with fastpath.forced(engine):
            source = bytearray(b"x" * 200)
            h = SHA1()
            h.update(memoryview(source))
            digest = h.copy().digest()
            source[:] = b"y" * 200  # mutate after absorption
            assert h.digest() == digest == hashlib.sha1(b"x" * 200).digest()


def test_update_rejects_non_bytes():
    with pytest.raises(TypeError):
        SHA1().update("not bytes")


class TestEngineSelection:
    def test_set_engine_round_trips(self):
        previous = fastpath.set_engine("naive")
        try:
            assert fastpath.engine() == "naive"
            assert not fastpath.is_fast()
            assert fastpath.set_engine("accel") == "naive"
            assert fastpath.is_fast()
        finally:
            fastpath.set_engine(previous)

    def test_set_engine_rejects_unknown(self):
        with pytest.raises(ValueError):
            fastpath.set_engine("turbo")

    def test_forced_restores_on_exit_and_error(self):
        before = fastpath.engine()
        with fastpath.forced("pure"):
            assert fastpath.engine() == "pure"
        assert fastpath.engine() == before
        with pytest.raises(RuntimeError):
            with fastpath.forced("naive"):
                raise RuntimeError("boom")
        assert fastpath.engine() == before

    @pytest.mark.parametrize("raw,expected", [
        ("0", "naive"), ("off", "naive"), ("no", "naive"),
        ("naive", "naive"), ("1", "pure"), ("pure", "pure"),
        ("2", "accel"), ("on", "accel"), ("", "accel"),
        ("garbage", "accel"),
    ])
    def test_env_aliases(self, monkeypatch, raw, expected):
        monkeypatch.setenv(fastpath._ENV_VAR, raw)
        assert fastpath._from_env() == expected

    def test_mid_stream_engine_switch_is_safe(self):
        """In-flight hash objects keep their construction-time engine."""
        with fastpath.forced("accel"):
            h = SHA1(b"head")
        with fastpath.forced("naive"):
            h.update(b"tail")
            assert h.digest() == hashlib.sha1(b"headtail").digest()
