"""Speck 64/128 against the published test vector."""

import pytest

from repro.crypto.speck import BLOCK_SIZE, KEY_SIZE, ROUNDS, Speck64_128
from repro.errors import InvalidBlockError, InvalidKeyError

VEC_KEY = bytes.fromhex("1b1a1918131211100b0a090803020100")
VEC_PT = bytes.fromhex("3b7265747475432d")
VEC_CT = bytes.fromhex("8c6fa548454e028b")


class TestKnownVector:
    def test_encrypt(self):
        assert Speck64_128(VEC_KEY).encrypt_block(VEC_PT) == VEC_CT

    def test_decrypt(self):
        assert Speck64_128(VEC_KEY).decrypt_block(VEC_CT) == VEC_PT


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(10))
    def test_identity(self, seed):
        key = bytes((seed * 13 + i) & 0xFF for i in range(16))
        block = bytes((seed * 29 + i * 5) & 0xFF for i in range(8))
        cipher = Speck64_128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_key_sensitivity(self):
        block = bytes(8)
        a = Speck64_128(b"A" * 16).encrypt_block(block)
        b = Speck64_128(b"B" * 16).encrypt_block(block)
        assert a != b

    def test_block_sensitivity(self):
        cipher = Speck64_128(bytes(16))
        assert cipher.encrypt_block(bytes(8)) != \
            cipher.encrypt_block(b"\x01" + bytes(7))


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(InvalidKeyError):
            Speck64_128(b"x" * 8)

    def test_bad_key_type(self):
        with pytest.raises(InvalidKeyError):
            Speck64_128("not bytes, sixteen")

    def test_bad_block_length(self):
        with pytest.raises(InvalidBlockError):
            Speck64_128(bytes(16)).encrypt_block(bytes(16))

    def test_constants(self):
        assert BLOCK_SIZE == 8
        assert KEY_SIZE == 16
        assert ROUNDS == 27


class TestSchedule:
    def test_round_key_count(self):
        cipher = Speck64_128(VEC_KEY)
        assert len(cipher._round_keys) == ROUNDS

    def test_counters(self):
        cipher = Speck64_128(bytes(16))
        ct = cipher.encrypt_block(bytes(8))
        cipher.decrypt_block(ct)
        cipher.decrypt_block(ct)
        assert cipher.blocks_encrypted == 1
        assert cipher.blocks_decrypted == 2
