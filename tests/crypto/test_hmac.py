"""HMAC-SHA1 against the stdlib and RFC 2202 vectors."""

import hashlib
import hmac as stdlib_hmac

import pytest

from repro.crypto.hmac import HmacSha1, constant_time_compare, hmac_sha1


def reference(key: bytes, msg: bytes) -> bytes:
    return stdlib_hmac.new(key, msg, hashlib.sha1).digest()


class TestRfc2202Vectors:
    def test_case_1(self):
        assert hmac_sha1(b"\x0b" * 20, b"Hi There").hex() == \
            "b617318655057264e28bc0b6fb378c8ef146be00"

    def test_case_2(self):
        assert hmac_sha1(b"Jefe", b"what do ya want for nothing?").hex() == \
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"

    def test_case_3(self):
        assert hmac_sha1(b"\xaa" * 20, b"\xdd" * 50).hex() == \
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"

    def test_case_6_long_key(self):
        key = b"\xaa" * 80
        msg = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert hmac_sha1(key, msg).hex() == \
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"


class TestAgainstStdlib:
    @pytest.mark.parametrize("key_len", [0, 1, 20, 63, 64, 65, 200])
    @pytest.mark.parametrize("msg_len", [0, 1, 64, 100, 1000])
    def test_matrix(self, key_len, msg_len):
        key = bytes(i & 0xFF for i in range(key_len))
        msg = bytes((i * 7) & 0xFF for i in range(msg_len))
        assert hmac_sha1(key, msg) == reference(key, msg)


class TestIncremental:
    def test_split_updates(self):
        mac = HmacSha1(b"key")
        mac.update(b"part one ")
        mac.update(b"part two")
        assert mac.digest() == reference(b"key", b"part one part two")

    def test_copy(self):
        mac = HmacSha1(b"key", b"common")
        clone = mac.copy()
        mac.update(b"-a")
        clone.update(b"-b")
        assert mac.digest() == reference(b"key", b"common-a")
        assert clone.digest() == reference(b"key", b"common-b")

    def test_rejects_non_bytes_key(self):
        with pytest.raises(TypeError):
            HmacSha1("string key")


class TestCompressionCount:
    def test_paper_512kb_example(self):
        """8196 compressions * 0.092 ms = 754.032 ms (Section 3.1)."""
        assert HmacSha1.total_compressions(512 * 1024) == 8196

    @pytest.mark.parametrize("length,expected", [
        (0, 4),          # ipad block + pad block + 2 outer
        (55, 4),         # message+9 still fits the padding block? no:
                         # inner payload 64+55=119 -> 1 full + tail 1 = 2; +2
        (64, 5),
    ])
    def test_small_messages(self, length, expected):
        assert HmacSha1.total_compressions(length) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HmacSha1.total_compressions(-1)


class TestConstantTimeCompare:
    def test_equal(self):
        assert constant_time_compare(b"abc", b"abc")

    def test_unequal_same_length(self):
        assert not constant_time_compare(b"abc", b"abd")

    def test_unequal_lengths(self):
        assert not constant_time_compare(b"abc", b"abcd")

    def test_empty(self):
        assert constant_time_compare(b"", b"")

    def test_type_error(self):
        with pytest.raises(TypeError):
            constant_time_compare("abc", b"abc")
