"""secp160r1 group law and ECDSA behaviour."""

import pytest

from repro.crypto.ecc import (EccPoint, EcdsaKeyPair, SECP160R1, ecdsa_sign,
                              ecdsa_verify, generate_keypair)
from repro.crypto.rng import DeterministicRng
from repro.errors import InvalidKeyError, InvalidSignatureError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(SECP160R1, DeterministicRng(b"ecc-tests"))


class TestCurveParams:
    def test_generator_on_curve(self):
        point = EccPoint.generator(SECP160R1)
        assert not point.is_infinity

    def test_generator_order(self):
        g = EccPoint.generator(SECP160R1)
        assert (SECP160R1.n * g).is_infinity

    def test_key_bytes(self):
        assert SECP160R1.key_bytes == 21  # 161-bit order


class TestGroupLaw:
    def test_identity_addition(self):
        g = EccPoint.generator(SECP160R1)
        infinity = EccPoint.infinity(SECP160R1)
        assert g + infinity == g
        assert infinity + g == g
        assert (infinity + infinity).is_infinity

    def test_inverse_addition(self):
        g = EccPoint.generator(SECP160R1)
        assert (g + (-g)).is_infinity

    def test_doubling_matches_addition(self):
        g = EccPoint.generator(SECP160R1)
        assert g + g == 2 * g

    def test_scalar_mul_distributes(self):
        g = EccPoint.generator(SECP160R1)
        assert 3 * g == g + g + g
        assert 5 * g == 2 * g + 3 * g

    def test_commutativity(self):
        g = EccPoint.generator(SECP160R1)
        p, q = 7 * g, 11 * g
        assert p + q == q + p

    def test_scalar_zero(self):
        g = EccPoint.generator(SECP160R1)
        assert (0 * g).is_infinity

    def test_off_curve_point_rejected(self):
        with pytest.raises(InvalidKeyError):
            EccPoint(SECP160R1, 1, 1)


class TestSerialisation:
    def test_roundtrip(self):
        g = EccPoint.generator(SECP160R1)
        p = 12345 * g
        assert EccPoint.from_bytes(SECP160R1, p.to_bytes()) == p

    def test_infinity_roundtrip(self):
        inf = EccPoint.infinity(SECP160R1)
        assert EccPoint.from_bytes(SECP160R1, inf.to_bytes()).is_infinity

    def test_malformed_encoding(self):
        with pytest.raises(InvalidKeyError):
            EccPoint.from_bytes(SECP160R1, b"\x05" + bytes(40))

    def test_tampered_point_rejected(self):
        p = 99 * EccPoint.generator(SECP160R1)
        raw = bytearray(p.to_bytes())
        raw[5] ^= 0xFF
        with pytest.raises(InvalidKeyError):
            EccPoint.from_bytes(SECP160R1, bytes(raw))


class TestEcdsa:
    def test_sign_verify(self, keypair):
        sig = ecdsa_sign(keypair, b"attestation request")
        assert ecdsa_verify(SECP160R1, keypair.public,
                            b"attestation request", sig)

    def test_wrong_message_fails(self, keypair):
        sig = ecdsa_sign(keypair, b"original")
        assert not ecdsa_verify(SECP160R1, keypair.public, b"tampered", sig)

    def test_wrong_key_fails(self, keypair):
        other = generate_keypair(SECP160R1, DeterministicRng(b"other"))
        sig = ecdsa_sign(keypair, b"message")
        assert not ecdsa_verify(SECP160R1, other.public, b"message", sig)

    def test_deterministic_nonce(self, keypair):
        assert ecdsa_sign(keypair, b"m") == ecdsa_sign(keypair, b"m")

    def test_distinct_messages_distinct_signatures(self, keypair):
        assert ecdsa_sign(keypair, b"m1") != ecdsa_sign(keypair, b"m2")

    def test_out_of_range_signature_rejected(self, keypair):
        with pytest.raises(InvalidSignatureError):
            ecdsa_verify(SECP160R1, keypair.public, b"m", (0, 1))
        with pytest.raises(InvalidSignatureError):
            ecdsa_verify(SECP160R1, keypair.public, b"m",
                         (1, SECP160R1.n))

    def test_identity_public_key_rejected(self, keypair):
        sig = ecdsa_sign(keypair, b"m")
        with pytest.raises(InvalidSignatureError):
            ecdsa_verify(SECP160R1, EccPoint.infinity(SECP160R1), b"m", sig)

    def test_keypair_consistency(self, keypair):
        expected = keypair.private * EccPoint.generator(SECP160R1)
        assert keypair.public == expected

    def test_keypair_rejects_out_of_range_scalar(self):
        g = EccPoint.generator(SECP160R1)
        with pytest.raises(InvalidKeyError):
            EcdsaKeyPair(SECP160R1, 0, g)
