"""The HMAC pad-midstate cache: correctness first, then cache policy.

The cache is a host-side optimization only -- tags, ``blocks_processed``
and :meth:`HmacSha1.total_compressions` must be identical whether the
cache hits, misses, or (under the naive engine) does not exist at all.
"""

import hmac as stdlib_hmac

import pytest

from repro import fastpath
from repro.crypto.hmac import (HMAC_MIDSTATE_CACHE_MAX, HmacSha1,
                               clear_hmac_midstate_cache, hmac_sha1,
                               hmac_midstate_cache_info)

ENGINES = list(fastpath.ENGINES)

KEYS = [b"k", b"0123456789abcdef", b"K" * 64, b"L" * 100]
MESSAGES = [b"", b"m", b"x" * 55, b"x" * 56, b"x" * 64, b"x" * 1000]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_hmac_midstate_cache()
    yield
    clear_hmac_midstate_cache()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("key", KEYS)
@pytest.mark.parametrize("message", MESSAGES)
def test_matches_stdlib_under_every_engine(engine, key, message):
    expected = stdlib_hmac.new(key, message, "sha1")
    with fastpath.forced(engine):
        assert hmac_sha1(key, message) == expected.digest()
        # Cached second construction must not change the tag.
        assert HmacSha1(key, message).hexdigest() == expected.hexdigest()


@pytest.mark.parametrize("engine", ENGINES)
def test_blocks_processed_identical_across_engines(engine):
    """Simulated accounting: ipad key block + full message blocks,
    regardless of engine or cache state."""
    message = b"z" * 130
    with fastpath.forced(engine):
        mac = HmacSha1(b"key-16-bytes-pad", message)
        assert mac.blocks_processed == 1 + len(message) // 64
        mac.digest()
        assert mac.blocks_processed == 1 + len(message) // 64


def test_cache_hits_and_misses_are_counted():
    with fastpath.forced("accel"):
        HmacSha1(b"alpha")
        info = hmac_midstate_cache_info()
        assert (info["misses"], info["hits"]) == (1, 0)
        HmacSha1(b"alpha")
        HmacSha1(b"alpha", b"payload")
        info = hmac_midstate_cache_info()
        assert (info["misses"], info["hits"]) == (1, 2)
        HmacSha1(b"beta")
        info = hmac_midstate_cache_info()
        assert (info["misses"], info["size"]) == (2, 2)


def test_naive_engine_bypasses_the_cache():
    with fastpath.forced("naive"):
        HmacSha1(b"alpha", b"m").digest()
        info = hmac_midstate_cache_info()
        assert info["size"] == 0
        assert info["hits"] == info["misses"] == 0


def test_cache_is_lru_bounded():
    with fastpath.forced("accel"):
        for index in range(HMAC_MIDSTATE_CACHE_MAX + 10):
            HmacSha1(index.to_bytes(4, "big"))
        info = hmac_midstate_cache_info()
        assert info["size"] == HMAC_MIDSTATE_CACHE_MAX == info["max_size"]
        # The oldest keys were evicted: constructing them again misses.
        misses_before = hmac_midstate_cache_info()["misses"]
        HmacSha1((0).to_bytes(4, "big"))
        assert hmac_midstate_cache_info()["misses"] == misses_before + 1
        # The most recent key is still cached.
        hits_before = hmac_midstate_cache_info()["hits"]
        HmacSha1((HMAC_MIDSTATE_CACHE_MAX + 9).to_bytes(4, "big"))
        assert hmac_midstate_cache_info()["hits"] == hits_before + 1


def test_clear_resets_everything():
    with fastpath.forced("accel"):
        HmacSha1(b"alpha")
        HmacSha1(b"alpha")
        clear_hmac_midstate_cache()
        info = hmac_midstate_cache_info()
        assert (info["size"], info["hits"], info["misses"]) == (0, 0, 0)


@pytest.mark.parametrize("engine", ENGINES)
def test_cached_prototypes_are_never_mutated(engine):
    """Hundreds of objects under one key must stay independent: the
    cache hands out clones, never the cached prototypes themselves."""
    key = b"shared-fleet-key"
    with fastpath.forced(engine):
        first = HmacSha1(key, b"first message")
        second = HmacSha1(key)
        second.update(b"second")
        clone = first.copy()
        clone.update(b" diverges")
        assert first.digest() == stdlib_hmac.new(
            key, b"first message", "sha1").digest()
        assert second.digest() == stdlib_hmac.new(
            key, b"second", "sha1").digest()
        assert clone.digest() == stdlib_hmac.new(
            key, b"first message diverges", "sha1").digest()


def test_total_compressions_independent_of_cache():
    """8196 compressions for 512 KB (Section 3.1) -- a *simulated*
    count, charged identically on cache hit and miss."""
    assert HmacSha1.total_compressions(512 * 1024) == 8196
    with fastpath.forced("accel"):
        HmacSha1(b"k")  # warm the cache
        assert HmacSha1.total_compressions(512 * 1024) == 8196
