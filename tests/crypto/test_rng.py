"""DeterministicRng: reproducibility, substreams, distributions."""

import pytest

from repro.crypto.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(b"seed").bytes(64)
        b = DeterministicRng(b"seed").bytes(64)
        assert a == b

    def test_different_seeds_differ(self):
        assert DeterministicRng(b"a").bytes(32) != \
            DeterministicRng(b"b").bytes(32)

    def test_str_and_int_seeds(self):
        assert DeterministicRng("s").bytes(8) == DeterministicRng("s").bytes(8)
        assert DeterministicRng(42).bytes(8) == DeterministicRng(42).bytes(8)
        assert DeterministicRng("s").bytes(8) != DeterministicRng(42).bytes(8)

    def test_rejects_bad_seed_type(self):
        with pytest.raises(TypeError):
            DeterministicRng(3.14)


class TestSubstreams:
    def test_labels_independent(self):
        root = DeterministicRng(b"root")
        a = root.substream("alpha").bytes(16)
        b = root.substream("beta").bytes(16)
        assert a != b

    def test_substream_reproducible(self):
        a = DeterministicRng(b"root").substream("x").bytes(16)
        b = DeterministicRng(b"root").substream("x").bytes(16)
        assert a == b

    def test_consuming_parent_does_not_shift_child(self):
        r1 = DeterministicRng(b"root")
        child_before = r1.substream("c").bytes(8)
        r2 = DeterministicRng(b"root")
        r2.bytes(100)  # consume from the parent first
        child_after = r2.substream("c").bytes(8)
        assert child_before == child_after


class TestDistributions:
    def test_bytes_length(self):
        rng = DeterministicRng(b"s")
        assert len(rng.bytes(0)) == 0
        assert len(rng.bytes(7)) == 7
        assert len(rng.bytes(100)) == 100

    def test_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            DeterministicRng(b"s").bytes(-1)

    def test_randint_bounds(self):
        rng = DeterministicRng(b"s")
        values = [rng.randint(3, 9) for _ in range(200)]
        assert min(values) >= 3
        assert max(values) <= 9
        assert len(set(values)) == 7  # all values hit over 200 draws

    def test_randint_degenerate(self):
        assert DeterministicRng(b"s").randint(5, 5) == 5

    def test_randint_rejects_inverted(self):
        with pytest.raises(ValueError):
            DeterministicRng(b"s").randint(2, 1)

    def test_randbelow(self):
        rng = DeterministicRng(b"s")
        assert all(0 <= rng.randbelow(4) < 4 for _ in range(50))
        with pytest.raises(ValueError):
            rng.randbelow(0)

    def test_random_unit_interval(self):
        rng = DeterministicRng(b"s")
        values = [rng.random() for _ in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.2 < sum(values) / len(values) < 0.8  # roughly centred

    def test_uniform(self):
        rng = DeterministicRng(b"s")
        assert all(2.0 <= rng.uniform(2.0, 4.0) < 4.0 for _ in range(50))

    def test_choice(self):
        rng = DeterministicRng(b"s")
        items = ["a", "b", "c"]
        assert all(rng.choice(items) in items for _ in range(20))
        with pytest.raises(ValueError):
            rng.choice([])

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(b"s")
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))

    def test_exponential_mean(self):
        rng = DeterministicRng(b"s")
        values = [rng.exponential(2.0) for _ in range(2000)]
        mean = sum(values) / len(values)
        assert 1.7 < mean < 2.3
        assert all(v >= 0 for v in values)

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            DeterministicRng(b"s").exponential(0)
