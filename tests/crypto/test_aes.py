"""AES-128 against FIPS 197 vectors and structural checks."""

import pytest

from repro.crypto.aes import AES128, BLOCK_SIZE, KEY_SIZE
from repro.errors import InvalidBlockError, InvalidKeyError


FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# FIPS 197 Appendix B vector.
APPB_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
APPB_PT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
APPB_CT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")


class TestKnownVectors:
    def test_fips_appendix_c_encrypt(self):
        assert AES128(FIPS_KEY).encrypt_block(FIPS_PT) == FIPS_CT

    def test_fips_appendix_c_decrypt(self):
        assert AES128(FIPS_KEY).decrypt_block(FIPS_CT) == FIPS_PT

    def test_fips_appendix_b(self):
        assert AES128(APPB_KEY).encrypt_block(APPB_PT) == APPB_CT


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_encrypt_decrypt_identity(self, seed):
        key = bytes((seed * 17 + i) & 0xFF for i in range(16))
        block = bytes((seed * 31 + i * 3) & 0xFF for i in range(16))
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_different_keys_differ(self):
        block = bytes(16)
        assert AES128(b"A" * 16).encrypt_block(block) != \
            AES128(b"B" * 16).encrypt_block(block)

    def test_encryption_is_not_identity(self):
        block = bytes(16)
        assert AES128(bytes(16)).encrypt_block(block) != block


class TestValidation:
    def test_key_too_short(self):
        with pytest.raises(InvalidKeyError):
            AES128(b"short")

    def test_key_too_long(self):
        with pytest.raises(InvalidKeyError):
            AES128(b"x" * 24)

    def test_key_wrong_type(self):
        with pytest.raises(InvalidKeyError):
            AES128("sixteen chars!!!")

    def test_block_too_short(self):
        with pytest.raises(InvalidBlockError):
            AES128(bytes(16)).encrypt_block(b"short")

    def test_decrypt_block_too_long(self):
        with pytest.raises(InvalidBlockError):
            AES128(bytes(16)).decrypt_block(bytes(17))

    def test_constants(self):
        assert BLOCK_SIZE == 16
        assert KEY_SIZE == 16


class TestOperationCounters:
    def test_counters_track_usage(self):
        cipher = AES128(bytes(16))
        cipher.encrypt_block(bytes(16))
        cipher.encrypt_block(bytes(16))
        ct = cipher.encrypt_block(bytes(16))
        cipher.decrypt_block(ct)
        assert cipher.blocks_encrypted == 3
        assert cipher.blocks_decrypted == 1
