"""CBC mode, PKCS#7 padding, and CBC-MAC behaviour."""

import pytest

from repro.crypto.aes import AES128
from repro.crypto.modes import CBC, cbc_mac, pkcs7_pad, pkcs7_unpad
from repro.crypto.speck import Speck64_128
from repro.errors import InvalidBlockError, PaddingError


class TestPkcs7:
    @pytest.mark.parametrize("length", range(0, 33))
    def test_roundtrip(self, length):
        data = bytes(range(length % 256))[:length]
        padded = pkcs7_pad(data, 16)
        assert len(padded) % 16 == 0
        assert pkcs7_unpad(padded, 16) == data

    def test_full_block_message_gets_full_pad_block(self):
        padded = pkcs7_pad(b"x" * 16, 16)
        assert len(padded) == 32
        assert padded[-1] == 16

    def test_unpad_rejects_zero_pad_byte(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"x" * 15 + b"\x00", 16)

    def test_unpad_rejects_oversized_pad_byte(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"x" * 15 + b"\x11", 16)

    def test_unpad_rejects_inconsistent_padding(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"x" * 13 + b"\x01\x02\x03", 16)

    def test_unpad_rejects_non_multiple(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"x" * 15, 16)

    def test_unpad_rejects_empty(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"", 16)

    def test_pad_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", 0)


class TestCbc:
    @pytest.mark.parametrize("length", [0, 1, 15, 16, 17, 100, 1000])
    def test_roundtrip_aes(self, length):
        mode = CBC(AES128(b"k" * 16))
        iv = bytes(range(16))
        data = bytes((i * 3) & 0xFF for i in range(length))
        assert mode.decrypt(iv, mode.encrypt(iv, data)) == data

    @pytest.mark.parametrize("length", [0, 7, 8, 9, 50])
    def test_roundtrip_speck(self, length):
        mode = CBC(Speck64_128(b"k" * 16))
        iv = bytes(8)
        data = b"z" * length
        assert mode.decrypt(iv, mode.encrypt(iv, data)) == data

    def test_iv_changes_ciphertext(self):
        mode = CBC(AES128(b"k" * 16))
        data = b"identical plaintext content"
        assert mode.encrypt(bytes(16), data) != \
            mode.encrypt(b"\x01" * 16, data)

    def test_chaining_propagates(self):
        """Equal plaintext blocks must produce distinct ciphertext blocks."""
        mode = CBC(AES128(b"k" * 16))
        ct = mode.encrypt(bytes(16), bytes(32))
        assert ct[:16] != ct[16:32]

    def test_bad_iv_length(self):
        mode = CBC(AES128(b"k" * 16))
        with pytest.raises(InvalidBlockError):
            mode.encrypt(bytes(8), b"data")

    def test_decrypt_rejects_ragged_ciphertext(self):
        mode = CBC(AES128(b"k" * 16))
        with pytest.raises(InvalidBlockError):
            mode.decrypt(bytes(16), b"x" * 17)

    def test_tampered_ciphertext_breaks_padding_or_content(self):
        mode = CBC(AES128(b"k" * 16))
        iv = bytes(16)
        ct = bytearray(mode.encrypt(iv, b"attack at dawn"))
        ct[-1] ^= 0xFF
        try:
            recovered = mode.decrypt(iv, bytes(ct))
        except PaddingError:
            return
        assert recovered != b"attack at dawn"


class TestCbcMac:
    def test_deterministic(self):
        assert cbc_mac(AES128(b"k" * 16), b"message") == \
            cbc_mac(AES128(b"k" * 16), b"message")

    def test_message_sensitivity(self):
        cipher = AES128(b"k" * 16)
        assert cbc_mac(cipher, b"message-a") != cbc_mac(cipher, b"message-b")

    def test_key_sensitivity(self):
        assert cbc_mac(AES128(b"a" * 16), b"m") != \
            cbc_mac(AES128(b"b" * 16), b"m")

    def test_tag_length_is_block_size(self):
        assert len(cbc_mac(AES128(b"k" * 16), b"m")) == 16
        assert len(cbc_mac(Speck64_128(b"k" * 16), b"m")) == 8

    def test_length_prefix_blocks_extension_shape(self):
        """Messages that are prefixes of each other yield unrelated tags."""
        cipher = AES128(b"k" * 16)
        assert cbc_mac(cipher, b"") != cbc_mac(cipher, b"\x00" * 16)

    def test_empty_message(self):
        assert len(cbc_mac(AES128(b"k" * 16), b"")) == 16
