"""Additional published test vectors for the from-scratch primitives."""

import pytest

from repro.crypto.aes import AES128
from repro.crypto.hmac import hmac_sha1
from repro.crypto.sha1 import SHA1


class TestSha1ExtendedVectors:
    def test_million_a(self):
        """FIPS 180 long-message vector: SHA-1 of 10^6 'a' bytes."""
        h = SHA1()
        chunk = b"a" * 10_000
        for _ in range(100):
            h.update(chunk)
        assert h.hexdigest() == \
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"

    def test_two_block_message(self):
        msg = (b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
               b"hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")
        assert SHA1(msg).hexdigest() == \
            "a49b2446a02c645bf419f995b67091253a04a259"

    def test_exact_block_boundary(self):
        assert SHA1(b"a" * 64).hexdigest() == \
            "0098ba824b5c16427bd7a1122a5a442a25ec644d"

    def test_single_byte(self):
        assert SHA1(b"a").hexdigest() == \
            "86f7e437faa5a7fce15d1ddcb9eaeaea377667b8"


class TestHmacRfc2202Remaining:
    def test_case_4(self):
        key = bytes(range(1, 26))
        msg = b"\xcd" * 50
        assert hmac_sha1(key, msg).hex() == \
            "4c9007f4026250c6bc8414f9bf50c86c2d7235da"

    def test_case_5(self):
        key = b"\x0c" * 20
        msg = b"Test With Truncation"
        assert hmac_sha1(key, msg).hex() == \
            "4c1a03424b55e07fe7f27be1d58bb9324a9a5a04"

    def test_case_7_long_key_long_message(self):
        key = b"\xaa" * 80
        msg = (b"Test Using Larger Than Block-Size Key and Larger "
               b"Than One Block-Size Data")
        assert hmac_sha1(key, msg).hex() == \
            "e8e99d0f45237d786d6bbaa7965c7808bbff1a91"


class TestAesNistKat:
    """NIST AESAVS known-answer tests (varying plaintext, zero key)."""

    @pytest.mark.parametrize("plaintext_hex,ciphertext_hex", [
        ("80000000000000000000000000000000",
         "3ad78e726c1ec02b7ebfe92b23d9ec34"),
        ("c0000000000000000000000000000000",
         "aae5939c8efdf2f04e60b9fe7117b2c2"),
        ("ffffffffffffffffffffffffffffffff",
         "3f5b8cc9ea855a0afa7347d23e8d664e"),
    ])
    def test_varying_plaintext_zero_key(self, plaintext_hex, ciphertext_hex):
        cipher = AES128(bytes(16))
        assert cipher.encrypt_block(
            bytes.fromhex(plaintext_hex)).hex() == ciphertext_hex

    @pytest.mark.parametrize("key_hex,ciphertext_hex", [
        ("80000000000000000000000000000000",
         "0edd33d3c621e546455bd8ba1418bec8"),
        ("ffffffffffffffffffffffffffffffff",
         "a1f6258c877d5fcd8964484538bfc92c"),
    ])
    def test_varying_key_zero_plaintext(self, key_hex, ciphertext_hex):
        cipher = AES128(bytes.fromhex(key_hex))
        assert cipher.encrypt_block(bytes(16)).hex() == ciphertext_hex

    def test_decrypt_inverts_kat(self):
        cipher = AES128(bytes(16))
        ct = bytes.fromhex("3ad78e726c1ec02b7ebfe92b23d9ec34")
        assert cipher.decrypt_block(ct).hex() == \
            "80000000000000000000000000000000"
