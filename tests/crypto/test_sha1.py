"""SHA-1 correctness against hashlib and structural behaviour."""

import hashlib

import pytest

from repro.crypto.sha1 import BLOCK_SIZE, DIGEST_SIZE, SHA1, sha1


def reference(data: bytes) -> str:
    return hashlib.sha1(data).hexdigest()


class TestKnownVectors:
    def test_empty(self):
        assert SHA1().hexdigest() == "da39a3ee5e6b4b0d3255bfef95601890afd80709"

    def test_abc(self):
        assert SHA1(b"abc").hexdigest() == \
            "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_448_bit_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert SHA1(msg).hexdigest() == \
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

    @pytest.mark.parametrize("size", [0, 1, 55, 56, 57, 63, 64, 65, 127,
                                      128, 1000, 4096, 10_000])
    def test_against_hashlib(self, size):
        data = bytes(i & 0xFF for i in range(size))
        assert SHA1(data).hexdigest() == reference(data)


class TestIncremental:
    def test_split_updates_match_oneshot(self):
        data = bytes(range(256)) * 5
        h = SHA1()
        for i in range(0, len(data), 37):
            h.update(data[i:i + 37])
        assert h.hexdigest() == reference(data)

    def test_digest_does_not_finalise(self):
        h = SHA1(b"hello")
        first = h.hexdigest()
        assert h.hexdigest() == first
        h.update(b" world")
        assert h.hexdigest() == reference(b"hello world")

    def test_copy_is_independent(self):
        h = SHA1(b"base")
        clone = h.copy()
        clone.update(b"-more")
        assert h.hexdigest() == reference(b"base")
        assert clone.hexdigest() == reference(b"base-more")

    def test_update_rejects_str(self):
        with pytest.raises(TypeError):
            SHA1().update("not bytes")

    def test_accepts_bytearray_and_memoryview(self):
        assert SHA1(bytearray(b"xy")).hexdigest() == reference(b"xy")
        h = SHA1()
        h.update(memoryview(b"xy"))
        assert h.hexdigest() == reference(b"xy")


class TestBlockAccounting:
    def test_blocks_processed_counts_compressions(self):
        h = SHA1()
        h.update(b"a" * (3 * BLOCK_SIZE))
        assert h.blocks_processed == 3

    def test_partial_block_not_counted_until_full(self):
        h = SHA1(b"a" * (BLOCK_SIZE - 1))
        assert h.blocks_processed == 0
        h.update(b"a")
        assert h.blocks_processed == 1

    @pytest.mark.parametrize("length,expected", [
        (0, 1), (55, 1), (56, 2), (64, 2), (119, 2), (120, 3), (128, 3),
    ])
    def test_total_blocks_for_digest(self, length, expected):
        h = SHA1(b"x" * length)
        assert h.total_blocks_for_digest == expected

    def test_constants(self):
        assert BLOCK_SIZE == 64
        assert DIGEST_SIZE == 20
        assert len(SHA1(b"x").digest()) == DIGEST_SIZE


def test_sha1_convenience_constructor():
    assert sha1(b"abc").hexdigest() == SHA1(b"abc").hexdigest()
