"""The Table 1 cycle-cost model: calibration and derived figures."""

import pytest

from repro.crypto.costmodel import (CryptoCostModel, PrimitiveCosts,
                                    REQUEST_MESSAGE_BITS,
                                    SISKIYOU_PEAK_COSTS_MS)
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return CryptoCostModel()


class TestTable1Calibration:
    """Each entry of Table 1 must come back out of the model."""

    def test_hmac_fixed_plus_block(self, model):
        # One 64-byte block: fix 0.340 + 0.092 = 0.432 ms ("0.430" in text).
        assert model.cycles_to_ms(model.hmac_cycles(64, "table")) == \
            pytest.approx(0.432)

    def test_aes_key_expansion(self, model):
        assert model.cycles_to_ms(model.aes_key_expansion_cycles()) == \
            pytest.approx(0.074)

    def test_aes_per_block(self, model):
        assert model.cycles_to_ms(model.aes_encrypt_cycles(1)) == \
            pytest.approx(0.288)
        assert model.cycles_to_ms(model.aes_decrypt_cycles(1)) == \
            pytest.approx(0.570)

    def test_speck_per_block(self, model):
        assert model.cycles_to_ms(model.speck_encrypt_cycles(1)) == \
            pytest.approx(0.017)
        assert model.cycles_to_ms(model.speck_decrypt_cycles(1)) == \
            pytest.approx(0.015)
        assert model.cycles_to_ms(model.speck_key_expansion_cycles()) == \
            pytest.approx(0.016)

    def test_ecdsa(self, model):
        assert model.cycles_to_ms(model.ecdsa_sign_cycles()) == \
            pytest.approx(183.464)
        assert model.cycles_to_ms(model.ecdsa_verify_cycles()) == \
            pytest.approx(170.907)


class TestSection31:
    def test_512kb_attestation_exact(self, model):
        """The paper's headline figure: 754.032 ms."""
        assert model.attestation_ms(512 * 1024, mode="exact") == \
            pytest.approx(754.032, abs=1e-3)

    def test_table_mode_close_to_exact(self, model):
        exact = model.attestation_ms(512 * 1024, "exact")
        table = model.attestation_ms(512 * 1024, "table")
        assert abs(exact - table) < 0.1

    def test_attestation_scales_linearly(self, model):
        small = model.attestation_ms(64 * 1024)
        large = model.attestation_ms(512 * 1024)
        assert large / small == pytest.approx(8.0, rel=0.01)


class TestRequestValidation:
    def test_scheme_ordering(self, model):
        """Section 4.1: Speck < AES < HMAC << ECDSA."""
        speck = model.request_validation_ms("speck-64/128-cbc-mac")
        aes = model.request_validation_ms("aes-128-cbc-mac")
        hmac = model.request_validation_ms("hmac-sha1")
        ecdsa = model.request_validation_ms("ecdsa-secp160r1")
        assert speck < aes < hmac < ecdsa
        assert ecdsa / hmac > 100  # the public-key paradox

    def test_quoted_values(self, model):
        assert model.request_validation_ms("speck-64/128-cbc-mac") == \
            pytest.approx(0.015)
        assert model.request_validation_ms("hmac-sha1") == \
            pytest.approx(0.432)
        assert model.request_validation_ms("ecdsa-secp160r1") == \
            pytest.approx(170.907)

    def test_null_scheme_free(self, model):
        assert model.request_validation_cycles("none") == 0

    def test_unknown_scheme(self, model):
        with pytest.raises(ConfigurationError):
            model.request_validation_cycles("rot13")

    def test_message_bits_table(self):
        assert REQUEST_MESSAGE_BITS["hmac-sha1"] == 512
        assert REQUEST_MESSAGE_BITS["speck-64/128-cbc-mac"] == 64
        assert REQUEST_MESSAGE_BITS["ecdsa-secp160r1"] == 160


class TestFrequencyScaling:
    def test_cycles_frequency_independent(self):
        fast = CryptoCostModel(frequency_hz=48_000_000)
        slow = CryptoCostModel(frequency_hz=24_000_000)
        assert fast.hmac_cycles(1024) == slow.hmac_cycles(1024)

    def test_wallclock_scales(self):
        fast = CryptoCostModel(frequency_hz=48_000_000)
        slow = CryptoCostModel(frequency_hz=24_000_000)
        cycles = slow.hmac_cycles(1024)
        assert slow.cycles_to_ms(cycles) == \
            pytest.approx(2 * fast.cycles_to_ms(cycles))

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            CryptoCostModel(frequency_hz=0)


class TestMiscValidation:
    def test_negative_message(self, model):
        with pytest.raises(ValueError):
            model.hmac_cycles(-1)
        with pytest.raises(ValueError):
            model.sha1_cycles(-1)

    def test_unknown_hmac_mode(self, model):
        with pytest.raises(ConfigurationError):
            model.hmac_cycles(64, mode="guess")

    def test_key_expansion_toggle(self, model):
        pre = model.speck_cbc_mac_cycles(8, key_preexpanded=True)
        cold = model.speck_cbc_mac_cycles(8, key_preexpanded=False)
        assert cold - pre == model.speck_key_expansion_cycles()

    def test_custom_costs(self):
        costs = PrimitiveCosts(hmac_block_ms=1.0, hmac_fixed_ms=0.0)
        model = CryptoCostModel(costs=costs)
        assert model.cycles_to_ms(model.hmac_cycles(64, "table")) == \
            pytest.approx(1.0)

    def test_default_costs_are_table1(self):
        assert SISKIYOU_PEAK_COSTS_MS.hmac_block_ms == 0.092
        assert SISKIYOU_PEAK_COSTS_MS.ecc_verify_ms == 170.907
