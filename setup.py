"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package, so PEP
660 editable installs fail; ``pip install -e . --no-build-isolation``
falls back to this shim.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
