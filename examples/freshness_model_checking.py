#!/usr/bin/env python3
"""Exhaustive verification of the freshness design space (Section 4.2).

Table 2 was derived in the paper by argument; here it is re-derived by
*enumeration*: every interleaving of deliveries, replays and drops that an
external adversary can impose on three genuine requests is executed
against each freshness policy, and the mitigation matrix falls out of
which safety properties survive the whole space.

The checker also surfaces something the table cannot: the stateless
timestamp scheme's dependence on the "sufficiently inter-spaced requests"
assumption.  Drop the assumption (let the adversary replay immediately)
and the replay tick disappears — restored by an 8-byte monotonicity
extension.

Run:  python examples/freshness_model_checking.py
"""

from repro.core.analysis import render_table
from repro.core.modelcheck import (PROPERTIES, check_policy,
                                   table2_from_model_checking)


def show_matrix(title: str, table: dict) -> None:
    rows = [["feature", "mitigates"]]
    for feature in ("nonce", "counter", "timestamp"):
        rows.append([feature, ", ".join(sorted(table[feature])) or "-"])
    print(render_table(rows, title=title))
    print()


def main() -> None:
    print("Enumerating ~1000 adversary schedules per policy "
          "(3 genuine requests x {drop, 1-2 deliveries} x 3 delays)...\n")

    show_matrix("Under the paper's assumptions (replays arrive after the "
                "acceptance window)",
                table2_from_model_checking(paper_assumptions=True))

    show_matrix("Unrestricted Dolev-Yao adversary (immediate replays "
                "allowed)",
                table2_from_model_checking(paper_assumptions=False))

    print("Per-policy property detail (unrestricted adversary):")
    rows = [["policy"] + list(PROPERTIES)]
    for policy in ("none", "nonce", "counter", "timestamp"):
        result = check_policy(policy)
        rows.append([policy] + ["holds" if prop in result.holds else "FAILS"
                                for prop in PROPERTIES])
    result = check_policy("timestamp", monotonic_timestamps=True)
    rows.append(["timestamp+monotonic"]
                + ["holds" if prop in result.holds else "FAILS"
                   for prop in PROPERTIES])
    print(render_table(rows))

    print("\nWitness for the timestamp replay gap:")
    witness = check_policy("timestamp").witnesses("no-double-acceptance")[0]
    print(f"  {witness.detail}")
    for delivery in witness.schedule:
        print(f"    request {delivery.index} delivered at "
              f"t={delivery.time:.1f}s")
    print("\n  -> two in-window deliveries of the same request are both "
          "accepted by the\n     stateless window check; the monotonic "
          "extension (one protected word, the\n     same word the counter "
          "scheme already uses) rejects the second.")


if __name__ == "__main__":
    main()
