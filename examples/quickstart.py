#!/usr/bin/env python3
"""Quickstart: one attestation round on a hardened prover.

Builds the full simulated deployment -- a roam-hardened 24 MHz prover
with a Speck-authenticated counter-freshness protocol -- runs one
attestation round, and prints what happened at each layer.

Run:  python examples/quickstart.py
"""

from repro import ROAM_HARDENED, build_session
from repro.mcu import DeviceConfig


def main() -> None:
    print("== Building the deployment ==")
    session = build_session(
        profile=ROAM_HARDENED,                  # Section 6 hardware protections
        auth_scheme="speck-64/128-cbc-mac",     # cheapest request MAC (Table 1)
        policy_name="counter",                  # Section 4.2 freshness
        device_config=DeviceConfig(ram_size=64 * 1024),
        seed="quickstart",
    )
    device = session.device
    print(f"  prover: {device.cpu.frequency_hz // 1_000_000} MHz, "
          f"{device.writable_memory_bytes // 1024} KB writable memory, "
          f"clock={device.config.clock_kind}")
    print(f"  EA-MPU rules installed by secure boot: "
          f"{device.mpu.active_rule_count}")
    for line in device.boot_log:
        print(f"    {line}")

    print("\n== Deployment-time reference measurement ==")
    golden = session.learn_reference_state()
    print(f"  golden state digest: {golden.hex()}")

    print("\n== One attestation round ==")
    result = session.attest_once()
    stats = session.anchor.stats
    print(f"  verifier verdict: trusted={result.trusted} ({result.detail})")
    print(f"  request validation cost: "
          f"{stats.validation_cycles / 24_000:.3f} ms")
    print(f"  memory measurement cost: "
          f"{stats.attestation_cycles / 24_000:.1f} ms "
          f"(the Section 3.1 asymmetry)")
    device.sync_energy()
    print(f"  prover energy consumed:  "
          f"{device.battery.consumed_mj:.3f} mJ")

    print("\n== A second round (counter advances) ==")
    result = session.attest_once()
    print(f"  verdict: trusted={result.trusted}; prover accepted "
          f"{stats.accepted} requests so far, rejected "
          f"{stats.rejected_total}")


if __name__ == "__main__":
    main()
