#!/usr/bin/env python3
"""Clock design space exploration (Section 6 and Table 3).

The timestamp defence needs a real-time clock the adversary cannot set
back.  This tool walks the design space the paper evaluates:

* hardware cost of each protected-clock variant over the attestation
  baseline (Section 6.3's register/LUT overheads);
* the width/divider trade-off: resolution vs wrap-around lifetime;
* a live functional check of both Figure 1 architectures on the
  simulator (wrap-interrupt path, EA-MPU protections).

Run:  python examples/clock_design_explorer.py
"""

from repro.core.analysis import render_table
from repro.errors import MemoryAccessViolation
from repro.hwcost import HardwareCostModel
from repro.mcu import Device, DeviceConfig, ROAM_HARDENED


def hardware_costs() -> None:
    model = HardwareCostModel()
    base = model.baseline()
    print(f"Baseline attestation system (no prover-side DoS protection): "
          f"{base.registers} registers / {base.luts} LUTs\n")
    rows = [["clock variant", "+reg", "+%", "+LUT", "+%", "notes"]]
    notes = {
        "hw64": "dedicated 64-bit register; never wraps",
        "hw32div": "32-bit + /2^20 divider; 6 y @ 44 ms",
        "sw": "reuses existing short timer; 3 EA-MPU rules",
    }
    for kind in ("hw64", "hw32div", "sw"):
        o = model.variant_overhead(kind)
        rows.append([kind, str(o.extra_registers),
                     f"{o.register_overhead_percent:.2f}",
                     str(o.extra_luts), f"{o.lut_overhead_percent:.2f}",
                     notes[kind]])
    print(render_table(rows, title="Section 6.3: protected-clock overheads"))


def width_divider_sweep() -> None:
    model = HardwareCostModel()
    rows = [["width", "divider", "resolution", "wrap-around"]]
    for width in (16, 24, 32, 48, 64):
        for divider in (1, 1 << 10, 1 << 20):
            t = model.clock_tradeoff(width, divider)
            res = t["resolution_seconds"]
            res_text = (f"{res * 1e6:.2f} us" if res < 1e-3
                        else f"{res * 1e3:.1f} ms")
            wrap = t["wraparound_seconds"]
            if wrap < 60:
                wrap_text = f"{wrap:.2f} s"
            elif wrap < 86_400:
                wrap_text = f"{wrap / 3600:.1f} h"
            else:
                wrap_text = f"{t['wraparound_years']:.2f} y"
            rows.append([str(width), f"2^{divider.bit_length() - 1}"
                         if divider > 1 else "1", res_text, wrap_text])
    print()
    print(render_table(rows, title="Clock register width/divider trade-off "
                                   "@ 24 MHz"))
    print("\nPick the smallest register whose wrap-around exceeds the "
          "device lifetime at a resolution finer than your freshness "
          "window.")


def functional_check() -> None:
    print("\nFunctional check of both Figure 1 architectures:")
    for kind, label in (("hw64", "Figure 1a (wide hardware clock)"),
                        ("sw", "Figure 1b (SW-clock)")):
        device = Device(DeviceConfig(ram_size=16 * 1024,
                                     flash_size=16 * 1024,
                                     app_size=2 * 1024, clock_kind=kind))
        device.provision(b"K" * 16)
        device.boot(ROAM_HARDENED)
        malware = device.make_malware_context()
        device.idle_seconds(0.05)
        ticks = device.read_clock_ticks(device.context("app"))
        try:
            if kind == "sw":
                with device.cpu.running(malware):
                    device.bus.write_u64(malware, device.clock_msb_address, 0)
            else:
                with device.cpu.running(malware):
                    device.bus.write(malware, device.clock_register_span[0],
                                     b"\x00")
            tamper = "WRITABLE (!!)"
        except MemoryAccessViolation:
            tamper = "write denied by EA-MPU"
        extra = ""
        if kind == "sw":
            extra = (f"; wrap IRQs serviced by Code_Clock: "
                     f"{device.clock.wraps_serviced}")
        print(f"  {label}: ticks advance ({ticks:,}), "
              f"malware tamper attempt: {tamper}{extra}")


def main() -> None:
    hardware_costs()
    width_divider_sweep()
    functional_check()


if __name__ == "__main__":
    main()
