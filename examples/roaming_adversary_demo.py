#!/usr/bin/env python3
"""The roaming adversary, phase by phase (Sections 3.2 and 5).

Tells the paper's central story twice:

1. against a *baseline* prover (trusted-verifier protections only):
   the counter rollback succeeds and leaves no trace; the clock reset
   succeeds but leaves the clock behind;
2. against a *roam-hardened* prover (Section 6 countermeasures): every
   Phase II manipulation dies at the EA-MPU and the replay is rejected.

Run:  python examples/roaming_adversary_demo.py
"""

from repro import BASELINE, ROAM_HARDENED, build_session
from repro.attacks.roaming import RoamingAdversary
from repro.mcu import DeviceConfig


def tell_story(profile, strategy, policy, clock_kind="hw64"):
    print(f"\n{'=' * 72}")
    print(f"  {strategy} vs a {profile.name} prover "
          f"({policy} freshness, {clock_kind} clock)")
    print("=" * 72)

    session = build_session(
        profile=profile, policy_name=policy,
        device_config=DeviceConfig(ram_size=32 * 1024,
                                   flash_size=32 * 1024,
                                   app_size=4 * 1024,
                                   clock_kind=clock_kind),
        timestamp_window_seconds=1.0,
        seed=f"demo-{profile.name}-{strategy}")
    golden = session.learn_reference_state()

    # Give the deployment history, then run a genuine round.
    session.sim.run(until=60.0)
    result = session.attest_once()
    print(f"[t={session.sim.now:7.3f}s] genuine attestation: "
          f"trusted={result.trusted}")

    lag = session.sim.now - session.device.cpu.elapsed_seconds
    if lag > 0:
        session.device.idle_seconds(lag)

    adversary = RoamingAdversary(session)
    recorded = adversary.phase1_eavesdrop()
    print(f"[Phase I  ] eavesdropped: {recorded.describe()}")

    report = adversary.phase2_compromise(strategy)
    print(f"[Phase II ] malware ran on the prover:")
    print(f"             key extracted:       {report.key_extracted}")
    print(f"             counter rolled back: {report.counter_rolled_back}")
    print(f"             clock reset:         {report.clock_reset}")
    if report.denied:
        print(f"             denied by hardware:  {', '.join(report.denied)}")
    print("             ... and erased every trace of itself.")

    accepted_before = session.anchor.stats.accepted
    adversary.phase3_replay()
    session.sim.run(until=session.sim.now
                    + adversary.replay_wait_seconds + 10.0)
    accepted = session.anchor.stats.accepted > accepted_before
    print(f"[Phase III] replayed the recorded request after "
          f"{adversary.replay_wait_seconds:.0f}s wait:")
    if accepted:
        wasted = session.anchor.stats.attestation_cycles / 24_000
        print(f"             ACCEPTED -- the prover burned ~"
              f"{wasted / session.anchor.stats.accepted:.1f} ms re-attesting "
              f"for the adversary (DoS succeeded)")
    else:
        reasons = session.anchor.stats.rejected
        print(f"             rejected ({reasons}) -- DoS blocked")

    # After-the-fact forensics.
    current = session.device.digest_writable_memory(
        session.device.context("Code_Attest"))
    clean = current == golden
    clock_behind = adversary._clock_is_behind()
    print(f"[Forensics] state digest clean: {clean}; "
          f"clock left behind: {clock_behind}")
    if accepted and clean and not clock_behind:
        print("             => the attack is UNDETECTABLE after the fact "
              "(Section 5's counter-rollback result)")
    elif accepted and clock_behind:
        print("             => evidence remains: the prover's clock runs "
              "behind (Section 5's timestamp subtlety)")


def main() -> None:
    # The paper's two attacks against the undefended ladder step ...
    tell_story(BASELINE, "counter-rollback", "counter")
    tell_story(BASELINE, "clock-reset", "timestamp")
    # ... and against the full Section 6 countermeasures, on both clock
    # designs of Figure 1.
    tell_story(ROAM_HARDENED, "counter-rollback", "counter")
    tell_story(ROAM_HARDENED, "clock-reset", "timestamp", clock_kind="sw")


if __name__ == "__main__":
    main()
