#!/usr/bin/env python3
"""Incident response on an attested deployment.

A continuous-monitoring story that strings the operational pieces
together: an :class:`AttestationMonitor` watches a prover; malware lands
mid-deployment; the monitor alarms; a forensic examination localises the
implant (memory diff) and assesses the clock and interrupt health; a
signed firmware update remediates; monitoring observes recovery.

Run:  python examples/incident_response.py
"""

from repro import build_session
from repro.core.resilience import RetryPolicy
from repro.attacks.forensics import (ForensicExaminer, MemorySnapshot,
                                     diff_snapshots)
from repro.mcu import DeviceConfig
from repro.mcu.firmware import FirmwareModule
from repro.services.codeupdate import UpdateAuthority, UpdateManager
from repro.services.monitor import AttestationMonitor, MonitorPolicy


def main() -> None:
    print("== Deployment ==")
    session = build_session(
        device_config=DeviceConfig(ram_size=32 * 1024,
                                   flash_size=32 * 1024,
                                   app_size=8 * 1024),
        seed="incident")
    golden = session.learn_reference_state()
    baseline_snapshot = MemorySnapshot(session.device)
    monitor = AttestationMonitor(session, policy=MonitorPolicy(
        interval_seconds=60.0, failure_threshold=2,
        retry=RetryPolicy(attempt_timeout_seconds=5.0, max_retries=1)))
    print("  prover deployed; golden digest recorded; monitoring every "
          f"{monitor.policy.interval_seconds:.0f}s")

    print("\n== Healthy operation ==")
    monitor.run(rounds=2)
    for event in monitor.events:
        print(f"  [t={event.time:7.1f}s] {event.kind}: {event.detail}")

    print("\n== Compromise (between rounds) ==")
    implant_offset = 0x1200
    session.device.flash.load(implant_offset, b"\xEB\xFE\x90\x31\xC0" * 8)
    print("  malware implanted in application flash")

    before = len(monitor.events)
    monitor.run(rounds=3)
    for event in monitor.events[before:]:
        print(f"  [t={event.time:7.1f}s] {event.kind}: {event.detail}")
    assert monitor.alarmed

    print("\n== Forensics ==")
    examiner = ForensicExaminer(session.device, golden_digest=golden)
    report = examiner.examine(
        true_time_seconds=session.device.cpu.elapsed_seconds,
        verifier_next_counter=session.verifier.freshness_state.next_counter)
    for finding in report.sorted():
        print(f"  [{finding.severity:10s}] {finding.check}: "
              f"{finding.detail}")
    extents = diff_snapshots(baseline_snapshot,
                             MemorySnapshot(session.device))
    for extent in extents:
        print(f"  [localised  ] {extent.region}: {extent.length} changed "
              f"bytes at {extent.start:#x}")

    print("\n== Remediation: signed firmware update ==")
    authority = UpdateAuthority(session.key)
    manager = UpdateManager(session.device)
    receipt = manager.apply(
        authority.package(FirmwareModule("app", 8 * 1024, version=2)))
    attest_ctx = session.device.context("Code_Attest")
    session.verifier.learn_reference(
        session.device.digest_writable_memory(attest_ctx))
    print(f"  installed app v{receipt.version}; verifier reference "
          f"refreshed")

    print("\n== Recovery observed ==")
    before = len(monitor.events)
    monitor.run(rounds=2)
    for event in monitor.events[before:]:
        print(f"  [t={event.time:7.1f}s] {event.kind}: {event.detail}")
    assert not monitor.alarmed
    print("\nincident closed: compromise detected in one monitoring "
          "interval, localised to the byte, remediated over the "
          "authenticated update channel, recovery confirmed by "
          "attestation.")


if __name__ == "__main__":
    main()
