#!/usr/bin/env python3
"""Operating an IoT fleet on the attestation substrate (Sections 1 and 7).

A day in the life of a small fleet: periodic attestation sweeps detect a
compromised node; the operator pushes a firmware update to it over the
authenticated update channel, refreshes the reference measurement, and
issues a verified erase of the node's scratch memory; clock drift is
corrected with the secure time-sync protocol.  All three of the paper's
"derived services" plus its two future-work items in one scenario.

Run:  python examples/iot_fleet.py
"""

from repro.mcu.firmware import FirmwareModule
from repro.mcu import DeviceConfig
from repro.services.codeupdate import UpdateAuthority, UpdateManager
from repro.services.erasure import ErasureManager, ErasureVerifier
from repro.services.swarm import Swarm
from repro.services.timesync import (ClockSynchronizer, DriftingClock,
                                     SyncVerifier)

FLEET_SIZE = 4


def main() -> None:
    print(f"== Deploying a fleet of {FLEET_SIZE} provers ==")
    fleet = Swarm(FLEET_SIZE,
                  device_config=DeviceConfig(ram_size=16 * 1024,
                                             flash_size=32 * 1024,
                                             app_size=4 * 1024),
                  auth_scheme="speck-64/128-cbc-mac", policy_name="counter",
                  seed="iot-fleet")
    report = fleet.sweep()
    print(f"  initial sweep: {report.trusted}/{report.attempted} trusted, "
          f"fleet energy {report.fleet_energy_mj:.3f} mJ")

    print("\n== Node device-002 gets infected ==")
    victim = fleet.member("device-002")
    victim.session.device.flash.load(128, b"\xEB\xFE\x90\x90")  # implant
    report = fleet.sweep()
    print(f"  sweep: trusted={report.trusted}, "
          f"untrusted={report.untrusted}")
    assert report.untrusted == ["device-002"]

    print("\n== Remediation: authenticated firmware update ==")
    session = victim.session
    authority = UpdateAuthority(session.key)
    manager = UpdateManager(session.device)
    receipt = manager.apply(
        authority.package(FirmwareModule("app", 4 * 1024, version=2)))
    print(f"  installed app v{receipt.version} "
          f"({receipt.install_cycles / 24_000:.1f} ms of prover time)")
    # Refresh the verifier's reference and confirm by attestation.
    attest_ctx = session.device.context("Code_Attest")
    session.verifier.learn_reference(
        session.device.digest_writable_memory(attest_ctx))
    report = fleet.sweep()
    print(f"  post-update sweep: {report.trusted}/{report.attempted} "
          f"trusted (healthy={report.healthy})")

    print("\n== Verified erase of the node's scratch memory ==")
    erasure_verifier = ErasureVerifier(session.key)
    erasure_manager = ErasureManager(session.device)
    order = erasure_verifier.order(session.device.data_base, 4096)
    proof = erasure_manager.handle(order)
    print(f"  erase proof valid: "
          f"{erasure_verifier.check_proof(order, proof)}")
    session.verifier.learn_reference(
        session.device.digest_writable_memory(attest_ctx))

    print("\n== Clock maintenance: secure time sync ==")
    drifty = fleet.member("device-003").session
    device = drifty.device
    sync = ClockSynchronizer(device, drifty.key,
                             drifting_clock=DriftingClock(device, 80.0))
    true_ticks = lambda: device.clock.ticks_for_seconds(  # noqa: E731
        device.cpu.elapsed_seconds)
    sync_verifier = SyncVerifier(drifty.key, clock_ticks=true_ticks)
    device.idle_seconds(3600.0)   # an hour of 80 ppm drift
    error_before = sync.error_ticks(true_ticks())
    sync.complete_sync(sync_verifier.respond(sync.begin_sync()))
    error_after = sync.error_ticks(true_ticks())
    resolution = device.clock.resolution_seconds
    print(f"  drift after 1 h at 80 ppm: "
          f"{abs(error_before) * resolution * 1000:.1f} ms; "
          f"after sync: {abs(error_after) * resolution * 1000:.3f} ms")

    print("\n== Fleet status ==")
    for device_id, fraction in fleet.fleet_battery_report().items():
        print(f"  {device_id}: battery {100 * fraction:.4f}%")
    print(f"  total attestations served: {fleet.total_attestations()}")


if __name__ == "__main__":
    main()
