#!/usr/bin/env python3
"""Why not just use software-based attestation? (Section 2)

SWATT/Pioneer-style attestation needs no hardware trust anchor: the
verifier times a challenge-seeded checksum and a cheating prover's
redirection overhead shows up as a slowdown.  This demo shows the scheme
working perfectly over a direct link — and collapsing over a network,
which is the paper's reason for requiring the (cheap) hardware anchor.

Run:  python examples/software_attestation_pitfall.py
"""

from repro.baselines.swatt import (CheatingSwattProver, SwattProver,
                                   SwattVerifier, evaluate_over_network)
from repro.core.analysis import render_table
from repro.mcu import BASELINE, Device, DeviceConfig


def factory() -> Device:
    device = Device(DeviceConfig(ram_size=8 * 1024, flash_size=16 * 1024,
                                 app_size=4 * 1024))
    device.provision(b"K" * 16)
    device.boot(BASELINE)
    return device


def main() -> None:
    verifier = SwattVerifier(iterations=24_000, seed="pitfall")
    print("== Direct link (computer-peripheral setting) ==")
    print(f"  honest checksum time:   {verifier.honest_seconds * 1000:.1f} ms")
    print(f"  cheater checksum time:  "
          f"{verifier.cheating_seconds * 1000:.1f} ms "
          f"(+2 cycles/access for read redirection)")
    print(f"  acceptance threshold:   "
          f"{verifier.threshold_seconds * 1000:.1f} ms")

    golden = SwattProver(factory())._memory_image()
    honest, cheater = SwattProver(factory()), CheatingSwattProver(factory())
    challenge = verifier.challenge()
    r_honest, r_cheat = honest.respond(challenge), cheater.respond(challenge)
    print(f"  honest prover:  checksum ok, "
          f"{r_honest.latency_seconds * 1000:.1f} ms -> "
          f"{'ACCEPT' if verifier.accept(challenge, r_honest, golden) else 'reject'}")
    print(f"  cheating prover: checksum ALSO ok (redirection hides the "
          f"malware), {r_cheat.latency_seconds * 1000:.1f} ms -> "
          f"{'accept' if verifier.accept(challenge, r_cheat, golden) else 'REJECT (timing!)'}")

    print("\n== The same scheme over a network ==")
    points = evaluate_over_network(
        device_factory=factory, jitters=[0.0, 0.001, 0.003, 0.008],
        trials=10, iterations=24_000, seed="pitfall-net")
    rows = [["jitter (ms)", "false accepts", "false rejects", "accuracy"]]
    for point in points:
        rows.append([f"{point.jitter_seconds * 1000:.0f}",
                     str(point.false_accepts), str(point.false_rejects),
                     f"{point.accuracy:.2f}"])
    print(render_table(rows))
    print("\nOnce jitter rivals the cheat overhead "
          f"({24_000 * 2 / 24_000:.0f} us x 1000 = 2 ms), the timing "
          "channel is gone.  The paper's conclusion: for networked "
          "provers, attestation needs a hardware anchor -- and Section 6 "
          "shows the anchor costs under 6% of the MCU.")


if __name__ == "__main__":
    main()
