#!/usr/bin/env python3
"""Verifier impersonation as denial-of-service (Sections 3.1 and 4.1).

An attacker who can reach the prover's radio floods it with forged
attestation requests.  This demo runs the same flood against four
provers that differ only in how they authenticate requests, and shows:

* the unauthenticated prover measures its whole memory for every forgery
  (energy + CPU time stolen);
* MAC-authenticated provers reject each forgery in microseconds;
* the ECDSA prover is DoS-ed *by its own request validation* -- the
  paper's paradox that rules public-key crypto out on low-end devices.

Run:  python examples/dos_attack_demo.py
"""

from repro.attacks.scenarios import run_dos_flood
from repro.core.analysis import render_table
from repro.mcu import DeviceConfig, DutyCycleTask

RATE = 0.5         # forged requests per second
DURATION = 120.0   # simulated seconds


def main() -> None:
    config = DeviceConfig(ram_size=64 * 1024, flash_size=64 * 1024,
                          app_size=8 * 1024)
    print(f"Flooding a {config.ram_size // 1024 + config.flash_size // 1024}"
          f" KB prover with {RATE}/s forged requests for {DURATION:.0f} s "
          f"(simulated)...\n")

    rows = [["request auth", "accepted", "rejected", "CPU stolen (s)",
             "duty %", "energy (mJ)"]]
    results = {}
    for scheme in ("none", "speck-64/128-cbc-mac", "hmac-sha1",
                   "ecdsa-secp160r1"):
        result = run_dos_flood(auth_scheme=scheme, rate_per_second=RATE,
                               duration_seconds=DURATION,
                               device_config=DeviceConfig(
                                   ram_size=config.ram_size,
                                   flash_size=config.flash_size,
                                   app_size=config.app_size),
                               seed="dos-demo")
        results[scheme] = result
        rows.append([scheme, str(result.accepted), str(result.rejected),
                     f"{result.active_seconds:.3f}",
                     f"{100 * result.duty_fraction:.3f}",
                     f"{result.energy_mj:.3f}"])
    print(render_table(rows))

    none, speck = results["none"], results["speck-64/128-cbc-mac"]
    ecdsa = results["ecdsa-secp160r1"]
    print(f"\nUnauthenticated: the flood stole "
          f"{100 * none.duty_fraction:.1f}% of the device's time.")
    print(f"Speck MAC: the same flood cost "
          f"{speck.active_seconds * 1000:.1f} ms total -- three orders of "
          f"magnitude less.")
    print(f"ECDSA: validating-and-rejecting cost "
          f"{ecdsa.active_seconds:.1f} s, i.e. "
          f"{ecdsa.active_seconds / none.active_seconds:.1f}x the "
          f"*unauthenticated* prover's loss on this device size: the "
          f"defence became the attack (Section 4.1).")

    # Real-time impact: a 10 Hz control loop during the unauthenticated
    # flood (Section 3.1's "takes Prv away from its primary tasks").
    task = DutyCycleTask("control", period_seconds=0.1, job_cycles=240_000)
    # Reconstruct blocked intervals from the prover's busy log.
    print("\nPrimary-task impact (10 Hz control loop, 10 ms job):")
    attest_s = none.active_seconds / max(1, none.accepted)
    per_attack_missed = DutyCycleTask("x", 0.1, 240_000)
    per_attack_missed.record_blocked(0.0, attest_s)
    missed = per_attack_missed.missed_deadlines(attest_s + 0.1)
    print(f"  each forged request blanks ~{attest_s * 1000:.0f} ms "
          f"=> ~{missed} consecutive control deadlines missed, "
          f"{none.accepted} times over the flood window.")


if __name__ == "__main__":
    main()
