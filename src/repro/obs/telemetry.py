"""The telemetry facade instrumented components report into.

Components hold a telemetry object and call it unconditionally; by
default that object is :data:`NULL_TELEMETRY`, whose every method is a
``pass`` -- so un-observed simulations pay a single attribute load and
call per hook, and zero allocation.  Attaching a real
:class:`Telemetry` turns the same hooks into registry updates and trace
records without any behavioural change to the pipeline.

Extra-hot paths (per-cycle accounting in :class:`repro.mcu.cpu.CPU`)
additionally guard on :attr:`enabled` so even the no-op call is skipped.
"""

from __future__ import annotations

from .registry import DEFAULT_CYCLE_BUCKETS, MetricsRegistry
from .trace import EventTrace

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


class Telemetry:
    """A metrics registry and an event trace behind one reporting API."""

    enabled = True

    def __init__(self, registry: MetricsRegistry | None = None,
                 trace: EventTrace | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.trace = trace if trace is not None else EventTrace()

    # -- reporting hooks -------------------------------------------------

    def event(self, kind: str, time: float, **fields) -> None:
        """Record one typed trace event at simulated ``time``."""
        self.trace.record(kind, time, **fields)

    def count(self, name: str, amount: int | float = 1, **labels) -> None:
        """Increment a counter."""
        self.registry.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: int | float, **labels) -> None:
        """Set a gauge to a point-in-time value."""
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: int | float,
                buckets=DEFAULT_CYCLE_BUCKETS, **labels) -> None:
        """Record one histogram observation."""
        self.registry.histogram(name, buckets=buckets, **labels).observe(value)


class NullTelemetry:
    """The default sink: every hook is a no-op.

    Shares :class:`Telemetry`'s reporting surface so components never
    branch on whether anyone is observing.  ``registry`` and ``trace``
    are ``None`` on purpose -- reading metrics off the null sink is a
    bug, and an ``AttributeError`` beats silent zeros.
    """

    enabled = False
    registry = None
    trace = None

    __slots__ = ()

    def event(self, kind: str, time: float, **fields) -> None:
        pass

    def count(self, name: str, amount: int | float = 1, **labels) -> None:
        pass

    def set_gauge(self, name: str, value: int | float, **labels) -> None:
        pass

    def observe(self, name: str, value: int | float,
                buckets=DEFAULT_CYCLE_BUCKETS, **labels) -> None:
        pass


#: Shared no-op sink; components default to this when no telemetry is
#: attached.
NULL_TELEMETRY = NullTelemetry()
