"""Schemas for exported telemetry, plus a dependency-free validator.

Two artefacts leave the simulator:

* the **event trace**, as JSON lines -- each line one object matching
  :data:`EVENT_SCHEMA`;
* the **registry dump**, one JSON object matching
  :data:`REGISTRY_SCHEMA`.

The schema dictionaries use a pragmatic subset of JSON-Schema vocabulary
(``type``, ``required``, ``properties``, ``enum``) that
:func:`validate_event` / :func:`validate_registry_dump` interpret
directly -- the container has no ``jsonschema`` package, and the subset
is all the smoke tooling needs.  Validators return a list of error
strings (empty = valid) so CI can print every problem at once.
"""

from __future__ import annotations

import json

from ..fastpath import ENGINES
from .trace import EVENT_KINDS

__all__ = ["EVENT_SCHEMA", "REGISTRY_SCHEMA", "WALLCLOCK_SCHEMA",
           "ANALYSIS_SCHEMA", "FLEET_SCHEMA", "INCREMENTAL_SCHEMA",
           "SERVICE_SCHEMA", "SNAPSHOT_SCHEMA", "SNAPSHOT_SCHEMA_ID",
           "SNAPSHOT_DELTA_SCHEMA", "SNAPSHOT_DELTA_SCHEMA_ID",
           "SNAPSHOT_BENCH_SCHEMA",
           "METRIC_NAMES", "INVARIANT_NAMES", "LINT_RULE_IDS",
           "TAINT_RULE_IDS",
           "validate_event", "validate_jsonl_trace",
           "validate_registry_dump", "validate_wallclock_report",
           "validate_analysis_report", "validate_fleet_report",
           "validate_incremental_report", "validate_service_report",
           "validate_snapshot", "validate_snapshot_delta",
           "validate_snapshot_report"]

#: The closed vocabulary of metric (counter/gauge/histogram) names the
#: instrumentation may emit.  `repro.analysis.lint` rule TEL001 checks
#: every literal name at a telemetry call site against this set, so a
#: typo in instrumentation fails `repro lint` instead of silently
#: producing an unknown series in the registry export.
METRIC_NAMES = frozenset({
    # network channel
    "channel.delivered",
    "channel.dropped",
    "channel.duplicated",
    "channel.injected",
    "channel.pending_events",
    "channel.sent",
    # device hardware
    "cpu.cycles",
    "device.battery_fraction_remaining",
    "device.clock_wraps",
    "device.energy_consumed_mj",
    "device.flash_bytes",
    "device.mpu_faults",
    "device.mpu_rules",
    "device.ram_bytes",
    "device.writable_bytes",
    # prover trust anchor
    "prover.attestation_cycles",
    "prover.attestation_cycles_per_request",
    "prover.freshness_state_bytes",
    "prover.nonce_count",
    "prover.requests.accepted",
    "prover.requests.received",
    "prover.requests.rejected",
    "prover.validation_cycles",
    "prover.validation_cycles_per_request",
    # verifier-side resilience and operations
    "monitor.backoff_seconds",
    "monitor.events",
    "session.backoff_seconds",
    "session.retries",
    "session.timeouts",
    # verifier service tier (admission control; see docs/service.md)
    "service.admitted",
    "service.rejected",
    "service.rounds",
    # host-side snapshot blob store (exported on demand via
    # ``BlobStore.publish``; never published from ``put``)
    "snapshot.blobs",
    "snapshot.bytes",
    # host-side state digest cache (exported on demand via
    # ``StateDigestCache.publish``; never published mid-sweep)
    "statecache.evictions",
    "statecache.hits",
    "statecache.misses",
    "swarm.breaker_transitions",
    "verifier.requests_issued",
    "verifier.responses_validated",
    "verifier.timeouts",
    "verifier.verdicts",
})

#: The closed set of protection invariants `repro.analysis.invariants`
#: checks statically against a booted device's EA-MPU rule table
#: (Sections 5/6 of the paper; see ``docs/static-analysis.md``).
INVARIANT_NAMES = frozenset({
    "rule-budget",
    "secure-boot-coverage",
    "mpu-lockdown",
    "no-widening-overlap",
    "key-confidentiality",
    "counter-rollback-protection",
    "clock-integrity",
})

#: The closed set of lint rule identifiers `repro.analysis.lint` emits.
LINT_RULE_IDS = frozenset({
    "DET001",   # host clock use in simulated-path modules
    "DET002",   # stdlib random in simulated-path modules
    "FLT001",   # float arithmetic in cycle-accounting functions
    "TEL001",   # telemetry name not in the schema vocabulary
    "DEP001",   # deprecated alias use
})

#: The closed set of key-confidentiality rule identifiers
#: ``repro.analysis.taint`` emits.
TAINT_RULE_IDS = frozenset({
    "KEY001",   # key-tagged value reaches a forbidden host sink
    "KEY002",   # key content decides a telemetered branch (shape leak)
    "KEY003",   # undeclared host-boundary write signature
})

#: Schema of one trace-event object (one JSON line of the export).
EVENT_SCHEMA = {
    "type": "object",
    "required": ["seq", "time", "kind"],
    "properties": {
        "seq": {"type": "integer", "minimum": 0},
        "time": {"type": "number", "minimum": 0},
        "kind": {"type": "string", "enum": sorted(EVENT_KINDS)},
    },
    # Any additional property must be a JSON scalar.
    "additional_scalars": True,
}

#: Schema of the registry dump object.
REGISTRY_SCHEMA = {
    "type": "object",
    "required": ["schema", "metrics"],
    "properties": {
        "schema": {"type": "string",
                   "enum": ["repro.obs.registry/v1"]},
        "metrics": {"type": "array"},
    },
}

#: Schema of one metric snapshot inside the registry dump.
_METRIC_SCHEMA = {
    "type": "object",
    "required": ["kind", "name", "labels"],
    "properties": {
        "kind": {"type": "string",
                 "enum": ["counter", "gauge", "histogram"]},
        "name": {"type": "string"},
        "labels": {"type": "object"},
    },
}

_HISTOGRAM_REQUIRED = ("buckets", "bucket_counts", "overflow", "count", "sum")

#: Schema of the host wall-clock benchmark report
#: (``BENCH_wallclock.json`` at the repository root, written by
#: ``benchmarks/bench_wallclock.py``; see ``docs/performance.md``).
WALLCLOCK_SCHEMA = {
    "type": "object",
    "required": ["schema", "engine_default", "sweep", "naive_baseline",
                 "speedup", "hmac_cache", "equivalence"],
    "properties": {
        "schema": {"type": "string",
                   "enum": ["repro.perf.wallclock/v1"]},
        "engine_default": {"type": "string", "enum": sorted(ENGINES)},
        "sweep": {"type": "array"},
        "naive_baseline": {"type": "object"},
        "speedup": {"type": "object"},
        "hmac_cache": {"type": "object"},
        "equivalence": {"type": "object"},
    },
}

#: Schema of one measurement-sweep entry inside the wall-clock report.
_SWEEP_ENTRY_SCHEMA = {
    "type": "object",
    "required": ["ram_kb", "writable_kb", "engine", "seconds", "mb_per_s",
                 "digest"],
    "properties": {
        "ram_kb": {"type": "integer", "minimum": 1},
        "writable_kb": {"type": "integer", "minimum": 1},
        "engine": {"type": "string", "enum": sorted(ENGINES)},
        "seconds": {"type": "number", "minimum": 0},
        "mb_per_s": {"type": "number", "minimum": 0},
        "digest": {"type": "string"},
    },
}

_SPEEDUP_SCHEMA = {
    "type": "object",
    "required": ["ram_kb", "naive_seconds", "fast_seconds", "factor"],
    "properties": {
        "ram_kb": {"type": "integer", "minimum": 1},
        "naive_seconds": {"type": "number", "minimum": 0},
        "fast_seconds": {"type": "number", "minimum": 0},
        "factor": {"type": "number", "minimum": 0},
    },
}

_EQUIVALENCE_SCHEMA = {
    "type": "object",
    "required": ["ram_kb", "rounds", "identical", "engines"],
    "properties": {
        "ram_kb": {"type": "integer", "minimum": 1},
        "rounds": {"type": "integer", "minimum": 1},
        "identical": {"type": "boolean"},
        "engines": {"type": "object"},
    },
}

#: Schema of the fleet throughput benchmark report
#: (``BENCH_fleet.json`` at the repository root, written by
#: ``benchmarks/bench_fleet_operations.py``; see ``docs/fleet-scale.md``).
FLEET_SCHEMA = {
    "type": "object",
    "required": ["schema", "fleet_size", "workers", "sweeps", "sequential",
                 "parallel", "speedup", "spinup", "cache", "equivalence"],
    "properties": {
        "schema": {"type": "string", "enum": ["repro.perf.fleet/v1"]},
        "fleet_size": {"type": "integer", "minimum": 1},
        "ram_kb": {"type": "integer", "minimum": 1},
        "workers": {"type": "integer", "minimum": 1},
        "sweeps": {"type": "integer", "minimum": 1},
        "host": {"type": "object"},
        "sequential": {"type": "object"},
        "parallel": {"type": "object"},
        "speedup": {"type": "number", "minimum": 0},
        "spinup": {"type": "object"},
        "cache": {"type": "object"},
        "reports_identical": {"type": "boolean"},
        "equivalence": {"type": "object"},
    },
}

#: Schema of one timing block (sequential or parallel) in the fleet
#: report.
_FLEET_TIMING_SCHEMA = {
    "type": "object",
    "required": ["spinup_seconds", "sweep_seconds", "devices_per_second",
                 "attempted", "trusted"],
    "properties": {
        "spinup_seconds": {"type": "number", "minimum": 0},
        "sweep_seconds": {"type": "number", "minimum": 0},
        "devices_per_second": {"type": "number", "minimum": 0},
        "attempted": {"type": "integer", "minimum": 0},
        "trusted": {"type": "integer", "minimum": 0},
    },
}

_FLEET_SPINUP_SCHEMA = {
    "type": "object",
    "required": ["sequential_seconds", "parallel_seconds", "factor"],
    "properties": {
        "sequential_seconds": {"type": "number", "minimum": 0},
        "parallel_seconds": {"type": "number", "minimum": 0},
        "factor": {"type": "number", "minimum": 0},
        "cached_inprocess_seconds": {"type": "number", "minimum": 0},
        "cached_factor": {"type": "number", "minimum": 0},
    },
}

_FLEET_CACHE_SCHEMA = {
    "type": "object",
    "required": ["hits", "misses", "entries"],
    "properties": {
        "hits": {"type": "integer", "minimum": 0},
        "misses": {"type": "integer", "minimum": 0},
        "entries": {"type": "integer", "minimum": 0},
    },
}

_FLEET_EQUIVALENCE_SCHEMA = {
    "type": "object",
    "required": ["fleet_size", "workers", "sweeps", "identical",
                 "mismatched_fields"],
    "properties": {
        "fleet_size": {"type": "integer", "minimum": 1},
        "workers": {"type": "integer", "minimum": 2},
        "sweeps": {"type": "integer", "minimum": 1},
        "identical": {"type": "boolean"},
        "mismatched_fields": {"type": "array"},
    },
}

#: Schema of the incremental-attestation benchmark report
#: (``BENCH_incremental.json`` at the repository root, written by
#: ``benchmarks/bench_incremental.py``; see ``docs/performance.md``).
INCREMENTAL_SCHEMA = {
    "type": "object",
    "required": ["schema", "fleet_size", "ram_kb", "writable_kb", "sweeps",
                 "chunk_size", "arity", "points", "gate", "equivalence"],
    "properties": {
        "schema": {"type": "string",
                   "enum": ["repro.perf.incremental/v1"]},
        "fleet_size": {"type": "integer", "minimum": 1},
        "ram_kb": {"type": "integer", "minimum": 1},
        "writable_kb": {"type": "integer", "minimum": 1},
        "sweeps": {"type": "integer", "minimum": 1},
        "chunk_size": {"type": "integer", "minimum": 1},
        "arity": {"type": "integer", "minimum": 2},
        "host": {"type": "object"},
        "points": {"type": "array"},
        "gate": {"type": "object"},
        "equivalence": {"type": "object"},
    },
}

#: Schema of one dirty-fraction measurement point in the incremental
#: report.
_INCREMENTAL_POINT_SCHEMA = {
    "type": "object",
    "required": ["dirty_fraction", "dirty_kb", "full_seconds",
                 "incremental_seconds", "speedup"],
    "properties": {
        "dirty_fraction": {"type": "number", "minimum": 0},
        "dirty_kb": {"type": "integer", "minimum": 0},
        "full_seconds": {"type": "number", "minimum": 0},
        "incremental_seconds": {"type": "number", "minimum": 0},
        "speedup": {"type": "number", "minimum": 0},
        "full_cache": {"type": "object"},
        "incremental_cache": {"type": "object"},
        "tree": {"type": "object"},
    },
}

_INCREMENTAL_GATE_SCHEMA = {
    "type": "object",
    "required": ["dirty_fraction", "speedup", "threshold", "passed"],
    "properties": {
        "dirty_fraction": {"type": "number", "minimum": 0},
        "speedup": {"type": "number", "minimum": 0},
        "threshold": {"type": "number", "minimum": 0},
        "passed": {"type": "boolean"},
    },
}

_INCREMENTAL_EQUIVALENCE_SCHEMA = {
    "type": "object",
    "required": ["identical", "scenarios"],
    "properties": {
        "identical": {"type": "boolean"},
        "scenarios": {"type": "object"},
    },
}


#: Schema of the delta-checkpoint benchmark report
#: (``BENCH_snapshot.json`` at the repository root, written by
#: ``benchmarks/bench_snapshot.py``; see ``docs/checkpoint.md``).
SNAPSHOT_BENCH_SCHEMA = {
    "type": "object",
    "required": ["schema", "fleet_size", "ram_kb", "workers", "rounds",
                 "chunk_size", "points", "gate", "equivalence"],
    "properties": {
        "schema": {"type": "string",
                   "enum": ["repro.perf.snapshot/v1"]},
        "fleet_size": {"type": "integer", "minimum": 1},
        "ram_kb": {"type": "integer", "minimum": 1},
        "workers": {"type": "integer", "minimum": 1},
        "rounds": {"type": "integer", "minimum": 1},
        "chunk_size": {"type": "integer", "minimum": 1},
        "host": {"type": "object"},
        "points": {"type": "array"},
        "gate": {"type": "object"},
        "equivalence": {"type": "object"},
    },
}

#: Schema of one dirty-fraction measurement point in the snapshot
#: report.
_SNAPSHOT_POINT_SCHEMA = {
    "type": "object",
    "required": ["dirty_fraction", "shared_content", "full_seconds",
                 "delta_seconds", "speedup", "full_bytes", "delta_bytes",
                 "bytes_reduction", "chain_identical"],
    "properties": {
        "dirty_fraction": {"type": "number", "minimum": 0},
        "shared_content": {"type": "boolean"},
        "full_seconds": {"type": "number", "minimum": 0},
        "delta_seconds": {"type": "number", "minimum": 0},
        "speedup": {"type": "number", "minimum": 0},
        "full_bytes": {"type": "integer", "minimum": 0},
        "delta_bytes": {"type": "integer", "minimum": 0},
        "bytes_reduction": {"type": "number", "minimum": 0},
        "chain_identical": {"type": "boolean"},
    },
}

_SNAPSHOT_GATE_SCHEMA = {
    "type": "object",
    "required": ["dirty_fraction", "speedup", "speedup_threshold",
                 "bytes_reduction", "bytes_threshold", "passed"],
    "properties": {
        "dirty_fraction": {"type": "number", "minimum": 0},
        "speedup": {"type": "number", "minimum": 0},
        "speedup_threshold": {"type": "number", "minimum": 0},
        "bytes_reduction": {"type": "number", "minimum": 0},
        "bytes_threshold": {"type": "number", "minimum": 0},
        "passed": {"type": "boolean"},
    },
}

_SNAPSHOT_EQUIVALENCE_SCHEMA = {
    "type": "object",
    "required": ["identical", "mismatched_fields"],
    "properties": {
        "identical": {"type": "boolean"},
        "mismatched_fields": {"type": "array"},
    },
}


#: Schema of the verifier-service load benchmark report
#: (``BENCH_service.json`` at the repository root, written by
#: ``benchmarks/bench_service.py``; see ``docs/service.md``).
SERVICE_SCHEMA = {
    "type": "object",
    "required": ["schema", "size", "tenants", "backends", "duty_fraction",
                 "points", "gate", "equivalence"],
    "properties": {
        "schema": {"type": "string", "enum": ["repro.perf.service/v1"]},
        "size": {"type": "integer", "minimum": 1},
        "tenants": {"type": "integer", "minimum": 1},
        "backends": {"type": "integer", "minimum": 1},
        "duty_fraction": {"type": "number", "minimum": 0},
        "host": {"type": "object"},
        "points": {"type": "array"},
        "gate": {"type": "object"},
        "equivalence": {"type": "object"},
    },
}

#: Schema of one offered-load point in the service report.
_SERVICE_POINT_SCHEMA = {
    "type": "object",
    "required": ["offered", "admitted", "rejected", "peak_in_flight",
                 "sessions_per_second", "p50_latency_ms", "p99_latency_ms",
                 "wall_seconds"],
    "properties": {
        "offered": {"type": "integer", "minimum": 0},
        "admitted": {"type": "integer", "minimum": 0},
        "rejected": {"type": "integer", "minimum": 0},
        "peak_in_flight": {"type": "integer", "minimum": 0},
        "sessions_per_second": {"type": "number", "minimum": 0},
        "p50_latency_ms": {"type": "number", "minimum": 0},
        "p99_latency_ms": {"type": "number", "minimum": 0},
        "wall_seconds": {"type": "number", "minimum": 0},
        "waves": {"type": "integer", "minimum": 1},
        "workers": {"type": "integer", "minimum": 1},
    },
}

_SERVICE_GATE_SCHEMA = {
    "type": "object",
    "required": ["max_peak_in_flight", "required_in_flight", "passed"],
    "properties": {
        "max_peak_in_flight": {"type": "integer", "minimum": 0},
        "required_in_flight": {"type": "integer", "minimum": 0},
        "passed": {"type": "boolean"},
    },
}

_SERVICE_EQUIVALENCE_SCHEMA = {
    "type": "object",
    "required": ["workers", "identical", "mismatched_fields"],
    "properties": {
        "workers": {"type": "integer", "minimum": 1},
        "identical": {"type": "boolean"},
        "mismatched_fields": {"type": "array"},
    },
}


#: Version identifier of checkpoint/restore snapshot documents
#: (see ``repro.snapshot`` and ``docs/checkpoint.md``).
SNAPSHOT_SCHEMA_ID = "repro.snapshot/v1"

#: Schema of a checkpoint/restore snapshot envelope.  The ``state``
#: payload is kind-specific (session/swarm/fleet) and is checked
#: structurally by the restore path itself, which refuses any document
#: that does not match the rebuilt object; the envelope schema pins the
#: version, the kind vocabulary and the content-addressed blob map.
SNAPSHOT_SCHEMA = {
    "type": "object",
    "required": ["schema", "kind", "blobs", "state"],
    "properties": {
        "schema": {"type": "string", "enum": [SNAPSHOT_SCHEMA_ID]},
        "kind": {"type": "string",
                 "enum": ["session", "swarm", "fleet", "service"]},
        "blobs": {"type": "object"},
        "state": {"type": "object"},
        "meta": {"type": "object"},
    },
}

#: Schema of the per-kind required keys inside a snapshot's ``state``.
_SNAPSHOT_STATE_REQUIRED = {
    "session": ("sim", "device", "channel", "verifier", "verifier_node",
                "anchor"),
    "swarm": ("sweeps_run", "members", "breakers"),
    "fleet": ("workers", "sweeps_run", "shards"),
    "service": ("virtual_now", "members", "buckets"),
}

#: Version identifier of *delta* checkpoint documents: a checkpoint
#: recorded against a parent document, carrying per region only the
#: chunks whose ``DigestTree`` leaves are dirty since the parent (see
#: ``repro.snapshot.delta`` and ``docs/checkpoint.md``).
SNAPSHOT_DELTA_SCHEMA_ID = "repro.snapshot.delta/v1"

#: Schema of a delta-checkpoint envelope.  Same shape as
#: :data:`SNAPSHOT_SCHEMA` plus the mandatory ``parent_id`` -- the
#: canonical-JSON SHA-1 of the parent document, which chains deltas and
#: lets restore refuse a mismatched parent.  The service kind has no
#: region images and therefore no delta form.
SNAPSHOT_DELTA_SCHEMA = {
    "type": "object",
    "required": ["schema", "kind", "blobs", "state", "parent_id"],
    "properties": {
        "schema": {"type": "string", "enum": [SNAPSHOT_DELTA_SCHEMA_ID]},
        "kind": {"type": "string",
                 "enum": ["session", "swarm", "fleet"]},
        "blobs": {"type": "object"},
        "state": {"type": "object"},
        "parent_id": {"type": "string"},
        "meta": {"type": "object"},
    },
}


#: Schema of the static-analysis report (``repro verify-profile --json``,
#: ``repro lint --json`` and ``scripts/analysis_smoke.py`` all emit or
#: embed this envelope; byte-identical for identical inputs).
ANALYSIS_SCHEMA = {
    "type": "object",
    "required": ["schema", "profiles", "lint"],
    "properties": {
        "schema": {"type": "string", "enum": ["repro.analysis/v1"]},
        "profiles": {"type": "array"},
        "lint": {"type": "object"},
        "taint": {"type": "object"},
    },
}

#: Schema of one per-profile invariant report inside the analysis report.
_PROFILE_REPORT_SCHEMA = {
    "type": "object",
    "required": ["profile", "clock_kind", "holds", "verdicts"],
    "properties": {
        "profile": {"type": "string"},
        "clock_kind": {"type": "string",
                       "enum": ["hw64", "hw32div", "sw", "none"]},
        "holds": {"type": "boolean"},
        "verdicts": {"type": "array"},
    },
}

#: Schema of one invariant verdict.
_VERDICT_SCHEMA = {
    "type": "object",
    "required": ["invariant", "holds", "detail"],
    "properties": {
        "invariant": {"type": "string", "enum": sorted(INVARIANT_NAMES)},
        "holds": {"type": "boolean"},
        "detail": {"type": "string"},
        "attack": {"type": "string"},
        "counterexample": {"type": "object"},
    },
}

#: Schema of the lint section of the analysis report.
_LINT_REPORT_SCHEMA = {
    "type": "object",
    "required": ["files_scanned", "clean", "violations", "waived"],
    "properties": {
        "files_scanned": {"type": "integer", "minimum": 0},
        "clean": {"type": "boolean"},
        "violations": {"type": "array"},
        "waived": {"type": "array"},
        "stale_waivers": {"type": "array"},
    },
}

#: Schema of the taint section of the analysis report.
_TAINT_REPORT_SCHEMA = {
    "type": "object",
    "required": ["files_scanned", "clean", "violations", "waived",
                 "sinks", "stale_policy"],
    "properties": {
        "files_scanned": {"type": "integer", "minimum": 0},
        "clean": {"type": "boolean"},
        "violations": {"type": "array"},
        "waived": {"type": "array"},
        "sinks": {"type": "array"},
        "stale_policy": {"type": "array"},
        "rounds": {"type": "integer", "minimum": 0},
    },
}

#: Schema of one taint violation entry (waived or not).
_TAINT_VIOLATION_SCHEMA = {
    "type": "object",
    "required": ["rule", "path", "line", "message"],
    "properties": {
        "rule": {"type": "string", "enum": sorted(TAINT_RULE_IDS)},
        "path": {"type": "string"},
        "line": {"type": "integer", "minimum": 0},
        "col": {"type": "integer", "minimum": 0},
        "message": {"type": "string"},
        "sink": {"type": "string"},
        "chain": {"type": "array"},
        "waiver_reason": {"type": "string"},
    },
}

#: Schema of one lint violation entry (waived or not).
_LINT_VIOLATION_SCHEMA = {
    "type": "object",
    "required": ["rule", "path", "line", "message"],
    "properties": {
        "rule": {"type": "string", "enum": sorted(LINT_RULE_IDS)},
        "path": {"type": "string"},
        "line": {"type": "integer", "minimum": 0},
        "col": {"type": "integer", "minimum": 0},
        "message": {"type": "string"},
        "waiver_reason": {"type": "string"},
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: (isinstance(v, (int, float))
                         and not isinstance(v, bool)),
}

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check(obj, schema, path: str) -> list[str]:
    errors = []
    check = _TYPE_CHECKS[schema["type"]]
    if not check(obj):
        return [f"{path}: expected {schema['type']}, "
                f"got {type(obj).__name__}"]
    if schema["type"] != "object":
        return errors
    for key in schema.get("required", ()):
        if key not in obj:
            errors.append(f"{path}: missing required key {key!r}")
    for key, sub in schema.get("properties", {}).items():
        if key not in obj:
            continue
        value = obj[key]
        sub_path = f"{path}.{key}"
        type_check = _TYPE_CHECKS[sub["type"]]
        if not type_check(value):
            errors.append(f"{sub_path}: expected {sub['type']}, "
                          f"got {type(value).__name__}")
            continue
        if "enum" in sub and value not in sub["enum"]:
            errors.append(f"{sub_path}: {value!r} not in allowed values")
        if "minimum" in sub and value < sub["minimum"]:
            errors.append(f"{sub_path}: {value!r} below minimum "
                          f"{sub['minimum']}")
    if schema.get("additional_scalars"):
        known = set(schema.get("properties", ()))
        for key, value in obj.items():
            if key not in known and not isinstance(value, _SCALAR_TYPES):
                errors.append(f"{path}.{key}: field must be a JSON scalar, "
                              f"got {type(value).__name__}")
    return errors


def validate_event(event: dict) -> list[str]:
    """Validate one decoded trace-event object; returns error strings."""
    return _check(event, EVENT_SCHEMA, "event")


def validate_jsonl_trace(text: str) -> list[str]:
    """Validate a whole JSON-lines trace export.

    Checks each line parses as JSON, matches :data:`EVENT_SCHEMA`, and
    that sequence numbers strictly increase (append-only invariant).
    """
    errors = []
    last_seq = -1
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: invalid JSON ({exc})")
            continue
        for error in validate_event(event):
            errors.append(f"line {number}: {error}")
        seq = event.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                errors.append(f"line {number}: seq {seq} not increasing")
            last_seq = seq
    return errors


def validate_registry_dump(dump: dict) -> list[str]:
    """Validate a decoded registry dump object; returns error strings."""
    errors = _check(dump, REGISTRY_SCHEMA, "registry")
    for index, metric in enumerate(dump.get("metrics", [])
                                   if isinstance(dump, dict) else []):
        path = f"registry.metrics[{index}]"
        errors.extend(_check(metric, _METRIC_SCHEMA, path))
        if not isinstance(metric, dict):
            continue
        if metric.get("kind") == "histogram":
            for key in _HISTOGRAM_REQUIRED:
                if key not in metric:
                    errors.append(f"{path}: histogram missing {key!r}")
        elif metric.get("kind") in ("counter", "gauge"):
            if not isinstance(metric.get("value"),
                              (int, float)) or isinstance(
                                  metric.get("value"), bool):
                errors.append(f"{path}: {metric.get('kind')} needs a "
                              f"numeric 'value'")
    return errors


def validate_wallclock_report(report: dict) -> list[str]:
    """Validate a decoded ``BENCH_wallclock.json`` report object.

    Checks the report envelope, every sweep entry, the naive baseline,
    the speedup and equivalence blocks.  Shape only -- whether the
    equivalence block is *clean* (``identical: true``) is policy, and
    ``scripts/perf_smoke.py`` enforces it separately.
    """
    errors = _check(report, WALLCLOCK_SCHEMA, "wallclock")
    if not isinstance(report, dict):
        return errors
    for index, entry in enumerate(report.get("sweep", [])
                                  if isinstance(report.get("sweep"), list)
                                  else []):
        errors.extend(_check(entry, _SWEEP_ENTRY_SCHEMA,
                             f"wallclock.sweep[{index}]"))
    if "naive_baseline" in report:
        errors.extend(_check(report["naive_baseline"], _SWEEP_ENTRY_SCHEMA,
                             "wallclock.naive_baseline"))
        baseline = report["naive_baseline"]
        if isinstance(baseline, dict) and baseline.get("engine") not in (
                None, "naive"):
            errors.append("wallclock.naive_baseline: engine must be 'naive'")
    if "speedup" in report:
        errors.extend(_check(report["speedup"], _SPEEDUP_SCHEMA,
                             "wallclock.speedup"))
    if "equivalence" in report:
        errors.extend(_check(report["equivalence"], _EQUIVALENCE_SCHEMA,
                             "wallclock.equivalence"))
    return errors


def validate_fleet_report(report: dict) -> list[str]:
    """Validate a decoded ``BENCH_fleet.json`` report object.

    Checks the envelope, both timing blocks, the spin-up and cache
    blocks and the parallel-vs-sequential equivalence block.  Shape
    only -- whether the equivalence block is *clean* and the speedup
    meets the >=2x gate is policy, enforced by the benchmark itself and
    ``scripts/fleet_smoke.py``.
    """
    errors = _check(report, FLEET_SCHEMA, "fleet")
    if not isinstance(report, dict):
        return errors
    for key in ("sequential", "parallel"):
        if isinstance(report.get(key), dict):
            errors.extend(_check(report[key], _FLEET_TIMING_SCHEMA,
                                 f"fleet.{key}"))
    if isinstance(report.get("spinup"), dict):
        errors.extend(_check(report["spinup"], _FLEET_SPINUP_SCHEMA,
                             "fleet.spinup"))
    if isinstance(report.get("cache"), dict):
        errors.extend(_check(report["cache"], _FLEET_CACHE_SCHEMA,
                             "fleet.cache"))
    if isinstance(report.get("equivalence"), dict):
        errors.extend(_check(report["equivalence"],
                             _FLEET_EQUIVALENCE_SCHEMA,
                             "fleet.equivalence"))
    return errors


def validate_incremental_report(report: dict) -> list[str]:
    """Validate a decoded ``BENCH_incremental.json`` report object.

    Checks the envelope, every dirty-fraction point, the speedup gate
    and the equivalence block.  Shape only -- whether the gate *passed*
    and the equivalence block is clean is policy, enforced by the
    benchmark itself and ``scripts/incremental_smoke.py``.
    """
    errors = _check(report, INCREMENTAL_SCHEMA, "incremental")
    if not isinstance(report, dict):
        return errors
    points = report.get("points")
    for index, point in enumerate(points
                                  if isinstance(points, list) else []):
        errors.extend(_check(point, _INCREMENTAL_POINT_SCHEMA,
                             f"incremental.points[{index}]"))
    if isinstance(report.get("gate"), dict):
        errors.extend(_check(report["gate"], _INCREMENTAL_GATE_SCHEMA,
                             "incremental.gate"))
    if isinstance(report.get("equivalence"), dict):
        errors.extend(_check(report["equivalence"],
                             _INCREMENTAL_EQUIVALENCE_SCHEMA,
                             "incremental.equivalence"))
    return errors


def validate_service_report(report: dict) -> list[str]:
    """Validate a decoded ``BENCH_service.json`` report object.

    Checks the envelope, every offered-load point, the concurrency gate
    and the serviced-vs-sequential equivalence block.  Shape only --
    whether the gate *passed* and the equivalence block is clean is
    policy, enforced by the benchmark itself and
    ``scripts/service_smoke.py``.
    """
    errors = _check(report, SERVICE_SCHEMA, "service")
    if not isinstance(report, dict):
        return errors
    points = report.get("points")
    for index, point in enumerate(points
                                  if isinstance(points, list) else []):
        errors.extend(_check(point, _SERVICE_POINT_SCHEMA,
                             f"service.points[{index}]"))
    if isinstance(report.get("gate"), dict):
        errors.extend(_check(report["gate"], _SERVICE_GATE_SCHEMA,
                             "service.gate"))
    if isinstance(report.get("equivalence"), dict):
        errors.extend(_check(report["equivalence"],
                             _SERVICE_EQUIVALENCE_SCHEMA,
                             "service.equivalence"))
    return errors


def validate_snapshot(document: dict) -> list[str]:
    """Validate a decoded ``repro.snapshot/v1`` envelope.

    Checks the envelope shape, that every blob key looks like a hex
    fingerprint with a string payload, and that the ``state`` payload
    carries the top-level keys its ``kind`` requires.  Field-by-field
    consistency with a rebuilt object is the restore path's job.
    """
    errors = _check(document, SNAPSHOT_SCHEMA, "snapshot")
    if not isinstance(document, dict):
        return errors
    blobs = document.get("blobs")
    if isinstance(blobs, dict):
        for key, value in blobs.items():
            if not (isinstance(key, str)
                    and all(c in "0123456789abcdef" for c in key)):
                errors.append(f"snapshot.blobs: key {key!r} is not a hex "
                              f"fingerprint")
            if not isinstance(value, str):
                errors.append(f"snapshot.blobs[{key!r}]: image must be a "
                              f"base64 string")
    state = document.get("state")
    required = _SNAPSHOT_STATE_REQUIRED.get(document.get("kind"))
    if isinstance(state, dict) and required is not None:
        for key in required:
            if key not in state:
                errors.append(f"snapshot.state: missing required key "
                              f"{key!r} for kind {document['kind']!r}")
    return errors


def validate_snapshot_delta(document: dict) -> list[str]:
    """Validate a decoded ``repro.snapshot.delta/v1`` envelope.

    Same structural checks as :func:`validate_snapshot` (blob keys are
    content-address hex -- region fingerprints, chunk leaf digests or
    chunk-index digests -- with string payloads; per-kind state keys)
    plus the ``parent_id`` chain link.  Whether the parent actually
    matches is the materialization path's job.
    """
    errors = _check(document, SNAPSHOT_DELTA_SCHEMA, "snapshot-delta")
    if not isinstance(document, dict):
        return errors
    blobs = document.get("blobs")
    if isinstance(blobs, dict):
        for key, value in blobs.items():
            if not (isinstance(key, str)
                    and all(c in "0123456789abcdef" for c in key)):
                errors.append(f"snapshot-delta.blobs: key {key!r} is not "
                              f"a hex content address")
            if not isinstance(value, str):
                errors.append(f"snapshot-delta.blobs[{key!r}]: payload "
                              f"must be a base64 string")
    state = document.get("state")
    required = _SNAPSHOT_STATE_REQUIRED.get(document.get("kind"))
    if isinstance(state, dict) and required is not None:
        for key in required:
            if key not in state:
                errors.append(f"snapshot-delta.state: missing required "
                              f"key {key!r} for kind "
                              f"{document['kind']!r}")
    return errors


def validate_snapshot_report(report: dict) -> list[str]:
    """Validate a decoded ``BENCH_snapshot.json`` report object.

    Checks the envelope, every dirty-fraction point, the speedup/bytes
    gate and the delta-chain equivalence block.  Shape only -- whether
    the gate *passed* and the equivalence block is clean is policy,
    enforced by the benchmark itself and ``scripts/delta_smoke.py``.
    """
    errors = _check(report, SNAPSHOT_BENCH_SCHEMA, "snapshot")
    if not isinstance(report, dict):
        return errors
    points = report.get("points")
    for index, point in enumerate(points
                                  if isinstance(points, list) else []):
        errors.extend(_check(point, _SNAPSHOT_POINT_SCHEMA,
                             f"snapshot.points[{index}]"))
    if isinstance(report.get("gate"), dict):
        errors.extend(_check(report["gate"], _SNAPSHOT_GATE_SCHEMA,
                             "snapshot.gate"))
    if isinstance(report.get("equivalence"), dict):
        errors.extend(_check(report["equivalence"],
                             _SNAPSHOT_EQUIVALENCE_SCHEMA,
                             "snapshot.equivalence"))
    return errors


def validate_analysis_report(report: dict) -> list[str]:
    """Validate a decoded ``repro.analysis/v1`` report object.

    Checks the envelope, every per-profile invariant report and verdict,
    and the lint section including each (waived) violation entry.  Shape
    only -- whether the verdicts are the *expected* ones for the shipped
    profiles is policy, enforced by ``scripts/analysis_smoke.py``.
    """
    errors = _check(report, ANALYSIS_SCHEMA, "analysis")
    if not isinstance(report, dict):
        return errors
    profiles = report.get("profiles")
    for index, profile in enumerate(profiles
                                    if isinstance(profiles, list) else []):
        path = f"analysis.profiles[{index}]"
        errors.extend(_check(profile, _PROFILE_REPORT_SCHEMA, path))
        if not isinstance(profile, dict):
            continue
        verdicts = profile.get("verdicts")
        for v_index, verdict in enumerate(verdicts
                                          if isinstance(verdicts, list)
                                          else []):
            errors.extend(_check(verdict, _VERDICT_SCHEMA,
                                 f"{path}.verdicts[{v_index}]"))
    lint = report.get("lint")
    if isinstance(lint, dict):
        errors.extend(_check(lint, _LINT_REPORT_SCHEMA, "analysis.lint"))
        for key in ("violations", "waived"):
            entries = lint.get(key)
            for index, entry in enumerate(entries
                                          if isinstance(entries, list)
                                          else []):
                errors.extend(_check(entry, _LINT_VIOLATION_SCHEMA,
                                     f"analysis.lint.{key}[{index}]"))
    taint = report.get("taint")
    if isinstance(taint, dict):
        errors.extend(_check(taint, _TAINT_REPORT_SCHEMA,
                             "analysis.taint"))
        for key in ("violations", "waived"):
            entries = taint.get(key)
            for index, entry in enumerate(entries
                                          if isinstance(entries, list)
                                          else []):
                errors.extend(_check(entry, _TAINT_VIOLATION_SCHEMA,
                                     f"analysis.taint.{key}[{index}]"))
    return errors
