"""Observability: metrics registry, structured event tracing, telemetry.

The paper's whole argument is quantitative -- attestation costs 754 ms
per 512 KB at 24 MHz (Section 3.1, Table 1), so every wasted validation
cycle is DoS surface.  This package gives the simulator one uniform way
to observe a running deployment:

``repro.obs.registry``
    :class:`MetricsRegistry` -- named counters, gauges and fixed-bucket
    histograms (cycle costs, rejection reasons, queue depths, per-policy
    freshness-state bytes).
``repro.obs.trace``
    :class:`EventTrace` -- an append-only list of typed event records
    with simulated timestamps (request received/rejected/accepted,
    measurement start/end, channel send/drop, clock wrap, MPU fault),
    exportable as JSON lines.
``repro.obs.telemetry``
    :class:`Telemetry` -- the facade instrumented components report
    into, and :data:`NULL_TELEMETRY`, the default no-op sink that keeps
    the hot path cheap when nobody is observing.
``repro.obs.schema``
    The exported-JSON schema and a dependency-free validator, used by
    the ``repro metrics`` smoke tooling and CI.

Attach a telemetry to a session at build time::

    from repro import build_session
    from repro.obs import Telemetry

    telemetry = Telemetry()
    session = build_session(telemetry=telemetry)
    session.attest_once()
    print(telemetry.registry.dump())
    print(telemetry.trace.to_jsonl())
"""

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .schema import (ANALYSIS_SCHEMA, EVENT_SCHEMA, FLEET_SCHEMA,
                     INCREMENTAL_SCHEMA, INVARIANT_NAMES, LINT_RULE_IDS,
                     METRIC_NAMES, REGISTRY_SCHEMA, WALLCLOCK_SCHEMA,
                     validate_analysis_report, validate_event,
                     validate_fleet_report, validate_incremental_report,
                     validate_jsonl_trace, validate_registry_dump,
                     validate_wallclock_report)
from .telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from .trace import EVENT_KINDS, EventTrace, TraceEvent

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "EVENT_KINDS", "EventTrace", "TraceEvent",
    "NULL_TELEMETRY", "NullTelemetry", "Telemetry",
    "ANALYSIS_SCHEMA", "EVENT_SCHEMA", "FLEET_SCHEMA", "INCREMENTAL_SCHEMA",
    "REGISTRY_SCHEMA", "WALLCLOCK_SCHEMA", "INVARIANT_NAMES",
    "LINT_RULE_IDS", "METRIC_NAMES",
    "validate_analysis_report", "validate_event", "validate_fleet_report",
    "validate_incremental_report", "validate_jsonl_trace",
    "validate_registry_dump", "validate_wallclock_report",
]
