"""Structured event trace: typed records with simulated timestamps.

Every record is a :class:`TraceEvent` -- a monotonically numbered,
simulated-time-stamped, typed event with a flat dictionary of JSON
scalar fields.  The trace is append-only; :meth:`EventTrace.to_jsonl`
exports it as JSON lines, one event per line, matching
:data:`repro.obs.schema.EVENT_SCHEMA`.

Event kinds are a closed set (:data:`EVENT_KINDS`): recording an unknown
kind raises immediately, so a typo in instrumentation fails the test
that exercises it rather than producing an unparseable trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["EVENT_KINDS", "TraceEvent", "EventTrace"]

#: The typed event vocabulary.  One kind per observable pipeline edge.
EVENT_KINDS = frozenset({
    # prover request pipeline (timestamps in device seconds)
    "request-received",
    "request-rejected",
    "request-accepted",
    "measurement-start",
    "measurement-end",
    # network (timestamps in simulation seconds)
    "channel-send",
    "channel-drop",
    "channel-deliver",
    "channel-inject",
    "channel-duplicate",
    # verifier-side resilience (timestamps in simulation seconds)
    "session-retry",
    "session-timeout",
    "session-backoff",
    "breaker-state",
    # device hardware (timestamps in device seconds)
    "clock-wrap",
    "mpu-fault",
    # operator-side monitoring (timestamps in simulation seconds)
    "monitor-event",
})

_SCALAR_TYPES = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class TraceEvent:
    """One observed pipeline event."""

    seq: int
    time: float
    kind: str
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        record = {"seq": self.seq, "time": self.time, "kind": self.kind}
        record.update(self.fields)
        return record


class EventTrace:
    """Append-only, bounded-memory event log.

    ``max_events`` guards long-running simulations: past the limit the
    oldest events are discarded and ``dropped_events`` counts them, so a
    truncated export is detectable instead of silently complete.
    """

    def __init__(self, max_events: int = 100_000):
        if max_events < 1:
            raise ConfigurationError("trace needs room for at least 1 event")
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped_events = 0
        self._seq = 0

    def record(self, kind: str, time: float, **fields) -> TraceEvent:
        """Append one event; returns it for chaining in tests."""
        if kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown trace event kind {kind!r}; "
                f"known: {', '.join(sorted(EVENT_KINDS))}")
        for key, value in fields.items():
            if not isinstance(value, _SCALAR_TYPES):
                raise ConfigurationError(
                    f"event field {key!r} must be a JSON scalar, "
                    f"got {type(value).__name__}")
        event = TraceEvent(self._seq, float(time), kind, fields)
        self._seq += 1
        self.events.append(event)
        if len(self.events) > self.max_events:
            overflow = len(self.events) - self.max_events
            del self.events[:overflow]
            self.dropped_events += overflow
        return event

    def extend_records(self, records) -> int:
        """Re-record exported event dicts (see :meth:`as_records`).

        This is the trace-merge primitive for sharded fleets: workers
        ship ``as_records()`` lists, the parent replays them here.  Each
        record is re-validated and re-sequenced through :meth:`record`,
        so a merged trace is a valid single trace with one monotonic
        ``seq``.  Returns the number of events appended.
        """
        appended = 0
        for record in records:
            fields = {key: value for key, value in record.items()
                      if key not in ("seq", "time", "kind")}
            self.record(record["kind"], record["time"], **fields)
            appended += 1
        return appended

    # -- reading ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def emitted(self) -> int:
        """Total events ever recorded, including any later discarded.

        Equals the ``seq`` the next event will get, so it doubles as a
        watermark: an event belongs to the history before some point in
        time iff its ``seq`` is below the ``emitted`` value read then.
        """
        return self._seq

    def as_records(self) -> list[dict]:
        """Every event as a JSON-ready dict (picklable shard export)."""
        return [event.as_dict() for event in self.events]

    def __iter__(self):
        return iter(self.events)

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def to_jsonl(self) -> str:
        """The whole trace as JSON lines (one event object per line)."""
        return "\n".join(json.dumps(event.as_dict(), sort_keys=True)
                         for event in self.events)

    def export_jsonl(self, path) -> int:
        """Write the JSON-lines trace to ``path``; returns event count."""
        text = self.to_jsonl()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")
        return len(self.events)
