"""Metrics: named counters, gauges, and fixed-bucket histograms.

The registry is deliberately small and dependency-free.  Instruments are
identified by a name plus optional labels (``counter("prover.rejected",
reason="bad-auth")``), memoised on first use, and snapshot into a plain
JSON-ready dictionary with :meth:`MetricsRegistry.dump`.

Conventions used by the built-in instrumentation:

* names are dotted paths, ``<component>.<quantity>`` (e.g.
  ``prover.validation_cycles``, ``channel.dropped``);
* labels carry the dimension that would otherwise explode the name
  space (rejection reason, execution context, verdict);
* cycle quantities are raw simulated cycles -- divide by the device
  frequency for wall time, exactly like :class:`ProverStats` consumers
  already do.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_CYCLE_BUCKETS"]

#: Default histogram buckets for cycle-cost observations, spanning the
#: Table 1 range: a Speck validation (~360 cycles at 24 MHz) up past the
#: 512 KB measurement (~18.1 M cycles).  Upper bounds, in cycles.
DEFAULT_CYCLE_BUCKETS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000,
                         100_000_000)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


# ---------------------------------------------------------------------------
# Order-independent float accumulation.
#
# Plain ``value += amount`` makes float counters depend on addition
# *order* in the last bit, which forced sharded fleets to ship
# per-member dumps and replay the member-order fold.  The fix is
# compensated summation taken to its error-free limit: every float
# increment is folded into an expansion of non-overlapping partials via
# the TwoSum primitive (the same error term Neumaier's compensated sum
# tracks, kept in full rather than collapsed into one compensation
# word).  The partials then represent the true real-number sum
# *exactly*, so any grouping of increments or merges -- per member, per
# shard, or resumed from a snapshot -- yields the same reading: the
# correctly rounded true sum.
# ---------------------------------------------------------------------------

def _grow_expansion(partials: list[float], x: float) -> None:
    """Add ``x`` into the error-free expansion ``partials`` in place.

    Shewchuk's grow-expansion: after the call ``sum(partials)`` equals
    the exact (real-number) value of ``old_sum + x``; each TwoSum step's
    rounding error is retained as its own partial instead of discarded.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


def _fsum_cascade(terms: list) -> list[float]:
    """Canonical expansion of ``sum(terms)``: correctly rounded sum,
    then the correctly rounded remainder, and so on until exact.

    Each element is a pure function of the exact total, so two
    expansions built from different addition orders export identically.
    """
    out: list[float] = []
    acc = list(terms)
    while len(out) < 64:   # ~40 terms spans the double exponent range
        s = math.fsum(acc)
        if s == 0.0:
            break
        out.append(s)
        acc.append(-s)
    return out


class Counter:
    """A monotonically increasing count.

    Integer increments accumulate exactly in an int; float increments
    accumulate in an error-free expansion (see :func:`_grow_expansion`),
    so :attr:`value` is the correctly rounded true sum of everything
    ever added -- independent of increment order and of how partial
    registries were merged.
    """

    __slots__ = ("name", "labels", "_int_total", "_partials")

    kind = "counter"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = dict(labels)
        self._int_total = 0
        self._partials: list[float] = []

    @property
    def value(self) -> int | float:
        if not self._partials:
            return self._int_total
        return math.fsum(self._float_terms())

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        if isinstance(amount, float):
            _grow_expansion(self._partials, amount)
        else:
            self._int_total += amount

    def _float_terms(self) -> list:
        terms: list = list(self._partials)
        if self._int_total:
            terms.append(self._int_total)
        return terms

    def _add_state(self, value, residual=()) -> None:
        """Fold another counter's exact reading (``value`` plus residual
        terms) into this one.  Residual terms may be negative even
        though the total never decreases, so this bypasses the
        :meth:`inc` sign check."""
        if isinstance(value, float):
            _grow_expansion(self._partials, value)
        else:
            self._int_total += value
        for term in residual:
            _grow_expansion(self._partials, float(term))

    def _merge_from(self, other: "Counter") -> None:
        self._int_total += other._int_total
        for term in other._partials:
            _grow_expansion(self._partials, term)

    def snapshot(self) -> dict:
        entry = {"kind": self.kind, "name": self.name,
                 "labels": dict(self.labels), "value": self.value}
        residual = (_fsum_cascade(self._float_terms())[1:]
                    if self._partials else [])
        if residual:
            entry["residual"] = residual
        return entry


class Gauge:
    """A point-in-time value that may move both ways."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def add(self, amount: int | float) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket histogram of observations.

    ``buckets`` are inclusive upper bounds; an implicit overflow bucket
    catches everything above the last bound.  The running sum and count
    are exact (float observations use the same error-free expansion as
    :class:`Counter`), so means survive the bucketing and sums are
    independent of observation and merge order.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts",
                 "overflow", "count", "_sum_int", "_sum_partials")

    kind = "histogram"

    def __init__(self, name: str, labels: dict,
                 buckets: tuple[int | float, ...] = DEFAULT_CYCLE_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name!r} needs ascending bucket bounds")
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.overflow = 0
        self.count = 0
        self._sum_int = 0
        self._sum_partials: list[float] = []

    @property
    def sum(self) -> int | float:
        if not self._sum_partials:
            return self._sum_int
        return math.fsum(self._sum_terms())

    def observe(self, value: int | float) -> None:
        self.count += 1
        if isinstance(value, float):
            _grow_expansion(self._sum_partials, value)
        else:
            self._sum_int += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.overflow += 1

    def _sum_terms(self) -> list:
        terms: list = list(self._sum_partials)
        if self._sum_int:
            terms.append(self._sum_int)
        return terms

    def _add_sum_state(self, value, residual=()) -> None:
        """Fold another histogram's exact sum (``value`` plus residual
        terms) into this one's."""
        if isinstance(value, float):
            _grow_expansion(self._sum_partials, value)
        else:
            self._sum_int += value
        for term in residual:
            _grow_expansion(self._sum_partials, float(term))

    def _merge_sum_from(self, other: "Histogram") -> None:
        self._sum_int += other._sum_int
        for term in other._sum_partials:
            _grow_expansion(self._sum_partials, term)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        entry = {"kind": self.kind, "name": self.name,
                 "labels": dict(self.labels),
                 "buckets": list(self.buckets),
                 "bucket_counts": list(self.bucket_counts),
                 "overflow": self.overflow,
                 "count": self.count, "sum": self.sum}
        residual = (_fsum_cascade(self._sum_terms())[1:]
                    if self._sum_partials else [])
        if residual:
            entry["sum_residual"] = residual
        return entry


class MetricsRegistry:
    """The one place every instrumented layer reports into.

    Instruments are created on first use and shared thereafter; asking
    for an existing name with a different instrument kind is a
    configuration error (it would silently fork the series).
    """

    def __init__(self):
        self._instruments: dict[tuple, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}")
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: tuple[int | float, ...] = DEFAULT_CYCLE_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- reading ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def value(self, name: str, default: int | float = 0, **labels):
        """Current value of a counter/gauge (``default`` when absent)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return default
        return instrument.value

    def total(self, name: str) -> int | float:
        """Sum of a counter/gauge series across all label sets."""
        return sum(instrument.value
                   for (n, _), instrument in self._instruments.items()
                   if n == name and not isinstance(instrument, Histogram))

    def series(self, name: str) -> dict[tuple, Counter | Gauge | Histogram]:
        """All instruments registered under ``name``, keyed by labels."""
        return {labels: instrument
                for (n, labels), instrument in self._instruments.items()
                if n == name}

    def dump(self) -> dict:
        """JSON-ready snapshot of every instrument, deterministically
        ordered by (name, labels)."""
        metrics = [self._instruments[key].snapshot()
                   for key in sorted(self._instruments)]
        return {"schema": "repro.obs.registry/v1", "metrics": metrics}

    # -- merging ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s instruments into this registry.

        Counters and histograms add; gauges take ``other``'s value
        (last-write-wins, matching what a single registry would hold
        after the same reports).  ``other``'s instruments are visited in
        sorted (name, labels) order so repeated merges are
        deterministic.  Counter and histogram-sum folding transfers the
        exact expansion state, so any merge tree over the same
        increments -- member by member, shard pre-merged, or restored
        from dumps -- produces identical readings.  Merging histograms
        with different bucket bounds is a configuration error -- the
        series would not be comparable.  Returns ``self`` so shard
        registries chain.
        """
        for key in sorted(other._instruments):
            instrument = other._instruments[key]
            if isinstance(instrument, Counter):
                self.counter(instrument.name,
                             **instrument.labels)._merge_from(instrument)
            elif isinstance(instrument, Gauge):
                self.gauge(instrument.name,
                           **instrument.labels).set(instrument.value)
            else:
                mine = self.histogram(instrument.name,
                                      buckets=instrument.buckets,
                                      **instrument.labels)
                if mine.buckets != instrument.buckets:
                    raise ConfigurationError(
                        f"histogram {instrument.name!r} bucket bounds "
                        "differ between merged registries")
                for i, count in enumerate(instrument.bucket_counts):
                    mine.bucket_counts[i] += count
                mine.overflow += instrument.overflow
                mine.count += instrument.count
                mine._merge_sum_from(instrument)
        return self

    @classmethod
    def from_dump(cls, dump: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`dump` snapshot.

        This is how per-shard registries cross process boundaries: the
        worker ships the JSON-ready dump, the parent reconstructs and
        merges.  Round-trips exactly: ``MetricsRegistry.from_dump(
        registry.dump()).dump() == registry.dump()``.  Float counter and
        histogram sums carry their sub-ulp remainder in the dump's
        ``residual`` / ``sum_residual`` terms, so the reconstruction is
        exact and merging reconstructed shard dumps equals merging the
        live shard registries.
        """
        if dump.get("schema") != "repro.obs.registry/v1":
            raise ConfigurationError(
                f"not a registry dump: schema={dump.get('schema')!r}")
        registry = cls()
        for metric in dump["metrics"]:
            kind = metric["kind"]
            labels = metric["labels"]
            if kind == "counter":
                registry.counter(metric["name"], **labels)._add_state(
                    metric["value"], metric.get("residual", ()))
            elif kind == "gauge":
                registry.gauge(metric["name"], **labels).set(metric["value"])
            elif kind == "histogram":
                histogram = registry.histogram(
                    metric["name"], buckets=tuple(metric["buckets"]),
                    **labels)
                histogram.bucket_counts = list(metric["bucket_counts"])
                histogram.overflow = metric["overflow"]
                histogram.count = metric["count"]
                histogram._add_sum_state(metric["sum"],
                                         metric.get("sum_residual", ()))
            else:
                raise ConfigurationError(
                    f"unknown instrument kind in dump: {kind!r}")
        return registry
