"""Metrics: named counters, gauges, and fixed-bucket histograms.

The registry is deliberately small and dependency-free.  Instruments are
identified by a name plus optional labels (``counter("prover.rejected",
reason="bad-auth")``), memoised on first use, and snapshot into a plain
JSON-ready dictionary with :meth:`MetricsRegistry.dump`.

Conventions used by the built-in instrumentation:

* names are dotted paths, ``<component>.<quantity>`` (e.g.
  ``prover.validation_cycles``, ``channel.dropped``);
* labels carry the dimension that would otherwise explode the name
  space (rejection reason, execution context, verdict);
* cycle quantities are raw simulated cycles -- divide by the device
  frequency for wall time, exactly like :class:`ProverStats` consumers
  already do.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_CYCLE_BUCKETS"]

#: Default histogram buckets for cycle-cost observations, spanning the
#: Table 1 range: a Speck validation (~360 cycles at 24 MHz) up past the
#: 512 KB measurement (~18.1 M cycles).  Upper bounds, in cycles.
DEFAULT_CYCLE_BUCKETS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000,
                         100_000_000)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount}))")
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time value that may move both ways."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def add(self, amount: int | float) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket histogram of observations.

    ``buckets`` are inclusive upper bounds; an implicit overflow bucket
    catches everything above the last bound.  The running sum and count
    are exact, so means survive the bucketing.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts",
                 "overflow", "count", "sum")

    kind = "histogram"

    def __init__(self, name: str, labels: dict,
                 buckets: tuple[int | float, ...] = DEFAULT_CYCLE_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name!r} needs ascending bucket bounds")
        self.name = name
        self.labels = dict(labels)
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.overflow = 0
        self.count = 0
        self.sum = 0

    def observe(self, value: int | float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {"kind": self.kind, "name": self.name,
                "labels": dict(self.labels),
                "buckets": list(self.buckets),
                "bucket_counts": list(self.bucket_counts),
                "overflow": self.overflow,
                "count": self.count, "sum": self.sum}


class MetricsRegistry:
    """The one place every instrumented layer reports into.

    Instruments are created on first use and shared thereafter; asking
    for an existing name with a different instrument kind is a
    configuration error (it would silently fork the series).
    """

    def __init__(self):
        self._instruments: dict[tuple, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}")
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: tuple[int | float, ...] = DEFAULT_CYCLE_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- reading ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def value(self, name: str, default: int | float = 0, **labels):
        """Current value of a counter/gauge (``default`` when absent)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return default
        return instrument.value

    def total(self, name: str) -> int | float:
        """Sum of a counter/gauge series across all label sets."""
        return sum(instrument.value
                   for (n, _), instrument in self._instruments.items()
                   if n == name and not isinstance(instrument, Histogram))

    def series(self, name: str) -> dict[tuple, Counter | Gauge | Histogram]:
        """All instruments registered under ``name``, keyed by labels."""
        return {labels: instrument
                for (n, labels), instrument in self._instruments.items()
                if n == name}

    def dump(self) -> dict:
        """JSON-ready snapshot of every instrument, deterministically
        ordered by (name, labels)."""
        metrics = [self._instruments[key].snapshot()
                   for key in sorted(self._instruments)]
        return {"schema": "repro.obs.registry/v1", "metrics": metrics}

    # -- merging ---------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s instruments into this registry.

        Counters and histograms add; gauges take ``other``'s value
        (last-write-wins, matching what a single registry would hold
        after the same reports).  ``other``'s instruments are visited in
        sorted (name, labels) order so repeated merges are
        deterministic.  Merging histograms with different bucket bounds
        is a configuration error -- the series would not be comparable.
        Returns ``self`` so shard registries chain.
        """
        for key in sorted(other._instruments):
            instrument = other._instruments[key]
            if isinstance(instrument, Counter):
                self.counter(instrument.name,
                             **instrument.labels).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                self.gauge(instrument.name,
                           **instrument.labels).set(instrument.value)
            else:
                mine = self.histogram(instrument.name,
                                      buckets=instrument.buckets,
                                      **instrument.labels)
                if mine.buckets != instrument.buckets:
                    raise ConfigurationError(
                        f"histogram {instrument.name!r} bucket bounds "
                        "differ between merged registries")
                for i, count in enumerate(instrument.bucket_counts):
                    mine.bucket_counts[i] += count
                mine.overflow += instrument.overflow
                mine.count += instrument.count
                mine.sum += instrument.sum
        return self

    @classmethod
    def from_dump(cls, dump: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`dump` snapshot.

        This is how per-shard registries cross process boundaries: the
        worker ships the JSON-ready dump, the parent reconstructs and
        merges.  Round-trips exactly: ``MetricsRegistry.from_dump(
        registry.dump()).dump() == registry.dump()``.
        """
        if dump.get("schema") != "repro.obs.registry/v1":
            raise ConfigurationError(
                f"not a registry dump: schema={dump.get('schema')!r}")
        registry = cls()
        for metric in dump["metrics"]:
            kind = metric["kind"]
            labels = metric["labels"]
            if kind == "counter":
                registry.counter(metric["name"],
                                 **labels).inc(metric["value"])
            elif kind == "gauge":
                registry.gauge(metric["name"], **labels).set(metric["value"])
            elif kind == "histogram":
                histogram = registry.histogram(
                    metric["name"], buckets=tuple(metric["buckets"]),
                    **labels)
                histogram.bucket_counts = list(metric["bucket_counts"])
                histogram.overflow = metric["overflow"]
                histogram.count = metric["count"]
                histogram.sum = metric["sum"]
            else:
                raise ConfigurationError(
                    f"unknown instrument kind in dump: {kind!r}")
        return registry
