"""Analytical hardware-cost model reproducing Table 3 and Section 6.3."""

from .components import (ATTEST_KEY, CLOCK_32, CLOCK_64, COUNTER, Component,
                         EA_MPU, SISKIYOU_PEAK, SW_CLOCK, TABLE3_COMPONENTS)
from .model import (ClockVariantCost, HardwareCostModel, SystemCost,
                    resolution_seconds, wraparound_seconds, wraparound_years)

__all__ = [
    "ATTEST_KEY", "CLOCK_32", "CLOCK_64", "COUNTER", "ClockVariantCost",
    "Component", "EA_MPU", "HardwareCostModel", "SISKIYOU_PEAK", "SW_CLOCK",
    "SystemCost", "TABLE3_COMPONENTS", "resolution_seconds",
    "wraparound_seconds", "wraparound_years",
]
