"""Section 6.3's cost arithmetic: baselines, clock variants, overheads.

The evaluation compares three ``Adv_roam`` countermeasure variants
against a baseline that "supports attestation without protection against
Adv_ext or Adv_roam":

* baseline = Siskiyou Peak + EA-MPU with 2 rules (self-lockdown +
  ``K_Attest``) = **6038 registers / 15142 LUTs**;
* 64-bit clock: +1 rule +64-bit register = +180 reg (+2.98 %) / +246
  LUTs (+1.62 %);
* 32-bit clock with divider: +1 rule +32-bit register = +148 (+2.45 %) /
  +214 (+1.41 %);
* SW-clock: +3 rules = +348 (+5.76 %) / +546 (+3.61 %).

:class:`HardwareCostModel` reproduces those numbers from the Table 3
component data and generalises them: arbitrary rule counts, clock widths
and dividers, plus the wrap-around-time analysis (24 372.6 years for the
64-bit register at 24 MHz; ~3 minutes for a bare 32-bit register; ~6
years at ~44 ms resolution behind a /2^20 divider).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .components import (CLOCK_32, CLOCK_64, EA_MPU,
                         MPU_LUTS_PER_RULE, MPU_REGISTERS_PER_RULE,
                         SISKIYOU_PEAK)

__all__ = ["SystemCost", "ClockVariantCost", "HardwareCostModel",
           "wraparound_seconds", "wraparound_years", "resolution_seconds"]

# 365-day years: 2^64 / 24 MHz / (365*24*3600) = 24372.6 years, matching
# the figure printed in Section 6.3 (Julian years would give 24355.9).
_SECONDS_PER_YEAR = 365 * 24 * 3600


def resolution_seconds(divider: int, frequency_hz: int = 24_000_000) -> float:
    """Seconds per clock tick at ``frequency_hz`` behind ``divider``."""
    if divider < 1 or frequency_hz <= 0:
        raise ConfigurationError("divider and frequency must be positive")
    return divider / frequency_hz


def wraparound_seconds(width_bits: int, divider: int = 1,
                       frequency_hz: int = 24_000_000) -> float:
    """Time until a ``width_bits`` counter wraps (Section 6.3)."""
    if width_bits < 1:
        raise ConfigurationError("counter width must be positive")
    return (1 << width_bits) * resolution_seconds(divider, frequency_hz)


def wraparound_years(width_bits: int, divider: int = 1,
                     frequency_hz: int = 24_000_000) -> float:
    return wraparound_seconds(width_bits, divider, frequency_hz) / _SECONDS_PER_YEAR


@dataclass(frozen=True)
class SystemCost:
    """Total register/LUT cost of one configuration."""

    name: str
    rules: int
    registers: int
    luts: int

    def overhead_over(self, base: "SystemCost") -> "ClockVariantCost":
        return ClockVariantCost(
            name=self.name,
            extra_registers=self.registers - base.registers,
            extra_luts=self.luts - base.luts,
            register_overhead=(self.registers - base.registers) / base.registers,
            lut_overhead=(self.luts - base.luts) / base.luts)


@dataclass(frozen=True)
class ClockVariantCost:
    """Extra cost of a clock variant relative to the baseline."""

    name: str
    extra_registers: int
    extra_luts: int
    register_overhead: float   # fraction, e.g. 0.0298
    lut_overhead: float

    @property
    def register_overhead_percent(self) -> float:
        return 100.0 * self.register_overhead

    @property
    def lut_overhead_percent(self) -> float:
        return 100.0 * self.lut_overhead


class HardwareCostModel:
    """Builds configurations from Table 3 components and compares them."""

    #: Section 6.3's per-variant rule counts and direct clock costs.
    _VARIANTS = {
        "hw64": (1, CLOCK_64),
        "hw32div": (1, CLOCK_32),
        "sw": (3, None),
    }

    def __init__(self, frequency_hz: int = 24_000_000):
        self.frequency_hz = frequency_hz

    # -- generic assembly ---------------------------------------------------

    def system_cost(self, name: str, *, rules: int,
                    clock_registers: int = 0,
                    clock_luts: int = 0) -> SystemCost:
        """Cost of Siskiyou Peak + an EA-MPU with ``rules`` slots + clock."""
        if rules < 0:
            raise ConfigurationError("rule count cannot be negative")
        core_reg, core_lut = SISKIYOU_PEAK.cost()
        mpu_reg, mpu_lut = EA_MPU.cost(rules)
        return SystemCost(name=name, rules=rules,
                          registers=core_reg + mpu_reg + clock_registers,
                          luts=core_lut + mpu_lut + clock_luts)

    def baseline(self) -> SystemCost:
        """Section 6.3's baseline: 2 rules, no prover-side DoS protection.

        5528 + 278 + 116*2 = 6038 registers;
        14361 + 417 + 182*2 = 15142 LUTs.
        """
        return self.system_cost("baseline", rules=2)

    def variant(self, clock_kind: str) -> SystemCost:
        """Baseline extended with one Adv_roam clock countermeasure."""
        try:
            extra_rules, clock = self._VARIANTS[clock_kind]
        except KeyError:
            raise ConfigurationError(
                f"unknown clock variant {clock_kind!r}; choose from "
                f"{sorted(self._VARIANTS)}") from None
        clock_reg, clock_lut = clock.cost() if clock is not None else (0, 0)
        return self.system_cost(f"baseline+{clock_kind}",
                                rules=2 + extra_rules,
                                clock_registers=clock_reg,
                                clock_luts=clock_lut)

    def variant_overhead(self, clock_kind: str) -> ClockVariantCost:
        """The Section 6.3 overhead numbers for one clock variant."""
        return self.variant(clock_kind).overhead_over(self.baseline())

    def all_overheads(self) -> dict[str, ClockVariantCost]:
        return {kind: self.variant_overhead(kind) for kind in self._VARIANTS}

    # -- wrap-around / resolution trade-off ----------------------------------

    def clock_tradeoff(self, width_bits: int,
                       divider: int = 1) -> dict[str, float]:
        """Resolution vs lifetime of a clock register configuration."""
        return {
            "width_bits": width_bits,
            "divider": divider,
            "resolution_seconds": resolution_seconds(divider,
                                                     self.frequency_hz),
            "wraparound_seconds": wraparound_seconds(width_bits, divider,
                                                     self.frequency_hz),
            "wraparound_years": wraparound_years(width_bits, divider,
                                                 self.frequency_hz),
            "registers": width_bits,
            "luts": width_bits,
        }

    def rule_scaling(self, max_rules: int = 8) -> list[tuple[int, int, int]]:
        """(rules, registers, LUTs) of the EA-MPU alone as #r grows."""
        return [(r, *EA_MPU.cost(r)) for r in range(1, max_rules + 1)]

    # -- design-space search ---------------------------------------------------

    def recommend_clock(self, *, lifetime_years: float,
                        resolution_seconds: float,
                        widths=(16, 24, 32, 48, 64),
                        max_divider_log2: int = 24) -> dict | None:
        """Cheapest protected-clock register meeting both requirements.

        Searches width x divider for the configuration with minimal
        register cost whose wrap-around exceeds ``lifetime_years`` and
        whose resolution is at least as fine as ``resolution_seconds``
        (the freshness window dictates the resolution; the deployment
        dictates the lifetime -- Section 6.3's trade-off, automated).
        Returns the :meth:`clock_tradeoff` dict of the winner plus its
        overhead over the baseline, or ``None`` when nothing fits.
        """
        if lifetime_years <= 0 or resolution_seconds <= 0:
            raise ConfigurationError("requirements must be positive")
        best = None
        for width in widths:
            for divider_log2 in range(max_divider_log2 + 1):
                divider = 1 << divider_log2
                candidate = self.clock_tradeoff(width, divider)
                if candidate["resolution_seconds"] > resolution_seconds:
                    break   # larger dividers only get coarser
                if candidate["wraparound_years"] < lifetime_years:
                    continue
                if best is None or candidate["registers"] < best["registers"]:
                    best = candidate
                # Register cost depends only on width, so the first
                # acceptable divider (finest resolution) settles this width.
                break
        if best is None:
            return None
        # The protected clock costs one EA-MPU rule + the register.
        best = dict(best)
        best["extra_registers"] = (best["registers"]
                                   + MPU_REGISTERS_PER_RULE)
        best["extra_luts"] = best["luts"] + MPU_LUTS_PER_RULE
        base = self.baseline()
        best["register_overhead_percent"] = (
            100.0 * best["extra_registers"] / base.registers)
        return best
