"""Table 3: hardware cost per component (registers / LUTs / EA-MPU rules).

The paper synthesised its prototype on the Intel Siskiyou Peak FPGA soft
core with a TrustLite EA-MPU; Table 3 reports the component costs that
the Section 6.3 overhead arithmetic builds on:

=================  =========  ==========================  =====
Component          MPU rules  Registers                   LUTs
=================  =========  ==========================  =====
Siskiyou Peak      0          5528                        14361
EA-MPU             1          278 + 116 * #r              417 + 182 * #r
Attest-Key         1          0                           0
Counter            1          0                           0
64-bit clock       0          64                          64
32-bit clock       0          32                          32
SW-clock           2          0                           0
=================  =========  ==========================  =====

(#r = number of protection rules the EA-MPU is configured for.  The
per-rule register/LUT increments -- 116 and 182 -- are therefore the
price of each additional protected component.)

Note the paper's own small inconsistency: Table 3 lists the SW-clock at
2 rules and the hardware clocks at 0, while the Section 6.3 overhead
arithmetic charges 3 rules for the SW-clock and 1 for each hardware
clock.  We encode Table 3 verbatim here and follow Section 6.3's
arithmetic in :mod:`repro.hwcost.model` (its printed totals are
self-consistent); the discrepancy is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Component", "SISKIYOU_PEAK", "EA_MPU", "ATTEST_KEY", "COUNTER",
           "CLOCK_64", "CLOCK_32", "SW_CLOCK", "TABLE3_COMPONENTS",
           "MPU_BASE_REGISTERS", "MPU_REGISTERS_PER_RULE", "MPU_BASE_LUTS",
           "MPU_LUTS_PER_RULE"]

MPU_BASE_REGISTERS = 278
MPU_REGISTERS_PER_RULE = 116
MPU_BASE_LUTS = 417
MPU_LUTS_PER_RULE = 182


@dataclass(frozen=True)
class Component:
    """One Table 3 column.

    ``registers``/``luts`` are the fixed direct costs;
    ``registers_per_rule``/``luts_per_rule`` are non-zero only for the
    EA-MPU itself, whose size scales with the configured rule count.
    """

    name: str
    mpu_rules: int
    registers: int
    luts: int
    registers_per_rule: int = 0
    luts_per_rule: int = 0

    def cost(self, rules: int = 0) -> tuple[int, int]:
        """(registers, luts) for this component at ``rules`` rule slots."""
        return (self.registers + self.registers_per_rule * rules,
                self.luts + self.luts_per_rule * rules)


SISKIYOU_PEAK = Component("Siskiyou Peak", mpu_rules=0,
                          registers=5528, luts=14361)

EA_MPU = Component("EA-MPU (TrustLite)", mpu_rules=1,
                   registers=MPU_BASE_REGISTERS, luts=MPU_BASE_LUTS,
                   registers_per_rule=MPU_REGISTERS_PER_RULE,
                   luts_per_rule=MPU_LUTS_PER_RULE)

ATTEST_KEY = Component("Attest-Key", mpu_rules=1, registers=0, luts=0)

COUNTER = Component("Counter", mpu_rules=1, registers=0, luts=0)

CLOCK_64 = Component("64 bit clock", mpu_rules=0, registers=64, luts=64)

CLOCK_32 = Component("32 bit clock", mpu_rules=0, registers=32, luts=32)

SW_CLOCK = Component("SW-clock", mpu_rules=2, registers=0, luts=0)

TABLE3_COMPONENTS = (SISKIYOU_PEAK, EA_MPU, ATTEST_KEY, COUNTER,
                     CLOCK_64, CLOCK_32, SW_CLOCK)
