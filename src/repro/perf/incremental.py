"""Incremental-attestation benchmark: dirty-region sweeps vs full walks.

The scenario is the fleet-operations case PR 5's history-keyed cache
cannot help with: a fleet-wide OTA-style content update.  Every round,
every member receives the *same* new content (so the fleet stays
byte-identical), but delivered in a per-member-shuffled chunk order --
exactly what a real update distributor does, and exactly what makes
every member's write-chain fingerprint unique.  The full-walk path then
re-hashes every member's whole writable memory every round; the
incremental path (:meth:`repro.mcu.device.Device.enable_incremental`)
refreshes each member's digest tree in O(dirty) and recognises the
fleet-shared content after a single full measurement.

Three artefacts come out of this module:

* :func:`measure_point` -- paired full/incremental sweep timings at one
  dirty fraction, with the sweep reports, attestation counts and
  simulated cycle totals asserted byte-identical between the paths;
* :func:`equivalence_check` -- the PR 5-style gate across honest,
  faulted and planted-compromise fleets;
* :func:`build_report` -- the schema-validated ``BENCH_incremental.json``
  payload with the headline >= 3x wall-clock gate at <= 10% dirty.

Everything timed here is *host* time; the simulated Table 1 numbers are
part of the equivalence invariant, never a knob.  See
``docs/performance.md`` for the incremental-measurement contract.
"""

from __future__ import annotations

import json
import pathlib
import time

from ..core.resilience import RetryPolicy
from ..crypto.rng import DeterministicRng
from ..crypto.sha1 import SHA1
from ..errors import ConfigurationError
from ..incremental import DEFAULT_ARITY, DEFAULT_CHUNK_SIZE
from ..mcu.device import DeviceConfig
from ..mcu.statecache import StateDigestCache
from ..services.swarm import Swarm
from .fleet import lossy_link
from .wallclock import host_info

__all__ = ["REPORT_SCHEMA_ID", "DEFAULT_DIRTY_FRACTIONS",
           "GATE_DIRTY_FRACTION", "GATE_THRESHOLD", "build_swarm",
           "apply_update", "learn_update", "scenario_fingerprint",
           "measure_point",
           "equivalence_check", "build_report", "write_report"]

REPORT_SCHEMA_ID = "repro.perf.incremental/v1"

#: Dirty fractions of the default benchmark sweep.
DEFAULT_DIRTY_FRACTIONS = (0.02, 0.05, 0.10, 0.25, 0.50)

#: The headline gate: >= GATE_THRESHOLD x sweep speedup at the largest
#: measured dirty fraction <= GATE_DIRTY_FRACTION.
GATE_DIRTY_FRACTION = 0.10
GATE_THRESHOLD = 3.0

_MASTER_KEY = b"incremental-bench-master-key"


def build_swarm(size: int, ram_kb: int, *, incremental: bool,
                seed: str = "incremental-bench",
                adversary_factory=None, retry: RetryPolicy | None = None,
                observe: bool = False) -> Swarm:
    """One benchmark fleet: per-member derived keys (so HMAC midstate
    pinning has real per-member work to batch), HMAC-SHA1 response
    authentication, and RAM plus an equally large flash window (both
    capped by the 1 MB memory map) to maximise the hash share the
    incremental path removes.  Full-walk and incremental fleets share
    everything but the ``incremental`` flag -- both get an unbounded
    shared :class:`StateDigestCache`, so the baseline is the PR 5 cached
    path, not a strawman.
    """
    flash_kb = min(ram_kb, 1024)
    return Swarm(size,
                 device_config=DeviceConfig(ram_size=ram_kb * 1024,
                                            flash_size=flash_kb * 1024,
                                            app_size=2 * 1024),
                 auth_scheme="hmac-sha1",
                 master_key=_MASTER_KEY,
                 state_cache=StateDigestCache(max_entries=0),
                 incremental=incremental,
                 adversary_factory=adversary_factory,
                 retry=retry, observe=observe, seed=seed)


def _attested_windows(device) -> list[tuple[object, int, int]]:
    """(region, region-relative window start, window size) per attested
    span."""
    windows = []
    for start, end in device.attested_spans():
        if end <= start:
            continue
        region = device.memory.find(start)
        windows.append((region, start - region.start, end - start))
    return windows


def apply_update(swarm: Swarm, round_index: int, dirty_fraction: float, *,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
    """Deliver one fleet-wide OTA-style update round; returns the bytes
    rewritten per member.

    Content is derived from the round index alone, so after the round
    every member's attested memory is byte-identical again; each member
    receives its chunks in a member-specific shuffled order and with its
    first chunk fragmented at a member-specific packet boundary (real
    distributors stripe and fragment updates), so every member's *write
    history* -- and therefore its write-chain fingerprint -- is
    guaranteed unique (shuffles of a small dirty set can collide; the
    fragmentation offset cannot).  Writes go through ``region.load``
    (host-side provisioning, untimed), the same path a planted
    compromise uses, so nothing here can bypass fingerprint or
    digest-tree accounting.
    """
    if not 0.0 < dirty_fraction <= 1.0:
        raise ConfigurationError("dirty_fraction must be in (0, 1]")
    payloads: dict[tuple[str, int], bytes] = {}
    per_member = 0
    for member in swarm.members:
        windows = _attested_windows(member.session.device)
        per_member = 0
        fragmented = False
        for region, win_start, win_size in windows:
            chunks = (win_size + chunk_size - 1) // chunk_size
            dirty = max(1, int(dirty_fraction * chunks + 0.5))
            dirty = min(dirty, chunks)
            order = list(range(dirty))
            DeterministicRng(
                f"ota-order:{member.index}:{round_index}:{region.name}"
            ).shuffle(order)
            content_rng = None
            for chunk in order:
                offset = win_start + chunk * chunk_size
                length = min(chunk_size, win_size - chunk * chunk_size)
                payload = payloads.get((region.name, chunk))
                if payload is None:
                    if content_rng is None:
                        content_rng = DeterministicRng(
                            f"ota-content:{round_index}:{region.name}")
                    payload = content_rng.substream(str(chunk)).bytes(length)
                    payloads[(region.name, chunk)] = payload
                if not fragmented and length >= 2:
                    split = 1 + member.index % (length - 1)
                    region.load(offset, payload[:split])
                    region.load(offset + split, payload[split:])
                    fragmented = True
                else:
                    region.load(offset, payload)
                per_member += length
    return per_member


def learn_update(swarm: Swarm) -> bytes:
    """Teach every member's verifier the expected post-update digest.

    The verifier distributed the update, so it knows the bytes; this is
    the OTA reference-rotation flow of
    :meth:`repro.core.verifier.Verifier.learn_reference`.  The digest is
    computed host-side from one clean member's attested bytes (all
    members are byte-identical after :func:`apply_update`) -- verifier
    knowledge, no simulated work, no prover-side cache warming.
    """
    device = swarm.members[0].session.device
    digest = SHA1()
    for region, win_start, win_size in _attested_windows(device):
        digest.update(region.raw_read(win_start, win_size))
    value = digest.digest()
    for member in swarm.members:
        member.session.verifier.learn_reference(value)
    return value


def scenario_fingerprint(swarm: Swarm) -> dict:
    """Everything simulated the equivalence gate compares between the
    full-walk and incremental paths after identical scenario driving."""
    swarm_cycles = []
    swarm_energy = []
    for member in swarm.members:
        device = member.session.device
        device.sync_energy()
        swarm_cycles.append(device.cpu.cycle_count)
        swarm_energy.append(device.battery.consumed_mj)
    fingerprint = {
        "device_states": swarm.device_states(),
        "total_attestations": swarm.total_attestations(),
        "cycle_counts": swarm_cycles,
        "energy_mj": swarm_energy,
    }
    if swarm.observe:
        fingerprint["registry"] = json.dumps(
            swarm.merged_registry().dump(), sort_keys=True)
    return fingerprint


def _drive(swarm: Swarm, sweeps: int, dirty_fraction: float | None,
           compromise_member: int | None = None) -> list:
    """Run ``sweeps`` update+sweep rounds; returns the sweep reports.
    ``compromise_member`` plants malware in that member's flash before
    the final sweep."""
    reports = [swarm.sweep()]
    for round_index in range(sweeps):
        if dirty_fraction is not None:
            apply_update(swarm, round_index, dirty_fraction)
            learn_update(swarm)
        if (compromise_member is not None
                and round_index == sweeps - 1):
            member = swarm.members[compromise_member]
            member.session.device.flash.load(64, b"\xEB\xFE\x90")
        reports.append(swarm.sweep())
    return reports


def equivalence_check(*, size: int = 6, sweeps: int = 3,
                      ram_kb: int = 32,
                      dirty_fraction: float = 0.25) -> dict:
    """Prove incremental measurement changes no simulated observable.

    Drives three paired fleets (full walk vs incremental, same seed,
    same scenario) and compares every sweep report plus the final
    simulated fingerprint byte for byte:

    ``honest``
        Clean fleet with an OTA update round before every sweep -- the
        path where the incremental cache actually serves hits.
    ``faulted``
        Lossy, jittery links with a retry policy and telemetry attached
        (merged registry dumps must match too).
    ``compromised``
        Honest fleet with malware planted in one member's flash before
        the final sweep; both paths must flag exactly that member
        untrusted (``detected``) -- the cache must never mask a
        compromise.
    """
    retry = RetryPolicy(attempt_timeout_seconds=5.0, max_retries=2,
                        base_backoff_seconds=1.0, jitter_fraction=0.5)
    scenarios: dict[str, dict] = {}
    identical = True
    plant = size - 1
    for name, kwargs, drive_kwargs in (
            ("honest", {}, {"dirty_fraction": dirty_fraction}),
            ("faulted", {"adversary_factory": lossy_link, "retry": retry,
                         "observe": True},
             {"dirty_fraction": dirty_fraction}),
            ("compromised", {}, {"dirty_fraction": dirty_fraction,
                                 "compromise_member": plant})):
        full = build_swarm(size, ram_kb, incremental=False,
                           seed=f"incr-eq:{name}", **kwargs)
        incr = build_swarm(size, ram_kb, incremental=True,
                           seed=f"incr-eq:{name}", **kwargs)
        full_reports = _drive(full, sweeps, **drive_kwargs)
        incr_reports = _drive(incr, sweeps, **drive_kwargs)
        mismatched = []
        for index, (a, b) in enumerate(zip(full_reports, incr_reports)):
            if a != b:
                mismatched.append(f"sweep[{index}].report")
        full_fp = scenario_fingerprint(full)
        incr_fp = scenario_fingerprint(incr)
        mismatched.extend(sorted(key for key in full_fp
                                 if incr_fp[key] != full_fp[key]))
        entry = {"identical": not mismatched,
                 "mismatched_fields": mismatched}
        if name == "compromised":
            planted_id = full.members[plant].device_id
            entry["detected"] = (
                full_reports[-1].untrusted == [planted_id]
                and incr_reports[-1].untrusted == [planted_id])
            identical = identical and entry["detected"]
        scenarios[name] = entry
        identical = identical and not mismatched
    return {"identical": identical, "scenarios": scenarios}


def measure_point(fleet_size: int, ram_kb: int, dirty_fraction: float, *,
                  sweeps: int = 2, chunk_size: int = DEFAULT_CHUNK_SIZE,
                  arity: int = DEFAULT_ARITY) -> dict:
    """Paired sweep timings at one dirty fraction.

    Both fleets get one untimed settling sweep (spin-up digests) and one
    untimed warm-up round (first update: the incremental fleet builds
    its trees and pays its one full measurement of the new content
    lineage), then ``sweeps`` timed update+sweep rounds.  Refuses to
    return numbers if the two paths' sweep reports or simulated
    fingerprints differ.
    """
    results: dict[str, float] = {}
    reports: dict[str, list] = {}
    fingerprints: dict[str, dict] = {}
    caches: dict[str, dict] = {}
    tree_stats = None
    for mode in ("full", "incremental"):
        swarm = build_swarm(fleet_size, ram_kb,
                            incremental=(mode == "incremental"),
                            seed=f"incr-bench:{dirty_fraction}")
        swarm.sweep()                       # settle spin-up, untimed
        apply_update(swarm, 0, dirty_fraction, chunk_size=chunk_size)
        learn_update(swarm)
        swarm.sweep()                       # warm-up round, untimed
        elapsed = 0.0
        mode_reports = []
        for round_index in range(1, sweeps + 1):
            apply_update(swarm, round_index, dirty_fraction,
                         chunk_size=chunk_size)
            learn_update(swarm)             # verifier-side, untimed
            begin = time.perf_counter()
            mode_reports.append(swarm.sweep())
            elapsed += time.perf_counter() - begin
        results[mode] = elapsed
        reports[mode] = mode_reports
        fingerprints[mode] = scenario_fingerprint(swarm)
        caches[mode] = swarm.state_cache.stats()
        if mode == "incremental":
            tree_stats = swarm.members[0].session.device.ram \
                .digest_tree.stats()
    if reports["full"] != reports["incremental"]:
        raise AssertionError(
            "incremental sweep reports diverged from the full walk -- "
            "refusing to report a speedup")
    if fingerprints["full"] != fingerprints["incremental"]:
        raise AssertionError(
            "incremental simulated accounting diverged from the full "
            "walk -- refusing to report a speedup")
    writable = 2 * min(ram_kb, 1024) * 1024
    return {
        "dirty_fraction": dirty_fraction,
        "dirty_kb": int(dirty_fraction * writable) // 1024,
        "full_seconds": results["full"],
        "incremental_seconds": results["incremental"],
        "speedup": results["full"] / results["incremental"],
        "full_cache": caches["full"],
        "incremental_cache": caches["incremental"],
        "tree": tree_stats,
    }


def build_report(*, fleet_size: int = 256, ram_kb: int = 1024,
                 sweeps: int = 2,
                 dirty_fractions: tuple = DEFAULT_DIRTY_FRACTIONS,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 arity: int = DEFAULT_ARITY,
                 gate_dirty_fraction: float = GATE_DIRTY_FRACTION,
                 gate_threshold: float = GATE_THRESHOLD,
                 equivalence_size: int = 6) -> dict:
    """Assemble the full ``BENCH_incremental.json`` payload.

    One :func:`measure_point` per dirty fraction (each internally
    equivalence-checked), the three-scenario :func:`equivalence_check`
    block, and the headline gate: the speedup at the largest measured
    fraction <= ``gate_dirty_fraction`` must be >= ``gate_threshold``.
    """
    points = [measure_point(fleet_size, ram_kb, fraction, sweeps=sweeps,
                            chunk_size=chunk_size, arity=arity)
              for fraction in dirty_fractions]
    eligible = [p for p in points
                if p["dirty_fraction"] <= gate_dirty_fraction]
    if not eligible:
        raise ConfigurationError(
            f"no measured dirty fraction <= {gate_dirty_fraction}")
    gate_point = max(eligible, key=lambda p: p["dirty_fraction"])
    equivalence = equivalence_check(size=equivalence_size)
    return {
        "schema": REPORT_SCHEMA_ID,
        "fleet_size": fleet_size,
        "ram_kb": ram_kb,
        "writable_kb": 2 * min(ram_kb, 1024),
        "sweeps": sweeps,
        "chunk_size": chunk_size,
        "arity": arity,
        "host": host_info(),
        "points": points,
        "gate": {
            "dirty_fraction": gate_point["dirty_fraction"],
            "speedup": gate_point["speedup"],
            "threshold": gate_threshold,
            "passed": gate_point["speedup"] >= gate_threshold,
        },
        "equivalence": equivalence,
    }


def write_report(report: dict, path):
    """Write ``report`` as indented JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
