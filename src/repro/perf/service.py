"""Host-side load benchmark for the verifier service tier.

Drives :class:`~repro.services.attestd.AttestationService` with
deterministic request schedules and measures *host* wall-clock
throughput and latency -- how fast the Python process multiplexes
simulated attestation sessions, never simulated time.  Host clocks are
confined to this module (it is on the determinism lint's host-boundary
allowlist); the service itself receives the clock only as an injected
callable for latency stamping, so its deterministic path stays free of
host time.

The report (``BENCH_service.json``) carries:

* ``points`` -- offered-load points: offered / admitted / rejected
  counts, sessions per second, p50/p99 request latency, and the peak
  number of concurrently in-flight sessions;
* ``gate`` -- the scale gate: at least one point must hold >= 1000
  sessions in flight at once;
* ``equivalence`` -- the correctness gate: the serviced run at
  ``workers=1`` must produce request records, per-device freshness
  state and merged telemetry byte-identical to the sequential library
  path (:meth:`~repro.services.attestd.AttestationService.process`).
  :func:`build_report` refuses to emit a report when it does not.
"""

from __future__ import annotations

import json
import pathlib
import time

from ..mcu.device import DeviceConfig
from ..mcu.statecache import StateDigestCache
from ..services.attestd import AttestationService, build_schedule
from .wallclock import host_info

__all__ = ["REPORT_SCHEMA_ID", "run_load_point", "equivalence_check",
           "build_report", "write_report"]

REPORT_SCHEMA_ID = "repro.perf.service/v1"

#: Small provers (the paper's low-end class) so big fleets spin up fast.
_BENCH_CONFIG = DeviceConfig(ram_size=8 * 1024, flash_size=16 * 1024,
                             app_size=2 * 1024)


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (no interpolation; deterministic)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1,
               max(0, int(fraction * len(ordered) + 0.5) - 1))
    return ordered[rank]


def _build_service(*, size: int, tenants: int, backends: int,
                   duty_fraction: float, burst_seconds: float,
                   observe: bool, seed: str,
                   shared_cache: bool = True) -> AttestationService:
    cache = StateDigestCache() if shared_cache else None
    return AttestationService(size, tenants=tenants, backends=backends,
                              duty_fraction=duty_fraction,
                              burst_seconds=burst_seconds,
                              device_config=_BENCH_CONFIG,
                              state_cache=cache, observe=observe, seed=seed)


def run_load_point(*, size: int, tenants: int = 4, backends: int = 4,
                   duty_fraction: float = 0.01,
                   burst_seconds: float = 600.0, waves: int = 1,
                   spacing_seconds: float = 60.0, workers: int = 1,
                   seed: str = "service-bench") -> dict:
    """Serve one deterministic schedule and measure it.

    The schedule offers ``waves`` bursts of ``size`` requests; each
    burst shares one arrival instant, so every admitted request of a
    burst is in flight together (that is the concurrency the gate
    counts).  Telemetry is off: observation costs are a separate story
    and the load numbers should be the service's own.
    """
    service = _build_service(size=size, tenants=tenants, backends=backends,
                             duty_fraction=duty_fraction,
                             burst_seconds=burst_seconds, observe=False,
                             seed=seed)
    schedule = build_schedule(size, waves=waves,
                              spacing_seconds=spacing_seconds,
                              seed=f"{seed}:schedule")
    begin = time.perf_counter()
    records = service.serve_schedule(schedule, workers=workers,
                                     clock=time.perf_counter)
    wall = time.perf_counter() - begin
    latencies = [record.host_latency_seconds for record in records
                 if record.admitted
                 and record.host_latency_seconds is not None]
    return {
        "offered": len(schedule),
        "admitted": service.admitted,
        "rejected": service.rejected,
        "peak_in_flight": service.peak_in_flight,
        "sessions_per_second": (service.admitted / wall) if wall else 0.0,
        "p50_latency_ms": _percentile(latencies, 0.50) * 1000.0,
        "p99_latency_ms": _percentile(latencies, 0.99) * 1000.0,
        "wall_seconds": wall,
        "waves": waves,
        "workers": workers,
    }


def equivalence_check(*, size: int = 24, tenants: int = 3,
                      backends: int = 4, duty_fraction: float = 0.001,
                      burst_seconds: float = 20.0, waves: int = 3,
                      spacing_seconds: float = 30.0, workers: int = 1,
                      seed: str = "service-equivalence") -> dict:
    """Prove the serviced path equals the sequential library path.

    Runs the same schedule through :meth:`AttestationService.serve`
    (``workers=1``) and :meth:`AttestationService.process` on two
    identically-built services, with a duty budget tight enough that
    both admission outcomes occur, and compares request records,
    per-device freshness state and the merged telemetry dump.
    """
    schedule = build_schedule(size, waves=waves,
                              spacing_seconds=spacing_seconds,
                              seed=f"{seed}:schedule")
    kwargs = dict(size=size, tenants=tenants, backends=backends,
                  duty_fraction=duty_fraction,
                  burst_seconds=burst_seconds, observe=True, seed=seed)
    serviced = _build_service(**kwargs)
    sequential = _build_service(**kwargs)
    served = serviced.serve_schedule(schedule, workers=workers)
    processed = sequential.process(schedule)
    mismatched = []
    if ([r.fingerprint() for r in served]
            != [r.fingerprint() for r in processed]):
        mismatched.append("records")
    if (serviced.freshness_fingerprint()
            != sequential.freshness_fingerprint()):
        mismatched.append("freshness")
    if (json.dumps(serviced.merged_registry().dump(), sort_keys=True)
            != json.dumps(sequential.merged_registry().dump(),
                          sort_keys=True)):
        mismatched.append("telemetry")
    return {
        "size": size,
        "workers": workers,
        "offered": len(schedule),
        "admitted": serviced.admitted,
        "rejected": serviced.rejected,
        "identical": not mismatched,
        "mismatched_fields": mismatched,
    }


def build_report(*, size: int = 1024, tenants: int = 4, backends: int = 8,
                 duty_fraction: float = 0.01,
                 required_in_flight: int = 1000) -> dict:
    """Assemble the full ``BENCH_service.json`` payload.

    Three offered-load points: a paced baseline (several spaced waves,
    everything admitted), an overloaded run (duty budget far below the
    offered load, so admission control visibly rejects), and the scale
    burst -- one wave of ``size`` simultaneous requests, which must put
    at least ``required_in_flight`` sessions in flight at once for the
    gate to pass.  Refuses to report at all if the serviced path is not
    byte-identical to the sequential library path at ``workers=1``.
    """
    equivalence = equivalence_check()
    if not equivalence["identical"]:
        raise AssertionError(
            "serviced run diverged from the sequential library path on "
            f"{equivalence['mismatched_fields']} -- refusing to write a "
            "perf report")
    points = [
        run_load_point(size=min(size, 128), tenants=tenants,
                       backends=backends, duty_fraction=duty_fraction,
                       waves=4, spacing_seconds=120.0,
                       seed="service-bench-paced"),
        run_load_point(size=min(size, 128), tenants=tenants,
                       backends=backends, duty_fraction=0.0005,
                       burst_seconds=30.0, waves=4, spacing_seconds=15.0,
                       seed="service-bench-overload"),
        run_load_point(size=size, tenants=tenants, backends=backends,
                       duty_fraction=duty_fraction, waves=1,
                       seed="service-bench-burst"),
    ]
    max_peak = max(point["peak_in_flight"] for point in points)
    return {
        "schema": REPORT_SCHEMA_ID,
        "size": size,
        "tenants": tenants,
        "backends": backends,
        "duty_fraction": duty_fraction,
        "host": host_info(),
        "points": points,
        "gate": {
            "max_peak_in_flight": max_peak,
            "required_in_flight": required_in_flight,
            "passed": max_peak >= required_in_flight,
        },
        "equivalence": equivalence,
    }


def write_report(report: dict, path):
    """Write ``report`` as indented JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
