"""Delta-checkpoint benchmark: chained delta captures vs full snapshots.

The scenario is fleet operations under a rolling OTA campaign: every
round rewrites ``dirty_fraction`` of each member's attested memory,
then the operator checkpoints the whole :class:`FleetEngine`.  The full
path re-serializes every member's entire writable memory every time;
the delta path (``snapshot(parent=...)``) diffs each region's
digest-tree leaves against the previous checkpoint and ships only the
dirty chunks -- content-addressed, so fleet-shared update payloads are
stored once per fleet, not once per member.

Shared-content points model the realistic campaign (every member
receives the same bytes, in member-shuffled order); the
``shared_content: false`` point rewrites member-unique bytes instead --
the honest worst case where content-addressing dedups nothing across
the fleet and the delta win comes from dirty-chunk selection alone.

Three artefacts come out of this module:

* :func:`measure_point` -- paired full/delta capture timings at one
  dirty fraction, with the folded chain asserted byte-identical to the
  final full snapshot before any number is reported;
* :func:`equivalence_check` -- materialize a depth-``rounds`` chain,
  byte-compare it to a direct full capture, then restore it into a
  fresh sharded engine and prove the continued run matches an
  uninterrupted one (sweep report, merged trace, merged registry);
* :func:`build_report` -- the schema-validated ``BENCH_snapshot.json``
  payload with the headline >= 3x wall-clock / >= 10x bytes-written
  gate at <= 10% dirty.

Everything timed here is *host* time (capture plus canonical JSON
serialization -- what actually hits disk); simulated observables are
part of the equivalence invariant, never a knob.  See
``docs/checkpoint.md``.
"""

from __future__ import annotations

import json
import pathlib
import time

from ..crypto.rng import DeterministicRng
from ..crypto.sha1 import SHA1
from ..errors import ConfigurationError
from ..incremental import DEFAULT_CHUNK_SIZE
from ..mcu.device import DeviceConfig
from ..snapshot import materialize_chain
from . import fleet as fleet_mod
from .fleet import FleetEngine, FleetSpec
from .incremental import _attested_windows, apply_update, learn_update
from .wallclock import host_info

__all__ = ["REPORT_SCHEMA_ID", "DEFAULT_POINTS", "GATE_DIRTY_FRACTION",
           "GATE_SPEEDUP_THRESHOLD", "GATE_BYTES_THRESHOLD",
           "apply_unique_update", "learn_unique_update", "measure_point",
           "equivalence_check", "build_report", "write_report"]

REPORT_SCHEMA_ID = "repro.perf.snapshot/v1"

#: (dirty fraction, fleet-shared content?) of the default sweep.  The
#: 0.50/unique point is the deliberate anti-cherry-pick: member-unique
#: content at high dirt is where delta checkpoints win least.
DEFAULT_POINTS = ((0.02, True), (0.10, True), (0.50, True), (0.50, False))

#: The headline gate: at the largest measured *shared* dirty fraction
#: <= GATE_DIRTY_FRACTION, delta capture must be >=
#: GATE_SPEEDUP_THRESHOLD x faster and write >= GATE_BYTES_THRESHOLD x
#: fewer bytes than full capture.
GATE_DIRTY_FRACTION = 0.10
GATE_SPEEDUP_THRESHOLD = 3.0
GATE_BYTES_THRESHOLD = 10.0

_MASTER_KEY = b"snapshot-bench-master-key"


def _bench_spec(fleet_size: int, ram_kb: int, *, observe: bool = False,
                seed: str = "snapshot-bench") -> FleetSpec:
    """Members mirroring the incremental benchmark fleet: per-member
    derived HMAC-SHA1 keys, RAM plus an equally large flash window, and
    digest trees on (``incremental=True``) -- delta capture diffs the
    same trees the incremental sweep path maintains."""
    flash_kb = min(ram_kb, 1024)
    return FleetSpec(
        size=fleet_size,
        device_config=DeviceConfig(ram_size=ram_kb * 1024,
                                   flash_size=flash_kb * 1024,
                                   app_size=2 * 1024),
        auth_scheme="hmac-sha1",
        master_key=_MASTER_KEY,
        observe=observe,
        incremental=True,
        seed=seed)


def apply_unique_update(swarm, round_index: int, dirty_fraction: float, *,
                        chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
    """One update round of member-*unique* content; returns the bytes
    rewritten per member.

    Unlike :func:`repro.perf.incremental.apply_update`, the payload is
    derived from the member's global index as well as the round, so no
    two members share a single post-update byte -- content-addressed
    chunk storage dedups nothing across the fleet and every stored
    chunk is unique.  Same ``region.load`` provisioning path, so
    fingerprints and digest trees account for every write.
    """
    if not 0.0 < dirty_fraction <= 1.0:
        raise ConfigurationError("dirty_fraction must be in (0, 1]")
    per_member = 0
    for member in swarm.members:
        per_member = 0
        for region, win_start, win_size in _attested_windows(
                member.session.device):
            chunks = (win_size + chunk_size - 1) // chunk_size
            dirty = min(chunks, max(1, int(dirty_fraction * chunks + 0.5)))
            rng = DeterministicRng(
                f"unique-ota:{member.index}:{round_index}:{region.name}")
            for chunk in range(dirty):
                offset = win_start + chunk * chunk_size
                length = min(chunk_size, win_size - chunk * chunk_size)
                region.load(offset, rng.substream(str(chunk)).bytes(length))
                per_member += length
    return per_member


def learn_unique_update(swarm) -> None:
    """Teach each verifier its *own* member's post-update digest (the
    per-member flavour of
    :func:`repro.perf.incremental.learn_update` -- with unique content
    there is no fleet-shared reference to share)."""
    for member in swarm.members:
        device = member.session.device
        digest = SHA1()
        for region, win_start, win_size in _attested_windows(device):
            digest.update(region.raw_read(win_start, win_size))
        member.session.verifier.learn_reference(digest.digest())


def _apply_round(swarm, round_index: int, dirty_fraction: float,
                 chunk_size: int, shared: bool) -> None:
    if shared:
        apply_update(swarm, round_index, dirty_fraction,
                     chunk_size=chunk_size)
        learn_update(swarm)
    else:
        apply_unique_update(swarm, round_index, dirty_fraction,
                            chunk_size=chunk_size)
        learn_unique_update(swarm)


def _shard_update(round_index: int, dirty_fraction: float,
                  chunk_size: int, shared: bool) -> None:
    """Run one update round on the resident shard swarm (member indices
    are global, so shard-local updates are byte-for-byte the updates a
    single in-process fleet would apply)."""
    _apply_round(fleet_mod._SHARD, round_index, dirty_fraction,
                 chunk_size, shared)


def _update_engine(engine: FleetEngine, round_index: int,
                   dirty_fraction: float, chunk_size: int,
                   shared: bool) -> None:
    engine.start()
    if engine._swarm is not None:
        _apply_round(engine._swarm, round_index, dirty_fraction,
                     chunk_size, shared)
    else:
        engine._gather(_shard_update, round_index, dirty_fraction,
                       chunk_size, shared)


def _canonical(document: dict) -> str:
    """The canonical serialized form whose length is the bytes-written
    axis (``save_document`` writes exactly this plus a newline)."""
    return json.dumps(document, sort_keys=True)


def measure_point(fleet_size: int, ram_kb: int, dirty_fraction: float, *,
                  shared: bool = True, rounds: int = 2, workers: int = 2,
                  chunk_size: int = DEFAULT_CHUNK_SIZE) -> dict:
    """Paired full/delta checkpoint timings at one dirty fraction.

    One untimed settling sweep, one untimed warm-up round (trees build,
    first full measurement of the content lineage), then an untimed
    full parent plus an untimed bootstrap delta -- the first delta
    against a full parent pays a one-off O(full) re-chunking of the
    parent's images to recover leaf digests; every later delta reads
    the parent's stored chunk-digest index instead, which is the
    steady state this point measures.  Each timed round updates,
    sweeps, then captures the engine twice: a full snapshot and a
    delta against the previous delta, both timed through canonical
    JSON serialization.  Refuses to return numbers unless folding the
    whole chain reproduces the final full snapshot byte for byte.
    """
    flavour = "shared" if shared else "unique"
    spec = _bench_spec(fleet_size, ram_kb,
                       seed=f"snapshot-bench:{dirty_fraction}:{flavour}")
    with FleetEngine(spec, workers=workers) as engine:
        engine.sweep()                      # settle spin-up, untimed
        _update_engine(engine, 0, dirty_fraction, chunk_size, shared)
        engine.sweep()                      # warm-up round, untimed
        root = engine.snapshot()            # full parent, untimed
        chain = [root, engine.snapshot(parent=root)]    # bootstrap delta
        full_seconds = 0.0
        delta_seconds = 0.0
        full_bytes = 0
        delta_bytes = 0
        last_full = None
        for round_index in range(1, rounds + 1):
            _update_engine(engine, round_index, dirty_fraction,
                           chunk_size, shared)
            engine.sweep()
            begin = time.perf_counter()
            last_full = engine.snapshot()
            full_text = _canonical(last_full)
            full_seconds += time.perf_counter() - begin
            full_bytes += len(full_text)
            begin = time.perf_counter()
            delta = engine.snapshot(parent=chain[-1])
            delta_text = _canonical(delta)
            delta_seconds += time.perf_counter() - begin
            delta_bytes += len(delta_text)
            chain.append(delta)
        identical = _canonical(materialize_chain(chain)) == full_text
    if not identical:
        raise AssertionError(
            "folded delta chain is not byte-identical to the full "
            "snapshot -- refusing to report a speedup")
    return {
        "dirty_fraction": dirty_fraction,
        "shared_content": shared,
        "full_seconds": full_seconds,
        "delta_seconds": delta_seconds,
        "speedup": full_seconds / delta_seconds,
        "full_bytes": full_bytes,
        "delta_bytes": delta_bytes,
        "bytes_reduction": full_bytes / delta_bytes,
        "chain_identical": identical,
    }


def equivalence_check(*, size: int = 8, workers: int = 2, rounds: int = 3,
                      ram_kb: int = 16, dirty_fraction: float = 0.25,
                      chunk_size: int = DEFAULT_CHUNK_SIZE) -> dict:
    """Prove a delta chain is a real checkpoint, not just a diff.

    Runs a telemetry-on sharded fleet through ``rounds`` update+sweep
    rounds, capturing a delta after each; then (a) byte-compares the
    folded chain against a direct full capture of the same instant,
    and (b) restores the folded document into a *fresh* engine, sweeps
    both engines once more, and compares the sweep report, merged
    event trace and merged registry dump against the engine that never
    stopped.  Any mismatch names the field.
    """
    spec = _bench_spec(size, ram_kb, observe=True, seed="snapshot-eq")
    mismatched: list[str] = []
    with FleetEngine(spec, workers=workers) as engine:
        engine.sweep()
        chain = [engine.snapshot()]
        for round_index in range(rounds):
            _update_engine(engine, round_index, dirty_fraction,
                           chunk_size, True)
            engine.sweep()
            chain.append(engine.snapshot(parent=chain[-1]))
        full = engine.snapshot()
        materialized = materialize_chain(chain)
        if _canonical(materialized) != _canonical(full):
            mismatched.append("materialized_document")
        continued_report = engine.sweep()
        continued_trace = engine.merged_trace_records()
        continued_registry = json.dumps(engine.merged_registry().dump(),
                                        sort_keys=True)
    with FleetEngine(spec, workers=workers) as resumed:
        resumed.restore(materialized)
        if resumed.sweep() != continued_report:
            mismatched.append("resumed_sweep_report")
        if resumed.merged_trace_records() != continued_trace:
            mismatched.append("resumed_trace")
        if json.dumps(resumed.merged_registry().dump(),
                      sort_keys=True) != continued_registry:
            mismatched.append("resumed_registry")
    return {"identical": not mismatched, "mismatched_fields": mismatched}


def build_report(*, fleet_size: int = 256, ram_kb: int = 64,
                 rounds: int = 2, workers: int = 2,
                 points: tuple = DEFAULT_POINTS,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 gate_dirty_fraction: float = GATE_DIRTY_FRACTION,
                 gate_speedup: float = GATE_SPEEDUP_THRESHOLD,
                 gate_bytes: float = GATE_BYTES_THRESHOLD,
                 equivalence_size: int = 8) -> dict:
    """Assemble the full ``BENCH_snapshot.json`` payload.

    One :func:`measure_point` per (dirty fraction, shared?) pair (each
    internally chain-identity-checked), the restore-and-continue
    :func:`equivalence_check` block, and the headline gate: at the
    largest *shared-content* fraction <= ``gate_dirty_fraction``, delta
    capture must beat full capture by >= ``gate_speedup`` x wall-clock
    and >= ``gate_bytes`` x bytes written.
    """
    measured = [measure_point(fleet_size, ram_kb, fraction, shared=shared,
                              rounds=rounds, workers=workers,
                              chunk_size=chunk_size)
                for fraction, shared in points]
    eligible = [point for point in measured
                if point["shared_content"]
                and point["dirty_fraction"] <= gate_dirty_fraction]
    if not eligible:
        raise ConfigurationError(
            f"no measured shared-content dirty fraction <= "
            f"{gate_dirty_fraction}")
    gate_point = max(eligible, key=lambda point: point["dirty_fraction"])
    equivalence = equivalence_check(size=equivalence_size, workers=workers,
                                    chunk_size=chunk_size)
    return {
        "schema": REPORT_SCHEMA_ID,
        "fleet_size": fleet_size,
        "ram_kb": ram_kb,
        "workers": workers,
        "rounds": rounds,
        "chunk_size": chunk_size,
        "host": host_info(),
        "points": measured,
        "gate": {
            "dirty_fraction": gate_point["dirty_fraction"],
            "speedup": gate_point["speedup"],
            "speedup_threshold": gate_speedup,
            "bytes_reduction": gate_point["bytes_reduction"],
            "bytes_threshold": gate_bytes,
            "passed": (gate_point["speedup"] >= gate_speedup
                       and gate_point["bytes_reduction"] >= gate_bytes),
        },
        "equivalence": equivalence,
    }


def write_report(report: dict, path):
    """Write ``report`` as indented JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
