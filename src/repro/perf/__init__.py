"""Host wall-clock performance harness.

Everything in this package measures *host* time -- how long the Python
process takes to execute simulated work -- never simulated time.  The
two clocks are strictly separated: optimizations selected through
:mod:`repro.fastpath` may change host time only, and
:func:`repro.perf.wallclock.equivalence_check` continuously proves that
digests, MACs, consumed cycles and telemetry are byte-identical across
engines.  See ``docs/performance.md``.
"""

from . import fleet
from .fleet import FleetEngine, FleetSpec
from .wallclock import (REPORT_SCHEMA_ID, build_report, equivalence_check,
                        hmac_cache_timing, time_measurement, write_report)

__all__ = [
    "REPORT_SCHEMA_ID", "build_report", "equivalence_check",
    "hmac_cache_timing", "time_measurement", "write_report",
    "fleet", "FleetEngine", "FleetSpec",
]
