"""Fleet-scale attestation engine: sharded parallel sweeps and cached
spin-up, proven byte-identical to the sequential seed path.

The paper's Section 3.1 asymmetry -- one verifier trivially saturates a
whole fleet of 24 MHz provers -- only becomes demonstrable at fleet
scale, and the sequential :class:`~repro.services.swarm.Swarm` loop
makes the *host* the bottleneck long before the simulated verifier is.
This module removes the host bottleneck twice over without changing a
single simulated observable:

**Sharded parallel sweeps.**  :class:`FleetEngine` partitions the fleet
into contiguous shards (:func:`partition`) and runs each shard's
:class:`~repro.services.swarm.Swarm` inside a dedicated single-process
:class:`~concurrent.futures.ProcessPoolExecutor` worker, where it lives
for the engine's lifetime -- circuit breakers, freshness state and
per-member telemetry persist across sweeps exactly as they do in one
big in-process swarm.  Per-member behaviour depends only on the swarm
seed and the member's *global* index (device id, derived key, retry
jitter substream, stagger slot -- see ``Swarm.member_indices``), so
shard outcomes concatenated in shard order equal the sequential
member-order outcome list, and one shared
:func:`~repro.services.swarm.fold_outcomes` reduction makes the merged
:class:`~repro.services.swarm.SweepReport` byte-identical, float
accumulation order included.

**Cached spin-up and sweeps.**  Each shard attaches a
:class:`~repro.mcu.statecache.StateDigestCache`, so the host computes
each unique memory-state digest once per shard instead of once per
member per round: spin-up drops from O(N * measure) to
O(unique_configs * measure + N * cheap), and steady-state sweeps skip
the dominant host hash entirely.  The cache is content-addressed by
write-chain fingerprints, so a compromised member misses the cache and
is detected exactly as on the seed path.

``workers=1`` (or ``REPRO_FLEET_WORKERS=1``) falls back to one plain
in-process ``Swarm`` -- the uncached sequential seed path that
:func:`equivalence_check` and ``BENCH_fleet.json``'s gate compare
against.  Everything here measures *host* time; simulated time lives in
the shard swarms and is part of the equivalence invariant, never a
knob.  See ``docs/fleet-scale.md``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import zip_longest

from ..core.resilience import RetryPolicy
from ..errors import ConfigurationError, SnapshotError
from ..mcu.device import DeviceConfig
from ..mcu.profiles import ProtectionProfile, ROAM_HARDENED
from ..mcu.statecache import StateDigestCache
from ..net.faults import BernoulliLoss, FaultPipeline, LatencyJitter
from ..obs.registry import MetricsRegistry
from ..services.swarm import Swarm, SweepReport, fold_outcomes
from .wallclock import host_info

__all__ = ["REPORT_SCHEMA_ID", "WORKERS_ENV", "FleetSpec", "FleetEngine",
           "partition", "resolve_workers", "lossy_link",
           "default_equivalence_spec", "equivalence_check", "build_report",
           "write_report"]

REPORT_SCHEMA_ID = "repro.perf.fleet/v1"

#: Environment override for the worker count (CLI/bench default source).
WORKERS_ENV = "REPRO_FLEET_WORKERS"


@dataclass(frozen=True)
class FleetSpec:
    """Everything needed to (re)build a fleet, in picklable form.

    The spec crosses the process boundary once per shard at spin-up;
    every field must therefore pickle, which is why ``adversary_factory``
    must be a module-level callable (like :func:`lossy_link`), not a
    lambda.  Two shards built from the same spec with disjoint
    ``member_indices`` are, member for member, the same fleet as one
    in-process build of the whole spec.
    """

    size: int
    profile: ProtectionProfile = ROAM_HARDENED
    auth_scheme: str = "speck-64/128-cbc-mac"
    policy_name: str = "counter"
    device_config: DeviceConfig | None = None
    member_configs: dict | None = None
    master_key: bytes | None = None
    retry: RetryPolicy | None = None
    degrade_after: int = 1
    quarantine_after: int = 3
    probe_every_sweeps: int = 4
    adversary_factory: object = None
    observe: bool = False
    incremental: bool = False
    seed: str = "swarm"

    def build(self, *, member_indices=None,
              state_cache: StateDigestCache | None = None) -> Swarm:
        """Instantiate the fleet (or the shard named by
        ``member_indices``) as a plain in-process :class:`Swarm`."""
        size = (self.size if member_indices is None
                else len(member_indices))
        return Swarm(size, profile=self.profile,
                     auth_scheme=self.auth_scheme,
                     policy_name=self.policy_name,
                     device_config=self.device_config,
                     member_configs=self.member_configs,
                     master_key=self.master_key, retry=self.retry,
                     degrade_after=self.degrade_after,
                     quarantine_after=self.quarantine_after,
                     probe_every_sweeps=self.probe_every_sweeps,
                     member_indices=member_indices,
                     adversary_factory=self.adversary_factory,
                     observe=self.observe, state_cache=state_cache,
                     incremental=self.incremental,
                     seed=self.seed)


def partition(size: int, shards: int) -> list[range]:
    """Contiguous, balanced shard index blocks covering ``range(size)``.

    Contiguity is what makes shard-order merging equal member-order
    merging; balance (block sizes differ by at most one, larger blocks
    first) keeps shard wall-clock even.
    """
    if size < 1:
        raise ConfigurationError("cannot partition an empty fleet")
    if shards < 1:
        raise ConfigurationError("need at least one shard")
    shards = min(shards, size)
    base, extra = divmod(size, shards)
    blocks: list[range] = []
    start = 0
    for shard in range(shards):
        count = base + (1 if shard < extra else 0)
        blocks.append(range(start, start + count))
        start += count
    return blocks


def resolve_workers(workers: int | None = None, *,
                    size: int | None = None) -> int:
    """Worker count: explicit arg > ``REPRO_FLEET_WORKERS`` > CPU count.

    Always at least 1 and never more than ``size`` (a shard with no
    members is pointless).
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV)
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"{WORKERS_ENV} must be an integer, got {env!r}")
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ConfigurationError("fleet needs at least one worker")
    if size is not None:
        workers = min(workers, size)
    return workers


def lossy_link(index: int, device_id: str):
    """Per-member fault pipeline keyed on device identity.

    Module-level (picklable) so specs carrying it survive the trip into
    shard workers; seeded per device so the fault schedule a member sees
    is identical whether it lives in a shard or in one big swarm.
    """
    return FaultPipeline(
        BernoulliLoss(0.2, seed=f"fleet-fault:{device_id}"),
        LatencyJitter(0.01, seed=f"fleet-jitter:{device_id}"))


# ---------------------------------------------------------------------------
# Shard worker side.  Each shard runs in a dedicated single-worker
# executor; the Swarm lives in this module-level slot between calls so
# breakers/freshness/telemetry persist across sweeps.
# ---------------------------------------------------------------------------

_SHARD: Swarm | None = None


def _shard_init(spec: FleetSpec, indices: tuple) -> None:
    global _SHARD
    _SHARD = spec.build(member_indices=indices,
                        state_cache=StateDigestCache())


def _shard_ready() -> int:
    return len(_SHARD)


def _shard_sweep(stagger_seconds: float, retry: RetryPolicy | None) -> list:
    return _SHARD.sweep_outcomes(stagger_seconds=stagger_seconds,
                                 retry=retry)


def _shard_states() -> dict:
    return _SHARD.device_states()


def _shard_battery() -> dict:
    return _SHARD.fleet_battery_report()


def _shard_total_attestations() -> int:
    return _SHARD.total_attestations()


def _shard_merged_registry_dump() -> dict:
    return _SHARD.merged_registry().dump()


def _shard_trace_segments() -> list:
    return _SHARD.trace_segments()


def _shard_cache_stats() -> dict:
    return _SHARD.state_cache.stats()


def _shard_snapshot() -> dict:
    """Capture the resident shard: its swarm payload plus its own
    deduplicated blob map (merged collision-checked by the parent)."""
    from ..snapshot import BlobStore, snapshot_swarm
    blobs = BlobStore()
    return {"swarm": snapshot_swarm(_SHARD, blobs),
            "blobs": blobs.encode()}


def _shard_restore(state: dict, blobs_encoded: dict) -> None:
    """Overwrite the resident shard (built at executor init) with
    captured state, including its state-digest cache and hit/miss
    counters -- spin-up accounting is replaced, not added to."""
    from ..snapshot import BlobStore, restore_swarm
    restore_swarm(_SHARD, state, BlobStore.decode(blobs_encoded))


def _shard_snapshot_delta(parent_swarm_state: dict,
                          parent_blobs_encoded: dict) -> dict:
    """Capture the resident shard as a delta against its slice of a
    parent checkpoint.  The parent ships pre-subset: just this shard's
    region fingerprints, chunk-digest indexes and fallback images --
    O(shard), not O(fleet), across the process boundary."""
    from ..snapshot import BlobStore, DeltaBase, snapshot_swarm
    base = DeltaBase.for_swarm_state(
        parent_swarm_state, BlobStore.decode(parent_blobs_encoded))
    blobs = BlobStore()
    return {"swarm": snapshot_swarm(_SHARD, blobs, parent=base),
            "blobs": blobs.encode()}


class FleetEngine:
    """Sharded, cached drop-in for a sequential fleet ``Swarm``.

    ``workers > 1``: the fleet is split by :func:`partition` into that
    many contiguous shards, each resident in its own worker process with
    its own :class:`StateDigestCache`.  ``workers == 1``: one plain
    uncached in-process :class:`Swarm` -- the sequential seed path,
    bit-for-bit.  The engine mirrors the swarm's reading API
    (``sweep``/``device_states``/``total_attestations``/...), merging
    shard answers in shard order.

    Use as a context manager, or call :meth:`close` to release workers.
    """

    def __init__(self, spec: FleetSpec, *, workers: int | None = None):
        self.spec = spec
        self.workers = resolve_workers(workers, size=spec.size)
        self.spinup_seconds: float | None = None
        self.sweeps_run = 0
        self._swarm: Swarm | None = None
        self._executors: list[ProcessPoolExecutor] | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FleetEngine":
        """Spin the fleet up (idempotent); records ``spinup_seconds``."""
        if self._swarm is not None or self._executors is not None:
            return self
        begin = time.perf_counter()
        if self.workers == 1:
            self._swarm = self.spec.build()
        else:
            context = multiprocessing.get_context("fork")
            self._executors = [
                ProcessPoolExecutor(max_workers=1, mp_context=context,
                                    initializer=_shard_init,
                                    initargs=(self.spec, tuple(block)))
                for block in partition(self.spec.size, self.workers)]
            # Worker processes start on first submit; submitting to
            # every executor before collecting any result makes all
            # shards build concurrently.
            built = sum(f.result() for f in
                        [pool.submit(_shard_ready)
                         for pool in self._executors])
            if built != self.spec.size:
                raise ConfigurationError(
                    f"shards built {built} members, expected "
                    f"{self.spec.size}")
        self.spinup_seconds = time.perf_counter() - begin
        return self

    def close(self) -> None:
        if self._executors is not None:
            for pool in self._executors:
                pool.shutdown()
        self._executors = None
        self._swarm = None

    def __enter__(self) -> "FleetEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _gather(self, fn, *args) -> list:
        """Submit ``fn`` to every shard, collect results in shard order."""
        return [f.result() for f in
                [pool.submit(fn, *args) for pool in self._executors]]

    # -- the swarm API, merged ------------------------------------------

    def __len__(self) -> int:
        return self.spec.size

    def sweep(self, *, stagger_seconds: float = 0.0,
              retry: RetryPolicy | None = None) -> SweepReport:
        """One fleet-wide sweep; shards run concurrently, outcomes fold
        in shard (= member) order through the same reduction the
        sequential path uses."""
        self.start()
        if self._swarm is not None:
            report = self._swarm.sweep(stagger_seconds=stagger_seconds,
                                       retry=retry)
        else:
            outcomes = [outcome
                        for shard in self._gather(_shard_sweep,
                                                  stagger_seconds, retry)
                        for outcome in shard]
            report = fold_outcomes(outcomes)
        self.sweeps_run += 1
        return report

    def device_states(self) -> dict:
        self.start()
        if self._swarm is not None:
            return self._swarm.device_states()
        states: dict = {}
        for shard in self._gather(_shard_states):
            states.update(shard)
        return states

    def fleet_battery_report(self) -> dict:
        self.start()
        if self._swarm is not None:
            return self._swarm.fleet_battery_report()
        merged: dict = {}
        for shard in self._gather(_shard_battery):
            merged.update(shard)
        return merged

    def total_attestations(self) -> int:
        self.start()
        if self._swarm is not None:
            return self._swarm.total_attestations()
        return sum(self._gather(_shard_total_attestations))

    def merged_registry(self) -> MetricsRegistry:
        """One fleet registry, folded from shard pre-merged dumps.

        Each shard merges its own members in-process and ships a single
        dump; registry folding is exactly order-independent (error-free
        compensated float summation, with the sub-ulp remainder carried
        in the dump's residual terms), so the shard-tree fold is
        byte-identical to the sequential member-order fold.
        """
        self.start()
        if self._swarm is not None:
            return self._swarm.merged_registry()
        merged = MetricsRegistry()
        for dump in self._gather(_shard_merged_registry_dump):
            merged.merge(MetricsRegistry.from_dump(dump))
        return merged

    def merged_trace_records(self) -> list:
        """One fleet-wide trace with a monotonic ``seq``.

        Shards report sweep-major segments (see
        :meth:`~repro.services.swarm.Swarm.trace_segments`); the parent
        interleaves them sweep by sweep in shard order, which is exactly
        the order a single in-process build of the whole fleet produces.
        """
        self.start()
        if self._swarm is not None:
            return self._swarm.merged_trace_records()
        records: list = []
        shard_segments = self._gather(_shard_trace_segments)
        for row in zip_longest(*shard_segments, fillvalue=[]):
            for segment in row:
                for record in segment:
                    record["seq"] = len(records)
                    records.append(record)
        return records

    def cache_stats(self) -> dict:
        """Summed :class:`StateDigestCache` counters across shards (all
        zero on the ``workers=1`` uncached seed path)."""
        self.start()
        if self._swarm is not None:
            return {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}
        totals = {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}
        for stats in self._gather(_shard_cache_stats):
            for key in totals:
                totals[key] += stats[key]
        return totals

    # -- checkpoint / restore -------------------------------------------

    def snapshot(self, *, parent: dict | None = None) -> dict:
        """Capture the whole engine as one ``fleet`` document.

        Per-shard swarm payloads (each with its own digest cache) under
        one merged content-addressed blob map; restoring into an engine
        with the same spec and worker count resumes every shard
        exactly, and :meth:`Swarm.restore <repro.services.swarm.Swarm.\
restore>` accepts the same document for sequential resume.

        With ``parent`` (a fleet-kind document this engine descends
        from -- full or delta, same worker count and shard partition),
        every shard captures a ``repro.snapshot.delta/v1`` delta
        *in parallel* against its own slice of the parent: each worker
        receives only its members' parent records, diffs its regions'
        digest-tree leaves, and ships back O(dirty) chunk blobs.
        """
        from ..snapshot import (BlobStore, DeltaBase, document_id,
                                make_delta_document, make_document,
                                parent_blob_keys, snapshot_swarm,
                                unwrap_parent)
        self.start()
        blobs = BlobStore()
        blocks = partition(self.spec.size, self.workers)
        if parent is None:
            if self._swarm is not None:
                shards = [{"indices": [index for block in blocks
                                       for index in block],
                           "swarm": snapshot_swarm(self._swarm, blobs)}]
            else:
                shards = []
                for block, shard in zip(blocks,
                                        self._gather(_shard_snapshot)):
                    blobs.merge(BlobStore.decode(shard["blobs"]))
                    shards.append({"indices": list(block),
                                   "swarm": shard["swarm"]})
            state = {"workers": self.workers,
                     "sweeps_run": self.sweeps_run, "shards": shards}
            return make_document("fleet", state, blobs)

        parent_state, parent_blobs = unwrap_parent(parent, "fleet")
        if parent_state["workers"] != self.workers:
            raise SnapshotError(
                f"delta parent has {parent_state['workers']} shard(s), "
                f"engine resolved {self.workers}; delta capture needs "
                f"matching shard layouts")
        captured = [shard["indices"] for shard in parent_state["shards"]]
        if captured != [list(block) for block in blocks]:
            raise SnapshotError(
                "shard partition mismatch between delta parent and "
                "engine")
        if self._swarm is not None:
            base = DeltaBase.for_swarm_state(
                parent_state["shards"][0]["swarm"], parent_blobs)
            shards = [{"indices": captured[0],
                       "swarm": snapshot_swarm(self._swarm, blobs,
                                               parent=base)}]
        else:
            futures = []
            for pool, parent_shard in zip(self._executors,
                                          parent_state["shards"]):
                swarm_state = parent_shard["swarm"]
                subset = parent_blobs.subset(
                    parent_blob_keys(swarm_state)).encode()
                futures.append(pool.submit(_shard_snapshot_delta,
                                           swarm_state, subset))
            shards = []
            for block, future in zip(blocks, futures):
                shard = future.result()
                blobs.merge(BlobStore.decode(shard["blobs"]))
                shards.append({"indices": list(block),
                               "swarm": shard["swarm"]})
        state = {"workers": self.workers, "sweeps_run": self.sweeps_run,
                 "shards": shards}
        return make_delta_document("fleet", state, blobs,
                                   document_id(parent))

    def restore(self, document: dict) -> None:
        """Overwrite this engine's shards from a ``fleet`` document.

        The engine must have been created with the same spec and
        resolve to the same worker count as the captured one (shard
        boundaries and digest caches are per-worker state); to resume a
        fleet document on different hardware, restore it into a
        sequential :class:`~repro.services.swarm.Swarm` instead.
        """
        from ..snapshot import unwrap_document
        state, blobs = unwrap_document(document, "fleet")
        self.start()
        if state["workers"] != self.workers:
            raise SnapshotError(
                f"worker-count mismatch: snapshot has {state['workers']} "
                f"shard(s), engine resolved {self.workers}; restore into "
                f"a sequential Swarm to repartition")
        blocks = partition(self.spec.size, self.workers)
        captured = [shard["indices"] for shard in state["shards"]]
        if captured != [list(block) for block in blocks]:
            raise SnapshotError("shard partition mismatch between "
                                "snapshot and engine")
        if self._swarm is not None:
            from ..snapshot import restore_swarm
            restore_swarm(self._swarm, state["shards"][0]["swarm"], blobs)
        else:
            encoded = blobs.encode()
            for pool, shard in zip(self._executors, state["shards"]):
                pool.submit(_shard_restore, shard["swarm"], encoded).result()
        self.sweeps_run = state["sweeps_run"]


# ---------------------------------------------------------------------------
# Equivalence gate and the BENCH_fleet.json report
# ---------------------------------------------------------------------------

def default_equivalence_spec(size: int = 8) -> FleetSpec:
    """A deliberately adversarial little fleet for the equivalence gate:
    lossy jittery links, retries with backoff *and* jitter, telemetry on
    -- every seed-path subtlety the shard merge must reproduce."""
    return FleetSpec(
        size=size,
        device_config=DeviceConfig(ram_size=8 * 1024,
                                   flash_size=16 * 1024,
                                   app_size=2 * 1024),
        retry=RetryPolicy(attempt_timeout_seconds=5.0, max_retries=2,
                          base_backoff_seconds=1.0, jitter_fraction=0.5),
        adversary_factory=lossy_link,
        observe=True,
        seed="fleet-equivalence")


def equivalence_check(spec: FleetSpec | None = None, *, workers: int = 2,
                      sweeps: int = 2,
                      stagger_seconds: float = 0.5) -> dict:
    """Prove a sharded parallel fleet is byte-identical to the
    sequential seed path.

    Runs ``sweeps`` staggered sweeps on (a) one plain in-process
    ``Swarm`` and (b) a :class:`FleetEngine` with ``workers`` shards,
    then compares every sweep's :class:`SweepReport`, final breaker
    states, total accepted attestations, the merged telemetry registry
    dump and the merged event trace.  Any mismatch names the field.
    """
    spec = spec if spec is not None else default_equivalence_spec()
    if workers < 2:
        raise ConfigurationError(
            "equivalence needs workers >= 2 (workers=1 IS the seed path)")
    mismatched: list[str] = []
    sequential = spec.build()
    with FleetEngine(spec, workers=workers) as engine:
        for index in range(sweeps):
            seq_report = sequential.sweep(stagger_seconds=stagger_seconds)
            par_report = engine.sweep(stagger_seconds=stagger_seconds)
            if seq_report != par_report:
                mismatched.append(f"sweep[{index}].report")
        if sequential.device_states() != engine.device_states():
            mismatched.append("device_states")
        if sequential.total_attestations() != engine.total_attestations():
            mismatched.append("total_attestations")
        if spec.observe:
            seq_registry = json.dumps(sequential.merged_registry().dump(),
                                      sort_keys=True)
            par_registry = json.dumps(engine.merged_registry().dump(),
                                      sort_keys=True)
            if seq_registry != par_registry:
                mismatched.append("registry")
            if (sequential.merged_trace_records()
                    != engine.merged_trace_records()):
                mismatched.append("trace")
        resolved = engine.workers
    return {"fleet_size": spec.size, "workers": resolved, "sweeps": sweeps,
            "identical": not mismatched, "mismatched_fields": mismatched}


def _bench_spec(fleet_size: int, ram_kb: int) -> FleetSpec:
    """Members whose writable memory (RAM plus an equally large flash,
    both capped by the 1 MB memory-map windows) maximises the host-hash
    share of each attestation -- the work the cache removes."""
    flash_kb = min(ram_kb, 1024)
    return FleetSpec(
        size=fleet_size,
        device_config=DeviceConfig(ram_size=ram_kb * 1024,
                                   flash_size=flash_kb * 1024,
                                   app_size=2 * 1024),
        seed="fleet-bench")


def build_report(*, fleet_size: int = 256, ram_kb: int = 1024,
                 sweeps: int = 2, workers: int | None = None,
                 equivalence_size: int = 6) -> dict:
    """Assemble the full ``BENCH_fleet.json`` payload.

    Times spin-up and ``sweeps`` full sweeps on the sequential seed path
    (one plain uncached ``Swarm``) and on a sharded cached
    :class:`FleetEngine`, refuses to report if their sweep reports
    differ, and embeds a fault-injected :func:`equivalence_check` block.
    ``speedup`` is the headline sequential/parallel sweep wall-clock
    ratio the benchmark gate asserts ``>= 2`` at fleet size >= 256.

    The parallel engine runs first: shard workers fork before the big
    sequential swarm exists, so copy-on-write faults over the parent
    heap do not tax shard spin-up.
    """
    resolved = resolve_workers(workers, size=fleet_size)
    resolved = max(2, min(resolved, fleet_size))
    spec = _bench_spec(fleet_size, ram_kb)

    with FleetEngine(spec, workers=resolved) as engine:
        engine.start()
        par_spinup = engine.spinup_seconds
        par_reports = []
        begin = time.perf_counter()
        for _ in range(sweeps):
            par_reports.append(engine.sweep())
        par_sweep = time.perf_counter() - begin
        cache = engine.cache_stats()

    # The cache's spin-up win, isolated from process-pool overhead: one
    # in-process build sharing a single StateDigestCache. Measured
    # before the sequential fleet exists so both spin-up timings run
    # against the same (near-empty) heap.
    begin = time.perf_counter()
    spec.build(state_cache=StateDigestCache())
    cached_spinup = time.perf_counter() - begin

    begin = time.perf_counter()
    sequential = spec.build()
    seq_spinup = time.perf_counter() - begin
    seq_reports = []
    begin = time.perf_counter()
    for _ in range(sweeps):
        seq_reports.append(sequential.sweep())
    seq_sweep = time.perf_counter() - begin
    del sequential

    if seq_reports != par_reports:
        raise AssertionError(
            "parallel sweep reports diverged from the sequential seed "
            "path -- refusing to write a perf report")

    equivalence = equivalence_check(
        default_equivalence_spec(equivalence_size), workers=2, sweeps=2)
    return {
        "schema": REPORT_SCHEMA_ID,
        "fleet_size": fleet_size,
        "ram_kb": ram_kb,
        "workers": resolved,
        "sweeps": sweeps,
        "host": {**host_info(), "cpus": os.cpu_count() or 1},
        "sequential": {
            "spinup_seconds": seq_spinup,
            "sweep_seconds": seq_sweep,
            "devices_per_second": fleet_size * sweeps / seq_sweep,
            "attempted": seq_reports[-1].attempted,
            "trusted": seq_reports[-1].trusted,
        },
        "parallel": {
            "spinup_seconds": par_spinup,
            "sweep_seconds": par_sweep,
            "devices_per_second": fleet_size * sweeps / par_sweep,
            "attempted": par_reports[-1].attempted,
            "trusted": par_reports[-1].trusted,
        },
        "speedup": seq_sweep / par_sweep,
        "spinup": {
            "sequential_seconds": seq_spinup,
            "parallel_seconds": par_spinup,
            "factor": seq_spinup / par_spinup,
            "cached_inprocess_seconds": cached_spinup,
            "cached_factor": seq_spinup / cached_spinup,
        },
        "cache": cache,
        "reports_identical": True,
        "equivalence": equivalence,
    }


def write_report(report: dict, path):
    """Write ``report`` as indented JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
