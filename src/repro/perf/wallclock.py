"""Wall-clock benchmarks of the measurement engine, and the paired
fast/naive equivalence check.

The attestation measurement is re-executed by the host for every
simulated attestation, so host wall-clock of the measurement-heavy
experiments is dominated by :mod:`repro.crypto.sha1`.  This module times
that engine end to end (device build excluded, measurement only) under
each :mod:`repro.fastpath` engine, and packages the numbers as the
``BENCH_wallclock.json`` report written at the repository root by
``benchmarks/bench_wallclock.py`` -- the perf trajectory future changes
are judged against.

Every report embeds an **equivalence block**: the fast engines must
produce byte-identical digests, response MACs, consumed cycles,
:class:`~repro.core.prover.ProverStats` and telemetry registry dumps as
the naive reference on a full protocol scenario.  A report whose
equivalence block is not clean is a correctness regression, not a perf
number; ``scripts/perf_smoke.py`` fails CI on it.

All timings here are host time (``time.perf_counter``).  Simulated time
lives in :mod:`repro.crypto.costmodel` and never appears in this module
except as the invariant being checked.
"""

from __future__ import annotations

import json
import pathlib
import platform
import time

from .. import fastpath
from ..core.protocol import build_session
from ..crypto.hmac import HmacSha1, clear_hmac_midstate_cache
from ..mcu.device import Device, DeviceConfig
from ..obs.telemetry import Telemetry

__all__ = ["REPORT_SCHEMA_ID", "DEFAULT_SWEEP_KB", "host_info",
           "time_measurement", "hmac_cache_timing", "equivalence_check",
           "build_report", "write_report"]

REPORT_SCHEMA_ID = "repro.perf.wallclock/v1"

#: RAM sizes (KB) of the default measurement sweep.
DEFAULT_SWEEP_KB = (64, 128, 256, 512, 1024)

_KEY = b"wallclock-key-16"
_CHALLENGE = b"wallclock-challenge"


def host_info() -> dict:
    """The host block every perf report embeds (shared by the wallclock,
    fleet and incremental reports so they stay comparable)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
    }


def _build_device(ram_kb: int) -> tuple[Device, object]:
    """A provisioned, booted prover whose writable memory is dominated
    by ``ram_kb`` of RAM (flash kept small, as in the paper-scale
    benchmarks)."""
    config = DeviceConfig(ram_size=ram_kb * 1024, flash_size=16 * 1024,
                          app_size=2 * 1024)
    device = Device(config)
    device.install_app()
    device.provision(_KEY)
    device.boot()
    return device, device.context("Code_Attest")


def time_measurement(ram_kb: int, engine: str, *, repeats: int = 1) -> dict:
    """Time ``measure_writable_memory`` once per repeat; keep the best.

    Returns a sweep entry for the report: sizes, engine, best seconds,
    throughput, and the digest (hex) so entries are cross-checkable.
    """
    device, context = _build_device(ram_kb)
    writable = device.writable_memory_bytes
    best = None
    digest = b""
    with fastpath.forced(engine):
        for _ in range(max(1, repeats)):
            clear_hmac_midstate_cache()
            start = time.perf_counter()
            digest = device.measure_writable_memory(context, _KEY, _CHALLENGE)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
    return {
        "ram_kb": ram_kb,
        "writable_kb": writable // 1024,
        "engine": engine,
        "seconds": best,
        "mb_per_s": (writable / best) / 1e6,
        "digest": digest.hex(),
    }


def hmac_cache_timing(rounds: int = 500) -> dict:
    """Cold vs warm HMAC construction cost under the current fast engine.

    Cold constructs each :class:`HmacSha1` with an empty midstate cache
    (two key-pad blocks hashed per request); warm reuses the cached
    midstates.  Both then absorb and finalise a one-block message, the
    request-validation shape of Section 4.1.
    """
    message = b"m" * 64

    def run(warm: bool) -> float:
        clear_hmac_midstate_cache()
        if warm:
            HmacSha1(_KEY)  # populate the cache once
        start = time.perf_counter()
        for _ in range(rounds):
            if not warm:
                clear_hmac_midstate_cache()
            HmacSha1(_KEY, message).digest()
        return time.perf_counter() - start

    cold = run(warm=False)
    warm = run(warm=True)
    return {
        "rounds": rounds,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": cold / warm if warm > 0 else 1.0,
    }


def _scenario_fingerprint(engine: str, ram_kb: int, rounds: int) -> dict:
    """Everything observable about one quickstart-style run: response
    MACs, measurement digest, consumed cycles, ProverStats, and the full
    telemetry registry dump."""
    with fastpath.forced(engine):
        clear_hmac_midstate_cache()
        telemetry = Telemetry()
        session = build_session(
            device_config=DeviceConfig(ram_size=ram_kb * 1024),
            telemetry=telemetry, seed="perf-equivalence")
        reference = session.learn_reference_state()
        for _ in range(rounds):
            result = session.attest_once()
            assert result.trusted, "equivalence scenario must verify"
        # One direct round to capture the response MAC bytes themselves
        # (the channel consumes the responses of the rounds above).
        request = session.verifier.make_request()
        response, reason = session.anchor.handle_request(request)
        assert reason == "ok", f"direct round rejected: {reason}"
        session.device.sync_energy()
        stats = session.anchor.stats
        return {
            "reference_digest": reference.hex(),
            "response_measurement": response.measurement.hex(),
            "response_mac": response.tag.hex(),
            "cycle_count": session.device.cpu.cycle_count,
            "stats": {
                "received": stats.received,
                "accepted": stats.accepted,
                "rejected": dict(stats.rejected),
                "validation_cycles": stats.validation_cycles,
                "attestation_cycles": stats.attestation_cycles,
            },
            "registry": json.dumps(telemetry.registry.dump(),
                                   sort_keys=True),
        }


def equivalence_check(ram_kb: int = 16, rounds: int = 2,
                      engines: tuple = ("pure", "accel")) -> dict:
    """Prove the fast engines change no output and no simulated accounting.

    Runs the same seeded protocol scenario under ``naive`` and each fast
    engine and compares response MACs, digests, consumed cycles,
    ``ProverStats`` and the telemetry registry dump byte for byte.
    """
    baseline = _scenario_fingerprint("naive", ram_kb, rounds)
    comparisons = {}
    identical = True
    for engine in engines:
        candidate = _scenario_fingerprint(engine, ram_kb, rounds)
        mismatches = sorted(key for key in baseline
                            if candidate[key] != baseline[key])
        comparisons[engine] = {"identical": not mismatches,
                               "mismatched_fields": mismatches}
        identical = identical and not mismatches
    return {
        "ram_kb": ram_kb,
        "rounds": rounds,
        "identical": identical,
        "engines": comparisons,
        "response_mac": baseline["response_mac"],
        "cycle_count": baseline["cycle_count"],
    }


def build_report(*, sweep_kb: tuple = DEFAULT_SWEEP_KB,
                 naive_kb: int = 512, repeats: int = 1,
                 equivalence_ram_kb: int = 16) -> dict:
    """Assemble the full ``BENCH_wallclock.json`` payload.

    * a fast-engine sweep over ``sweep_kb`` (cold HMAC cache each run);
    * the naive baseline at ``naive_kb`` and the headline speedup of the
      default engine against it on the same size;
    * cold-vs-warm HMAC midstate cache timing;
    * the paired equivalence block (see :func:`equivalence_check`).
    """
    default_engine = fastpath.engine()
    sweep = [time_measurement(kb, default_engine, repeats=repeats)
             for kb in sweep_kb]
    naive = time_measurement(naive_kb, "naive", repeats=repeats)
    fast_at_naive_size = next(
        (entry for entry in sweep if entry["ram_kb"] == naive_kb), None)
    if fast_at_naive_size is None:
        fast_at_naive_size = time_measurement(naive_kb, default_engine,
                                              repeats=repeats)
        sweep.append(fast_at_naive_size)
    if naive["digest"] != fast_at_naive_size["digest"]:
        raise AssertionError(
            "fast and naive measurement digests diverged at "
            f"{naive_kb} KB -- refusing to write a perf report")
    return {
        "schema": REPORT_SCHEMA_ID,
        "engine_default": default_engine,
        "host": host_info(),
        "sweep": sweep,
        "naive_baseline": naive,
        "speedup": {
            "ram_kb": naive_kb,
            "naive_seconds": naive["seconds"],
            "fast_seconds": fast_at_naive_size["seconds"],
            "factor": naive["seconds"] / fast_at_naive_size["seconds"],
        },
        "hmac_cache": hmac_cache_timing(),
        "equivalence": equivalence_check(ram_kb=equivalence_ram_kb),
    }


def write_report(report: dict, path) -> pathlib.Path:
    """Write ``report`` as indented JSON; returns the path."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path
