"""Generalised prover-side request protection (future work item 3).

Section 7: "Generalize proposed techniques to other network protocols
(beyond attestation) to mitigate DoS attacks on other security services
on embedded devices."  The generalisation is exactly the prover's
request-handling pipeline with the service-specific work abstracted out:

1. authenticate the command under a protected key (cheap, Table 1);
2. check freshness against EA-MPU-protected state;
3. only then run the (expensive) service handler;
4. authenticate the reply.

:class:`RequestGuard` packages steps 1-2-4 so *any* command handler --
attestation, code update, erasure, actuation, configuration -- gets the
same DoS posture with the same single counter word of protected state.
Each command type gets its own domain-separation label folded into the
MAC, so a recorded command of one type can never be replayed as another.

Wire format of a guarded command::

    GCMD | label-len u8 | label | counter u64 | body-len u16 | body | tag
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from ..crypto.hmac import constant_time_compare, hmac_sha1
from ..errors import ConfigurationError, RequestRejected
from ..mcu.device import Device

__all__ = ["GuardedCommand", "GuardStats", "RequestGuard", "CommandIssuer"]


@dataclass(frozen=True)
class GuardedCommand:
    """An authenticated, counter-fresh command for one service."""

    label: str        # service/command type, e.g. "actuate", "config-set"
    counter: int
    body: bytes
    tag: bytes = b""

    def tagged_payload(self) -> bytes:
        label = self.label.encode("utf-8")
        if len(label) > 255:
            raise ConfigurationError("command label too long")
        return (b"GCMD" + struct.pack(">B", len(label)) + label
                + struct.pack(">Q", self.counter)
                + struct.pack(">H", len(self.body)) + self.body)

    def with_tag(self, tag: bytes) -> "GuardedCommand":
        return GuardedCommand(self.label, self.counter, self.body, tag)


@dataclass
class GuardStats:
    """Per-guard acceptance accounting."""

    received: int = 0
    executed: int = 0
    rejected_auth: int = 0
    rejected_stale: int = 0
    rejected_unknown: int = 0


class CommandIssuer:
    """Verifier side: issues guarded commands with a shared counter."""

    def __init__(self, key: bytes):
        self.key = bytes(key)
        self.next_counter = 1

    def issue(self, label: str, body: bytes = b"") -> GuardedCommand:
        command = GuardedCommand(label=label, counter=self.next_counter,
                                 body=body)
        self.next_counter += 1
        return command.with_tag(hmac_sha1(self.key,
                                          command.tagged_payload()))


class RequestGuard:
    """Prover side: the Section 4/5 pipeline around arbitrary handlers.

    Handlers are registered per label; the guard authenticates and
    freshness-checks every inbound command *before* invoking one, charging
    one HMAC validation (Table 1) per command.  Freshness state is the
    device's protected ``counter_R`` word -- shared across all guarded
    services, so the roaming adversary faces the same EA-MPU wall
    regardless of which service it targets.

    Raises :class:`RequestRejected` with a machine-readable reason; the
    handler result is returned on acceptance.
    """

    def __init__(self, device: Device):
        self.device = device
        self.context = device.context("Code_Attest")
        self._handlers: dict[str, Callable[[bytes], object]] = {}
        self.stats = GuardStats()

    def register(self, label: str,
                 handler: Callable[[bytes], object]) -> None:
        """Attach ``handler`` for commands labelled ``label``."""
        if label in self._handlers:
            raise ConfigurationError(f"handler for {label!r} already set")
        self._handlers[label] = handler

    def handle(self, command: GuardedCommand) -> object:
        """Authenticate, freshness-check, dispatch."""
        self.stats.received += 1
        device = self.device

        # Step 1: authenticate (cheap; charged at Table 1 rates).
        key = device.read_key(self.context)
        payload = command.tagged_payload()
        device.cpu.consume_cycles(
            device.cost_model.hmac_cycles(len(payload), mode="table"))
        if not constant_time_compare(hmac_sha1(key, payload), command.tag):
            self.stats.rejected_auth += 1
            raise RequestRejected("command failed authentication",
                                  reason="bad-auth")

        # Step 2: freshness against the protected counter word.
        stored = device.read_counter(self.context)
        if command.counter <= stored:
            self.stats.rejected_stale += 1
            raise RequestRejected(
                f"stale counter {command.counter} (stored {stored})",
                reason="stale-counter")

        handler = self._handlers.get(command.label)
        if handler is None:
            self.stats.rejected_unknown += 1
            raise RequestRejected(f"no handler for {command.label!r}",
                                  reason="unknown-command")

        # Commit freshness only for commands that will actually run, so a
        # command for an unknown service cannot burn counters.
        device.write_counter(self.context, command.counter)

        # Step 3: the service work itself.
        result = handler(command.body)
        self.stats.executed += 1
        return result

    def authenticate_reply(self, command: GuardedCommand,
                           reply_body: bytes) -> bytes:
        """Step 4: tag a reply so the verifier can authenticate it."""
        key = self.device.read_key(self.context)
        payload = (b"GRPL" + command.tagged_payload()
                   + struct.pack(">H", len(reply_body)) + reply_body)
        self.device.cpu.consume_cycles(
            self.device.cost_model.hmac_cycles(len(payload), mode="table"))
        return hmac_sha1(key, payload)

    @staticmethod
    def check_reply(key: bytes, command: GuardedCommand, reply_body: bytes,
                    tag: bytes) -> bool:
        """Verifier side: validate a guarded reply."""
        payload = (b"GRPL" + command.tagged_payload()
                   + struct.pack(">H", len(reply_body)) + reply_body)
        return constant_time_compare(hmac_sha1(key, payload), tag)
