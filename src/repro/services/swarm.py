"""Many-prover (IoT) deployments (future work item 1).

Section 7: "Trial-deploy proposed methods in the context of connected
devices, such as Internet of Things (IoT)."  A swarm is N independent
prover devices, each with its own ``K_Attest``, freshness state and
channel, driven by one verifier that sweeps attestation across the fleet.

What the swarm view adds over single-device sessions:

* fleet-level schedules (round-robin sweeps with a configurable pace),
* aggregate health reporting (which devices attested, which failed, how
  much fleet energy attestation consumed),
* graceful degradation: per-device circuit breakers
  (:class:`~repro.core.resilience.CircuitBreaker`) move persistently
  failing devices through ``healthy`` -> ``degraded`` -> ``quarantined``
  instead of lumping every silence into one bucket, and quarantined
  devices are only probed periodically so they stop consuming sweep
  time,
* staggered timing so the Section 3.1 cost asymmetry becomes visible at
  scale: a verifier can trivially saturate a whole fleet of 24 MHz
  provers from one machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.protocol import Session, build_session
from ..core.resilience import CircuitBreaker, RetryPolicy
from ..crypto.rng import DeterministicRng
from ..errors import ConfigurationError
from ..mcu.device import DeviceConfig
from ..mcu.profiles import ProtectionProfile, ROAM_HARDENED

__all__ = ["SwarmMember", "SweepReport", "Swarm"]


@dataclass
class SwarmMember:
    """One device in the fleet."""

    device_id: str
    session: Session

    @property
    def battery_fraction(self) -> float:
        self.session.device.sync_energy()
        return self.session.device.battery.fraction_remaining


@dataclass
class SweepReport:
    """Result of one attestation sweep across the fleet.

    Failures are bucketed by *cause*, not lumped together: a device
    whose traffic the channel dropped (``no_response``) needs a network
    fix, a device that refused the request or failed authentication
    (``refused``) needs a protocol/key look, and a device reporting a
    digest outside the reference set (``untrusted``) needs incident
    response.  ``skipped_quarantined`` lists members the circuit breaker
    held out of this sweep.
    """

    attempted: int = 0
    trusted: int = 0
    untrusted: list[str] = field(default_factory=list)
    #: No response and no prover-side rejection: the channel ate it.
    no_response: list[str] = field(default_factory=list)
    #: The device rejected the request (bad MAC, stale freshness) or
    #: answered with a response that failed authentication.
    refused: list[str] = field(default_factory=list)
    skipped_quarantined: list[str] = field(default_factory=list)
    retries: int = 0
    fleet_energy_mj: float = 0.0
    sweep_seconds: float = 0.0

    @property
    def unresponsive(self) -> list[str]:
        """Deprecated pre-split bucket: ``no_response`` + ``refused``."""
        return self.no_response + self.refused

    @property
    def healthy(self) -> bool:
        return not (self.untrusted or self.no_response or self.refused
                    or self.skipped_quarantined)


class Swarm:
    """A fleet of provers and the verifier-side sweep logic.

    Each member gets an independent simulation/channel/key (devices do
    not share a radio in this model; contention is out of scope for the
    paper).  ``member_configs`` may override per-device hardware, e.g. to
    mix clock designs in one fleet.

    ``retry`` attaches a fleet-wide
    :class:`~repro.core.resilience.RetryPolicy` to every sweep (each
    member's attestation is retried under it); ``degrade_after`` /
    ``quarantine_after`` / ``probe_every_sweeps`` tune the per-device
    circuit breakers.
    """

    def __init__(self, size: int, *, profile: ProtectionProfile = ROAM_HARDENED,
                 auth_scheme: str = "speck-64/128-cbc-mac",
                 policy_name: str = "counter",
                 device_config: DeviceConfig | None = None,
                 member_configs: dict[int, DeviceConfig] | None = None,
                 master_key: bytes | None = None,
                 retry: RetryPolicy | None = None,
                 degrade_after: int = 1, quarantine_after: int = 3,
                 probe_every_sweeps: int = 4,
                 seed: str = "swarm"):
        if size < 1:
            raise ConfigurationError("swarm needs at least one member")
        if probe_every_sweeps < 1:
            raise ConfigurationError("probe_every_sweeps must be >= 1")
        overrides = member_configs if member_configs is not None else {}
        self.master_key = master_key
        self.retry = retry
        self.probe_every_sweeps = probe_every_sweeps
        self.members: list[SwarmMember] = []
        self.breakers: dict[str, CircuitBreaker] = {}
        self._retry_rng = DeterministicRng(seed).substream("sweep-jitter")
        for index in range(size):
            config = overrides.get(index, device_config)
            if config is None:
                config = DeviceConfig(ram_size=16 * 1024,
                                      flash_size=32 * 1024,
                                      app_size=4 * 1024)
            device_id = f"device-{index:03d}"
            key = None
            if master_key is not None:
                from ..crypto.kdf import derive_device_key
                key = derive_device_key(master_key, device_id)
            session = build_session(
                profile=profile, auth_scheme=auth_scheme,
                policy_name=policy_name, device_config=config,
                key=key, seed=f"{seed}:{index}")
            session.learn_reference_state()
            self.members.append(SwarmMember(device_id, session))
            self.breakers[device_id] = CircuitBreaker(
                degrade_after=degrade_after,
                quarantine_after=quarantine_after)
        self.sweeps_run = 0

    def __len__(self) -> int:
        return len(self.members)

    def member(self, device_id: str) -> SwarmMember:
        for candidate in self.members:
            if candidate.device_id == device_id:
                return candidate
        raise KeyError(device_id)

    # ------------------------------------------------------------------

    def _record_breaker(self, member: SwarmMember, success: bool) -> None:
        breaker = self.breakers[member.device_id]
        previous = breaker.state
        if success:
            breaker.record_success()
        else:
            breaker.record_failure()
        if breaker.state != previous:
            telemetry = member.session.telemetry
            telemetry.count("swarm.breaker_transitions", to=breaker.state)
            telemetry.event("breaker-state", member.session.sim.now,
                            device=member.device_id, previous=previous,
                            state=breaker.state)

    def sweep(self, *, stagger_seconds: float = 0.0,
              retry: RetryPolicy | None = None) -> SweepReport:
        """Attest every member once; returns the fleet health report.

        ``stagger_seconds`` spaces requests out (a real verifier paces
        sweeps so fleet-wide attestation does not synchronise every
        device's unavailability window).  ``retry`` overrides the
        fleet-wide retry policy for this sweep.  Quarantined members are
        skipped except for their periodic probe.
        """
        retry = retry if retry is not None else self.retry
        report = SweepReport()
        for index, member in enumerate(self.members):
            breaker = self.breakers[member.device_id]
            if not breaker.should_attempt(self.probe_every_sweeps):
                report.skipped_quarantined.append(member.device_id)
                continue
            session = member.session
            if stagger_seconds:
                session.sim.run(until=session.sim.now
                                + index * stagger_seconds)
            before_energy = session.device.battery.consumed_mj
            rejected_before = session.anchor.stats.rejected_total
            start = session.sim.now
            if retry is not None:
                jitter_rng = self._retry_rng.substream(
                    f"{member.device_id}:{self.sweeps_run}")
                outcome = session.attest_resilient(retry, rng=jitter_rng)
                result = outcome.result
                report.retries += outcome.retries
            else:
                result = session.attest_once()
            report.attempted += 1
            report.sweep_seconds = max(report.sweep_seconds,
                                       session.sim.now - start)
            session.device.sync_energy()
            report.fleet_energy_mj += (session.device.battery.consumed_mj
                                       - before_energy)
            if result.trusted:
                report.trusted += 1
                self._record_breaker(member, True)
                continue
            self._record_breaker(member, False)
            if result.detail == "no-response":
                # Silence has two causes the transcript distinguishes:
                # the prover rejecting the request (it saw it and said
                # no) vs the channel never delivering anything.
                if session.anchor.stats.rejected_total > rejected_before:
                    report.refused.append(member.device_id)
                else:
                    report.no_response.append(member.device_id)
            elif not result.authentic:
                report.refused.append(member.device_id)
            else:
                report.untrusted.append(member.device_id)
        self.sweeps_run += 1
        return report

    # ------------------------------------------------------------------

    def device_states(self) -> dict[str, str]:
        """Circuit-breaker state per device (graceful-degradation view)."""
        return {device_id: breaker.state
                for device_id, breaker in self.breakers.items()}

    def fleet_battery_report(self) -> dict[str, float]:
        """Remaining battery fraction per device."""
        return {member.device_id: member.battery_fraction
                for member in self.members}

    def total_attestations(self) -> int:
        return sum(member.session.anchor.stats.accepted
                   for member in self.members)
