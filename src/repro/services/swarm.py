"""Many-prover (IoT) deployments (future work item 1).

Section 7: "Trial-deploy proposed methods in the context of connected
devices, such as Internet of Things (IoT)."  A swarm is N independent
prover devices, each with its own ``K_Attest``, freshness state and
channel, driven by one verifier that sweeps attestation across the fleet.

What the swarm view adds over single-device sessions:

* fleet-level schedules (round-robin sweeps with a configurable pace),
* aggregate health reporting (which devices attested, which failed, how
  much fleet energy attestation consumed),
* graceful degradation: per-device circuit breakers
  (:class:`~repro.core.resilience.CircuitBreaker`) move persistently
  failing devices through ``healthy`` -> ``degraded`` -> ``quarantined``
  instead of lumping every silence into one bucket, and quarantined
  devices are only probed periodically so they stop consuming sweep
  time,
* staggered timing so the Section 3.1 cost asymmetry becomes visible at
  scale: a verifier can trivially saturate a whole fleet of 24 MHz
  provers from one machine.

Sweeps are factored into per-member :class:`MemberSweepOutcome` values
folded by :func:`fold_outcomes` so that :mod:`repro.perf.fleet` can run
disjoint shards of a fleet in separate worker processes and merge their
outcomes into a :class:`SweepReport` byte-identical to a sequential
sweep: every per-member quantity (jitter substream, stagger offset,
device id, key) depends only on the swarm seed and the member's global
index, never on which shard computed it or in what order.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from ..core.protocol import Session, build_session
from ..core.resilience import CircuitBreaker, RetryPolicy
from ..crypto.hmac import pin_hmac_midstates
from ..crypto.kdf import derive_device_key
from ..crypto.rng import DeterministicRng
from ..errors import ConfigurationError
from ..mcu.device import DeviceConfig
from ..mcu.profiles import ProtectionProfile, ROAM_HARDENED
from ..mcu.statecache import StateDigestCache
from ..net.channel import ChannelAdversary
from ..obs.registry import MetricsRegistry
from ..obs.telemetry import Telemetry

__all__ = ["SwarmMember", "MemberSweepOutcome", "SweepReport",
           "fold_outcomes", "Swarm"]

#: Outcome categories a member can report from one sweep.
OUTCOME_CATEGORIES = ("trusted", "untrusted", "no_response", "refused",
                      "skipped")


@dataclass
class SwarmMember:
    """One device in the fleet.

    ``index`` is the member's *global* fleet index: it determines the
    device id, key-derivation label, seed and stagger slot, so a shard
    holding members 96..127 of a 256-member fleet behaves identically to
    the same members inside one big in-process swarm.
    """

    device_id: str
    session: Session
    index: int = 0

    @property
    def battery_fraction(self) -> float:
        self.session.device.sync_energy()
        return self.session.device.battery.fraction_remaining


@dataclass(frozen=True)
class MemberSweepOutcome:
    """One member's contribution to a sweep, in picklable form.

    This is the unit that crosses process boundaries in sharded sweeps:
    plain strings and numbers, no simulator references.  ``category`` is
    one of ``trusted`` / ``untrusted`` / ``no_response`` / ``refused`` /
    ``skipped`` (circuit breaker held the member out of the sweep).
    """

    device_id: str
    category: str
    retries: int = 0
    energy_delta_mj: float = 0.0
    duration_seconds: float = 0.0


def fold_outcomes(outcomes: Iterable[MemberSweepOutcome]) -> SweepReport:
    """Fold per-member outcomes into a fleet :class:`SweepReport`.

    Both the sequential :meth:`Swarm.sweep` and the sharded parallel
    engine reduce through this one function, in member order -- so the
    float-accumulation order of ``fleet_energy_mj`` (and every list
    field's order) is identical no matter how the fleet was partitioned.
    """
    report = SweepReport()
    for outcome in outcomes:
        if outcome.category == "skipped":
            report.skipped_quarantined.append(outcome.device_id)
            continue
        report.attempted += 1
        report.retries += outcome.retries
        report.sweep_seconds = max(report.sweep_seconds,
                                   outcome.duration_seconds)
        report.fleet_energy_mj += outcome.energy_delta_mj
        if outcome.category == "trusted":
            report.trusted += 1
        elif outcome.category == "untrusted":
            report.untrusted.append(outcome.device_id)
        elif outcome.category == "no_response":
            report.no_response.append(outcome.device_id)
        elif outcome.category == "refused":
            report.refused.append(outcome.device_id)
        else:
            raise ConfigurationError(
                f"unknown sweep outcome category: {outcome.category!r}")
    return report


@dataclass
class SweepReport:
    """Result of one attestation sweep across the fleet.

    Failures are bucketed by *cause*, not lumped together: a device
    whose traffic the channel dropped (``no_response``) needs a network
    fix, a device that refused the request or failed authentication
    (``refused``) needs a protocol/key look, and a device reporting a
    digest outside the reference set (``untrusted``) needs incident
    response.  ``skipped_quarantined`` lists members the circuit breaker
    held out of this sweep.
    """

    attempted: int = 0
    trusted: int = 0
    untrusted: list[str] = field(default_factory=list)
    #: No response and no prover-side rejection: the channel ate it.
    no_response: list[str] = field(default_factory=list)
    #: The device rejected the request (bad MAC, stale freshness) or
    #: answered with a response that failed authentication.
    refused: list[str] = field(default_factory=list)
    skipped_quarantined: list[str] = field(default_factory=list)
    retries: int = 0
    fleet_energy_mj: float = 0.0
    sweep_seconds: float = 0.0

    @property
    def unresponsive(self) -> list[str]:
        """Deprecated pre-split bucket: ``no_response`` + ``refused``."""
        return self.no_response + self.refused

    @property
    def healthy(self) -> bool:
        return not (self.untrusted or self.no_response or self.refused
                    or self.skipped_quarantined)


class Swarm:
    """A fleet of provers and the verifier-side sweep logic.

    Each member gets an independent simulation/channel/key (devices do
    not share a radio in this model; contention is out of scope for the
    paper).  ``member_configs`` may override per-device hardware, e.g. to
    mix clock designs in one fleet.

    ``retry`` attaches a fleet-wide
    :class:`~repro.core.resilience.RetryPolicy` to every sweep (each
    member's attestation is retried under it); ``degrade_after`` /
    ``quarantine_after`` / ``probe_every_sweeps`` tune the per-device
    circuit breakers.

    Fleet-scale hooks (all default-off so the plain constructor stays
    the sequential seed path):

    ``member_indices``
        Build only the members with these *global* indices -- the shard
        primitive.  ``Swarm(4)`` equals the union of
        ``member_indices=(0, 1)`` and ``member_indices=(2, 3)`` swarms
        with the same seed, member for member.
    ``adversary_factory``
        ``(index, device_id) -> ChannelAdversary`` called per member, so
        fleets can mix fault pipelines deterministically by identity.
    ``observe``
        Attach a private :class:`~repro.obs.telemetry.Telemetry` sink to
        every member (required for :meth:`merged_registry` /
        :meth:`merged_trace_records`).
    ``state_cache``
        Share a :class:`~repro.mcu.statecache.StateDigestCache` across
        members, collapsing spin-up's O(N * measure) host hashing to one
        measurement per unique configuration.
    ``incremental``
        Enable dirty-region incremental measurement: every member gets
        per-region digest trees (:meth:`~repro.mcu.device.Device.
        enable_incremental`), a shared unbounded ``StateDigestCache`` is
        created if none was given, and all member HMAC keys are
        batch-pinned in the midstate cache
        (:func:`~repro.crypto.hmac.pin_hmac_midstates`) so per-member
        finalization never recomputes a pad block.  Host-side only:
        digests, simulated cycles, energy and reports are byte-identical
        to the full-walk path (``scripts/incremental_smoke.py`` gates
        this).
    """

    def __init__(self, size: int, *, profile: ProtectionProfile = ROAM_HARDENED,
                 auth_scheme: str = "speck-64/128-cbc-mac",
                 policy_name: str = "counter",
                 device_config: DeviceConfig | None = None,
                 member_configs: dict[int, DeviceConfig] | None = None,
                 master_key: bytes | None = None,
                 retry: RetryPolicy | None = None,
                 degrade_after: int = 1, quarantine_after: int = 3,
                 probe_every_sweeps: int = 4,
                 member_indices: Sequence[int] | None = None,
                 adversary_factory: Callable[[int, str],
                                             ChannelAdversary] | None = None,
                 observe: bool = False,
                 state_cache: StateDigestCache | None = None,
                 incremental: bool = False,
                 seed: str = "swarm"):
        if size < 1:
            raise ConfigurationError("swarm needs at least one member")
        if probe_every_sweeps < 1:
            raise ConfigurationError("probe_every_sweeps must be >= 1")
        if member_indices is None:
            indices: Sequence[int] = range(size)
        else:
            indices = tuple(member_indices)
            if len(indices) != size:
                raise ConfigurationError(
                    "member_indices must supply exactly one global index "
                    f"per member (got {len(indices)} for size {size})")
        overrides = member_configs if member_configs is not None else {}
        if incremental and state_cache is None:
            # Incremental measurement needs every member's content entry
            # resident; an eviction would silently reintroduce full
            # walks, so default to the unbounded mode.
            state_cache = StateDigestCache(max_entries=0)
        self.master_key = master_key
        self.retry = retry
        self.probe_every_sweeps = probe_every_sweeps
        self.observe = observe
        self.state_cache = state_cache
        self.incremental = incremental
        self.members: list[SwarmMember] = []
        self.breakers: dict[str, CircuitBreaker] = {}
        self._members_by_id: dict[str, SwarmMember] = {}
        #: Per-sweep trace watermarks (one ``EventTrace.emitted`` value
        #: per member), recorded at each sweep boundary so the merged
        #: trace can be ordered sweep-major.  See ``trace_segments``.
        self._trace_marks: list[list[int]] = []
        self._retry_rng = DeterministicRng(seed).substream("sweep-jitter")
        for index in indices:
            config = overrides.get(index, device_config)
            if config is None:
                config = DeviceConfig(ram_size=16 * 1024,
                                      flash_size=32 * 1024,
                                      app_size=4 * 1024)
            device_id = f"device-{index:03d}"
            key = None
            if master_key is not None:
                key = derive_device_key(master_key, device_id)
            adversary = None
            if adversary_factory is not None:
                adversary = adversary_factory(index, device_id)
            telemetry = Telemetry() if observe else None
            session = build_session(
                profile=profile, auth_scheme=auth_scheme,
                policy_name=policy_name, device_config=config,
                adversary=adversary, key=key, telemetry=telemetry,
                seed=f"{seed}:{index}")
            if state_cache is not None:
                session.device.attach_state_cache(state_cache)
            if incremental:
                session.device.enable_incremental()
            session.learn_reference_state()
            member = SwarmMember(device_id, session, index)
            self.members.append(member)
            self._members_by_id[device_id] = member
            self.breakers[device_id] = CircuitBreaker(
                degrade_after=degrade_after,
                quarantine_after=quarantine_after)
        self.sweeps_run = 0
        if incremental:
            self._pin_member_keys()

    def _pin_member_keys(self) -> None:
        """Batch-pin every member's ``K_Attest`` pad midstates in one
        pass (see :func:`~repro.crypto.hmac.pin_hmac_midstates`).

        Reads the keys through the hardware-internal ``raw_read`` view:
        this is host-side cache priming, not a simulated access, so it
        charges no cycles and trips no EA-MPU rule.  Idempotent -- the
        sweep path re-asserts it so a midstate-cache clear (benchmarks
        do this) or an engine switch cannot silently degrade a fleet
        back to LRU thrashing.
        """
        keys = []
        for member in self.members:
            device = member.session.device
            start, end = device.key_span
            region = device.memory.find(start)
            keys.append(region.raw_read(start - region.start, end - start))
        pin_hmac_midstates(keys)

    def __len__(self) -> int:
        return len(self.members)

    def member(self, device_id: str) -> SwarmMember:
        return self._members_by_id[device_id]

    # ------------------------------------------------------------------

    def _record_breaker(self, member: SwarmMember, success: bool) -> None:
        breaker = self.breakers[member.device_id]
        previous = breaker.state
        if success:
            breaker.record_success()
        else:
            breaker.record_failure()
        if breaker.state != previous:
            telemetry = member.session.telemetry
            telemetry.count("swarm.breaker_transitions", to=breaker.state)
            telemetry.event("breaker-state", member.session.sim.now,
                            device=member.device_id, previous=previous,
                            state=breaker.state)

    def _sweep_member(self, member: SwarmMember, retry: RetryPolicy | None,
                      stagger_seconds: float) -> MemberSweepOutcome:
        """Attest one member; every input is derived from the member's
        global identity so shards reproduce the sequential transcript."""
        breaker = self.breakers[member.device_id]
        if not breaker.should_attempt(self.probe_every_sweeps):
            return MemberSweepOutcome(member.device_id, "skipped")
        session = member.session
        if stagger_seconds:
            session.sim.run(until=session.sim.now
                            + member.index * stagger_seconds)
        before_energy = session.device.battery.consumed_mj
        rejected_before = session.anchor.stats.rejected_total
        start = session.sim.now
        retries = 0
        if retry is not None:
            jitter_rng = self._retry_rng.substream(
                f"{member.device_id}:{self.sweeps_run}")
            outcome = session.attest_resilient(retry, rng=jitter_rng)
            result = outcome.result
            retries = outcome.retries
        else:
            result = session.attest_once()
        duration = session.sim.now - start
        session.device.sync_energy()
        energy = session.device.battery.consumed_mj - before_energy
        if result.trusted:
            self._record_breaker(member, True)
            category = "trusted"
        else:
            self._record_breaker(member, False)
            if result.detail == "no-response":
                # Silence has two causes the transcript distinguishes:
                # the prover rejecting the request (it saw it and said
                # no) vs the channel never delivering anything.
                if session.anchor.stats.rejected_total > rejected_before:
                    category = "refused"
                else:
                    category = "no_response"
            elif not result.authentic:
                category = "refused"
            else:
                category = "untrusted"
        return MemberSweepOutcome(member.device_id, category,
                                  retries=retries, energy_delta_mj=energy,
                                  duration_seconds=duration)

    def sweep_outcomes(self, *, stagger_seconds: float = 0.0,
                       retry: RetryPolicy | None = None,
                       ) -> list[MemberSweepOutcome]:
        """Attest every member once, returning per-member outcomes.

        This is :meth:`sweep` minus the fold: the sharded parallel
        engine calls it on each shard and folds the concatenation.
        Advances ``sweeps_run`` (which seeds the per-sweep retry-jitter
        substreams).
        """
        retry = retry if retry is not None else self.retry
        if self.incremental:
            self._pin_member_keys()
        outcomes = [self._sweep_member(member, retry, stagger_seconds)
                    for member in self.members]
        self.sweeps_run += 1
        if self.observe:
            self._trace_marks.append(
                [member.session.telemetry.trace.emitted
                 for member in self.members])
        return outcomes

    def sweep(self, *, stagger_seconds: float = 0.0,
              retry: RetryPolicy | None = None) -> SweepReport:
        """Attest every member once; returns the fleet health report.

        ``stagger_seconds`` spaces requests out (a real verifier paces
        sweeps so fleet-wide attestation does not synchronise every
        device's unavailability window).  ``retry`` overrides the
        fleet-wide retry policy for this sweep.  Quarantined members are
        skipped except for their periodic probe.
        """
        return fold_outcomes(self.sweep_outcomes(
            stagger_seconds=stagger_seconds, retry=retry))

    # ------------------------------------------------------------------

    def snapshot(self, *, parent: dict | None = None) -> dict:
        """Capture the whole fleet between sweeps as one document.

        Member region images are content-addressed and deduplicated, so
        the document costs O(unique memory histories), not
        O(members * writable bytes).  With ``parent`` (a swarm-kind
        document this run descends from -- full or delta), the capture
        is a ``repro.snapshot.delta/v1`` **delta**: per region, only
        chunks whose digest-tree leaves changed since the parent are
        stored.  See :mod:`repro.snapshot` and
        :mod:`repro.snapshot.delta`.
        """
        from ..snapshot import (BlobStore, DeltaBase, document_id,
                                make_delta_document, make_document,
                                snapshot_swarm)
        blobs = BlobStore()
        if parent is None:
            state = snapshot_swarm(self, blobs)
            return make_document("swarm", state, blobs)
        base = DeltaBase.from_document(parent, "swarm")
        state = snapshot_swarm(self, blobs, parent=base)
        return make_delta_document("swarm", state, blobs,
                                   document_id(parent))

    def freshness_fingerprint(self) -> str:
        """SHA-1 over every member's verifier freshness state (next
        counter, nonce-RNG and challenge-RNG stream positions) -- a
        cheap cross-check that a restored fleet will issue exactly the
        challenges the captured one would have."""
        import hashlib as _hashlib
        import json as _json

        from ..snapshot import rng_state
        payload = [{"device": member.device_id,
                    "next_counter": (member.session.verifier
                                     .freshness_state.next_counter),
                    "nonce_rng": rng_state(
                        member.session.verifier.freshness_state.rng),
                    "challenge_rng": rng_state(
                        member.session.verifier._challenge_rng)}
                   for member in self.members]
        text = _json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return _hashlib.sha1(text.encode()).hexdigest()

    def restore(self, document: dict) -> None:
        """Overwrite this (freshly rebuilt) swarm from a document.

        Accepts swarm documents and fleet documents (whose shards are
        flattened into fleet order); the rebuilt swarm must have the
        same constructor parameters as the captured one.
        """
        from ..snapshot import (BlobStore, flatten_fleet_state,
                                restore_swarm, unwrap_document)
        if document.get("kind") == "fleet":
            state, blobs = unwrap_document(document, "fleet")
            state = flatten_fleet_state(state)
        else:
            state, blobs = unwrap_document(document, "swarm")
        restore_swarm(self, state, blobs)

    def replay_to_seq(self, document: dict, target_seq: int, *,
                      stagger_seconds: float = 0.0,
                      max_sweeps: int = 64) -> list:
        """Restore from ``document`` and deterministically re-drive the
        fleet until the merged event trace reaches ``target_seq``;
        returns the exact record prefix ``0..target_seq``."""
        from ..snapshot import (flatten_fleet_state, replay_to_seq,
                                unwrap_document)
        if document.get("kind") == "fleet":
            state, blobs = unwrap_document(document, "fleet")
            state = flatten_fleet_state(state)
        else:
            state, blobs = unwrap_document(document, "swarm")
        return replay_to_seq(self, state, blobs, target_seq,
                             stagger_seconds=stagger_seconds,
                             max_sweeps=max_sweeps)

    def device_states(self) -> dict[str, str]:
        """Circuit-breaker state per device (graceful-degradation view)."""
        return {device_id: breaker.state
                for device_id, breaker in self.breakers.items()}

    def fleet_battery_report(self) -> dict[str, float]:
        """Remaining battery fraction per device."""
        return {member.device_id: member.battery_fraction
                for member in self.members}

    def total_attestations(self) -> int:
        return sum(member.session.anchor.stats.accepted
                   for member in self.members)

    # ------------------------------------------------------------------

    def merged_registry(self) -> MetricsRegistry:
        """Fold every member's metrics into one fleet registry.

        Registry folding is order-independent (exact compensated float
        summation in :class:`~repro.obs.registry.Counter`), so the
        result is identical however the fleet was sharded or the merge
        tree shaped.  Requires ``observe=True``.
        """
        if not self.observe:
            raise ConfigurationError(
                "merged_registry needs a swarm built with observe=True")
        merged = MetricsRegistry()
        for member in self.members:
            merged.merge(member.session.telemetry.registry)
        return merged

    def trace_segments(self) -> list[list[dict]]:
        """Member trace records grouped sweep-major, one segment per
        recorded sweep (plus a tail for events after the last sweep).

        Within a segment members appear in fleet order.  This grouping
        is *append-stable*: running more sweeps appends segments without
        reordering earlier ones, which is what makes a fleet-wide
        ``seq`` a durable event address (a member-major concatenation
        would renumber every later member's history on each new sweep).
        Requires ``observe=True``.
        """
        if not self.observe:
            raise ConfigurationError(
                "trace_segments needs a swarm built with observe=True")
        member_records = [member.session.telemetry.trace.as_records()
                          for member in self.members]
        cursors = [0] * len(self.members)
        segments: list[list[dict]] = []
        for marks in self._trace_marks:
            segment: list[dict] = []
            for i, records in enumerate(member_records):
                while (cursors[i] < len(records)
                       and records[cursors[i]]["seq"] < marks[i]):
                    segment.append(records[cursors[i]])
                    cursors[i] += 1
            segments.append(segment)
        tail = [record for i, records in enumerate(member_records)
                for record in records[cursors[i]:]]
        if tail:
            segments.append(tail)
        return segments

    def merged_trace_records(self) -> list[dict]:
        """One fleet-wide trace: sweep-major segments, re-sequenced.

        Per-member ``seq`` counters are replaced by one fleet-wide
        running sequence so the merged trace is a valid single trace.
        Requires ``observe=True``.
        """
        records: list[dict] = []
        for segment in self.trace_segments():
            for record in segment:
                record["seq"] = len(records)
                records.append(record)
        return records
