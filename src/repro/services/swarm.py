"""Many-prover (IoT) deployments (future work item 1).

Section 7: "Trial-deploy proposed methods in the context of connected
devices, such as Internet of Things (IoT)."  A swarm is N independent
prover devices, each with its own ``K_Attest``, freshness state and
channel, driven by one verifier that sweeps attestation across the fleet.

What the swarm view adds over single-device sessions:

* fleet-level schedules (round-robin sweeps with a configurable pace),
* aggregate health reporting (which devices attested, which failed, how
  much fleet energy attestation consumed),
* staggered timing so the Section 3.1 cost asymmetry becomes visible at
  scale: a verifier can trivially saturate a whole fleet of 24 MHz
  provers from one machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.protocol import Session, build_session
from ..errors import ConfigurationError
from ..mcu.device import DeviceConfig
from ..mcu.profiles import ProtectionProfile, ROAM_HARDENED

__all__ = ["SwarmMember", "SweepReport", "Swarm"]


@dataclass
class SwarmMember:
    """One device in the fleet."""

    device_id: str
    session: Session

    @property
    def battery_fraction(self) -> float:
        self.session.device.sync_energy()
        return self.session.device.battery.fraction_remaining


@dataclass
class SweepReport:
    """Result of one attestation sweep across the fleet."""

    attempted: int = 0
    trusted: int = 0
    untrusted: list[str] = field(default_factory=list)
    unresponsive: list[str] = field(default_factory=list)
    fleet_energy_mj: float = 0.0
    sweep_seconds: float = 0.0

    @property
    def healthy(self) -> bool:
        return not self.untrusted and not self.unresponsive


class Swarm:
    """A fleet of provers and the verifier-side sweep logic.

    Each member gets an independent simulation/channel/key (devices do
    not share a radio in this model; contention is out of scope for the
    paper).  ``member_configs`` may override per-device hardware, e.g. to
    mix clock designs in one fleet.
    """

    def __init__(self, size: int, *, profile: ProtectionProfile = ROAM_HARDENED,
                 auth_scheme: str = "speck-64/128-cbc-mac",
                 policy_name: str = "counter",
                 device_config: DeviceConfig | None = None,
                 member_configs: dict[int, DeviceConfig] | None = None,
                 master_key: bytes | None = None,
                 seed: str = "swarm"):
        if size < 1:
            raise ConfigurationError("swarm needs at least one member")
        overrides = member_configs if member_configs is not None else {}
        self.master_key = master_key
        self.members: list[SwarmMember] = []
        for index in range(size):
            config = overrides.get(index, device_config)
            if config is None:
                config = DeviceConfig(ram_size=16 * 1024,
                                      flash_size=32 * 1024,
                                      app_size=4 * 1024)
            device_id = f"device-{index:03d}"
            key = None
            if master_key is not None:
                from ..crypto.kdf import derive_device_key
                key = derive_device_key(master_key, device_id)
            session = build_session(
                profile=profile, auth_scheme=auth_scheme,
                policy_name=policy_name, device_config=config,
                key=key, seed=f"{seed}:{index}")
            session.learn_reference_state()
            self.members.append(SwarmMember(device_id, session))
        self.sweeps_run = 0

    def __len__(self) -> int:
        return len(self.members)

    def member(self, device_id: str) -> SwarmMember:
        for candidate in self.members:
            if candidate.device_id == device_id:
                return candidate
        raise KeyError(device_id)

    # ------------------------------------------------------------------

    def sweep(self, *, stagger_seconds: float = 0.0) -> SweepReport:
        """Attest every member once; returns the fleet health report.

        ``stagger_seconds`` spaces requests out (a real verifier paces
        sweeps so fleet-wide attestation does not synchronise every
        device's unavailability window).
        """
        report = SweepReport()
        for index, member in enumerate(self.members):
            session = member.session
            if stagger_seconds:
                session.sim.run(until=session.sim.now
                                + index * stagger_seconds)
            before_energy = session.device.battery.consumed_mj
            start = session.sim.now
            result = session.attest_once()
            report.attempted += 1
            report.sweep_seconds = max(report.sweep_seconds,
                                       session.sim.now - start)
            session.device.sync_energy()
            report.fleet_energy_mj += (session.device.battery.consumed_mj
                                       - before_energy)
            if result.detail == "no-response":
                report.unresponsive.append(member.device_id)
            elif result.trusted:
                report.trusted += 1
            else:
                report.untrusted.append(member.device_id)
        self.sweeps_run += 1
        return report

    # ------------------------------------------------------------------

    def fleet_battery_report(self) -> dict[str, float]:
        """Remaining battery fraction per device."""
        return {member.device_id: member.battery_fraction
                for member in self.members}

    def total_attestations(self) -> int:
        return sum(member.session.anchor.stats.accepted
                   for member in self.members)
