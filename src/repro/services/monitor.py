"""Attestation monitoring: turning rounds into an operational policy.

A verifier does not attest once; it runs a *policy*: attest every T, retry
on silence, escalate after consecutive failures, and respect the prover's
duty cycle (each attestation steals hundreds of milliseconds from the
device's primary task, Section 3.1 -- so over-attesting is self-DoS).
:class:`AttestationMonitor` implements that policy over a
:class:`~repro.core.protocol.Session` and produces an auditable event log.

Retry semantics are delegated to a
:class:`~repro.core.resilience.RetryPolicy`: each attempt has a deadline
(clamped up to the most recently *measured* round trip, so low settings
can no longer fire retries faster than the attestation itself -- every
such premature retry used to cost the prover a full extra measurement),
and attempts are spaced by exponential backoff when the policy asks for
it.

Escalation ladder:

* ``ok`` -- round trusted;
* ``retry`` -- no response / untrusted, within the retry budget;
* ``alarm`` -- ``failure_threshold`` consecutive failures: the device is
  flagged for manual intervention (re-provisioning, physical recovery);
* monitoring of a flagged device continues, so recovery is observed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..core.protocol import Session
from ..core.resilience import RetryPolicy
from ..crypto.rng import DeterministicRng
from ..errors import ConfigurationError

__all__ = ["MonitorEvent", "MonitorPolicy", "AttestationMonitor"]


@dataclass(frozen=True)
class MonitorPolicy:
    """Tunable knobs of the monitoring loop.

    ``retry_delay_seconds`` and ``max_retries`` are the legacy
    fixed-cadence knobs, kept as deprecated aliases: when ``retry`` is
    not given they are translated into an equivalent
    :class:`~repro.core.resilience.RetryPolicy` (per-attempt deadline =
    ``retry_delay_seconds``, no backoff, no budget).  New code should
    pass ``retry`` directly.
    """

    interval_seconds: float = 600.0
    retry_delay_seconds: float = 5.0   # deprecated: use ``retry``
    max_retries: int = 2               # deprecated: use ``retry``
    failure_threshold: int = 3
    retry: RetryPolicy | None = None

    def __post_init__(self):
        if self.interval_seconds <= 0:
            raise ConfigurationError("monitor intervals must be positive")
        if self.failure_threshold < 1:
            raise ConfigurationError("invalid retry/threshold settings")
        if self.retry is not None:
            # An explicit retry policy supersedes the deprecated
            # fixed-cadence knobs: effective_retry() never reads them, so
            # rejecting their values here would fail configurations over
            # fields that cannot take effect.  Flag any non-default value
            # instead of validating it.
            if self.retry_delay_seconds != 5.0 or self.max_retries != 2:
                warnings.warn(
                    "retry_delay_seconds=/max_retries= are ignored when "
                    "retry= is given; configure the RetryPolicy instead "
                    "[DEP001]", DeprecationWarning, stacklevel=3)
            return
        if self.retry_delay_seconds <= 0:
            raise ConfigurationError("monitor intervals must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("invalid retry/threshold settings")

    def effective_retry(self) -> RetryPolicy:
        """The retry policy this monitor actually runs."""
        if self.retry is not None:
            return self.retry
        return RetryPolicy(attempt_timeout_seconds=self.retry_delay_seconds,
                           max_retries=self.max_retries)


@dataclass(frozen=True)
class MonitorEvent:
    """One entry of the monitoring audit log."""

    time: float
    kind: str         # ok | retry | failure | alarm | recovered
    detail: str


@dataclass
class AttestationMonitor:
    """Periodic attestation with retries and escalation.

    Monitor events are mirrored into the session's telemetry sink as
    ``monitor-event`` trace records and ``monitor.events`` counters, so
    operator-side escalation shows up in the same export as the
    prover-side cycle costs.  Backoff jitter (when the retry policy
    configures any) draws from a :class:`DeterministicRng` seeded by
    ``seed``, preserving the simulation's replayability.
    """

    session: Session
    policy: MonitorPolicy = field(default_factory=MonitorPolicy)
    seed: str = "monitor-rng"

    def __post_init__(self):
        self.events: list[MonitorEvent] = []
        self.consecutive_failures = 0
        self.alarmed = False
        self.rounds_run = 0
        self.attempts_run = 0
        self._rng = DeterministicRng(self.seed).substream("backoff-jitter")

    # ------------------------------------------------------------------

    def _log(self, kind: str, detail: str) -> None:
        self.events.append(MonitorEvent(self.session.sim.now, kind, detail))
        telemetry = self.session.telemetry
        telemetry.count("monitor.events", kind=kind)
        telemetry.event("monitor-event", self.session.sim.now,
                        monitor_kind=kind, detail=detail)

    def run_round(self) -> bool:
        """One scheduled round: attempt + retries; returns success.

        ``rounds_run`` counts *logical* rounds (one per call), not
        attempts -- retried rounds used to inflate it and skew every
        per-round average derived from it.  ``attempts_run`` carries the
        per-attempt count separately.
        """
        retry = self.policy.effective_retry()
        sim = self.session.sim
        node = self.session.verifier_node
        round_start = sim.now
        self.rounds_run += 1
        attempts = 0
        while True:
            timeout = retry.effective_timeout(node.last_round_seconds)
            if retry.total_budget_seconds is not None:
                # Clamp the attempt deadline so the round can never
                # spend past the total budget (the budget check between
                # attempts alone lets the final attempt overrun it).
                remaining = retry.total_budget_seconds \
                    - (sim.now - round_start)
                timeout = min(timeout, max(remaining, 0.0))
            result = self.session.attest_once(settle_seconds=timeout)
            self.attempts_run += 1
            if result.trusted:
                if self.alarmed:
                    self.alarmed = False
                    self._log("recovered", "device attests trusted again")
                self.consecutive_failures = 0
                self._log("ok", result.detail)
                return True
            attempts += 1
            if attempts > retry.max_retries:
                break
            if retry.budget_exhausted(sim.now - round_start):
                break
            self._log("retry", f"attempt {attempts} failed: {result.detail}")
            delay = retry.backoff_delay(attempts, self._rng)
            if delay > 0.0:
                self.session.telemetry.count("monitor.backoff_seconds", delay)
                sim.run(until=sim.now + delay)
        self.consecutive_failures += 1
        self._log("failure", f"round failed after {attempts} attempts: "
                             f"{result.detail}")
        if (self.consecutive_failures >= self.policy.failure_threshold
                and not self.alarmed):
            self.alarmed = True
            self._log("alarm", f"{self.consecutive_failures} consecutive "
                               f"failed rounds")
        return False

    def run(self, rounds: int) -> list[MonitorEvent]:
        """Run ``rounds`` scheduled rounds, spaced by the interval."""
        if rounds < 1:
            raise ConfigurationError("need at least one round")
        for _ in range(rounds):
            self.run_round()
            self.session.sim.run(
                until=self.session.sim.now + self.policy.interval_seconds)
        return list(self.events)

    # ------------------------------------------------------------------

    @property
    def duty_cost_fraction(self) -> float:
        """Share of the prover's time the monitoring policy consumes --
        the operator-side view of Section 3.1's cost."""
        device = self.session.device
        stats = self.session.anchor.stats
        if device.cpu.elapsed_seconds == 0:
            return 0.0
        busy = (stats.attestation_cycles + stats.validation_cycles) \
            / device.cpu.frequency_hz
        return busy / device.cpu.elapsed_seconds
