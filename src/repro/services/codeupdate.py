"""Secure code update built on the attestation substrate (Section 1).

The paper motivates attestation as "an important building block, useful
for constructing more specialized services, such as secure code update
and secure memory erasure [SCUBA]".  This service is the code-update
half: the verifier ships a new application image; the prover's trust
anchor authenticates it, enforces version anti-rollback, decrypts and
installs it, then proves the installation with a fresh measurement.

Package format (all integrity under ``K_Attest``):

* header: target module name, new version, plaintext length;
* body: AES-128-CBC ciphertext of the new code (confidentiality keeps
  proprietary firmware off the air);
* tag: HMAC-SHA1 over header || IV || ciphertext.

Prover-side costs are charged at Table 1 rates (one HMAC over the
package + one AES decryption per block + flash programming time), so the
benchmarks can weigh update cost against attestation cost.

Note on the boot reference: the prototype device stores its secure-boot
reference measurement in ROM, so an updated application would fail a
*reboot* measurement.  Production TrustLite-class systems keep the
reference in EA-MPU-protected flash precisely so updates can refresh it;
we model that by letting the update manager return the new reference for
re-provisioning, and document the delta in DESIGN.md.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..crypto.aes import AES128
from ..crypto.hmac import constant_time_compare, hmac_sha1
from ..crypto.modes import CBC
from ..crypto.rng import DeterministicRng
from ..errors import ProtocolError
from ..mcu.device import Device, FLASH_BASE
from ..mcu.firmware import FirmwareModule

__all__ = ["UpdatePackage", "UpdateAuthority", "UpdateManager",
           "UpdateReceipt"]

#: Flash programming cost: cycles per byte written (datasheet-style
#: figure for embedded NOR flash word programming at 24 MHz).
FLASH_WRITE_CYCLES_PER_BYTE = 120


@dataclass(frozen=True)
class UpdatePackage:
    """An authenticated, encrypted firmware update."""

    module_name: str
    version: int
    plaintext_length: int
    iv: bytes
    ciphertext: bytes
    tag: bytes

    def header(self) -> bytes:
        name = self.module_name.encode("utf-8")
        return (b"FWUP" + struct.pack(">BIH", len(name), self.version,
                                      self.plaintext_length) + name)

    def tagged_payload(self) -> bytes:
        return self.header() + self.iv + self.ciphertext


@dataclass(frozen=True)
class UpdateReceipt:
    """Result of a successful installation."""

    module_name: str
    version: int
    new_reference: bytes      # measurement of the installed module
    install_cycles: int


class UpdateAuthority:
    """Verifier side: builds signed update packages."""

    def __init__(self, key: bytes, seed: str = "update-authority"):
        self.key = bytes(key)
        self._rng = DeterministicRng(seed)

    def package(self, module: FirmwareModule) -> UpdatePackage:
        """Encrypt and authenticate ``module`` for shipment."""
        code = module.code_bytes()
        iv = self._rng.bytes(16)
        ciphertext = CBC(AES128(self.key)).encrypt(iv, code)
        partial = UpdatePackage(
            module_name=module.name, version=module.version,
            plaintext_length=len(code), iv=iv, ciphertext=ciphertext,
            tag=b"")
        tag = hmac_sha1(self.key, partial.tagged_payload())
        return UpdatePackage(
            module_name=module.name, version=module.version,
            plaintext_length=len(code), iv=iv, ciphertext=ciphertext,
            tag=tag)


class UpdateManager:
    """Prover side: validates and installs updates as ``Code_Attest``."""

    def __init__(self, device: Device):
        self.device = device
        self.context = device.context("Code_Attest")
        self.updates_applied = 0
        self.updates_rejected = 0

    @property
    def installed_version(self) -> int:
        """Current application version (the anti-rollback floor)."""
        if self.device.app_module is None:
            return 0
        return self.device.app_module.version

    def apply(self, package: UpdatePackage) -> UpdateReceipt:
        """Authenticate, decrypt and install one update package.

        Raises :class:`ProtocolError` on a bad tag, version rollback, a
        target other than the application, or an image too large for the
        flash application region.
        """
        device = self.device
        cpu = device.cpu
        start = cpu.cycle_count
        key = device.read_key(self.context)

        # Authenticate first, at Table 1 HMAC cost over the package.
        payload = package.tagged_payload()
        cpu.consume_cycles(
            device.cost_model.hmac_cycles(len(payload), mode="table"))
        if not constant_time_compare(hmac_sha1(key, payload), package.tag):
            self.updates_rejected += 1
            raise ProtocolError("update package failed authentication")

        if package.module_name != "app":
            self.updates_rejected += 1
            raise ProtocolError(
                f"update targets {package.module_name!r}; only the "
                f"application is field-updatable")
        if package.version <= self.installed_version:
            self.updates_rejected += 1
            raise ProtocolError(
                f"version rollback: installed v{self.installed_version}, "
                f"offered v{package.version}")

        # Decrypt at Table 1 AES cost.
        blocks = len(package.ciphertext) // 16
        cpu.consume_cycles(device.cost_model.aes_key_expansion_cycles()
                           + device.cost_model.aes_decrypt_cycles(blocks))
        code = CBC(AES128(key)).decrypt(package.iv, package.ciphertext)
        if len(code) != package.plaintext_length:
            self.updates_rejected += 1
            raise ProtocolError("update length mismatch after decryption")

        app_start, app_end = device.firmware.span("app")
        region_capacity = app_end - app_start
        if len(code) > region_capacity:
            self.updates_rejected += 1
            raise ProtocolError(
                f"image ({len(code)} B) exceeds application region "
                f"({region_capacity} B)")

        # Program the flash under the Code_Attest context.
        with cpu.running(self.context):
            device.bus.write(self.context, app_start, code)
            if len(code) < region_capacity:
                device.bus.write(self.context, app_start + len(code),
                                 b"\xFF" * (region_capacity - len(code)))
            cpu.consume_cycles(
                FLASH_WRITE_CYCLES_PER_BYTE * region_capacity)

        # Refresh the in-simulator firmware bookkeeping.
        new_module = FirmwareModule("app", len(code),
                                    version=package.version)
        device.firmware.modules = [m for m in device.firmware.modules
                                   if m.name != "app"]
        del device.firmware.layout["app"]
        device.firmware.add(new_module, FLASH_BASE)
        device.app_module = new_module

        self.updates_applied += 1
        return UpdateReceipt(
            module_name="app", version=package.version,
            new_reference=new_module.measurement(),
            install_cycles=cpu.cycle_count - start)
