"""Services built on the attestation substrate (Sections 1 and 7).

The paper's future-work list, implemented as optional extensions:
authenticated clock synchronisation (:mod:`~repro.services.timesync`),
IoT fleet deployment (:mod:`~repro.services.swarm`), the async
multi-tenant verifier service (:mod:`~repro.services.attestd`), and the
two derived services its introduction motivates -- secure code update
(:mod:`~repro.services.codeupdate`) and secure memory erasure
(:mod:`~repro.services.erasure`).
"""

from .attestd import (AttestationService, RequestRecord, ServiceRequest,
                      build_schedule, build_service_from_spec, service_spec)
from .codeupdate import (UpdateAuthority, UpdateManager, UpdatePackage,
                         UpdateReceipt)
from .erasure import (EraseProof, EraseRequest, ErasureManager,
                      ErasureVerifier)
from .guard import CommandIssuer, GuardedCommand, GuardStats, RequestGuard
from .monitor import AttestationMonitor, MonitorEvent, MonitorPolicy
from .swarm import Swarm, SwarmMember, SweepReport
from .timesync import (ClockSynchronizer, DriftingClock, SyncRequest,
                       SyncResponse, SyncVerifier)

__all__ = [
    "AttestationMonitor", "AttestationService", "ClockSynchronizer",
    "CommandIssuer", "RequestRecord", "ServiceRequest", "build_schedule",
    "build_service_from_spec", "service_spec",
    "DriftingClock", "EraseProof", "EraseRequest", "ErasureManager",
    "ErasureVerifier", "GuardStats", "GuardedCommand", "MonitorEvent",
    "MonitorPolicy", "RequestGuard", "Swarm", "SwarmMember", "SweepReport",
    "SyncRequest", "SyncResponse", "SyncVerifier", "UpdateAuthority",
    "UpdateManager", "UpdatePackage", "UpdateReceipt",
]
