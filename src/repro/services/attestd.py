"""``attestd``: an async multi-tenant verifier service (future work 1).

The paper's Section 3.1 asymmetry argument cuts both ways: an
attestation round steals hundreds of prover-milliseconds, so a verifier
that attests too eagerly -- or lets one tenant's schedule starve the
fleet -- is itself the DoS vector the protocol defends against.  Up to
now that budget was enforced per-session; :class:`AttestationService`
lifts it to an operational tier that multiplexes many concurrent
sessions behind one front door:

* **Admission control** -- every tenant owns a :class:`TokenBucket`
  denominated in *prover-seconds*: it refills at
  ``duty_fraction x devices`` prover-seconds per (virtual) second, the
  Section 3.1 duty-cycle budget.  A request is charged its device's
  estimated measurement cost *before* any session work happens
  (reject-before-measure), so an over-budget tenant burns verifier
  arithmetic, never prover cycles.  Decisions are made synchronously in
  schedule order from the request's virtual arrival time -- never from
  a host clock -- so admission is a pure function of the schedule and
  replays byte-identically.
* **Sharded freshness state** -- devices are placed onto backends by
  consistent hashing over the device id.  Placement only ever chooses
  *where* a session runs: device ids, keys, RNG substreams and
  therefore verdicts derive from the global device index alone (the
  PR 5 shard-identity discipline), so re-sharding a deployment can
  never change what any device answers.
* **Async front door** -- :meth:`AttestationService.serve` multiplexes
  admitted requests across per-backend asyncio workers.  The event loop
  is a dispatch veneer: all simulated time lives in each session's
  discrete-event simulator, and the only awaits are queue handoffs, so
  the serviced run is equivalent to the sequential library path
  (:meth:`AttestationService.process`) -- the benchmark gates on the
  two being byte-identical at ``workers=1``.
* **Crash recovery** -- :meth:`AttestationService.snapshot` captures
  the whole service (member sessions, bucket levels, virtual clock,
  admission counters) as one ``repro.snapshot/v1`` document of kind
  ``service``; a killed service restores into a fresh build and
  continues byte-identically (see :mod:`repro.snapshot.service`).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
from dataclasses import dataclass, field

from ..core.protocol import Session, build_session
from ..crypto.costmodel import CryptoCostModel
from ..crypto.kdf import derive_device_key
from ..crypto.rng import DeterministicRng
from ..errors import ConfigurationError
from ..mcu.device import DeviceConfig
from ..mcu.profiles import ProtectionProfile, ROAM_HARDENED
from ..mcu.statecache import StateDigestCache
from ..obs.registry import MetricsRegistry
from ..obs.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["TokenBucket", "HashRing", "ServiceRequest", "RequestRecord",
           "ServiceMember", "AttestationService", "build_schedule",
           "service_spec", "build_service_from_spec"]


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

@dataclass
class TokenBucket:
    """A token bucket denominated in prover-seconds of attestation work.

    ``rate`` is the tenant's Section 3.1 budget: how many prover-seconds
    of measurement the tenant may trigger per second of *virtual* time.
    Refill is driven by the request schedule's arrival times, never by a
    host clock, so ``try_take`` is a pure function of the schedule.
    """

    rate: float
    burst: float
    tokens: float = field(default=None)  # type: ignore[assignment]
    updated: float = 0.0

    def __post_init__(self):
        if self.rate <= 0 or self.burst <= 0:
            raise ConfigurationError("token bucket rate and burst must be "
                                     "positive")
        if self.tokens is None:
            self.tokens = self.burst

    def refill(self, now: float) -> None:
        if now < self.updated:
            raise ConfigurationError(
                f"token bucket time went backwards ({now} < {self.updated})")
        self.tokens = min(self.burst,
                          self.tokens + (now - self.updated) * self.rate)
        self.updated = now

    def try_take(self, now: float, cost: float) -> bool:
        """Charge ``cost`` prover-seconds at virtual time ``now``."""
        self.refill(now)
        if cost <= self.tokens:
            self.tokens -= cost
            return True
        return False


class HashRing:
    """Consistent hashing of device ids onto backend ids.

    Each backend owns ``vnodes`` points on a 64-bit ring; a device maps
    to the first point clockwise of its own hash.  Adding or removing a
    backend moves only the devices in the vacated arcs -- and because
    placement never feeds into key derivation or RNG seeding, moving a
    device is free of protocol consequences.
    """

    def __init__(self, backends: list[str], *, vnodes: int = 64):
        if not backends:
            raise ConfigurationError("hash ring needs at least one backend")
        if vnodes < 1:
            raise ConfigurationError("hash ring needs at least one vnode")
        points: list[tuple[int, str]] = []
        for backend in backends:
            for vnode in range(vnodes):
                points.append((self._point(f"{backend}#{vnode}"), backend))
        points.sort()
        self._keys = [point for point, _ in points]
        self._owners = [backend for _, backend in points]

    @staticmethod
    def _point(label: str) -> int:
        digest = hashlib.sha256(label.encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def backend_for(self, device_id: str) -> str:
        index = bisect.bisect_right(self._keys, self._point(device_id))
        if index == len(self._keys):
            index = 0
        return self._owners[index]


# ---------------------------------------------------------------------------
# Requests and outcomes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ServiceRequest:
    """One attestation request offered to the service.

    ``arrival_seconds`` is *virtual* time on the service's admission
    clock (schedules are non-decreasing in it); ``device_index`` is the
    target device's global fleet index.
    """

    arrival_seconds: float
    device_index: int
    request_id: int


@dataclass
class RequestRecord:
    """The service's answer to one request, in picklable form.

    ``verdict`` is ``rejected-admission`` (never reached a prover) or a
    sweep-style category: ``trusted`` / ``untrusted`` / ``refused`` /
    ``no_response``.  ``host_latency_seconds`` is filled only when the
    benchmark injects a host clock; the deterministic path leaves it
    ``None``.
    """

    request_id: int
    device_id: str
    tenant: str
    backend: str
    admitted: bool
    verdict: str
    detail: str = ""
    host_latency_seconds: float | None = None

    def fingerprint(self) -> tuple:
        """The placement- and host-independent identity of this record
        (what the shard-equivalence and determinism gates compare)."""
        return (self.request_id, self.device_id, self.tenant,
                self.admitted, self.verdict, self.detail)


@dataclass
class ServiceMember:
    """One device the service fronts, plus its static placement."""

    device_id: str
    session: Session
    index: int
    tenant: str
    backend: str


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------

class AttestationService:
    """A multi-tenant verifier service over simulated prover fleets.

    ``size`` devices are built with the swarm identity discipline
    (device id, ``K_Attest`` derivation label and RNG seed are functions
    of the global index only) and assigned round-robin to ``tenants``
    tenants; each tenant gets a :class:`TokenBucket` whose refill rate
    is ``duty_fraction`` prover-seconds per second per device.  Devices
    are placed onto ``backends`` shards by consistent hashing; the shard
    only determines which asyncio worker runs the session.
    """

    def __init__(self, size: int, *, tenants: int = 4, backends: int = 4,
                 duty_fraction: float = 0.01, burst_seconds: float = 600.0,
                 profile: ProtectionProfile = ROAM_HARDENED,
                 auth_scheme: str = "speck-64/128-cbc-mac",
                 policy_name: str = "counter",
                 device_config: DeviceConfig | None = None,
                 master_key: bytes | None = None,
                 state_cache: StateDigestCache | None = None,
                 observe: bool = True, seed: str = "attestd"):
        if size < 1:
            raise ConfigurationError("service needs at least one device")
        if tenants < 1 or tenants > size:
            raise ConfigurationError("tenants must be in 1..size")
        if backends < 1:
            raise ConfigurationError("service needs at least one backend")
        if not 0.0 < duty_fraction <= 1.0:
            raise ConfigurationError("duty_fraction must be in (0, 1]")
        if burst_seconds <= 0:
            raise ConfigurationError("burst_seconds must be positive")
        config = device_config
        if config is None:
            config = DeviceConfig(ram_size=16 * 1024, flash_size=32 * 1024,
                                  app_size=4 * 1024)
        self.size = size
        self.tenant_count = tenants
        self.duty_fraction = duty_fraction
        self.burst_seconds = burst_seconds
        self.observe = observe
        self.state_cache = state_cache
        self.backends = [f"backend-{b:02d}" for b in range(backends)]
        self.ring = HashRing(self.backends)
        self.telemetry = Telemetry() if observe else NULL_TELEMETRY
        cost_model = CryptoCostModel(frequency_hz=config.frequency_hz)
        self.members: list[ServiceMember] = []
        self._members_by_id: dict[str, ServiceMember] = {}
        #: Estimated prover-seconds one round costs, per member index --
        #: the admission charge.  A pure function of the device config
        #: (Section 3.1: the measurement HMAC dominates the round).
        self.round_cost_seconds: list[float] = []
        tenant_sizes: dict[str, int] = {}
        for index in range(size):
            device_id = f"device-{index:03d}"
            tenant = f"tenant-{index % tenants:02d}"
            tenant_sizes[tenant] = tenant_sizes.get(tenant, 0) + 1
            key = None
            if master_key is not None:
                key = derive_device_key(master_key, device_id)
            telemetry = Telemetry() if observe else None
            session = build_session(
                profile=profile, auth_scheme=auth_scheme,
                policy_name=policy_name, device_config=config,
                key=key, telemetry=telemetry, seed=f"{seed}:{index}")
            if state_cache is not None:
                session.device.attach_state_cache(state_cache)
            session.learn_reference_state()
            member = ServiceMember(device_id, session, index,
                                   tenant, self.ring.backend_for(device_id))
            self.members.append(member)
            self._members_by_id[device_id] = member
            self.round_cost_seconds.append(cost_model.attestation_ms(
                session.device.writable_memory_bytes) / 1000.0)
        #: Per-tenant Section 3.1 budgets: ``duty_fraction`` of each
        #: member device's time, pooled per tenant.
        self.buckets: dict[str, TokenBucket] = {
            tenant: TokenBucket(rate=duty_fraction * count,
                                burst=duty_fraction * count * burst_seconds)
            for tenant, count in sorted(tenant_sizes.items())}
        #: The admission clock: the latest virtual arrival time seen.
        self.virtual_now = 0.0
        self.admitted = 0
        self.rejected = 0
        #: Most admitted-but-unfinished sessions observed at once (a
        #: host-side observation, deliberately kept out of the metrics
        #: registry so serviced and sequential telemetry stay
        #: byte-identical).
        self.peak_in_flight = 0

    def member(self, device_id: str) -> ServiceMember:
        return self._members_by_id[device_id]

    def __len__(self) -> int:
        return len(self.members)

    # -- admission ------------------------------------------------------

    def admit(self, request: ServiceRequest) -> ServiceMember | None:
        """Decide one request; returns the member on admission.

        Reject-before-measure: a rejected request charges nothing and
        touches no session state, so over-budget tenants cannot spend
        prover cycles (the Section 3.1 defence, moved verifier-side).
        """
        if not 0 <= request.device_index < len(self.members):
            raise ConfigurationError(
                f"request {request.request_id} targets unknown device "
                f"index {request.device_index}")
        if request.arrival_seconds < self.virtual_now:
            raise ConfigurationError(
                "request schedule must be non-decreasing in arrival time")
        self.virtual_now = request.arrival_seconds
        member = self.members[request.device_index]
        bucket = self.buckets[member.tenant]
        cost = self.round_cost_seconds[member.index]
        if bucket.try_take(request.arrival_seconds, cost):
            self.admitted += 1
            self.telemetry.count("service.admitted", tenant=member.tenant)
            return member
        self.rejected += 1
        self.telemetry.count("service.rejected", tenant=member.tenant)
        return None

    def _rejected_record(self, request: ServiceRequest) -> RequestRecord:
        member = self.members[request.device_index]
        return RequestRecord(request.request_id, member.device_id,
                             member.tenant, member.backend, False,
                             "rejected-admission", "duty-budget-exhausted")

    def _attest_record(self, request: ServiceRequest,
                       member: ServiceMember) -> RequestRecord:
        """Run one admitted round and categorise the outcome (the same
        cause-bucketing the swarm sweep uses)."""
        session = member.session
        rejected_before = session.anchor.stats.rejected_total
        result = session.attest_once()
        if result.trusted:
            category = "trusted"
        elif result.detail == "no-response":
            if session.anchor.stats.rejected_total > rejected_before:
                category = "refused"
            else:
                category = "no_response"
        elif not result.authentic:
            category = "refused"
        else:
            category = "untrusted"
        self.telemetry.count("service.rounds", verdict=category)
        return RequestRecord(request.request_id, member.device_id,
                             member.tenant, member.backend, True,
                             category, result.detail)

    # -- sequential library path ----------------------------------------

    def process(self, requests: list[ServiceRequest]) -> list[RequestRecord]:
        """The sequential reference path: admit and (when admitted)
        attest each request in schedule order.  :meth:`serve` is gated
        on being byte-identical to this."""
        records = []
        for request in requests:
            member = self.admit(request)
            if member is None:
                records.append(self._rejected_record(request))
            else:
                records.append(self._attest_record(request, member))
        return records

    # -- async front door ------------------------------------------------

    async def serve(self, requests: list[ServiceRequest], *,
                    workers: int = 1, clock=None) -> list[RequestRecord]:
        """Serve a schedule through per-backend asyncio workers.

        Admission runs synchronously in schedule order (decisions are a
        pure function of the schedule); admitted requests fan out to
        their backend's queue and ``workers`` worker tasks per backend
        drain it.  Requests sharing an arrival instant form a *wave*:
        the whole wave is admitted (going in-flight together -- this is
        where concurrent-session counts come from) before the next
        instant is considered.

        ``clock`` is an optional host-clock callable injected by the
        benchmark to stamp per-request latency; the deterministic path
        never passes one.
        """
        if workers < 1:
            raise ConfigurationError("serve needs at least one worker")
        records: list[RequestRecord | None] = [None] * len(requests)
        queues = {backend: asyncio.Queue() for backend in self.backends}
        in_flight = 0

        async def drain(queue: asyncio.Queue) -> None:
            nonlocal in_flight
            while True:
                item = await queue.get()
                if item is None:
                    queue.task_done()
                    return
                slot, request, member, started = item
                record = self._attest_record(request, member)
                if started is not None:
                    record.host_latency_seconds = clock() - started
                records[slot] = record
                in_flight -= 1
                queue.task_done()

        tasks = [asyncio.ensure_future(drain(queue))
                 for queue in queues.values() for _ in range(workers)]
        try:
            by_arrival = itertools.groupby(
                enumerate(requests),
                key=lambda pair: pair[1].arrival_seconds)
            for _, wave in by_arrival:
                for slot, request in wave:
                    member = self.admit(request)
                    if member is None:
                        records[slot] = self._rejected_record(request)
                        continue
                    started = clock() if clock is not None else None
                    in_flight += 1
                    self.peak_in_flight = max(self.peak_in_flight, in_flight)
                    queues[member.backend].put_nowait(
                        (slot, request, member, started))
                # The wave must land before the next arrival instant is
                # admitted, or bucket refills would observe reordered
                # virtual time.
                for queue in queues.values():
                    await queue.join()
        finally:
            for queue in queues.values():
                for _ in range(workers):
                    queue.put_nowait(None)
            await asyncio.gather(*tasks)
        return records  # type: ignore[return-value]

    def serve_schedule(self, requests: list[ServiceRequest], *,
                       workers: int = 1, clock=None) -> list[RequestRecord]:
        """:meth:`serve`, run to completion on a private event loop."""
        return asyncio.run(self.serve(requests, workers=workers,
                                      clock=clock))

    # -- fingerprints (equivalence gates) --------------------------------

    def freshness_fingerprint(self) -> dict[str, dict]:
        """Per-device freshness and protocol state, placement-free."""
        out: dict[str, dict] = {}
        for member in self.members:
            anchor = member.session.anchor
            out[member.device_id] = {
                "counter": anchor.state.get_counter(),
                "nonce_count": anchor.state.nonce_count,
                "nonce_bytes": anchor.state.nonce_bytes,
                "received": anchor.stats.received,
                "accepted": anchor.stats.accepted,
                "rejected": dict(sorted(anchor.stats.rejected.items())),
            }
        return out

    def merged_registry(self) -> MetricsRegistry:
        """Service-level counters merged with every member's metrics (in
        member order; the merge itself is order-independent)."""
        if not self.observe:
            raise ConfigurationError(
                "merged_registry needs a service built with observe=True")
        merged = MetricsRegistry()
        merged.merge(self.telemetry.registry)
        for member in self.members:
            merged.merge(member.session.telemetry.registry)
        return merged

    # -- persistence -----------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the whole service between requests as one document."""
        from ..snapshot import BlobStore, make_document
        from ..snapshot.service import snapshot_service
        blobs = BlobStore()
        state = snapshot_service(self, blobs)
        return make_document("service", state, blobs)

    def restore(self, document: dict) -> None:
        """Overwrite this (freshly rebuilt) service from a document."""
        from ..snapshot import unwrap_document
        from ..snapshot.service import restore_service
        state, blobs = unwrap_document(document, "service")
        restore_service(self, state, blobs)


# ---------------------------------------------------------------------------
# Deterministic load generation
# ---------------------------------------------------------------------------

def build_schedule(size: int, *, waves: int, wave_devices: int | None = None,
                   spacing_seconds: float = 60.0, start_seconds: float = 0.0,
                   seed: str = "service-load") -> list[ServiceRequest]:
    """A deterministic request schedule: ``waves`` bursts, spaced
    ``spacing_seconds`` apart in virtual time, starting at
    ``start_seconds`` (a restored service's ``virtual_now``).

    Each wave targets every device (or a seeded sample of
    ``wave_devices`` of them) in a seeded shuffle, so the schedule --
    and therefore every admission decision -- replays exactly from
    ``seed``.
    """
    if size < 1 or waves < 1:
        raise ConfigurationError("schedule needs size >= 1 and waves >= 1")
    if wave_devices is not None and not 1 <= wave_devices <= size:
        raise ConfigurationError("wave_devices must be in 1..size")
    if spacing_seconds < 0 or start_seconds < 0:
        raise ConfigurationError("schedule times cannot be negative")
    rng = DeterministicRng(seed).substream("schedule")
    requests: list[ServiceRequest] = []
    for wave in range(waves):
        arrival = start_seconds + wave * spacing_seconds
        devices = list(range(size))
        rng.shuffle(devices)
        if wave_devices is not None:
            devices = devices[:wave_devices]
        for device_index in devices:
            requests.append(ServiceRequest(arrival, device_index,
                                           len(requests)))
    return requests


# ---------------------------------------------------------------------------
# Rebuild specs (CLI snapshot flow, mirroring ``swarm_spec``)
# ---------------------------------------------------------------------------

def service_spec(*, size: int, tenants: int = 4, backends: int = 4,
                 duty_fraction: float = 0.01, burst_seconds: float = 600.0,
                 profile: str = "roam-hardened",
                 auth_scheme: str = "speck-64/128-cbc-mac",
                 policy: str = "counter", ram_kb: int = 16,
                 flash_kb: int = 32, app_kb: int = 4,
                 seed: str = "attestd") -> dict:
    """A JSON-ready description of a CLI-built service."""
    return {"size": size, "tenants": tenants, "backends": backends,
            "duty_fraction": duty_fraction, "burst_seconds": burst_seconds,
            "profile": profile, "auth_scheme": auth_scheme, "policy": policy,
            "ram_kb": ram_kb, "flash_kb": flash_kb, "app_kb": app_kb,
            "seed": seed}


def build_service_from_spec(spec: dict) -> AttestationService:
    """Deterministically rebuild the service a spec describes."""
    from ..mcu.profiles import ALL_PROFILES
    profiles = {p.name: p for p in ALL_PROFILES}
    try:
        profile = profiles[spec["profile"]]
    except KeyError:
        raise ConfigurationError(
            f"unknown protection profile {spec['profile']!r}") from None
    return AttestationService(
        spec["size"], tenants=spec["tenants"], backends=spec["backends"],
        duty_fraction=spec["duty_fraction"],
        burst_seconds=spec["burst_seconds"], profile=profile,
        auth_scheme=spec["auth_scheme"], policy_name=spec["policy"],
        device_config=DeviceConfig(ram_size=spec["ram_kb"] * 1024,
                                   flash_size=spec["flash_kb"] * 1024,
                                   app_size=spec["app_kb"] * 1024),
        observe=True, seed=spec["seed"])
