"""Secure memory erasure with proof (Section 1's second derived service).

The verifier orders the prover to wipe a memory range (decommissioning a
node, destroying cached secrets, evicting suspected malware) and receives
cryptographic evidence that the wipe happened: the trust anchor zeroes
the range under its own execution context and returns
``HMAC(K_Attest, nonce || digest-of-range)``, which the verifier can
check against the digest of an all-zero range of the same length.

Requests carry a verifier nonce and ride on the same authentication
machinery as attestation, so the Section 3/4 analysis applies unchanged:
an *unauthenticated* erase request would be a far worse DoS than bogus
attestation (it destroys state, not just time), which is exactly the
paper's argument for authenticating every prover-bound command.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..crypto.hmac import constant_time_compare, hmac_sha1
from ..crypto.rng import DeterministicRng
from ..crypto.sha1 import SHA1
from ..errors import MemoryAccessViolation, ProtocolError
from ..mcu.device import Device

__all__ = ["EraseRequest", "EraseProof", "ErasureVerifier", "ErasureManager"]

#: RAM store cost: cycles per byte zeroed.
ERASE_CYCLES_PER_BYTE = 2


@dataclass(frozen=True)
class EraseRequest:
    """Verifier -> prover: wipe [start, start+length)."""

    start: int
    length: int
    nonce: bytes
    tag: bytes

    @staticmethod
    def payload(start: int, length: int, nonce: bytes) -> bytes:
        return b"ERAS" + struct.pack(">II", start, length) + nonce


@dataclass(frozen=True)
class EraseProof:
    """Prover -> verifier: evidence of the wipe."""

    nonce: bytes
    digest: bytes
    tag: bytes

    @staticmethod
    def payload(nonce: bytes, digest: bytes) -> bytes:
        return b"ERPF" + nonce + digest


class ErasureVerifier:
    """Verifier side: issue erase orders, validate proofs."""

    def __init__(self, key: bytes, seed: str = "erasure-verifier"):
        self.key = bytes(key)
        self._rng = DeterministicRng(seed)

    def order(self, start: int, length: int) -> EraseRequest:
        nonce = self._rng.bytes(16)
        payload = EraseRequest.payload(start, length, nonce)
        return EraseRequest(start=start, length=length, nonce=nonce,
                            tag=hmac_sha1(self.key, payload))

    def check_proof(self, request: EraseRequest, proof: EraseProof) -> bool:
        """A valid proof authenticates and reports an all-zero digest."""
        if proof.nonce != request.nonce:
            return False
        expected_tag = hmac_sha1(self.key,
                                 EraseProof.payload(proof.nonce, proof.digest))
        if not constant_time_compare(expected_tag, proof.tag):
            return False
        zero_digest = SHA1(b"\x00" * request.length).digest()
        return proof.digest == zero_digest


class ErasureManager:
    """Prover side: performs authenticated wipes as ``Code_Attest``."""

    def __init__(self, device: Device):
        self.device = device
        self.context = device.context("Code_Attest")
        self.erases_done = 0
        self.erases_rejected = 0
        self._seen_nonces: set[bytes] = set()

    def handle(self, request: EraseRequest) -> EraseProof:
        """Authenticate and execute one erase order.

        Raises :class:`ProtocolError` on a bad tag or replayed nonce, and
        propagates :class:`MemoryAccessViolation` if the range covers
        memory even ``Code_Attest`` must not write (e.g. the locked MPU
        configuration), leaving the prover untouched.
        """
        device = self.device
        cpu = device.cpu
        key = device.read_key(self.context)

        payload = EraseRequest.payload(request.start, request.length,
                                       request.nonce)
        cpu.consume_cycles(
            device.cost_model.hmac_cycles(len(payload), mode="table"))
        if not constant_time_compare(hmac_sha1(key, payload), request.tag):
            self.erases_rejected += 1
            raise ProtocolError("erase request failed authentication")
        if request.nonce in self._seen_nonces:
            self.erases_rejected += 1
            raise ProtocolError("erase request replayed")
        self._seen_nonces.add(request.nonce)

        # Wipe, then prove.  The digest is charged at Table 1 rates.
        with cpu.running(self.context):
            try:
                device.bus.write(self.context, request.start,
                                 b"\x00" * request.length)
            except MemoryAccessViolation:
                self.erases_rejected += 1
                raise
            cpu.consume_cycles(ERASE_CYCLES_PER_BYTE * request.length)
            digest = SHA1(device.bus.read(self.context, request.start,
                                          request.length)).digest()
            cpu.consume_cycles(device.cost_model.sha1_cycles(request.length))

        proof_payload = EraseProof.payload(request.nonce, digest)
        cpu.consume_cycles(
            device.cost_model.hmac_cycles(len(proof_payload), mode="table"))
        self.erases_done += 1
        return EraseProof(nonce=request.nonce, digest=digest,
                          tag=hmac_sha1(key, proof_payload))
