"""Secure verifier-prover clock synchronization (future work item 2).

Section 7: "Develop mechanisms for secure and reliable synchronization of
verifier's and prover's clocks."  The timestamp defence of Section 4.2
assumes synchronised clocks; real oscillators drift (tens of ppm on
low-end MCUs), so without resynchronisation the acceptance window slowly
turns into either a DoS on genuine requests (window too small) or a
replay window (too large).

Protocol (prover-initiated, so it composes with the Section 5 threat
model -- the prover never trusts unsolicited time):

1. ``Code_Attest`` draws a nonce and sends ``syncreq(nonce)``, noting its
   local send time.
2. The verifier replies ``syncresp(nonce, t_v, MAC(K_Attest, nonce ||
   t_v))`` where ``t_v`` is its clock in prover ticks.
3. The prover checks the MAC and that the nonce matches the single
   outstanding one (O(1) state -- no nonce history needed because the
   prover only ever has one sync in flight), estimates one-way delay as
   RTT/2, and stores ``offset = t_v + RTT/2 - local_receive`` in a
   protected word.

The *physical* clock register remains read-only (Section 6.2); only the
software offset moves, and only ``Code_Attest`` may move it -- so the
roaming adversary gains nothing new.

Drift is modelled by :class:`DriftingClock`, a wrapper that skews any
device clock by a ppm rate.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..crypto.hmac import constant_time_compare, hmac_sha1
from ..crypto.rng import DeterministicRng
from ..errors import ConfigurationError, ProtocolError
from ..mcu.device import Device

__all__ = ["SyncRequest", "SyncResponse", "DriftingClock",
           "ClockSynchronizer", "SyncVerifier"]


@dataclass(frozen=True)
class SyncRequest:
    """Prover -> verifier: please tell me the time (freshly)."""

    nonce: bytes


@dataclass(frozen=True)
class SyncResponse:
    """Verifier -> prover: authenticated timestamp."""

    nonce: bytes
    verifier_ticks: int
    tag: bytes

    @staticmethod
    def payload(nonce: bytes, verifier_ticks: int) -> bytes:
        return b"SYNC" + nonce + struct.pack(">Q", verifier_ticks)


class DriftingClock:
    """A device clock skewed by a constant ppm rate.

    Positive ``drift_ppm`` makes the prover clock run fast.  Wraps the
    tick-reading path so all policy code sees drifted time, exactly as
    firmware would.

    ``drift_ppm`` is stored as an integer: the skew is applied in a
    simulated tick path, and ``int(raw * ppm / 1e6)`` loses low bits
    once ``raw * ppm`` exceeds 2**53 (a 64-bit clock at 24 MHz gets
    there in hours at realistic drift rates), making drifted time
    depend on float rounding instead of the tick count.  Exact integer
    floor division has no such horizon.
    """

    def __init__(self, device: Device, drift_ppm: float):
        if device.clock is None:
            raise ConfigurationError("device has no clock to drift")
        self.device = device
        self.drift_ppm = int(drift_ppm)

    def read_ticks(self, context) -> int:
        raw = self.device.read_clock_ticks(context)
        return raw + raw * self.drift_ppm // 1_000_000

    @property
    def resolution_seconds(self) -> float:
        return self.device.clock.resolution_seconds


class SyncVerifier:
    """Verifier side: answer sync requests with authenticated time."""

    def __init__(self, key: bytes, clock_ticks):
        self.key = bytes(key)
        self.clock_ticks = clock_ticks
        self.responses_sent = 0

    def respond(self, request: SyncRequest) -> SyncResponse:
        ticks = int(self.clock_ticks())
        payload = SyncResponse.payload(request.nonce, ticks)
        self.responses_sent += 1
        return SyncResponse(nonce=request.nonce, verifier_ticks=ticks,
                            tag=hmac_sha1(self.key, payload))


class ClockSynchronizer:
    """Prover side: maintains the authenticated clock offset.

    The corrected time is ``local + offset``; :meth:`begin_sync` /
    :meth:`complete_sync` run one round of the protocol.  All costs are
    charged to the device (one HMAC validation per response).
    """

    def __init__(self, device: Device, key: bytes, *,
                 drifting_clock: DriftingClock | None = None,
                 seed: str = "timesync"):
        if device.clock is None:
            raise ConfigurationError("device has no clock to synchronise")
        self.device = device
        self.key = bytes(key)
        self.context = device.context("Code_Attest")
        self.clock = (drifting_clock if drifting_clock is not None
                      else DriftingClock(device, 0.0))
        self.offset_ticks = 0
        self._rng = DeterministicRng(seed)
        self._outstanding: tuple[bytes, int] | None = None  # (nonce, sent_at)
        self.syncs_completed = 0
        self.syncs_rejected = 0

    # ------------------------------------------------------------------

    def corrected_ticks(self) -> int:
        """The prover's best estimate of true time, in ticks."""
        return self.clock.read_ticks(self.context) + self.offset_ticks

    def corrected_seconds(self) -> float:
        return self.corrected_ticks() * self.clock.resolution_seconds

    def begin_sync(self) -> SyncRequest:
        """Start a sync round; only one may be outstanding."""
        nonce = self._rng.bytes(16)
        self._outstanding = (nonce, self.clock.read_ticks(self.context))
        return SyncRequest(nonce=nonce)

    def complete_sync(self, response: SyncResponse) -> int:
        """Validate the response and update the offset.

        Returns the new offset in ticks.  Raises :class:`ProtocolError`
        on a bad tag, an unexpected nonce, or no sync in flight -- a
        replayed or forged response therefore cannot move the clock.
        """
        if self._outstanding is None:
            self.syncs_rejected += 1
            raise ProtocolError("no sync in flight")
        nonce, sent_at = self._outstanding
        # One HMAC validation, Table 1 cost.
        self.device.cpu.consume_cycles(
            self.device.cost_model.hmac_cycles(
                len(SyncResponse.payload(nonce, response.verifier_ticks)),
                mode="table"))
        if response.nonce != nonce:
            self.syncs_rejected += 1
            raise ProtocolError("sync response nonce mismatch")
        payload = SyncResponse.payload(response.nonce, response.verifier_ticks)
        if not constant_time_compare(hmac_sha1(self.key, payload),
                                     response.tag):
            self.syncs_rejected += 1
            raise ProtocolError("sync response failed authentication")
        received_at = self.clock.read_ticks(self.context)
        rtt = max(0, received_at - sent_at)
        self.offset_ticks = (response.verifier_ticks + rtt // 2
                             - received_at)
        self._outstanding = None
        self.syncs_completed += 1
        return self.offset_ticks

    # ------------------------------------------------------------------

    def error_ticks(self, true_ticks: int) -> int:
        """Signed synchronisation error against ground truth."""
        return self.corrected_ticks() - true_ticks
