"""Dirty-region digest trees: incremental content addressing of memory.

The paper's Section 3.1 asymmetry rests on the prover paying a *full*
memory walk for every attestation round; at fleet scale the host
simulation pays the same walk per member per sweep even when almost
nothing changed.  PR 5's :class:`~repro.mcu.statecache.StateDigestCache`
removed the walk when *nothing* changed -- its key is the write-chain
fingerprint, a *history* address, so any write (even one that recreates
byte-identical contents, e.g. the same firmware update applied in a
different chunk order on every member) forces a full recompute.

This module closes that gap with a **content** address that is cheap to
refresh after k dirty writes.  :class:`DigestTree` is a fixed-arity
Merkle-style tree over fixed-size leaf chunks of one region window:
every :meth:`~repro.mcu.memory.MemoryRegion.note_write` marks the
covering leaves dirty, and :meth:`DigestTree.root` recomputes only the
dirty leaves plus the internal nodes above them -- O(dirty + log N)
chunk digests instead of a full re-walk.  Two windows with equal roots
(same geometry) have byte-identical contents, so the root serves as a
second, content-addressed key into the ``StateDigestCache``: a member
whose memory was rewritten to contents some other member (or an earlier
round) already measured hits the cache after an O(dirty) refresh,
instead of paying the full walk the history key would force.

What the tree deliberately does **not** do: produce the linear SHA-1
state digest itself.  SHA-1 is a Merkle-Damgard chain -- a digest over
fresh, never-measured contents cannot be assembled from chunk digests
and always costs one full walk.  The tree makes *re-recognising known
content* cheap; genuinely new fleet-wide content is measured once and
every other member then pays only O(dirty + log N).  Digests, simulated
cycles and energy are byte-identical either way (the cache-hit path
replays exact Table 1 accounting); only host wall-clock drops.  See
``docs/performance.md`` for the full incremental-measurement contract.

Host-side only: tree state never feeds back into simulated behaviour,
and snapshot restore simply invalidates the tree -- roots are pure
functions of content, so a deterministic rebuild from restored bytes is
byte-identical to a round-tripped tree (see ``repro.snapshot``).
"""

from __future__ import annotations

import hashlib

from .errors import ConfigurationError

__all__ = ["DEFAULT_CHUNK_SIZE", "DEFAULT_ARITY", "DigestTree"]

#: Leaf chunk size (bytes).  Matches the measurement walk's 4 KB chunk:
#: one leaf is one unit of host re-hash work after a dirty write.
DEFAULT_CHUNK_SIZE = 4096

#: Fan-out of internal nodes.  16 keeps the tree two to three levels
#: deep for megabyte windows, so refresh cost is dominated by dirty
#: leaves, not internal-node churn.
DEFAULT_ARITY = 16


class DigestTree:
    """Fixed-arity digest tree over fixed-size chunks of a region window.

    Parameters
    ----------
    window_start, window_size:
        The covered byte window, *region-relative* (the device maps an
        attested span onto its backing region's offsets).  Writes
        entirely outside the window never dirty a leaf -- mirroring
        ``fingerprint_exclude_below`` for the RAM reserved prefix.
    chunk_size, arity:
        Tree geometry.  Geometry is part of any cache key built from
        the root: equal roots imply equal contents only under equal
        geometry.

    The tree is lazy: until the first :meth:`root` call nothing is
    hashed and writes are free (everything is dirty anyway).  After a
    build, :meth:`note_write` costs O(covering leaves) set inserts and
    :meth:`root` re-hashes only dirty leaves plus their ancestors.
    """

    __slots__ = ("window_start", "window_size", "chunk_size", "arity",
                 "_levels", "_dirty", "leaf_hashes", "node_hashes",
                 "refreshes", "full_builds")

    def __init__(self, window_start: int, window_size: int, *,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 arity: int = DEFAULT_ARITY):
        if window_start < 0:
            raise ConfigurationError("digest tree window_start negative")
        if window_size <= 0:
            raise ConfigurationError("digest tree needs a positive window")
        if chunk_size <= 0:
            raise ConfigurationError("digest tree chunk_size must be >= 1")
        if arity < 2:
            raise ConfigurationError("digest tree arity must be >= 2")
        self.window_start = window_start
        self.window_size = window_size
        self.chunk_size = chunk_size
        self.arity = arity
        #: level 0 = leaf digests, last level = [root]; ``None`` until
        #: the first :meth:`root` call (or after :meth:`invalidate`).
        self._levels: list[list[bytes]] | None = None
        self._dirty: set[int] = set()
        # Host-side work counters (asserted by smoke gates and reported
        # by the benchmark; never part of simulated accounting).
        self.leaf_hashes = 0
        self.node_hashes = 0
        self.refreshes = 0
        self.full_builds = 0

    # -- geometry ---------------------------------------------------------

    @property
    def leaf_count(self) -> int:
        return (self.window_size + self.chunk_size - 1) // self.chunk_size

    @property
    def built(self) -> bool:
        return self._levels is not None

    @property
    def dirty_leaf_count(self) -> int:
        """Leaves needing a re-hash at the next :meth:`root` (the whole
        window when the tree is not built)."""
        if self._levels is None:
            return self.leaf_count
        return len(self._dirty)

    def covering_leaves(self, offset: int, length: int) -> tuple | None:
        """Inclusive leaf index range covering the region-relative write
        ``[offset, offset + length)`` clipped to the window, or ``None``
        when the write misses the window entirely.  Exact integer
        arithmetic (lint rule FLT001 covers this function)."""
        if length <= 0:
            return None
        start = offset - self.window_start
        end = start + length
        if end <= 0 or start >= self.window_size:
            return None
        if start < 0:
            start = 0
        if end > self.window_size:
            end = self.window_size
        return (start // self.chunk_size, (end - 1) // self.chunk_size)

    # -- write tracking ---------------------------------------------------

    def note_write(self, offset: int, length: int) -> None:
        """Mark the leaves covering a region-relative write dirty.

        Called from :meth:`repro.mcu.memory.MemoryRegion.note_write` on
        every mutation; a no-op while unbuilt (the first :meth:`root`
        hashes everything regardless).
        """
        if self._levels is None:
            return
        span = self.covering_leaves(offset, length)
        if span is None:
            return
        first, last = span
        self._dirty.update(range(first, last + 1))

    def invalidate(self) -> None:
        """Drop all tree state; the next :meth:`root` rebuilds from
        scratch.  Used by snapshot restore, which overwrites region
        bytes without going through ``note_write``."""
        self._levels = None
        self._dirty.clear()

    # -- refresh ----------------------------------------------------------

    def _hash_leaf(self, view: memoryview, index: int) -> bytes:
        lo = index * self.chunk_size
        hi = lo + self.chunk_size
        if hi > self.window_size:
            hi = self.window_size
        self.leaf_hashes += 1
        return hashlib.sha1(view[lo:hi]).digest()

    def _hash_node(self, children: list[bytes], first: int,
                   last: int) -> bytes:
        self.node_hashes += 1
        return hashlib.sha1(b"".join(children[first:last])).digest()

    def _build(self, view: memoryview) -> None:
        leaves = [self._hash_leaf(view, i) for i in range(self.leaf_count)]
        levels = [leaves]
        while len(levels[-1]) > 1:
            below = levels[-1]
            above = [self._hash_node(below, i, min(i + self.arity,
                                                   len(below)))
                     for i in range(0, len(below), self.arity)]
            levels.append(above)
        self._levels = levels
        self._dirty.clear()
        self.full_builds += 1

    def _refresh(self, view: memoryview) -> None:
        levels = self._levels
        dirty = self._dirty
        for index in dirty:
            levels[0][index] = self._hash_leaf(view, index)
        for depth in range(1, len(levels)):
            parents = {index // self.arity for index in dirty}
            below = levels[depth - 1]
            for parent in parents:
                first = parent * self.arity
                levels[depth][parent] = self._hash_node(
                    below, first, min(first + self.arity, len(below)))
            dirty = parents
        self._dirty.clear()

    def root(self, backing) -> bytes:
        """Refresh dirty state and return the 20-byte root digest of the
        window over ``backing`` (the region's full byte buffer).

        Cost: O(window) on the first call or after :meth:`invalidate`;
        O(dirty + log N) afterwards.  Reads ``backing`` through a
        read-only :class:`memoryview` -- zero copies, same as the bulk
        measurement walk.
        """
        view = memoryview(backing).toreadonly()[
            self.window_start:self.window_start + self.window_size]
        if self._levels is None:
            self._build(view)
        elif self._dirty:
            self._refresh(view)
        self.refreshes += 1
        return self._levels[-1][0]

    def leaf_digests(self, backing) -> list[bytes]:
        """Refresh dirty state and return a copy of the leaf-digest row.

        Leaf ``i`` is the SHA-1 of window chunk ``i`` -- its *content
        address* -- which is what delta snapshots use to decide which
        chunks changed since a parent checkpoint and to key the changed
        chunk payloads in the blob store (see ``repro.snapshot.delta``).
        Same cost contract as :meth:`root`: O(window) on the first call,
        O(dirty + log N) afterwards.  Not counted as a :attr:`refreshes`
        tick -- snapshot capture is not a measurement.
        """
        view = memoryview(backing).toreadonly()[
            self.window_start:self.window_start + self.window_size]
        if self._levels is None:
            self._build(view)
        elif self._dirty:
            self._refresh(view)
        return list(self._levels[0])

    # -- observability ----------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready host-side work counters."""
        return {"leaf_count": self.leaf_count,
                "built": self.built,
                "dirty_leaves": self.dirty_leaf_count,
                "leaf_hashes": self.leaf_hashes,
                "node_hashes": self.node_hashes,
                "refreshes": self.refreshes,
                "full_builds": self.full_builds}

    def __repr__(self) -> str:
        return (f"DigestTree(window={self.window_start:#x}+"
                f"{self.window_size:#x}, chunk={self.chunk_size}, "
                f"arity={self.arity}, leaves={self.leaf_count}, "
                f"built={self.built})")
