"""Pure-Python AES-128 (FIPS 197), from scratch.

The paper (Table 1, Section 4.1) measures AES-128 in CBC mode as one of
the candidate MACs for authenticating attestation requests: key expansion
0.074 ms, encrypt 0.288 ms/block, decrypt 0.570 ms/block on Siskiyou Peak
at 24 MHz.  This module provides the raw block cipher; CBC and CBC-MAC
live in :mod:`repro.crypto.modes`.

The S-box is generated programmatically from the GF(2^8) inverse and the
affine transform rather than pasted as a table, so the construction is
auditable.  Test vectors from FIPS 197 Appendix B/C are checked in the
test suite.
"""

from __future__ import annotations

from ..errors import InvalidBlockError, InvalidKeyError

__all__ = ["AES128", "BLOCK_SIZE", "KEY_SIZE"]

BLOCK_SIZE = 16
KEY_SIZE = 16

_NR = 10  # rounds for AES-128
_NK = 4   # key words for AES-128


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) (AES polynomial)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Construct the AES S-box and its inverse from first principles."""
    # Multiplicative inverses via exponentiation by generator 3.
    pow3 = [1] * 256
    log3 = [0] * 256
    value = 1
    for i in range(255):
        pow3[i] = value
        log3[value] = i
        value = _gf_mul(value, 3)

    def inverse(a: int) -> int:
        if a == 0:
            return 0
        return pow3[(255 - log3[a]) % 255]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for x in range(256):
        b = inverse(x)
        # Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        s = b
        for shift in (1, 2, 3, 4):
            s ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        s ^= 0x63
        sbox[x] = s
        inv_sbox[s] = x
    return tuple(sbox), tuple(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _expand_key(key: bytes) -> list[list[int]]:
    """FIPS 197 key expansion: return 11 round keys of 16 bytes each."""
    words = [list(key[4 * i:4 * i + 4]) for i in range(_NK)]
    for i in range(_NK, 4 * (_NR + 1)):
        temp = list(words[i - 1])
        if i % _NK == 0:
            temp = temp[1:] + temp[:1]              # RotWord
            temp = [_SBOX[b] for b in temp]         # SubWord
            temp[0] ^= _RCON[i // _NK - 1]
        words.append([words[i - _NK][j] ^ temp[j] for j in range(4)])
    round_keys = []
    for r in range(_NR + 1):
        rk = []
        for w in words[4 * r:4 * r + 4]:
            rk.extend(w)
        round_keys.append(rk)
    return round_keys


def _sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = _SBOX[state[i]]


def _inv_sub_bytes(state: list[int]) -> None:
    for i in range(16):
        state[i] = _INV_SBOX[state[i]]


# State layout: column-major as in FIPS 197 -- state[r + 4*c].

def _shift_rows(state: list[int]) -> None:
    for r in range(1, 4):
        row = [state[r + 4 * c] for c in range(4)]
        row = row[r:] + row[:r]
        for c in range(4):
            state[r + 4 * c] = row[c]


def _inv_shift_rows(state: list[int]) -> None:
    for r in range(1, 4):
        row = [state[r + 4 * c] for c in range(4)]
        row = row[-r:] + row[:-r]
        for c in range(4):
            state[r + 4 * c] = row[c]


def _mix_columns(state: list[int]) -> None:
    for c in range(4):
        col = state[4 * c:4 * c + 4]
        state[4 * c + 0] = _gf_mul(col[0], 2) ^ _gf_mul(col[1], 3) ^ col[2] ^ col[3]
        state[4 * c + 1] = col[0] ^ _gf_mul(col[1], 2) ^ _gf_mul(col[2], 3) ^ col[3]
        state[4 * c + 2] = col[0] ^ col[1] ^ _gf_mul(col[2], 2) ^ _gf_mul(col[3], 3)
        state[4 * c + 3] = _gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ _gf_mul(col[3], 2)


def _inv_mix_columns(state: list[int]) -> None:
    for c in range(4):
        col = state[4 * c:4 * c + 4]
        state[4 * c + 0] = (_gf_mul(col[0], 14) ^ _gf_mul(col[1], 11)
                            ^ _gf_mul(col[2], 13) ^ _gf_mul(col[3], 9))
        state[4 * c + 1] = (_gf_mul(col[0], 9) ^ _gf_mul(col[1], 14)
                            ^ _gf_mul(col[2], 11) ^ _gf_mul(col[3], 13))
        state[4 * c + 2] = (_gf_mul(col[0], 13) ^ _gf_mul(col[1], 9)
                            ^ _gf_mul(col[2], 14) ^ _gf_mul(col[3], 11))
        state[4 * c + 3] = (_gf_mul(col[0], 11) ^ _gf_mul(col[1], 13)
                            ^ _gf_mul(col[2], 9) ^ _gf_mul(col[3], 14))


def _add_round_key(state: list[int], round_key: list[int]) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


class AES128:
    """AES with a 128-bit key; encrypts/decrypts single 16-byte blocks.

    >>> key = bytes(range(16))
    >>> cipher = AES128(key)
    >>> block = bytes.fromhex("00112233445566778899aabbccddeeff")
    >>> cipher.decrypt_block(cipher.encrypt_block(block)) == block
    True
    """

    block_size = BLOCK_SIZE
    key_size = KEY_SIZE
    name = "aes-128"

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray)):
            raise InvalidKeyError("AES key must be bytes")
        if len(key) != KEY_SIZE:
            raise InvalidKeyError(
                f"AES-128 key must be {KEY_SIZE} bytes, got {len(key)}")
        self._round_keys = _expand_key(bytes(key))
        # Operation counters feed the simulated cycle-cost model.
        self.blocks_encrypted = 0
        self.blocks_decrypted = 0

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockError(
                f"AES block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        _add_round_key(state, self._round_keys[0])
        for r in range(1, _NR):
            _sub_bytes(state)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[r])
        _sub_bytes(state)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[_NR])
        self.blocks_encrypted += 1
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockError(
                f"AES block must be {BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        _add_round_key(state, self._round_keys[_NR])
        for r in range(_NR - 1, 0, -1):
            _inv_shift_rows(state)
            _inv_sub_bytes(state)
            _add_round_key(state, self._round_keys[r])
            _inv_mix_columns(state)
        _inv_shift_rows(state)
        _inv_sub_bytes(state)
        _add_round_key(state, self._round_keys[0])
        self.blocks_decrypted += 1
        return bytes(state)
