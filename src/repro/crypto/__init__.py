"""From-scratch cryptographic primitives and the Table 1 cycle-cost model.

Everything the paper benchmarks in Table 1 is implemented here in pure
Python: SHA-1, HMAC-SHA1, AES-128, Speck 64/128, CBC / CBC-MAC modes, and
secp160r1 ECDSA.  :mod:`repro.crypto.costmodel` calibrates a simulated
cycle cost for each primitive so the MCU simulator charges realistic time
(Siskiyou Peak @ 24 MHz).
"""

from .aes import AES128
from .costmodel import (CryptoCostModel, PrimitiveCosts,
                        REQUEST_MESSAGE_BITS, SISKIYOU_PEAK_COSTS_MS)
from .ecc import (SECP160R1, EccPoint, EcdsaKeyPair, ecdsa_sign,
                  ecdsa_verify, generate_keypair)
from .hmac import (HmacSha1, clear_hmac_midstate_cache,
                   constant_time_compare, hmac_midstate_cache_info,
                   hmac_sha1)
from .kdf import derive_device_key, hkdf, hkdf_expand, hkdf_extract
from .modes import CBC, cbc_mac, pkcs7_pad, pkcs7_unpad
from .rng import DeterministicRng
from .sha1 import SHA1, compress_blocks, sha1
from .speck import Speck64_128

__all__ = [
    "AES128", "CBC", "CryptoCostModel", "DeterministicRng", "EccPoint",
    "EcdsaKeyPair", "HmacSha1", "PrimitiveCosts", "REQUEST_MESSAGE_BITS",
    "SECP160R1", "SHA1", "SISKIYOU_PEAK_COSTS_MS", "Speck64_128", "cbc_mac",
    "clear_hmac_midstate_cache", "compress_blocks", "constant_time_compare",
    "derive_device_key", "ecdsa_sign", "ecdsa_verify", "generate_keypair",
    "hkdf", "hkdf_expand", "hkdf_extract", "hmac_midstate_cache_info",
    "hmac_sha1", "pkcs7_pad", "pkcs7_unpad", "sha1",
]
