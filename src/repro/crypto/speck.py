"""Speck 64/128 lightweight block cipher (Beaulieu et al., 2013).

The paper singles out Speck as the cheapest request-authentication
primitive for a low-end prover: 0.017 ms/block encryption and
0.015 ms/block decryption, versus 0.430 ms for a SHA1-HMAC validation
(Section 4.1, Table 1).  Speck 64/128 has a 64-bit block and a 128-bit
key, 27 rounds, word size 32 bits, rotation constants alpha=8, beta=3.

Reference: "The SIMON and SPECK Families of Lightweight Block Ciphers",
ePrint 2013/404.  The test suite checks the published test vector
(key 1b1a1918 13121110 0b0a0908 03020100, plaintext 3b726574 7475432d,
ciphertext 8c6fa548 454e028b).
"""

from __future__ import annotations

import struct

from ..errors import InvalidBlockError, InvalidKeyError

__all__ = ["Speck64_128", "BLOCK_SIZE", "KEY_SIZE", "ROUNDS"]

BLOCK_SIZE = 8
KEY_SIZE = 16
ROUNDS = 27

_WORD_BITS = 32
_MASK = 0xFFFFFFFF
_ALPHA = 8
_BETA = 3


def _ror(x: int, r: int) -> int:
    return ((x >> r) | (x << (_WORD_BITS - r))) & _MASK


def _rol(x: int, r: int) -> int:
    return ((x << r) | (x >> (_WORD_BITS - r))) & _MASK


def _round_enc(x: int, y: int, k: int) -> tuple[int, int]:
    """One Speck encryption round on words (x, y) with round key k."""
    x = (_ror(x, _ALPHA) + y) & _MASK
    x ^= k
    y = _rol(y, _BETA) ^ x
    return x, y


def _round_dec(x: int, y: int, k: int) -> tuple[int, int]:
    """Inverse of :func:`_round_enc`."""
    y = _ror(y ^ x, _BETA)
    x = _rol(((x ^ k) - y) & _MASK, _ALPHA)
    return x, y


class Speck64_128:
    """Speck with 64-bit blocks and a 128-bit key.

    >>> key = bytes.fromhex("1b1a1918131211100b0a090803020100")
    >>> cipher = Speck64_128(key)
    >>> cipher.encrypt_block(bytes.fromhex("3b7265747475432d")).hex()
    '8c6fa548454e028b'
    """

    block_size = BLOCK_SIZE
    key_size = KEY_SIZE
    name = "speck-64/128"

    def __init__(self, key: bytes):
        if not isinstance(key, (bytes, bytearray)):
            raise InvalidKeyError("Speck key must be bytes")
        if len(key) != KEY_SIZE:
            raise InvalidKeyError(
                f"Speck 64/128 key must be {KEY_SIZE} bytes, got {len(key)}")
        self._round_keys = self._expand_key(bytes(key))
        self.blocks_encrypted = 0
        self.blocks_decrypted = 0

    @staticmethod
    def _expand_key(key: bytes) -> list[int]:
        """Speck key schedule: 4 key words -> 27 round keys.

        The reference test vector prints the key as four words
        ``l2 l1 l0 k0``; serialising those words big-endian in print order
        yields the 16 key bytes.  The schedule is
        ``l[i+3] = (ror(l[i], alpha) + k[i]) ^ i`` and
        ``k[i+1] = rol(k[i], beta) ^ l[i+3]``.
        """
        l2, l1, l0, k = struct.unpack(">4I", key)
        l = [l0, l1, l2]
        round_keys = [k]
        for i in range(ROUNDS - 1):
            new_l = ((_ror(l[0], _ALPHA) + k) & _MASK) ^ i
            k = _rol(k, _BETA) ^ new_l
            l = l[1:] + [new_l]
            round_keys.append(k)
        return round_keys

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockError(
                f"Speck block must be {BLOCK_SIZE} bytes, got {len(block)}")
        # Reference vectors print the block as words (x, y), x first;
        # serialising big-endian in print order yields the 8 block bytes.
        x, y = struct.unpack(">2I", block)
        for k in self._round_keys:
            x, y = _round_enc(x, y, k)
        self.blocks_encrypted += 1
        return struct.pack(">2I", x, y)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise InvalidBlockError(
                f"Speck block must be {BLOCK_SIZE} bytes, got {len(block)}")
        x, y = struct.unpack(">2I", block)
        for k in reversed(self._round_keys):
            x, y = _round_dec(x, y, k)
        self.blocks_decrypted += 1
        return struct.pack(">2I", x, y)
