"""Cycle-cost model of cryptographic primitives, calibrated to Table 1.

The paper's entire DoS argument is quantitative: attestation is expensive
*for the prover* because MACing all writable memory takes hundreds of
milliseconds on a 24 MHz MCU, while validating a single authenticated
request is cheap -- unless public-key crypto is used, in which case request
authentication itself becomes a DoS vector (Section 4.1).

Table 1 (Intel Siskiyou Peak @ 24 MHz, all values in milliseconds):

======================  ==========  =======================================
Primitive               Cost (ms)   Meaning
======================  ==========  =======================================
SHA1-HMAC fix           0.340       fixed setup/finalisation overhead
SHA1-HMAC per block     0.092       per 64-byte message block
AES-128 key expansion   0.074       once per key
AES-128 encrypt         0.288       per 16-byte block
AES-128 decrypt         0.570       per 16-byte block
Speck 64/128 key exp.   0.016       once per key
Speck 64/128 encrypt    0.017       per 8-byte block
Speck 64/128 decrypt    0.015       per 8-byte block
ECC secp160r1 sign      183.464     per signature
ECC secp160r1 verify    170.907     per verification
======================  ==========  =======================================

The model converts these to *cycle* costs at the platform frequency, so a
simulated device at a different frequency scales naturally.  Two HMAC
accounting modes are offered:

``table``
    Table 1 reading: ``fix + blocks * per_block`` where ``blocks`` is the
    number of 64-byte message blocks.  A one-block request validates in
    0.432 ms, matching the paper's quoted "0.430 ms".

``exact``
    Exact SHA-1 compression counting of the HMAC construction (key blocks,
    padding, outer hash), at ``per_block`` per compression.  For 512 KB of
    RAM this yields 8196 compressions = **754.032 ms**, the exact figure in
    Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .hmac import HmacSha1

__all__ = [
    "PrimitiveCosts", "SISKIYOU_PEAK_COSTS_MS", "CryptoCostModel",
    "REQUEST_MESSAGE_BITS", "AuthScheme",
]

#: Section 4.1: "Messages are assumed to fit into one block for each
#: cryptographic primitive (in bits): ECC: 160, AES: 256, Speck: 64; and
#: HMAC: 512."
REQUEST_MESSAGE_BITS = {
    "ecdsa-secp160r1": 160,
    "aes-128-cbc-mac": 256,
    "speck-64/128-cbc-mac": 64,
    "hmac-sha1": 512,
}

#: Canonical request-authentication scheme names used across the library.
AuthScheme = str


@dataclass(frozen=True)
class PrimitiveCosts:
    """Per-operation costs of the crypto primitives, in milliseconds."""

    hmac_fixed_ms: float = 0.340
    hmac_block_ms: float = 0.092            # per 64-byte SHA-1 block
    aes_key_expansion_ms: float = 0.074
    aes_encrypt_block_ms: float = 0.288     # per 16-byte block
    aes_decrypt_block_ms: float = 0.570
    speck_key_expansion_ms: float = 0.016
    speck_encrypt_block_ms: float = 0.017   # per 8-byte block
    speck_decrypt_block_ms: float = 0.015
    ecc_sign_ms: float = 183.464
    ecc_verify_ms: float = 170.907


#: Table 1 as published (Siskiyou Peak, 24 MHz).
SISKIYOU_PEAK_COSTS_MS = PrimitiveCosts()

_HMAC_BLOCK_BYTES = 64
_AES_BLOCK_BYTES = 16
_SPECK_BLOCK_BYTES = 8


@dataclass
class CryptoCostModel:
    """Converts primitive operation counts into simulated CPU cycles.

    Parameters
    ----------
    frequency_hz:
        Clock frequency of the modelled MCU.  Table 1 was measured at
        24 MHz; cycle counts are frequency-independent, wall-clock times
        scale with ``frequency_hz``.
    costs:
        The per-operation millisecond costs *at 24 MHz* used for
        calibration.
    """

    frequency_hz: int = 24_000_000
    costs: PrimitiveCosts = field(default_factory=lambda: SISKIYOU_PEAK_COSTS_MS)

    _CALIBRATION_HZ = 24_000_000

    def __post_init__(self):
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")

    # -- unit conversions ---------------------------------------------------

    def _ms_to_cycles(self, ms: float) -> int:
        """Milliseconds at the calibration frequency -> cycle count."""
        return round(ms * self._CALIBRATION_HZ / 1000.0)

    def cycles_to_ms(self, cycles: int) -> float:
        """Cycle count -> milliseconds at the modelled frequency."""
        return cycles * 1000.0 / self.frequency_hz

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles / self.frequency_hz

    # -- HMAC-SHA1 -----------------------------------------------------------

    def hmac_cycles(self, message_length: int, mode: str = "table") -> int:
        """Cycles to HMAC a ``message_length``-byte message.

        ``mode='table'`` charges Table 1's fixed + per-block reading;
        ``mode='exact'`` counts actual SHA-1 compressions (reproduces the
        paper's 754.032 ms for 512 KB).
        """
        if message_length < 0:
            raise ValueError("message_length must be non-negative")
        if mode == "table":
            blocks = -(-message_length // _HMAC_BLOCK_BYTES)
            ms = self.costs.hmac_fixed_ms + blocks * self.costs.hmac_block_ms
        elif mode == "exact":
            compressions = HmacSha1.total_compressions(message_length)
            ms = compressions * self.costs.hmac_block_ms
        else:
            raise ConfigurationError(f"unknown HMAC cost mode {mode!r}")
        return self._ms_to_cycles(ms)

    def sha1_cycles(self, message_length: int) -> int:
        """Cycles for a plain SHA-1 over ``message_length`` bytes.

        Charged at Table 1's per-block compression cost; used for the
        unkeyed state digest and secure-boot measurements.
        """
        if message_length < 0:
            raise ValueError("message_length must be non-negative")
        remainder = message_length % _HMAC_BLOCK_BYTES
        blocks = message_length // _HMAC_BLOCK_BYTES + (1 if remainder < 56 else 2)
        return self._ms_to_cycles(blocks * self.costs.hmac_block_ms)

    # -- AES-128 --------------------------------------------------------------

    def aes_key_expansion_cycles(self) -> int:
        return self._ms_to_cycles(self.costs.aes_key_expansion_ms)

    def aes_encrypt_cycles(self, n_blocks: int) -> int:
        return self._ms_to_cycles(n_blocks * self.costs.aes_encrypt_block_ms)

    def aes_decrypt_cycles(self, n_blocks: int) -> int:
        return self._ms_to_cycles(n_blocks * self.costs.aes_decrypt_block_ms)

    def aes_cbc_mac_cycles(self, message_length: int,
                           key_preexpanded: bool = True) -> int:
        """Cycles for an AES-128 CBC-MAC over ``message_length`` bytes."""
        blocks = max(1, -(-message_length // _AES_BLOCK_BYTES))
        cycles = self.aes_encrypt_cycles(blocks)
        if not key_preexpanded:
            cycles += self.aes_key_expansion_cycles()
        return cycles

    # -- Speck 64/128 -----------------------------------------------------------

    def speck_key_expansion_cycles(self) -> int:
        return self._ms_to_cycles(self.costs.speck_key_expansion_ms)

    def speck_encrypt_cycles(self, n_blocks: int) -> int:
        return self._ms_to_cycles(n_blocks * self.costs.speck_encrypt_block_ms)

    def speck_decrypt_cycles(self, n_blocks: int) -> int:
        return self._ms_to_cycles(n_blocks * self.costs.speck_decrypt_block_ms)

    def speck_cbc_mac_cycles(self, message_length: int,
                             key_preexpanded: bool = True) -> int:
        """Cycles for a Speck 64/128 CBC-MAC over ``message_length`` bytes.

        With a pre-expanded key and a one-block message this is the paper's
        headline "0.015 ms" fast path (Section 4.1).
        """
        blocks = max(1, -(-message_length // _SPECK_BLOCK_BYTES))
        # The paper quotes the *decrypt* per-block figure (0.015 ms) for
        # request validation; validating an appended tag by recomputation
        # uses encryption (0.017 ms).  We charge the cheaper published
        # figure to stay faithful to the text.
        cycles = self.speck_decrypt_cycles(blocks)
        if not key_preexpanded:
            cycles += self.speck_key_expansion_cycles()
        return cycles

    # -- ECDSA --------------------------------------------------------------

    def ecdsa_sign_cycles(self) -> int:
        return self._ms_to_cycles(self.costs.ecc_sign_ms)

    def ecdsa_verify_cycles(self) -> int:
        return self._ms_to_cycles(self.costs.ecc_verify_ms)

    # -- derived quantities used by the paper -------------------------------

    def attestation_cycles(self, memory_bytes: int, mode: str = "exact") -> int:
        """Cycles for the prover's attestation measurement: a SHA1-HMAC over
        ``memory_bytes`` of writable memory (Section 3.1)."""
        return self.hmac_cycles(memory_bytes, mode=mode)

    def attestation_ms(self, memory_bytes: int, mode: str = "exact") -> float:
        return self.cycles_to_ms(self.attestation_cycles(memory_bytes, mode))

    def request_validation_cycles(self, scheme: AuthScheme) -> int:
        """Cycles for the *prover* to validate one authenticated request.

        Message sizes follow Section 4.1's one-block-per-primitive
        assumption (:data:`REQUEST_MESSAGE_BITS`).  Keys for the symmetric
        schemes are assumed pre-expanded, as in the paper's fast path.
        """
        bits = REQUEST_MESSAGE_BITS.get(scheme)
        if bits is None:
            if scheme == "none":
                return 0
            raise ConfigurationError(f"unknown auth scheme {scheme!r}")
        nbytes = bits // 8
        if scheme == "hmac-sha1":
            return self.hmac_cycles(nbytes, mode="table")
        if scheme == "aes-128-cbc-mac":
            # Section 4.1 claims AES performs "slightly better" than the
            # 0.430 ms HMAC validation, which only holds for a single
            # 16-byte block (0.288 ms).  The "AES: 256" bits in the text is
            # inconsistent with AES-128's 128-bit block, so the one-block
            # assumption takes precedence.
            return self.aes_encrypt_cycles(1)
        if scheme == "speck-64/128-cbc-mac":
            return self.speck_cbc_mac_cycles(nbytes)
        if scheme == "ecdsa-secp160r1":
            return self.ecdsa_verify_cycles()
        raise ConfigurationError(f"unknown auth scheme {scheme!r}")

    def request_validation_ms(self, scheme: AuthScheme) -> float:
        return self.cycles_to_ms(self.request_validation_cycles(scheme))
